//! Lint CLI over Sequence Datalog program files: parses each file, runs
//! the compile-time analysis subsystem (`seqlog_core::analysis`), and
//! prints the stratified schedule plus `SL001`..`SL009` diagnostics.
//!
//! Run with: `cargo run --example analyze -- [--check] [--machines] FILE...`
//!
//! Program files may carry comment directives (`%` starts a line
//! comment in the concrete syntax, so evaluation ignores them):
//!
//! * `% edb: p, q` — analyze under the closed-world reading: exactly
//!   these predicates are database predicates
//!   ([`ProgramReport::analyze_with_edb`]); without the directive the
//!   open-world default applies (every non-head predicate is a database
//!   predicate).
//! * `% expect: SL003 SL005` — the diagnostic codes this file is
//!   *supposed* to produce (a lint fixture). Under `--check`, a file
//!   fails when its emitted code set differs from its expected set — so
//!   CI fails both on a new warning in a clean program and on a fixture
//!   that stops reproducing its lint.
//! * `% adorn: pred(b,f)` — also print the demand (magic-set)
//!   transformation for this goal and binding pattern (`b` = bound,
//!   `f` = free). The same transformation can be requested from the
//!   command line with `--adorn 'pred(b,f)'` for every file.
//! * `% expect-fallback: dbl` — the predicates the transformation is
//!   *supposed* to exempt from demand guarding (constructive or
//!   domain-sensitive strata). Under `--check`, a file with an
//!   `% adorn:` directive fails when the actual fallback set differs —
//!   including the clean case, where the directive is absent and the
//!   fallback set must be empty.
//! * `% machines: rot, collapse` — register these machines from the
//!   built-in demo catalog (see [`install_machine`]) before analysis, so
//!   fixtures can exercise the machine-level lints `SL007`..`SL009`.
//! * `% expect-fusion: applied` — the set of fusion-decision outcomes
//!   (`applied` / `declined`) the file's transducer chains must produce.
//!   Under `--check`, mismatches fail, pinning not just that `SL009`
//!   fires but *which way* the decision went.
//!
//! `--machines` additionally prints, per registered machine, its size,
//! whether it is functional, and its minimized size under the transducer
//! algebra.
//!
//! Exit status: 0 when every file matches its expectation (clean files
//! expect no diagnostics), 1 otherwise. `scripts/ci_check.sh` runs this
//! over every program in `examples/programs/`.

use sequence_datalog::core::analysis::magic::{magic_transform, MagicOptions};
use sequence_datalog::core::analysis::{fuse_program, Adornment, FuseLimits, ProgramReport};
use sequence_datalog::core::compile::compile;
use sequence_datalog::core::Engine;
use sequence_datalog::transducer::{library, DeterminizeCaps, Fst};
use std::collections::BTreeSet;
use std::process::ExitCode;

/// A parsed `pred(b,f,...)` goal/binding-pattern specification.
struct AdornSpec {
    pred: String,
    pattern: Adornment,
}

fn parse_adorn_spec(spec: &str) -> Option<AdornSpec> {
    let (name, rest) = spec.split_once('(')?;
    let inner = rest.trim().strip_suffix(')')?;
    let letters: String = inner.chars().filter(|c| !" ,".contains(*c)).collect();
    Some(AdornSpec {
        pred: name.trim().to_string(),
        pattern: Adornment::parse(&letters)?,
    })
}

/// Comment directives of one program file.
#[derive(Default)]
struct Directives {
    /// `% edb:` — closed-world database predicates, when present.
    edb: Option<Vec<String>>,
    /// `% expect:` — expected diagnostic codes (empty set when absent).
    expect: BTreeSet<String>,
    /// `% adorn:` — demand transformations to print for this file.
    adorn: Vec<AdornSpec>,
    /// `% expect-fallback:` — predicates the transformation must exempt
    /// from guarding (empty set when absent).
    expect_fallback: BTreeSet<String>,
    /// `% machines:` — demo-catalog machines to register before analysis.
    machines: Vec<String>,
    /// `% expect-fusion:` — expected fusion-decision outcomes
    /// (`applied` / `declined`), when present.
    expect_fusion: Option<BTreeSet<String>>,
}

fn parse_directives(src: &str) -> Option<Directives> {
    let mut d = Directives::default();
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix('%') else {
            continue;
        };
        let rest = rest.trim();
        if let Some(list) = rest.strip_prefix("edb:") {
            d.edb = Some(
                list.split(',')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty())
                    .collect(),
            );
        } else if let Some(list) = rest.strip_prefix("expect:") {
            d.expect.extend(list.split_whitespace().map(str::to_string));
        } else if let Some(spec) = rest.strip_prefix("adorn:") {
            d.adorn.push(parse_adorn_spec(spec.trim())?);
        } else if let Some(list) = rest.strip_prefix("expect-fallback:") {
            d.expect_fallback.extend(
                list.split(',')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty()),
            );
        } else if let Some(list) = rest.strip_prefix("machines:") {
            d.machines.extend(
                list.split(',')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty()),
            );
        } else if let Some(list) = rest.strip_prefix("expect-fusion:") {
            d.expect_fusion
                .get_or_insert_with(BTreeSet::new)
                .extend(list.split_whitespace().map(str::to_string));
        }
    }
    Some(d)
}

/// Register one machine from the demo catalog into `engine`. The catalog
/// spans every machine-lint shape: `rot` / `collapse` are functional
/// 1-state mappers (fusable chains, `SL009` applied), `square` is an
/// order-2 machine the unary algebra declines, `pick` is a
/// nondeterministic relation (`SL007`), and `gappy` carries dead states
/// (`SL008`).
fn install_machine(engine: &mut Engine, name: &str) -> bool {
    let a = &mut engine.alphabet;
    let s: Vec<_> = "abc".chars().map(|c| a.intern_char(c)).collect();
    match name {
        "rot" => {
            let m = library::mapper(a, "rot", &[(s[0], s[1]), (s[1], s[2]), (s[2], s[0])]);
            engine.registry.register("rot", m);
        }
        "collapse" => {
            let m = library::mapper(a, "collapse", &[(s[0], s[0]), (s[1], s[0]), (s[2], s[0])]);
            engine.registry.register("collapse", m);
        }
        "square" => {
            let m = library::square(a, &s);
            engine.registry.register("square", m);
        }
        "pick" => {
            // On `a`, emit `a` or `b`: a relation, not a function.
            let mut f = Fst::new("pick", 1);
            f.add_arc(0, s[0], vec![s[0]], 0);
            f.add_arc(0, s[0], vec![s[1]], 0);
            f.add_arc(0, s[1], vec![s[1]], 0);
            f.set_final(0, Vec::new());
            f.normalize();
            let end = engine.alphabet.end_marker();
            engine.registry.register_fst("pick", f, end);
        }
        "gappy" => {
            // State 1 is unreachable, state 2 reachable but stuck: both dead.
            let mut f = Fst::new("gappy", 3);
            f.add_arc(0, s[0], vec![s[0]], 0);
            f.add_arc(0, s[1], vec![s[1]], 2);
            f.add_arc(1, s[0], vec![s[0]], 1);
            f.set_final(0, Vec::new());
            f.normalize();
            let end = engine.alphabet.end_marker();
            engine.registry.register_fst("gappy", f, end);
        }
        _ => return false,
    }
    true
}

/// Print the `--machines` table: per registered machine, its size, whether
/// it is functional, and its minimized size under the transducer algebra.
fn print_machines(engine: &Engine) {
    let reg = &engine.registry;
    let mut names: BTreeSet<&str> = reg.names().collect();
    names.extend(reg.fst_names());
    for name in names {
        let fst = reg
            .fst(name)
            .cloned()
            .or_else(|| reg.get(name).and_then(|t| t.algebra().ok()));
        let Some(f) = fst else {
            let t = reg.get(name).expect("listed name resolves");
            println!(
                "@{name}: {} states, {} transitions (order {}, {} input(s): outside the unary algebra)",
                t.num_states(),
                t.num_transitions(),
                t.order(),
                t.num_inputs,
            );
            continue;
        };
        let functional = f.is_functional();
        let minimized = if f.is_deterministic() {
            f.minimize().ok()
        } else {
            f.determinize(&DeterminizeCaps::default())
                .ok()
                .and_then(|d| d.minimize().ok())
        };
        let minimized = minimized.map_or_else(
            || "n/a (not subsequential)".to_string(),
            |m| format!("{} states / {} transitions", m.num_states(), m.num_arcs()),
        );
        println!(
            "@{name}: {} states, {} transitions, functional: {}, minimized: {minimized}",
            f.num_states(),
            f.num_arcs(),
            if functional { "yes" } else { "no" },
        );
    }
}

/// Analyze one file; returns `true` when its diagnostics match the
/// `% expect:` set (empty for clean programs) and, when a demand
/// transformation was requested, its fallback set matches
/// `% expect-fallback:`.
fn analyze_file(path: &str, cli_adorn: &[AdornSpec], show_machines: bool) -> bool {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return false;
        }
    };
    let Some(directives) = parse_directives(&src) else {
        eprintln!("{path}: malformed % adorn: directive");
        return false;
    };
    let mut engine = Engine::new();
    for name in &directives.machines {
        if !install_machine(&mut engine, name) {
            eprintln!("{path}: % machines: unknown demo machine `{name}`");
            return false;
        }
    }
    let program = match engine.parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: parse error: {e}");
            return false;
        }
    };
    let compiled = match compile(&program) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{path}: compile error: {e}");
            return false;
        }
    };
    let mut report = match &directives.edb {
        Some(names) => {
            let edb: Vec<_> = names
                .iter()
                .filter_map(|n| compiled.preds.lookup(n))
                .collect();
            ProgramReport::analyze_with_edb(&compiled, &edb)
        }
        None => ProgramReport::analyze(&compiled),
    };
    // Machine-level pass: `SL007`..`SL009` plus fusion decisions.
    report.attach_fusion(&fuse_program(
        &compiled,
        &engine.registry,
        &FuseLimits::default(),
    ));

    println!("── {path} ──");
    print!("{}", report.render());
    if show_machines {
        print_machines(&engine);
    }

    let mut ok = true;
    let emitted: BTreeSet<String> = report
        .diagnostics
        .iter()
        .map(|d| d.code.as_str().to_string())
        .collect();
    if emitted != directives.expect {
        for unexpected in emitted.difference(&directives.expect) {
            eprintln!("{path}: unexpected diagnostic {unexpected}");
        }
        for missing in directives.expect.difference(&emitted) {
            eprintln!("{path}: expected diagnostic {missing} did not fire");
        }
        ok = false;
    }

    if let Some(expect_fusion) = &directives.expect_fusion {
        let observed: BTreeSet<String> = report
            .fusion
            .iter()
            .map(|d| if d.applied { "applied" } else { "declined" }.to_string())
            .collect();
        if observed != *expect_fusion {
            eprintln!(
                "{path}: fusion outcomes {{{}}} differ from expected {{{}}}",
                observed.iter().cloned().collect::<Vec<_>>().join(", "),
                expect_fusion.iter().cloned().collect::<Vec<_>>().join(", "),
            );
            ok = false;
        }
    }

    // Demand transformations: file directives first, then CLI requests.
    let mut fallback: BTreeSet<String> = BTreeSet::new();
    let mut adorned_any = false;
    for spec in directives.adorn.iter().chain(cli_adorn) {
        let Some(goal) = compiled.preds.lookup(&spec.pred) else {
            eprintln!("{path}: --adorn: unknown predicate {}", spec.pred);
            ok = false;
            continue;
        };
        adorned_any = true;
        let magic = magic_transform(&compiled, goal, &spec.pattern, &MagicOptions::default());
        println!("── demand: {}({}) ──", spec.pred, spec.pattern);
        if magic.full_fallback {
            println!("(domain-sensitive goal cone: full-evaluation fallback)");
        }
        print!("{}", magic.render(&|id| engine.render(id)));
        let names = magic.fallback_names();
        if !names.is_empty() {
            println!("fallback (unguarded): {}", names.join(", "));
        }
        fallback.extend(names.iter().map(|n| n.to_string()));
    }
    if adorned_any && fallback != directives.expect_fallback {
        for unexpected in fallback.difference(&directives.expect_fallback) {
            eprintln!("{path}: unexpected fallback predicate {unexpected}");
        }
        for missing in directives.expect_fallback.difference(&fallback) {
            eprintln!("{path}: expected fallback predicate {missing} is guarded");
        }
        ok = false;
    }
    ok
}

fn main() -> ExitCode {
    let mut check = false;
    let mut machines = false;
    let mut files: Vec<String> = Vec::new();
    let mut cli_adorn: Vec<AdornSpec> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--machines" => machines = true,
            "--adorn" => {
                let Some(spec) = args.next().as_deref().and_then(parse_adorn_spec) else {
                    eprintln!("--adorn expects a 'pred(b,f,...)' argument");
                    return ExitCode::FAILURE;
                };
                cli_adorn.push(spec);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: analyze [--check] [--machines] [--adorn 'pred(b,f,...)'] FILE...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &files {
        ok &= analyze_file(path, &cli_adorn, machines);
        println!();
    }
    if check && !ok {
        eprintln!("analyze --check: diagnostics differ from expectations");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
