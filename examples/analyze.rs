//! Lint CLI over Sequence Datalog program files: parses each file, runs
//! the compile-time analysis subsystem (`seqlog_core::analysis`), and
//! prints the stratified schedule plus `SL001`..`SL006` diagnostics.
//!
//! Run with: `cargo run --example analyze -- [--check] FILE...`
//!
//! Program files may carry two comment directives (`%` starts a line
//! comment in the concrete syntax, so evaluation ignores them):
//!
//! * `% edb: p, q` — analyze under the closed-world reading: exactly
//!   these predicates are database predicates
//!   ([`ProgramReport::analyze_with_edb`]); without the directive the
//!   open-world default applies (every non-head predicate is a database
//!   predicate).
//! * `% expect: SL003 SL005` — the diagnostic codes this file is
//!   *supposed* to produce (a lint fixture). Under `--check`, a file
//!   fails when its emitted code set differs from its expected set — so
//!   CI fails both on a new warning in a clean program and on a fixture
//!   that stops reproducing its lint.
//!
//! Exit status: 0 when every file matches its expectation (clean files
//! expect no diagnostics), 1 otherwise. `scripts/ci_check.sh` runs this
//! over every program in `examples/programs/`.

use sequence_datalog::core::analysis::ProgramReport;
use sequence_datalog::core::compile::compile;
use sequence_datalog::core::Engine;
use std::collections::BTreeSet;
use std::process::ExitCode;

/// Comment directives of one program file.
#[derive(Default)]
struct Directives {
    /// `% edb:` — closed-world database predicates, when present.
    edb: Option<Vec<String>>,
    /// `% expect:` — expected diagnostic codes (empty set when absent).
    expect: BTreeSet<String>,
}

fn parse_directives(src: &str) -> Directives {
    let mut d = Directives::default();
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix('%') else {
            continue;
        };
        let rest = rest.trim();
        if let Some(list) = rest.strip_prefix("edb:") {
            d.edb = Some(
                list.split(',')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty())
                    .collect(),
            );
        } else if let Some(list) = rest.strip_prefix("expect:") {
            d.expect.extend(list.split_whitespace().map(str::to_string));
        }
    }
    d
}

/// Analyze one file; returns `true` when its diagnostics match the
/// `% expect:` set (empty for clean programs).
fn analyze_file(path: &str) -> bool {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return false;
        }
    };
    let directives = parse_directives(&src);
    let mut engine = Engine::new();
    let program = match engine.parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: parse error: {e}");
            return false;
        }
    };
    let compiled = match compile(&program) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{path}: compile error: {e}");
            return false;
        }
    };
    let report = match &directives.edb {
        Some(names) => {
            let edb: Vec<_> = names
                .iter()
                .filter_map(|n| compiled.preds.lookup(n))
                .collect();
            ProgramReport::analyze_with_edb(&compiled, &edb)
        }
        None => ProgramReport::analyze(&compiled),
    };

    println!("── {path} ──");
    print!("{}", report.render());

    let emitted: BTreeSet<String> = report
        .diagnostics
        .iter()
        .map(|d| d.code.as_str().to_string())
        .collect();
    if emitted == directives.expect {
        return true;
    }
    for unexpected in emitted.difference(&directives.expect) {
        eprintln!("{path}: unexpected diagnostic {unexpected}");
    }
    for missing in directives.expect.difference(&emitted) {
        eprintln!("{path}: expected diagnostic {missing} did not fire");
    }
    false
}

fn main() -> ExitCode {
    let mut check = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: analyze [--check] FILE...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &files {
        ok &= analyze_file(path);
        println!();
    }
    if check && !ok {
        eprintln!("analyze --check: diagnostics differ from expectations");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
