//! Durable session: a live Sequence Datalog session backed by a
//! write-ahead log and binary snapshots, surviving a simulated `kill -9`.
//!
//! Every committed assert/retract batch and every run boundary is logged
//! (and flushed) **before** its in-memory commit, so abandoning the
//! process at any byte leaves a recoverable directory: reopening loads
//! the newest valid snapshot, replays the log tail through the ordinary
//! session paths, and resumes the fixpoint from the persisted watermarks.
//! The recovered session is bit-for-bit the session that crashed.
//!
//! Run with: `cargo run --example durable_session`

use sequence_datalog::core::wal::WAL_FILE;
use sequence_datalog::core::{DurabilityOptions, Engine, EngineSession, EvalConfig};
use std::fs::OpenOptions;
use std::io::Write;

const SRC: &str = r#"
    chain1(X[2:end]) :- chain0(X), X != "".
    chain2(X[2:end]) :- chain1(X), X != "".
    chain0(X[2:end]) :- chain2(X), X != "".
    pairs(X, Y) :- chain0(X), chain2(Y).
"#;

/// Recovery needs the same program and config the original session had —
/// the log stores facts and run boundaries, not the program text.
fn open(dir: &std::path::Path) -> EngineSession {
    let mut engine = Engine::new();
    let program = engine.parse_program(SRC).expect("parses");
    EngineSession::open_durable(
        engine,
        &program,
        EvalConfig::default(),
        dir,
        DurabilityOptions::default(),
    )
    .expect("directory is fresh or recoverable")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("seqlog-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Session one: do some work, then "crash". ---
    let mut session = open(&dir);
    for word in ["abcabcabs", "bbbcacat", "cacabcacu"] {
        session.assert_fact("chain0", &[word]).expect("healthy");
    }
    session.run().expect("settles");
    assert!(session
        .retract_fact("chain0", &["bbbcacat"])
        .expect("healthy"));
    let stats = session.stats();
    let pairs = session.relation("pairs").map_or(0, |r| r.len());
    println!(
        "before crash: {} facts, {} log records in {}",
        stats.facts,
        session.durable_records().unwrap(),
        dir.display()
    );

    // Simulate `kill -9`: the in-memory state vanishes without any
    // shutdown hook running. (Drop does no flushing the log didn't already
    // do — every record hit the OS before its commit.)
    std::mem::forget(session);

    // --- Session two: recover and verify. ---
    let recovered = open(&dir);
    println!(
        "recovered:    {} facts, {} log records",
        recovered.stats().facts,
        recovered.durable_records().unwrap()
    );
    assert_eq!(recovered.stats().facts, stats.facts);
    assert_eq!(recovered.relation("pairs").map_or(0, |r| r.len()), pairs);
    drop(recovered);

    // --- Torn tail: a crash mid-append leaves a partial record. ---
    // Appending garbage bytes simulates dying halfway through a write; the
    // recovering reader CRC-checks every record and truncates the torn
    // tail instead of failing (a record that never finished was, by the
    // log-before-commit discipline, never committed in memory either).
    let wal = dir.join(WAL_FILE);
    let clean_len = std::fs::metadata(&wal).expect("log exists").len();
    let mut f = OpenOptions::new()
        .append(true)
        .open(&wal)
        .expect("open log");
    f.write_all(&[0xDE, 0xAD, 0xBE]).expect("append torn bytes");
    drop(f);

    let recovered = open(&dir);
    assert_eq!(recovered.stats().facts, stats.facts);
    assert_eq!(
        std::fs::metadata(&wal).expect("log exists").len(),
        clean_len,
        "torn tail truncated back to the last whole record"
    );
    println!("torn-tail recovery: 3 garbage bytes truncated, model intact");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
