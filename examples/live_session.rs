//! Live session: serve a Sequence Datalog model under continuously
//! arriving base facts, resuming the fixpoint per update instead of
//! re-evaluating from scratch.
//!
//! Run with: `cargo run --example live_session`

use sequence_datalog::core::{Engine, EvalConfig};

fn main() {
    let mut engine = Engine::new();
    // A mutually recursive trimming chain plus a cross product — the kind
    // of workload where re-running the whole fixpoint per update is the
    // dominant cost.
    let program = engine
        .parse_program(
            r#"
            chain1(X[2:end]) :- chain0(X), X != "".
            chain2(X[2:end]) :- chain1(X), X != "".
            chain0(X[2:end]) :- chain2(X), X != "".
            pairs(X, Y) :- chain0(X), chain2(Y).
            "#,
        )
        .expect("parses");

    // The session takes ownership of the engine's interners and registry.
    let mut session = engine
        .into_session(&program, EvalConfig::default())
        .expect("compiles");

    // Simulate arriving traffic: one batch per "tick", queries in between.
    for (tick, batch) in [
        vec!["abcabcabs", "bbbcacat"],
        vec!["cacabcacu"],
        vec!["abcabcabs"], // duplicate: a no-op, the model is unchanged
        vec!["bcbcbcbcv"],
    ]
    .into_iter()
    .enumerate()
    {
        let mut fresh = 0;
        for word in batch {
            fresh += usize::from(
                session
                    .assert_fact("chain0", &[word])
                    .expect("session healthy"),
            );
        }
        let before = session.stats();
        let stats = session.run().expect("budgets fit");
        println!(
            "tick {tick}: {fresh} new base fact(s) -> {} facts total, \
             +{} rounds, {} pairs",
            stats.facts,
            stats.rounds - before.rounds,
            session.relation("pairs").map_or(0, |r| r.len()),
        );
    }

    // Traffic is non-monotone in a live system: retiring a record retracts
    // its base fact, and Delete-and-Rederive maintenance drops exactly the
    // derived facts that lost all support (alternative derivations
    // survive) — equivalent to re-evaluating the surviving database from
    // scratch, at a fraction of the cost.
    let facts_before = session.stats().facts;
    assert!(session
        .retract_fact("chain0", &["bbbcacat"])
        .expect("session healthy"));
    println!(
        "retract chain0(\"bbbcacat\"): {} -> {} facts, {} pairs",
        facts_before,
        session.stats().facts,
        session.relation("pairs").map_or(0, |r| r.len()),
    );
    // Retracting a fact that was never asserted is a no-op.
    assert!(!session.retract_fact("chain0", &["zzz"]).expect("healthy"));

    // Point queries between updates read the settled model directly.
    let snapshot = session.snapshot();
    println!(
        "snapshot: {} facts, domain {}, {} cumulative rounds",
        snapshot.stats.facts, snapshot.stats.domain_size, snapshot.stats.rounds
    );
    // Program-declared extents (asserted-only predicates would show up in
    // session.predicates() but not here).
    let sizes: Vec<String> = session
        .program()
        .pred_names()
        .map(|p| format!("{p}={}", session.relation(p).map_or(0, |r| r.len())))
        .collect();
    println!("extents: {}", sizes.join(" "));
    assert!(
        session.check_model().expect("check runs"),
        "settled ⇒ model"
    );
}
