//! Quickstart: parse a Sequence Datalog program, evaluate it, inspect the
//! answers and the safety report.
//!
//! Run with: `cargo run --example quickstart`

use sequence_datalog::core::{Database, Engine};

fn main() {
    let mut engine = Engine::new();

    // Example 1.1 (suffixes) and Example 1.2 (concatenations) from the
    // paper, in the concrete syntax: `++` is the paper's `•`, `X[N:end]`
    // extracts a contiguous subsequence.
    let program = engine
        .parse_program(
            r#"
            % Every suffix of every sequence in r (structural recursion).
            suffix(X[N:end]) :- r(X).

            % Every pairwise concatenation (constructive, but not recursive
            % through construction -- strongly safe).
            answer(X ++ Y) :- r(X), r(Y).
            "#,
        )
        .expect("parses");

    // Static analysis before running: dependency graph, constructive
    // cycles, guardedness, program order (Sections 5 and 8).
    let report = engine.analyze(&program);
    println!("strongly safe: {}", report.strongly_safe);
    println!("non-constructive fragment: {}", report.non_constructive);

    // A database is a set of ground facts.
    let mut db = Database::new();
    engine.add_fact(&mut db, "r", &["abc"]);
    engine.add_fact(&mut db, "r", &["de"]);

    // Evaluate to the least fixpoint of the T-operator (Section 3.3).
    let model = engine
        .evaluate(&program, &db)
        .expect("finite least fixpoint");

    let mut suffixes = engine.answers(&model, "suffix");
    suffixes.sort_by_key(|s| (s.len(), s.clone()));
    println!("suffixes: {suffixes:?}");

    let mut cats = engine.answers(&model, "answer");
    cats.sort();
    println!("concatenations: {cats:?}");

    println!(
        "fixpoint: {} facts, extended active domain {} sequences, {} rounds",
        model.stats.facts, model.stats.domain_size, model.stats.rounds
    );

    assert!(suffixes.contains(&"bc".to_string()));
    assert!(cats.contains(&"abcde".to_string()));
    assert!(cats.contains(&"deabc".to_string()));
}
