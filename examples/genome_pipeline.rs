//! The Example 7.1 genome workload: DNA → RNA → protein, three ways.
//!
//! 1. As a **Transducer Datalog** program (`@transcribe`, `@translate`) over
//!    a synthetic DNA database — the paper's own two-rule program;
//! 2. as a raw **transducer network** (Section 6.2's serial network);
//! 3. through the **Theorem 7 translation**, which compiles the Transducer
//!    Datalog program into pure Sequence Datalog and re-derives the same
//!    relations by structural/constructive recursion alone.
//!
//! Run with: `cargo run --release --example genome_pipeline`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sequence_datalog::core::prelude::*;
use sequence_datalog::transducer::library;
use sequence_datalog::transducer::Network;

fn synthetic_dna(rng: &mut StdRng, len: usize) -> String {
    const BASES: [char; 4] = ['a', 'c', 'g', 't'];
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

fn main() {
    let mut engine = Engine::new();
    let transcribe = library::transcribe(&mut engine.alphabet);
    let translate = library::translate(&mut engine.alphabet);
    engine.register_transducer("transcribe", transcribe.clone());
    engine.register_transducer("translate", translate.clone());

    // The paper's Example 7.1 program, verbatim modulo syntax.
    let program = engine
        .parse_program(
            r#"
            rnaseq(D, @transcribe(D)) :- dnaseq(D).
            proteinseq(D, @translate(R)) :- rnaseq(D, R).
            "#,
        )
        .expect("parses");

    // Strong safety: no recursion through transducer terms (Section 8).
    let report = engine.analyze(&program);
    assert!(report.strongly_safe);
    println!("program is strongly safe; order = {}", report.order);

    // A synthetic genome database (the paper's motivating workload; seeded
    // for reproducibility).
    let mut rng = StdRng::seed_from_u64(42);
    let mut db = Database::new();
    for len in [12, 30, 60, 120] {
        let dna = synthetic_dna(&mut rng, len);
        engine.add_fact(&mut db, "dnaseq", &[&dna]);
    }

    // Route 1: native Transducer Datalog evaluation.
    let model = engine
        .evaluate(&program, &db)
        .expect("strongly safe ⇒ finite");
    println!("\nTransducer Datalog results:");
    for row in engine.rendered_tuples(&model, "proteinseq") {
        println!("  {} ↦ {}", &row[0][..12.min(row[0].len())], row[1]);
    }

    // Route 2: the same pipeline as a serial transducer network.
    let net = Network::chain("dna_to_protein", vec![transcribe, translate]);
    println!(
        "\nnetwork: diameter {}, order {}",
        net.diameter(),
        net.order()
    );
    for (pred, tuple) in db.iter() {
        assert_eq!(pred, "dnaseq");
        let dna = tuple[0];
        let out = net.run_simple(&[engine.store.get(dna)]).expect("runs");
        let protein = engine.alphabet.render(&out);
        // The network agrees with the Datalog evaluation.
        let datalog_rows = engine.rendered_tuples(&model, "proteinseq");
        assert!(datalog_rows.iter().any(|r| r[1] == protein));
    }
    println!(
        "network agrees with Transducer Datalog on all {} sequences",
        db.len()
    );

    // Route 3: Theorem 7 — translate to pure Sequence Datalog. (The
    // simulation materializes every intermediate transducer output, so we
    // run it on a smaller database.)
    let mut small = Database::new();
    let dna = synthetic_dna(&mut rng, 9);
    engine.add_fact(&mut small, "dnaseq", &[&dna]);
    let sd = translate_program(
        &program,
        &engine.registry,
        &mut engine.alphabet,
        &mut engine.store,
    )
    .expect("translates");
    println!(
        "\nTheorem 7 translation: {} clauses of pure Sequence Datalog",
        sd.clauses.len()
    );
    let m_td = engine.evaluate(&program, &small).unwrap();
    let m_sd = engine.evaluate(&sd, &small).unwrap();
    let mut a = engine.rendered_tuples(&m_td, "proteinseq");
    let mut b = engine.rendered_tuples(&m_sd, "proteinseq");
    a.sort();
    b.sort();
    assert_eq!(a, b);
    println!("translated program derives the same proteinseq relation: {a:?}");
}
