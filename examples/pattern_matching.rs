//! Pattern matching and the safe/unsafe recursion boundary (Examples 1.3,
//! 1.5 and 1.6).
//!
//! * `abcn` retrieves sequences of the non-context-free form aⁿbⁿcⁿ using
//!   pure structural recursion (Theorem 3: PTIME).
//! * `rep1` recognizes repeats Yⁿ structurally — finite semantics.
//! * `rep2` builds repeats constructively — infinite least fixpoint, caught
//!   by the evaluator's budgets (finiteness is undecidable, Theorem 2).
//!
//! Run with: `cargo run --release --example pattern_matching`

use sequence_datalog::core::{Database, Engine, EvalConfig, EvalError};

fn main() {
    let mut engine = Engine::new();

    // ---- Example 1.3: aⁿbⁿcⁿ ------------------------------------------
    let abcn = engine
        .parse_program(
            r#"
            answer(X) :- r(X), abcn(X[1:N1], X[N1+1:N2], X[N2+1:end]).
            abcn("", "", "") :- true.
            abcn(X, Y, Z) :- X[1] = "a", Y[1] = "b", Z[1] = "c",
                             abcn(X[2:end], Y[2:end], Z[2:end]).
            "#,
        )
        .expect("parses");

    let mut db = Database::new();
    for s in ["abc", "aabbcc", "aaabbbccc", "aabbc", "abcabc", "cba", ""] {
        engine.add_fact(&mut db, "r", &[s]);
    }
    let model = engine
        .evaluate(&abcn, &db)
        .expect("non-constructive ⇒ finite");
    let mut hits = engine.answers(&model, "answer");
    hits.sort_by_key(String::len);
    println!("aⁿbⁿcⁿ members: {hits:?}");
    assert_eq!(hits, vec!["", "abc", "aabbcc", "aaabbbccc"]);

    // ---- Example 1.5: rep1 (structural) vs rep2 (constructive) ---------
    // The paper's rep1, verbatim: the base case ranges over the whole
    // extended active domain ("retrieve all sequences … that fit the
    // pattern Yⁿ").
    let rep1 = engine
        .parse_program(
            r#"
            rep1(X, X) :- true.
            rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).
            answer(X) :- seq(X), rep1(X, Y), Y != X, Y != "".
            "#,
        )
        .expect("parses");
    let mut db2 = Database::new();
    for s in ["abcdabcdabcd", "abab", "abc"] {
        engine.add_fact(&mut db2, "seq", &[s]);
    }
    let m1 = engine
        .evaluate(&rep1, &db2)
        .expect("structural recursion is safe");
    let mut repeats = engine.answers(&m1, "answer");
    repeats.sort();
    println!("proper repeats Yⁿ (n ≥ 2): {repeats:?}");
    assert!(repeats.contains(&"abab".to_string()));
    assert!(repeats.contains(&"abcdabcdabcd".to_string()));
    assert!(!repeats.contains(&"abc".to_string()));

    // rep2 generates Yⁿ constructively: its least fixpoint is infinite.
    let rep2 = engine
        .parse_program(
            r#"
            rep2(X, X) :- seq(X).
            rep2(X ++ Y, Y) :- rep2(X, Y).
            "#,
        )
        .expect("parses");
    let report = engine.analyze(&rep2);
    assert!(!report.strongly_safe, "rep2 has a constructive cycle");
    println!(
        "rep2 constructive-cycle edges: {:?}",
        report
            .violations
            .iter()
            .map(|e| format!("{}→{}", e.from, e.to))
            .collect::<Vec<_>>()
    );
    match engine.evaluate_with(&rep2, &db2, &EvalConfig::probe()) {
        Err(EvalError::Budget { kind, stats }) => {
            println!(
                "rep2 diverges as predicted: {kind:?} budget hit after {} rounds / {} facts",
                stats.rounds, stats.facts
            );
        }
        other => panic!("expected divergence, got {other:?}"),
    }

    // ---- Example 1.6: echo sequences -----------------------------------
    // The infinite-fixpoint program from the paper; the finite *query* is
    // recovered by the strongly safe Transducer Datalog echo in the genome
    // example.
    let echo = engine
        .parse_program(
            r#"
            answer2(X, Y) :- rel(X), echo(X, Y).
            echo("", "") :- true.
            echo(X, X[1] ++ X[1] ++ Z) :- echo(X[2:end], Z).
            "#,
        )
        .expect("parses");
    let report = engine.analyze(&echo);
    println!(
        "Example 1.6 echo program strongly safe? {}",
        report.strongly_safe
    );
    assert!(!report.strongly_safe);
}
