//! The expressibility constructions, end to end (Theorems 1 and 5).
//!
//! A binary-complement Turing machine is executed three ways and the
//! outputs compared:
//!
//! 1. directly on the [`sequence_datalog::turing`] substrate;
//! 2. compiled to Sequence Datalog (`conf` rules, Theorem 1) and evaluated
//!    bottom-up — unsafe constructive recursion simulating an unbounded
//!    tape;
//! 3. compiled to an acyclic **order-2 transducer network** (Theorem 5):
//!    pad → counter chain → init → driver(step) → decode.
//!
//! Run with: `cargo run --release --example turing_sim`

use sequence_datalog::core::{Database, Engine};
use sequence_datalog::turing::{
    samples, strip_trailing_blanks, tm_to_network, tm_to_seqlog, NetworkOptions,
};

fn main() {
    let mut engine = Engine::new();
    let tm = samples::complement_tm(&mut engine.alphabet);
    let input = "110010";

    // Route 1: direct execution.
    let direct = {
        let syms = engine.alphabet.seq_of_str(input);
        let run = tm.run(&syms, 1_000_000).expect("halts");
        println!("direct run: {} steps", run.steps);
        let out = strip_trailing_blanks(run.output, tm.blank);
        engine.alphabet.render(&out)
    };
    println!("direct output:   {direct}");

    // Route 2: Theorem 1 — compile to Sequence Datalog.
    let program = tm_to_seqlog(&tm, &mut engine.alphabet, &mut engine.store);
    println!(
        "\nTheorem 1 program: {} clauses (one per transition, plus input/output glue)",
        program.clauses.len()
    );
    let report = engine.analyze(&program);
    println!(
        "strongly safe? {} (Turing-complete simulations cannot be)",
        report.strongly_safe
    );

    let mut db = Database::new();
    engine.add_fact(&mut db, "input", &[input]);
    let model = engine
        .evaluate(&program, &db)
        .expect("halting machine ⇒ finite fixpoint");
    println!(
        "fixpoint after {} rounds: {} facts, domain {}",
        model.stats.rounds, model.stats.facts, model.stats.domain_size
    );
    let outputs = engine.rendered_tuples(&model, "output");
    let datalog = outputs[0][0].trim_end_matches('␣').to_string();
    println!("Datalog output:  {datalog}");
    assert_eq!(datalog, direct);

    // Route 3: Theorem 5 — compile to an order-2 network.
    let net = tm_to_network(
        &tm,
        &mut engine.alphabet,
        NetworkOptions {
            counter_squarings: 1,
        },
    );
    println!(
        "\nTheorem 5 network: {} machines, diameter {}, order {}",
        net.num_machines(),
        net.diameter(),
        net.order()
    );
    let syms = engine.alphabet.seq_of_str(input);
    let mut stats = sequence_datalog::transducer::ExecStats::default();
    let out = net
        .run(
            &[&syms],
            &sequence_datalog::transducer::ExecLimits::default(),
            &mut stats,
        )
        .expect("network run");
    let network = engine.alphabet.render(&out);
    println!(
        "network output:  {network}   ({} transducer steps, {} subcalls)",
        stats.steps, stats.subcalls
    );
    assert_eq!(network, direct);

    println!("\nall three routes agree ✓");
}
