//! Reproduces Fig. 3 / Example 8.1: the predicate dependency graphs of
//! programs P1, P2, P3 and their strong-safety verdicts, plus the verdicts
//! for the other programs discussed in the paper.
//!
//! Run with: `cargo run --example safety_audit`

use sequence_datalog::core::Engine;

fn audit(engine: &mut Engine, name: &str, src: &str, expect_safe: bool) {
    let program = engine.parse_program(src).expect("parses");
    let report = engine.analyze(&program);
    println!("── {name} ──");
    for edge in &report.graph.edges {
        let marker = if edge.constructive {
            " [constructive]"
        } else {
            ""
        };
        println!("    {} → {}{}", edge.from, edge.to, marker);
    }
    let verdict = if report.strongly_safe {
        "strongly safe"
    } else {
        "NOT strongly safe"
    };
    println!("    ⇒ {verdict}");
    if !report.violations.is_empty() {
        for v in &report.violations {
            println!("      constructive cycle through {} → {}", v.from, v.to);
        }
    }
    println!();
    assert_eq!(report.strongly_safe, expect_safe, "{name}");
}

fn main() {
    let mut e = Engine::new();

    // Example 8.1 / Fig. 3. P1: the constructive edge r→a is not on a cycle.
    audit(
        &mut e,
        "P1 (Example 8.1)",
        "p(X) :- r(X, Y), q(Y).\n\
         q(X) :- r(X, Y), p(Y).\n\
         r(@t1(X), @t2(Y)) :- a(X, Y).",
        true,
    );
    // P2: a constructive self-loop.
    audit(&mut e, "P2 (Example 8.1)", "p(@t(X)) :- p(X).", false);
    // P3: the constructive edge r→p lies on the cycle q→r→p→q.
    audit(
        &mut e,
        "P3 (Example 8.1)",
        "q(X) :- r(X).\n\
         r(@t(X)) :- p(X).\n\
         p(X) :- q(X).",
        false,
    );

    // Example 5.1: stratified construction — constructive edges between
    // strata, no cycles.
    audit(
        &mut e,
        "Example 5.1 (double/quadruple)",
        "double(X ++ X) :- r(X).\n\
         quadruple(X ++ X) :- double(X).",
        true,
    );

    // Example 1.5: structural vs constructive repeats.
    audit(
        &mut e,
        "rep1 (structural recursion)",
        "rep1(X, X) :- true.\n\
         rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).",
        true,
    );
    audit(
        &mut e,
        "rep2 (constructive recursion)",
        "rep2(X, X) :- true.\n\
         rep2(X ++ Y, Y) :- rep2(X, Y).",
        false,
    );

    // Example 7.1: the genome pipeline is non-recursive, hence safe.
    audit(
        &mut e,
        "Example 7.1 (DNA→RNA→protein)",
        "rnaseq(D, @transcribe(D)) :- dnaseq(D).\n\
         proteinseq(D, @translate(R)) :- rnaseq(D, R).",
        true,
    );

    println!("all verdicts match the paper ✓");
}
