//! Property-based differential fuzzing: **batch ≡ incremental ≡ parallel**.
//!
//! `seqlog_testkit` generates safe (terminating-by-construction) programs
//! composed of shapes the evaluator treats differently — delta-driven
//! joins, domain-sensitive clauses, constructive heads, equality literals —
//! plus base-fact batches modeling arrival order. For every case and every
//! thread count in {1, 2, 4, 8} these properties demand:
//!
//! * batch evaluation is **bit-for-bit** identical across thread counts
//!   (extents in insertion order *and* `EvalStats`);
//! * incremental evaluation (a session asserting one batch at a time,
//!   resuming after each) is bit-for-bit identical across thread counts;
//! * batch and incremental agree **extensionally** (same relations as
//!   sets; insertion order may differ because facts settle in arrival
//!   order);
//! * under a tightened `max_facts`, both routes fail with the same budget
//!   kind at every thread count;
//! * the naive strategy agrees with all of the above.
//!
//! The **retraction oracle** (Delete-and-Rederive correctness): for
//! generated assert/retract interleavings, after every history the session
//! must equal a fresh batch evaluation of the *surviving* base facts —
//! extent-wise against the oracle, bit-for-bit across thread counts along
//! the session route, and deterministically (same outcome at every thread
//! count, correct extents on success) under tightened budgets. A dedicated
//! generator variant forces the ground-domain-sensitive shape
//! `gd(X, X) :- true.` into every program, so retractions that *shrink the
//! extended active domain* — the fragment-sensitive trap where a deleted
//! fact takes its sequences' windows (and the integers they pinned) out of
//! every domain enumeration — are guaranteed coverage.
//!
//! The **sharded-commit matrix**: generated cases are small, so the plain
//! thread-count sweep above exercises the multi-worker code only through
//! its dispatch decision (rounds under the parallelism threshold run
//! inline). The `sharded_` properties force the parallel dispatch path —
//! multi-worker match + frozen head evaluation, sharded dedupe, and the
//! deterministic merge — for every case at threads 1/2/4/8 and demand the
//! same bit-for-bit agreement, on the batch, incremental, and retraction
//! routes. `scripts/ci_check.sh` runs this matrix as an explicit step.
//!
//! The harness itself is mutation-tested at the bottom of this file: an
//! engine that merges task buffers in the wrong order, or misaligns a
//! task's provisional-intern resolution table (the "skipped epoch freeze"
//! bug), must be caught by these oracles.
//!
//! The generator is deterministic per test name (the shim's `TestRng`), so
//! the seed is pinned: a CI failure reproduces locally by running the same
//! test, and `scripts/ci_check.sh` runs this suite on every check.

use proptest::prelude::*;
use seqlog_testkit::interleaved_outcome;
use seqlog_testkit::{
    batch_outcome, cases, incremental_outcome, interleaved_cases, interleaved_cases_with_gd,
    surviving_batch_outcome, FuzzCase, Outcome,
};
use sequence_datalog::core::{EvalConfig, Strategy as EvalStrategy};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A config that forces the parallel dispatch path (multi-worker match +
/// sharded commit) regardless of round size — the only way small generated
/// cases reach the multi-worker machinery at all.
fn sharded(threads: usize) -> EvalConfig {
    EvalConfig {
        threads,
        danger_force_parallel: true,
        ..EvalConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn batch_equals_incremental_at_every_thread_count(case in cases()) {
        let reference = batch_outcome(&case, &EvalConfig::with_threads(1));
        let expected = reference
            .extents_sorted()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let incremental_reference = incremental_outcome(&case, &EvalConfig::with_threads(1));
        prop_assert_eq!(
            incremental_reference.extents_sorted().as_ref(),
            Some(&expected),
            "incremental differs extensionally from batch\n{}",
            case
        );
        for t in [2usize, 4, 8] {
            let cfg = EvalConfig::with_threads(t);
            // Batch: bit-for-bit (insertion order + stats) across threads.
            prop_assert_eq!(
                &batch_outcome(&case, &cfg),
                &reference,
                "batch at threads={} is not bit-for-bit identical\n{}",
                t,
                case
            );
            // Incremental: bit-for-bit across threads too.
            prop_assert_eq!(
                &incremental_outcome(&case, &cfg),
                &incremental_reference,
                "incremental at threads={} is not bit-for-bit identical\n{}",
                t,
                case
            );
        }
    }

    #[test]
    fn budget_errors_agree_between_batch_and_incremental(case in cases()) {
        let reference = batch_outcome(&case, &EvalConfig::default());
        let Outcome::Model { stats, .. } = &reference else {
            panic!("default budgets must fit generated cases:\n{case}");
        };
        // Tighten max_facts below the known fixpoint size: every route must
        // now exhaust the Facts budget, at every thread count. (Cases whose
        // fixpoint is tiny can't be made to fail this way; skip them.)
        if stats.facts >= 4 {
            let max_facts = stats.facts / 2;
            for t in THREADS {
                let cfg = EvalConfig {
                    threads: t,
                    max_facts,
                    ..EvalConfig::default()
                };
                prop_assert_eq!(
                    batch_outcome(&case, &cfg).failure(),
                    Some("budget:Facts"),
                    "batch at threads={} must exhaust the Facts budget\n{}",
                    t,
                    case
                );
                prop_assert_eq!(
                    incremental_outcome(&case, &cfg).failure(),
                    Some("budget:Facts"),
                    "incremental at threads={} must exhaust the Facts budget\n{}",
                    t,
                    case
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn retraction_equals_fresh_batch_of_survivors(case in interleaved_cases()) {
        let reference = surviving_batch_outcome(&case, &EvalConfig::with_threads(1));
        let expected = reference
            .extents_sorted_nonempty()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let session_reference = interleaved_outcome(&case, &EvalConfig::with_threads(1));
        prop_assert_eq!(
            session_reference.extents_sorted_nonempty().as_ref(),
            Some(&expected),
            "session after retractions differs from a fresh batch evaluation \
             of the surviving base facts\n{}",
            case
        );
        // The session route itself is bit-for-bit deterministic (extents in
        // insertion order AND stats) at every thread count.
        for t in [2usize, 4, 8] {
            prop_assert_eq!(
                &interleaved_outcome(&case, &EvalConfig::with_threads(t)),
                &session_reference,
                "interleaved session at threads={} is not bit-for-bit identical\n{}",
                t,
                case
            );
        }
    }

    #[test]
    fn retraction_shrinks_domains_correctly_on_gd_cases(case in interleaved_cases_with_gd()) {
        // Every case carries `gd(X, X) :- true.`: the ground
        // domain-sensitive shape whose extent IS the extended active
        // domain (squared onto the diagonal). Any effective retraction
        // must shrink it exactly to the survivors' domain.
        let expected = surviving_batch_outcome(&case, &EvalConfig::with_threads(1))
            .extents_sorted_nonempty()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let session = interleaved_outcome(&case, &EvalConfig::with_threads(1));
        prop_assert_eq!(
            session.extents_sorted_nonempty().as_ref(),
            Some(&expected),
            "domain-sensitive extents diverged after retraction\n{}",
            case
        );
    }

    #[test]
    fn retraction_under_tightened_budgets_stays_deterministic(case in interleaved_cases()) {
        let reference = surviving_batch_outcome(&case, &EvalConfig::default());
        let Outcome::Model { stats, .. } = &reference else {
            panic!("default budgets must fit generated cases:\n{case}");
        };
        // Tighten max_facts below the surviving fixpoint size (cases whose
        // fixpoint is tiny can't be tightened meaningfully; skip them).
        // The session route's *peak* state (before retractions) is at
        // least as large, so it may fail at an assert, a resume, or a
        // maintenance pass — whatever happens must be identical at every
        // thread count, and a success must still produce the oracle
        // extents.
        if stats.facts >= 4 {
            let tight = EvalConfig {
                max_facts: stats.facts / 2,
                ..EvalConfig::default()
            };
            let at1 = interleaved_outcome(&case, &EvalConfig { threads: 1, ..tight });
            for t in [2usize, 4, 8] {
                prop_assert_eq!(
                    &interleaved_outcome(&case, &EvalConfig { threads: t, ..tight }),
                    &at1,
                    "tight-budget interleaved route diverged at threads={}\n{}",
                    t,
                    case
                );
            }
            if let Some(extents) = at1.extents_sorted_nonempty() {
                prop_assert_eq!(
                    Some(&extents),
                    reference.extents_sorted_nonempty().as_ref(),
                    "a tight-budget success must still match the oracle\n{}",
                    case
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The sharded-commit matrix: every case, forced through the parallel
    /// dispatch path, at every thread count, on the batch and incremental
    /// routes — bit-for-bit against the plain sequential reference.
    #[test]
    fn sharded_commit_is_bit_for_bit_at_every_thread_count(case in cases()) {
        let reference = batch_outcome(&case, &EvalConfig::with_threads(1));
        prop_assert!(
            reference.failure().is_none(),
            "default budgets must fit generated cases:\n{}", case
        );
        let incremental_reference = incremental_outcome(&case, &EvalConfig::with_threads(1));
        for t in THREADS {
            prop_assert_eq!(
                &batch_outcome(&case, &sharded(t)),
                &reference,
                "sharded batch at threads={} is not bit-for-bit identical\n{}",
                t,
                case
            );
            prop_assert_eq!(
                &incremental_outcome(&case, &sharded(t)),
                &incremental_reference,
                "sharded incremental at threads={} is not bit-for-bit identical\n{}",
                t,
                case
            );
        }
    }

    /// The sharded-commit matrix on the retraction route: forced-parallel
    /// sessions running assert/retract interleavings (Delete-and-Rederive
    /// maintenance included) must be bit-for-bit identical to the plain
    /// sequential session at every thread count.
    #[test]
    fn sharded_commit_retraction_route_is_bit_for_bit(case in interleaved_cases_with_gd()) {
        let session_reference = interleaved_outcome(&case, &EvalConfig::with_threads(1));
        for t in THREADS {
            prop_assert_eq!(
                &interleaved_outcome(&case, &sharded(t)),
                &session_reference,
                "sharded interleaved session at threads={} is not bit-for-bit identical\n{}",
                t,
                case
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    #[test]
    fn naive_strategy_agrees_on_generated_cases(case in cases()) {
        let expected = batch_outcome(&case, &EvalConfig::default())
            .extents_sorted()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let naive_cfg = EvalConfig {
            strategy: EvalStrategy::Naive,
            ..EvalConfig::default()
        };
        prop_assert_eq!(
            batch_outcome(&case, &naive_cfg).extents_sorted().as_ref(),
            Some(&expected),
            "naive batch differs\n{}",
            case
        );
        prop_assert_eq!(
            incremental_outcome(&case, &naive_cfg).extents_sorted().as_ref(),
            Some(&expected),
            "naive incremental differs\n{}",
            case
        );
    }
}

// ---------------------------------------------------------------------------
// Harness mutation tests: a wrong merge must be caught by the oracles above
// ---------------------------------------------------------------------------

/// A fixed case where two clauses (= two match tasks per round) feed the
/// *same* head relation with distinct values: merging their buffers in the
/// wrong order observably permutes that relation's insertion order.
fn pinned_merge_case() -> FuzzCase {
    FuzzCase {
        program: "t0(X) :- r0(X).\nt0(X) :- r1(X).\n".into(),
        batches: vec![vec![
            ("r0".into(), "ab".into()),
            ("r0".into(), "ba".into()),
            ("r1".into(), "abc".into()),
            ("r1".into(), "c".into()),
        ]],
    }
}

/// Mutant 1: merging the round's task buffers in reverse task order (the
/// "shard merge order" bug). Facts still come out as the same *set*, but
/// insertion order — part of the bit-for-bit surface the differential
/// oracle compares — permutes, so the sweep above would catch the bug.
#[test]
fn mutant_reversed_merge_order_is_caught() {
    let case = pinned_merge_case();
    let reference = batch_outcome(&case, &EvalConfig::with_threads(1));
    let mutant = |threads: usize| EvalConfig {
        danger_reverse_merge_order: true,
        ..sharded(threads)
    };
    // The mutant is gated on multi-worker runs (that is the bug shape it
    // models): single-threaded it is inert...
    assert_eq!(
        batch_outcome(&case, &mutant(1)),
        reference,
        "the reverse-merge mutant must be inert at threads=1"
    );
    // ...and at threads>1 it must diverge from the reference, exactly the
    // cross-thread-count divergence the sharded matrix rejects.
    let diverged = batch_outcome(&case, &mutant(2));
    assert_ne!(
        diverged, reference,
        "a reversed merge order must not be bit-for-bit identical — \
         otherwise the determinism oracle could not catch a merge-order bug"
    );
    // Same fixpoint as a set: only the order diverges, which is what makes
    // insertion-order comparison (not just extents) load-bearing.
    assert_eq!(
        diverged.extents_sorted(),
        reference.extents_sorted(),
        "the mutant still computes the same least fixpoint"
    );
}

/// Mutant 2: misaligning a task's provisional-intern resolution table (the
/// "skipped epoch freeze" bug): constructive heads' fresh sequences get
/// patched to the *wrong* new interns, producing wrong fact values — which
/// the extents comparison catches.
#[test]
fn mutant_skipped_epoch_freeze_is_caught() {
    // One clause whose head creates two distinct fresh sequences per
    // recipe: the pending batch has >= 2 entries, so a rotated resolution
    // table swaps their values.
    let case = FuzzCase {
        program: "o0(X ++ X, X ++ X ++ X) :- r0(X).\n".into(),
        batches: vec![vec![("r0".into(), "ab".into())]],
    };
    let reference = batch_outcome(&case, &EvalConfig::with_threads(1));
    let mutant = |threads: usize| EvalConfig {
        danger_skip_epoch_freeze: true,
        ..sharded(threads)
    };
    assert_eq!(
        batch_outcome(&case, &mutant(1)),
        reference,
        "the epoch-skip mutant must be inert at threads=1"
    );
    let diverged = batch_outcome(&case, &mutant(2));
    assert_ne!(
        diverged.extents_sorted(),
        reference.extents_sorted(),
        "a misaligned intern-resolution table must produce wrong fact \
         values — otherwise the oracle could not catch an epoch-freeze bug"
    );
}
