//! Property-based differential fuzzing: **batch ≡ incremental ≡ parallel**.
//!
//! `seqlog_testkit` generates safe (terminating-by-construction) programs
//! composed of shapes the evaluator treats differently — delta-driven
//! joins, domain-sensitive clauses, constructive heads, equality literals —
//! plus base-fact batches modeling arrival order. For every case and every
//! thread count in {1, 2, 4, 8} these properties demand:
//!
//! * batch evaluation is **bit-for-bit** identical across thread counts
//!   (extents in insertion order *and* `EvalStats`);
//! * incremental evaluation (a session asserting one batch at a time,
//!   resuming after each) is bit-for-bit identical across thread counts;
//! * batch and incremental agree **extensionally** (same relations as
//!   sets; insertion order may differ because facts settle in arrival
//!   order);
//! * under a tightened `max_facts`, both routes fail with the same budget
//!   kind at every thread count;
//! * the naive strategy agrees with all of the above.
//!
//! The **retraction oracle** (Delete-and-Rederive correctness): for
//! generated assert/retract interleavings, after every history the session
//! must equal a fresh batch evaluation of the *surviving* base facts —
//! extent-wise against the oracle, bit-for-bit across thread counts along
//! the session route, and deterministically (same outcome at every thread
//! count, correct extents on success) under tightened budgets. A dedicated
//! generator variant forces the ground-domain-sensitive shape
//! `gd(X, X) :- true.` into every program, so retractions that *shrink the
//! extended active domain* — the fragment-sensitive trap where a deleted
//! fact takes its sequences' windows (and the integers they pinned) out of
//! every domain enumeration — are guaranteed coverage.
//!
//! The generator is deterministic per test name (the shim's `TestRng`), so
//! the seed is pinned: a CI failure reproduces locally by running the same
//! test, and `scripts/ci_check.sh` runs this suite on every check.

use proptest::prelude::*;
use seqlog_testkit::interleaved_outcome;
use seqlog_testkit::{
    batch_outcome, cases, incremental_outcome, interleaved_cases, interleaved_cases_with_gd,
    surviving_batch_outcome, Outcome,
};
use sequence_datalog::core::{EvalConfig, Strategy as EvalStrategy};

const THREADS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn batch_equals_incremental_at_every_thread_count(case in cases()) {
        let reference = batch_outcome(&case, &EvalConfig::with_threads(1));
        let expected = reference
            .extents_sorted()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let incremental_reference = incremental_outcome(&case, &EvalConfig::with_threads(1));
        prop_assert_eq!(
            incremental_reference.extents_sorted().as_ref(),
            Some(&expected),
            "incremental differs extensionally from batch\n{}",
            case
        );
        for t in [2usize, 4, 8] {
            let cfg = EvalConfig::with_threads(t);
            // Batch: bit-for-bit (insertion order + stats) across threads.
            prop_assert_eq!(
                &batch_outcome(&case, &cfg),
                &reference,
                "batch at threads={} is not bit-for-bit identical\n{}",
                t,
                case
            );
            // Incremental: bit-for-bit across threads too.
            prop_assert_eq!(
                &incremental_outcome(&case, &cfg),
                &incremental_reference,
                "incremental at threads={} is not bit-for-bit identical\n{}",
                t,
                case
            );
        }
    }

    #[test]
    fn budget_errors_agree_between_batch_and_incremental(case in cases()) {
        let reference = batch_outcome(&case, &EvalConfig::default());
        let Outcome::Model { stats, .. } = &reference else {
            panic!("default budgets must fit generated cases:\n{case}");
        };
        // Tighten max_facts below the known fixpoint size: every route must
        // now exhaust the Facts budget, at every thread count. (Cases whose
        // fixpoint is tiny can't be made to fail this way; skip them.)
        if stats.facts >= 4 {
            let max_facts = stats.facts / 2;
            for t in THREADS {
                let cfg = EvalConfig {
                    threads: t,
                    max_facts,
                    ..EvalConfig::default()
                };
                prop_assert_eq!(
                    batch_outcome(&case, &cfg).failure(),
                    Some("budget:Facts"),
                    "batch at threads={} must exhaust the Facts budget\n{}",
                    t,
                    case
                );
                prop_assert_eq!(
                    incremental_outcome(&case, &cfg).failure(),
                    Some("budget:Facts"),
                    "incremental at threads={} must exhaust the Facts budget\n{}",
                    t,
                    case
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn retraction_equals_fresh_batch_of_survivors(case in interleaved_cases()) {
        let reference = surviving_batch_outcome(&case, &EvalConfig::with_threads(1));
        let expected = reference
            .extents_sorted_nonempty()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let session_reference = interleaved_outcome(&case, &EvalConfig::with_threads(1));
        prop_assert_eq!(
            session_reference.extents_sorted_nonempty().as_ref(),
            Some(&expected),
            "session after retractions differs from a fresh batch evaluation \
             of the surviving base facts\n{}",
            case
        );
        // The session route itself is bit-for-bit deterministic (extents in
        // insertion order AND stats) at every thread count.
        for t in [2usize, 4, 8] {
            prop_assert_eq!(
                &interleaved_outcome(&case, &EvalConfig::with_threads(t)),
                &session_reference,
                "interleaved session at threads={} is not bit-for-bit identical\n{}",
                t,
                case
            );
        }
    }

    #[test]
    fn retraction_shrinks_domains_correctly_on_gd_cases(case in interleaved_cases_with_gd()) {
        // Every case carries `gd(X, X) :- true.`: the ground
        // domain-sensitive shape whose extent IS the extended active
        // domain (squared onto the diagonal). Any effective retraction
        // must shrink it exactly to the survivors' domain.
        let expected = surviving_batch_outcome(&case, &EvalConfig::with_threads(1))
            .extents_sorted_nonempty()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let session = interleaved_outcome(&case, &EvalConfig::with_threads(1));
        prop_assert_eq!(
            session.extents_sorted_nonempty().as_ref(),
            Some(&expected),
            "domain-sensitive extents diverged after retraction\n{}",
            case
        );
    }

    #[test]
    fn retraction_under_tightened_budgets_stays_deterministic(case in interleaved_cases()) {
        let reference = surviving_batch_outcome(&case, &EvalConfig::default());
        let Outcome::Model { stats, .. } = &reference else {
            panic!("default budgets must fit generated cases:\n{case}");
        };
        // Tighten max_facts below the surviving fixpoint size (cases whose
        // fixpoint is tiny can't be tightened meaningfully; skip them).
        // The session route's *peak* state (before retractions) is at
        // least as large, so it may fail at an assert, a resume, or a
        // maintenance pass — whatever happens must be identical at every
        // thread count, and a success must still produce the oracle
        // extents.
        if stats.facts >= 4 {
            let tight = EvalConfig {
                max_facts: stats.facts / 2,
                ..EvalConfig::default()
            };
            let at1 = interleaved_outcome(&case, &EvalConfig { threads: 1, ..tight });
            for t in [2usize, 4, 8] {
                prop_assert_eq!(
                    &interleaved_outcome(&case, &EvalConfig { threads: t, ..tight }),
                    &at1,
                    "tight-budget interleaved route diverged at threads={}\n{}",
                    t,
                    case
                );
            }
            if let Some(extents) = at1.extents_sorted_nonempty() {
                prop_assert_eq!(
                    Some(&extents),
                    reference.extents_sorted_nonempty().as_ref(),
                    "a tight-budget success must still match the oracle\n{}",
                    case
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    #[test]
    fn naive_strategy_agrees_on_generated_cases(case in cases()) {
        let expected = batch_outcome(&case, &EvalConfig::default())
            .extents_sorted()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let naive_cfg = EvalConfig {
            strategy: EvalStrategy::Naive,
            ..EvalConfig::default()
        };
        prop_assert_eq!(
            batch_outcome(&case, &naive_cfg).extents_sorted().as_ref(),
            Some(&expected),
            "naive batch differs\n{}",
            case
        );
        prop_assert_eq!(
            incremental_outcome(&case, &naive_cfg).extents_sorted().as_ref(),
            Some(&expected),
            "naive incremental differs\n{}",
            case
        );
    }
}
