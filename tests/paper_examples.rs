//! End-to-end reproductions of every worked example in the paper.

use sequence_datalog::core::prelude::*;
use sequence_datalog::core::EvalError;
use sequence_datalog::transducer::library;

fn engine_with_db(facts: &[(&str, &[&str])]) -> (Engine, Database) {
    let mut e = Engine::new();
    let mut db = Database::new();
    for (pred, args) in facts {
        e.add_fact(&mut db, pred, args);
    }
    (e, db)
}

#[test]
fn example_1_1_suffixes() {
    let (mut e, db) = engine_with_db(&[("r", &["abcd"])]);
    let p = e.parse_program("suffix(X[N:end]) :- r(X).").unwrap();
    let m = e.evaluate(&p, &db).unwrap();
    let mut got = e.answers(&m, "suffix");
    got.sort_by_key(|s| (s.len(), s.clone()));
    assert_eq!(got, vec!["", "d", "cd", "bcd", "abcd"]);
}

#[test]
fn example_1_2_concatenations() {
    let (mut e, db) = engine_with_db(&[("r", &["ab"]), ("r", &["c"])]);
    let p = e.parse_program("answer(X ++ Y) :- r(X), r(Y).").unwrap();
    let m = e.evaluate(&p, &db).unwrap();
    let mut got = e.answers(&m, "answer");
    got.sort();
    assert_eq!(got, vec!["abab", "abc", "cab", "cc"]);
    // The new sequences (and their subsequences) joined the extended
    // active domain.
    let abab = e.seq("abab");
    assert!(m.domain.contains(abab));
    let ba = e.seq("ba");
    assert!(m.domain.contains(ba), "subsequence of a created sequence");
}

#[test]
fn example_1_3_anbncn() {
    let (mut e, db) = engine_with_db(&[
        ("r", &["abc"]),
        ("r", &["aaabbbccc"]),
        ("r", &["aabbbcc"]),
        ("r", &["abcabc"]),
        ("r", &[""]),
    ]);
    let p = e
        .parse_program(
            r#"
            answer(X) :- r(X), abcn(X[1:N1], X[N1+1:N2], X[N2+1:end]).
            abcn("", "", "") :- true.
            abcn(X, Y, Z) :- X[1] = "a", Y[1] = "b", Z[1] = "c",
                             abcn(X[2:end], Y[2:end], Z[2:end]).
            "#,
        )
        .unwrap();
    let report = e.analyze(&p);
    assert!(
        report.non_constructive,
        "pattern matching needs no construction"
    );
    let m = e.evaluate(&p, &db).unwrap();
    let mut got = e.answers(&m, "answer");
    got.sort_by_key(String::len);
    assert_eq!(got, vec!["", "abc", "aaabbbccc"]);
}

#[test]
fn example_1_4_reverse() {
    // The paper's reverse program, including its worked instance:
    // reverse of 110000 is 000011.
    let (mut e, db) = engine_with_db(&[("r", &["110000"]), ("r", &["10"])]);
    let p = e
        .parse_program(
            r#"
            answer(Y) :- r(X), rev(X, Y).
            rev("", "") :- true.
            rev(X[1:N+1], X[N+1] ++ Y) :- r(X), rev(X[1:N], Y).
            "#,
        )
        .unwrap();
    let m = e.evaluate(&p, &db).unwrap();
    let rev_tuples = e.rendered_tuples(&m, "rev");
    assert!(rev_tuples
        .iter()
        .any(|t| t[0] == "110000" && t[1] == "000011"));
    let got = e.answers(&m, "answer");
    assert!(got.contains(&"000011".to_string()));
    assert!(got.contains(&"01".to_string()));
}

#[test]
fn example_1_5_rep1_structural_is_finite() {
    let (mut e, db) = engine_with_db(&[("seq", &["abcdabcdabcd"])]);
    let p = e
        .parse_program(
            r#"
            rep1(X, X) :- true.
            rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).
            "#,
        )
        .unwrap();
    let m = e.evaluate(&p, &db).unwrap();
    // abcdabcdabcd = (abcd)^3: rep1 holds for the abcd period.
    let tuples = e.rendered_tuples(&m, "rep1");
    assert!(tuples
        .iter()
        .any(|t| t[0] == "abcdabcdabcd" && t[1] == "abcd"));
    // Structural recursion never leaves the extended active domain.
    assert_eq!(m.domain.max_len(), 12);
}

#[test]
fn example_1_5_rep2_constructive_diverges() {
    let (mut e, db) = engine_with_db(&[("seq", &["ab"])]);
    let p = e
        .parse_program(
            r#"
            rep2(X, X) :- seq(X).
            rep2(X ++ Y, Y) :- rep2(X, Y).
            "#,
        )
        .unwrap();
    assert!(!e.analyze(&p).strongly_safe);
    match e.evaluate_with(&p, &db, &EvalConfig::probe()) {
        Err(EvalError::Budget { .. }) => {}
        other => panic!("rep2 must exhaust a budget, got {other:?}"),
    }
}

#[test]
fn example_1_6_echo_program_diverges_but_query_is_finite() {
    let (mut e, db) = engine_with_db(&[("rel", &["ab"])]);
    let p = e
        .parse_program(
            r#"
            answer(X, Y) :- rel(X), echo(X, Y).
            echo("", "") :- true.
            echo(X, X[1] ++ X[1] ++ Z) :- echo(X[2:end], Z).
            "#,
        )
        .unwrap();
    // The least fixpoint is infinite…
    match e.evaluate_with(&p, &db, &EvalConfig::probe()) {
        Err(EvalError::Budget { .. }) => {}
        other => panic!("echo must exhaust a budget, got {other:?}"),
    }
    // …but the strongly safe transducer version computes the query.
    let mut e2 = Engine::new();
    let syms: Vec<_> = "ab".chars().map(|c| e2.alphabet.intern_char(c)).collect();
    let echo = library::echo(&mut e2.alphabet, &syms);
    e2.register_transducer("echo", echo);
    let p2 = e2
        .parse_program("answer(X, @echo(X, X)) :- rel(X).")
        .unwrap();
    assert!(e2.analyze(&p2).strongly_safe);
    let mut db2 = Database::new();
    e2.add_fact(&mut db2, "rel", &["ab"]);
    let m = e2.evaluate(&p2, &db2).unwrap();
    let rows = e2.rendered_tuples(&m, "answer");
    assert_eq!(rows, vec![vec!["ab".to_string(), "aabb".to_string()]]);
}

#[test]
fn example_5_1_stratified_construction() {
    let (mut e, db) = engine_with_db(&[("r", &["xy"])]);
    let p = e
        .parse_program(
            r#"
            double(X ++ X) :- r(X).
            quadruple(X ++ X) :- double(X).
            "#,
        )
        .unwrap();
    assert!(e.analyze(&p).strongly_safe);
    let m = e.evaluate(&p, &db).unwrap();
    assert_eq!(e.answers(&m, "double"), vec!["xyxy"]);
    assert_eq!(e.answers(&m, "quadruple"), vec!["xyxyxyxy"]);
}

#[test]
fn example_7_1_dna_rna_protein() {
    let mut e = Engine::new();
    let transcribe = library::transcribe(&mut e.alphabet);
    let translate = library::translate(&mut e.alphabet);
    e.register_transducer("transcribe", transcribe);
    e.register_transducer("translate", translate);
    let p = e
        .parse_program(
            r#"
            rnaseq(D, @transcribe(D)) :- dnaseq(D).
            proteinseq(D, @translate(R)) :- rnaseq(D, R).
            "#,
        )
        .unwrap();
    let mut db = Database::new();
    // The paper's transcription example: acgtacgt ↦ ugcaugca.
    e.add_fact(&mut db, "dnaseq", &["acgtacgt"]);
    let m = e.evaluate(&p, &db).unwrap();
    let rna = e.rendered_tuples(&m, "rnaseq");
    assert_eq!(
        rna,
        vec![vec!["acgtacgt".to_string(), "ugcaugca".to_string()]]
    );
    // ugcaugca = ugc(C) aug(M) + partial tail "ca".
    let protein = e.rendered_tuples(&m, "proteinseq");
    assert_eq!(
        protein,
        vec![vec!["acgtacgt".to_string(), "CM".to_string()]]
    );
}

#[test]
fn example_7_2_hand_written_transcription_in_sequence_datalog() {
    // The paper's Example 7.2: simulating T_transcribe with plain rules.
    let (mut e, db) = engine_with_db(&[("dnaseq", &["acgtacgt"]), ("dnaseq", &["ttaa"])]);
    let p = e
        .parse_program(
            r#"
            rnaseq(D, R) :- dnaseq(D), transcribe(D, R).
            transcribe("", "") :- true.
            transcribe(D[1:N+1], R ++ T) :- dnaseq(D), transcribe(D[1:N], R),
                                            trans(D[N+1], T).
            trans("a", "u").
            trans("t", "a").
            trans("c", "g").
            trans("g", "c").
            "#,
        )
        .unwrap();
    let m = e.evaluate(&p, &db).unwrap();
    let rows = e.rendered_tuples(&m, "rnaseq");
    assert!(rows
        .iter()
        .any(|t| t[0] == "acgtacgt" && t[1] == "ugcaugca"));
    assert!(rows.iter().any(|t| t[0] == "ttaa" && t[1] == "aauu"));
}

#[test]
fn example_8_1_and_fig_3_safety_verdicts() {
    let mut e = Engine::new();
    let p1 = e
        .parse_program(
            "p(X) :- r(X, Y), q(Y).\n\
             q(X) :- r(X, Y), p(Y).\n\
             r(@t1(X), @t2(Y)) :- a(X, Y).",
        )
        .unwrap();
    let p2 = e.parse_program("p(@t(X)) :- p(X).").unwrap();
    let p3 = e
        .parse_program(
            "q(X) :- r(X).\n\
             r(@t(X)) :- p(X).\n\
             p(X) :- q(X).",
        )
        .unwrap();
    assert!(e.analyze(&p1).strongly_safe);
    assert!(!e.analyze(&p2).strongly_safe);
    assert!(!e.analyze(&p3).strongly_safe);
}

#[test]
fn section_2_1_subsequence_count() {
    // "for each sequence of length k over Σ, there are at most
    // k(k+1)/2 + 1 different contiguous subsequences"
    let mut e = Engine::new();
    let mut db = Database::new();
    e.add_fact(&mut db, "r", &["abcdefg"]);
    let p = e.parse_program("member(X) :- r(X).").unwrap();
    let m = e.evaluate(&p, &db).unwrap();
    assert_eq!(m.domain.len(), 7 * 8 / 2 + 1);
}

// ---------------------------------------------------------------------------
// Incremental coverage: every paper program above is also run through the
// session path — facts asserted one batch at a time, with a resume after
// each — and the final extents must equal the one-shot model's. This closes
// the gap where paper fidelity was only checked in batch mode.
// ---------------------------------------------------------------------------

type Setup = fn(&mut Engine);

fn no_setup(_: &mut Engine) {}

fn genome_setup(e: &mut Engine) {
    let transcribe = library::transcribe(&mut e.alphabet);
    let translate = library::translate(&mut e.alphabet);
    e.register_transducer("transcribe", transcribe);
    e.register_transducer("translate", translate);
}

fn echo_setup(e: &mut Engine) {
    let syms: Vec<_> = "ab".chars().map(|c| e.alphabet.intern_char(c)).collect();
    let echo = library::echo(&mut e.alphabet, &syms);
    e.register_transducer("echo", echo);
}

/// Evaluate `src` once over all `facts`, then again through a session
/// asserting one fact per batch; the extents of every program predicate
/// must agree (as sets — insertion order legitimately differs because
/// facts settle in arrival order).
fn assert_incremental_matches_batch(src: &str, facts: &[(&str, &[&str])], setup: Setup) {
    let mut e1 = Engine::new();
    setup(&mut e1);
    let p1 = e1.parse_program(src).unwrap();
    let mut db = Database::new();
    for (pred, args) in facts {
        e1.add_fact(&mut db, pred, args);
    }
    let batch = e1.evaluate(&p1, &db).unwrap();

    let mut e2 = Engine::new();
    setup(&mut e2);
    let p2 = e2.parse_program(src).unwrap();
    // One Database per batch (here: per fact), interned against the store
    // the session is about to take over — the assert_db arrival path.
    let batch_dbs: Vec<Database> = facts
        .iter()
        .map(|(pred, args)| {
            let mut db = Database::new();
            e2.add_fact(&mut db, pred, args);
            db
        })
        .collect();
    let mut session = e2.into_session(&p2, EvalConfig::default()).unwrap();
    // Settle the ground program clauses before any base fact arrives.
    session.run().unwrap();
    for db in &batch_dbs {
        session.assert_db(db).unwrap();
        session.run().unwrap();
    }

    for pred in p1.predicates() {
        let mut a = e1.rendered_tuples(&batch, &pred);
        let mut b = session.query(&pred);
        a.sort();
        b.sort();
        assert_eq!(
            a, b,
            "extent of {pred} differs between batch and incremental for:\n{src}"
        );
    }
}

/// One incremental-coverage case: program source, facts, engine setup.
type PaperCase = (
    &'static str,
    &'static [(&'static str, &'static [&'static str])],
    Setup,
);

#[test]
fn paper_programs_incremental_equals_batch() {
    let abc_facts: &[(&str, &[&str])] = &[
        ("r", &["abc"]),
        ("r", &["aaabbbccc"]),
        ("r", &["aabbcc"]),
        ("r", &["abcabc"]),
        ("r", &[""]),
    ];
    let cases: &[PaperCase] = &[
        // Example 1.1 — suffixes.
        (
            "suffix(X[N:end]) :- r(X).",
            &[("r", &["abcd"]), ("r", &["xy"])],
            no_setup,
        ),
        // Example 1.2 — concatenations.
        (
            "answer(X ++ Y) :- r(X), r(Y).",
            &[("r", &["ab"]), ("r", &["c"])],
            no_setup,
        ),
        // Example 1.3 — a^n b^n c^n pattern matching.
        (
            r#"
            answer(X) :- r(X), abcn(X[1:N1], X[N1+1:N2], X[N2+1:end]).
            abcn("", "", "") :- true.
            abcn(X, Y, Z) :- X[1] = "a", Y[1] = "b", Z[1] = "c",
                             abcn(X[2:end], Y[2:end], Z[2:end]).
            "#,
            abc_facts,
            no_setup,
        ),
        // Example 1.4 — reverse.
        (
            r#"
            answer(Y) :- r(X), rev(X, Y).
            rev("", "") :- true.
            rev(X[1:N+1], X[N+1] ++ Y) :- r(X), rev(X[1:N], Y).
            "#,
            &[("r", &["110000"]), ("r", &["10"])],
            no_setup,
        ),
        // Example 1.5 — rep1 (structural, finite).
        (
            r#"
            rep1(X, X) :- true.
            rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).
            "#,
            &[("seq", &["abcdabcdabcd"])],
            no_setup,
        ),
        // Example 5.1 — stratified construction.
        (
            "double(X ++ X) :- r(X).\nquadruple(X ++ X) :- double(X).",
            &[("r", &["xy"]), ("r", &["z"])],
            no_setup,
        ),
        // Example 1.6 (safe half) — transducer echo.
        (
            "answer(X, @echo(X, X)) :- rel(X).",
            &[("rel", &["ab"]), ("rel", &["ba"])],
            echo_setup,
        ),
        // Example 7.1 — DNA → RNA → protein via transducers.
        (
            "rnaseq(D, @transcribe(D)) :- dnaseq(D).\n\
             proteinseq(D, @translate(R)) :- rnaseq(D, R).",
            &[("dnaseq", &["acgtacgt"]), ("dnaseq", &["ttaa"])],
            genome_setup,
        ),
        // Example 7.2 — hand-written transcription in Sequence Datalog.
        (
            r#"
            rnaseq(D, R) :- dnaseq(D), transcribe(D, R).
            transcribe("", "") :- true.
            transcribe(D[1:N+1], R ++ T) :- dnaseq(D), transcribe(D[1:N], R),
                                            trans(D[N+1], T).
            trans("a", "u").
            trans("t", "a").
            trans("c", "g").
            trans("g", "c").
            "#,
            &[("dnaseq", &["acgtacgt"]), ("dnaseq", &["ttaa"])],
            no_setup,
        ),
        // Section 2.1 — subsequence count.
        ("member(X) :- r(X).", &[("r", &["abcdefg"])], no_setup),
        // Definition 5 — the complement function convention.
        (
            r#"
            output(Y) :- comp(X, Y), input(X).
            comp("", "") :- true.
            comp(X[1:N+1], Y ++ B) :- input(X), comp(X[1:N], Y), flip(X[N+1], B).
            flip("0", "1").
            flip("1", "0").
            "#,
            &[("input", &["1100"])],
            no_setup,
        ),
    ];
    for (src, facts, setup) in cases {
        assert_incremental_matches_batch(src, facts, *setup);
    }
}

#[test]
fn diverging_paper_programs_also_exhaust_budgets_incrementally() {
    // Example 1.5 rep2 and Example 1.6 echo have infinite least fixpoints:
    // the session route must fail with a budget error just like batch
    // evaluation, and the failure must poison the session.
    let cases: &[(&str, (&str, &[&str]))] = &[
        (
            "rep2(X, X) :- seq(X).\nrep2(X ++ Y, Y) :- rep2(X, Y).",
            ("seq", &["ab"]),
        ),
        (
            r#"
            answer(X, Y) :- rel(X), echo(X, Y).
            echo("", "") :- true.
            echo(X, X[1] ++ X[1] ++ Z) :- echo(X[2:end], Z).
            "#,
            ("rel", &["ab"]),
        ),
    ];
    for (src, (pred, args)) in cases {
        let mut e = Engine::new();
        let p = e.parse_program(src).unwrap();
        let mut session = e.into_session(&p, EvalConfig::probe()).unwrap();
        session.run().unwrap();
        session.assert_fact(pred, args).unwrap();
        match session.run() {
            Err(EvalError::Budget { .. }) => {}
            other => panic!("incremental evaluation must exhaust a budget, got {other:?}"),
        }
        assert!(session.is_poisoned());
        assert!(matches!(
            session.assert_fact(pred, &["x"]),
            Err(EvalError::Poisoned { .. })
        ));
    }
}

#[test]
fn definition_5_sequence_function_convention() {
    // A program expresses a function via db = {input(x)} and the output
    // predicate (Definition 5): here f = complement.
    let (mut e, db) = engine_with_db(&[("input", &["1100"])]);
    let p = e
        .parse_program(
            r#"
            output(Y) :- comp(X, Y), input(X).
            comp("", "") :- true.
            comp(X[1:N+1], Y ++ B) :- input(X), comp(X[1:N], Y), flip(X[N+1], B).
            flip("0", "1").
            flip("1", "0").
            "#,
        )
        .unwrap();
    let m = e.evaluate(&p, &db).unwrap();
    assert_eq!(e.answers(&m, "output"), vec!["0011"]);
}
