//! Differential fuzzing of compile-time transducer fusion: **fusion on ≡
//! fusion off**, bit-for-bit, at every thread count.
//!
//! The fusion pass (`seqlog_core::analysis::fuse`) collapses chains of
//! 1-input transducer calls in clause heads into one composed, trimmed,
//! determinized, minimized machine. It is a *pure rewrite*: the fused
//! machine computes exactly the composed sequence function, so the
//! evaluation extent — per-relation tuples in insertion order, not just
//! as sets — must be identical with the pass enabled (the default) and
//! disabled (`EvalConfig::danger_disable_fusion`, the mutation hook this
//! suite drives).
//!
//! Two case sources:
//!
//! * every generated `seqlog_testkit` shape, extended with 2- and
//!   3-machine chain clauses over the base predicates
//!   ([`seqlog_testkit::with_chain_clauses`]);
//! * the paper-example programs that call transducers (Examples 1.6 and
//!   7.1), plus a nested-chain variant of the DNA → RNA → protein
//!   pipeline.
//!
//! Each case runs at threads 1/2/4/8: within one fusion mode the full
//! `Outcome` (extents + stats) must be bit-for-bit identical across
//! thread counts, and across modes the extents must be bit-for-bit
//! identical at every thread count. `EvalStats::transducer_calls/steps`
//! legitimately differ across modes (one fused run replaces a chain of
//! stage runs), which is why the cross-mode comparison is extent-level.

use proptest::prelude::*;
use seqlog_testkit::{cases, chained_batch_outcome, with_chain_clauses, Extents, Outcome};
use sequence_datalog::core::{Database, Engine, EvalConfig};
use sequence_datalog::transducer::library;
use std::collections::BTreeMap;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn config(threads: usize, disable_fusion: bool) -> EvalConfig {
    EvalConfig {
        threads,
        danger_disable_fusion: disable_fusion,
        ..EvalConfig::default()
    }
}

/// Insertion-order extents of a settled outcome (panics on failure — every
/// case in this suite fits the default budgets).
fn extents(out: &Outcome) -> Extents {
    match out {
        Outcome::Model { extents, .. } => extents.clone(),
        Outcome::Failed(f) => panic!("route failed unexpectedly: {f}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn fusion_on_equals_fusion_off_for_generated_chains(case in cases()) {
        let case = with_chain_clauses(case);
        let on_ref = chained_batch_outcome(&case, &config(1, false));
        let off_ref = chained_batch_outcome(&case, &config(1, true));
        prop_assert_eq!(
            extents(&on_ref),
            extents(&off_ref),
            "fusion on/off extents differ at threads=1\n{}",
            case
        );
        for t in [2usize, 4, 8] {
            let on = chained_batch_outcome(&case, &config(t, false));
            let off = chained_batch_outcome(&case, &config(t, true));
            // Within a mode: bit-for-bit across thread counts, stats included.
            prop_assert_eq!(&on, &on_ref, "fused route diverges at threads={}\n{}", t, case);
            prop_assert_eq!(&off, &off_ref, "chained route diverges at threads={}\n{}", t, case);
        }
    }
}

// ── paper-example programs with transducer calls ─────────────────────────

type Setup = fn(&mut Engine);
type Facts = &'static [(&'static str, &'static [&'static str])];

fn genome_setup(e: &mut Engine) {
    let transcribe = library::transcribe(&mut e.alphabet);
    let translate = library::translate(&mut e.alphabet);
    e.register_transducer("transcribe", transcribe);
    e.register_transducer("translate", translate);
}

fn echo_setup(e: &mut Engine) {
    let syms: Vec<_> = "ab".chars().map(|c| e.alphabet.intern_char(c)).collect();
    let echo = library::echo(&mut e.alphabet, &syms);
    e.register_transducer("echo", echo);
}

/// Evaluate `src` over `facts` and render every program predicate's extent
/// in insertion order.
fn run(
    src: &str,
    facts: &[(&str, &[&str])],
    setup: Setup,
    cfg: &EvalConfig,
) -> BTreeMap<String, Vec<Vec<String>>> {
    let mut e = Engine::new();
    setup(&mut e);
    let program = e.parse_program(src).unwrap();
    let mut db = Database::new();
    for (pred, args) in facts {
        e.add_fact(&mut db, pred, args);
    }
    let model = e.evaluate_with(&program, &db, cfg).unwrap();
    program
        .predicates()
        .into_iter()
        .map(|pred| {
            let rows = e.rendered_tuples(&model, &pred);
            (pred, rows)
        })
        .collect()
}

#[test]
fn paper_transducer_programs_agree_with_fusion_on_and_off() {
    let dna_facts: Facts = &[("dnaseq", &["acgtacgt"]), ("dnaseq", &["ttaa"])];
    let cases: &[(&str, Facts, Setup)] = &[
        // Example 1.6 (safe half) — a 2-input transducer call (no chain;
        // fusion must leave it alone).
        (
            "answer(X, @echo(X, X)) :- rel(X).",
            &[("rel", &["ab"]), ("rel", &["ba"])],
            echo_setup,
        ),
        // Example 7.1 — DNA → RNA → protein, staged through a predicate.
        (
            "rnaseq(D, @transcribe(D)) :- dnaseq(D).\n\
             proteinseq(D, @translate(R)) :- rnaseq(D, R).",
            dna_facts,
            genome_setup,
        ),
        // Example 7.1, nested: the chain shape the fusion pass rewrites.
        (
            "protein(@translate(@transcribe(D))) :- dnaseq(D).",
            dna_facts,
            genome_setup,
        ),
    ];
    for (src, facts, setup) in cases {
        let on_ref = run(src, facts, *setup, &config(1, false));
        for t in THREADS {
            let on = run(src, facts, *setup, &config(t, false));
            let off = run(src, facts, *setup, &config(t, true));
            assert_eq!(
                on, off,
                "fusion on/off extents differ at threads={t} for:\n{src}"
            );
            assert_eq!(
                on, on_ref,
                "fused route diverges across thread counts at threads={t} for:\n{src}"
            );
        }
    }
}

/// The chain clauses must actually exercise the fused path: with fusion on
/// the chained case performs fewer transducer calls than with fusion off
/// (one fused run per derived tuple instead of one per stage). This pins
/// the differential against a vacuous pass that never fuses anything.
#[test]
fn fusion_actually_reduces_transducer_calls() {
    let case = with_chain_clauses(seqlog_testkit::FuzzCase {
        program: String::new(),
        batches: vec![vec![
            ("r0".to_string(), "abc".to_string()),
            ("r1".to_string(), "cab".to_string()),
        ]],
    });
    let stats = |out: &Outcome| match out {
        Outcome::Model { stats, .. } => *stats,
        Outcome::Failed(f) => panic!("route failed: {f}"),
    };
    let on = stats(&chained_batch_outcome(&case, &config(1, false)));
    let off = stats(&chained_batch_outcome(&case, &config(1, true)));
    assert!(
        on.transducer_calls < off.transducer_calls,
        "fusion did not reduce transducer calls: {} (on) vs {} (off)",
        on.transducer_calls,
        off.transducer_calls
    );
}
