//! Property-based soundness checks for the compile-time analysis
//! subsystem (`seqlog_core::analysis`) against live evaluation, over the
//! same generated case family as `fuzz_differential.rs`:
//!
//! * **Scheduling equivalence** — the SCC-stratified scheduler (the
//!   default) and the global semi-naive loop compute the same model as a
//!   set of relations, for every generated case.
//! * **Dead-clause soundness** — a clause the closed-world report flags
//!   `SL003 dead-clause` never contributes a tuple: deleting every flagged
//!   clause leaves the model unchanged.
//! * **Undefined-body soundness** — a body atom over a predicate flagged
//!   `SL004 undefined-body-predicate` (never a head, never asserted) can
//!   never match, so a clause carrying one derives nothing and the rest of
//!   the model is unaffected.
//!
//! Seeds are pinned by the proptest shim (deterministic per test name);
//! each property runs 200 cases.

use proptest::prelude::*;
use seqlog_testkit::{batch_outcome, cases, FuzzCase};
use sequence_datalog::core::analysis::{LintCode, ProgramReport};
use sequence_datalog::core::ast::Program;
use sequence_datalog::core::compile::{compile, PredId};
use sequence_datalog::core::{Database, Engine, EvalConfig, Scheduling};
use std::collections::BTreeMap;

type Extents = BTreeMap<String, Vec<Vec<String>>>;

/// Evaluate an already-parsed program over the case's union facts with
/// the engine that interned its constants; extents as sets with empty
/// relations dropped (clause deletion may remove a predicate entirely —
/// absent vs present-but-empty is unobservable).
fn eval_ast(e: &mut Engine, program: &Program, case: &FuzzCase) -> Extents {
    let mut db = Database::new();
    for (pred, word) in case.union_facts() {
        e.add_fact(&mut db, pred, &[word]);
    }
    let m = e
        .evaluate_with(program, &db, &EvalConfig::default())
        .expect("default budgets fit generated cases");
    let mut out = Extents::new();
    for pred in m.facts.predicates() {
        let mut rows = e.rendered_tuples(&m, pred);
        rows.sort();
        if !rows.is_empty() {
            out.insert(pred.to_string(), rows);
        }
    }
    out
}

/// Parse-and-evaluate convenience for source-level variants.
fn eval_extents(src: &str, case: &FuzzCase) -> Extents {
    let mut e = Engine::new();
    let program = e.parse_program(src).expect("generated programs parse");
    eval_ast(&mut e, &program, case)
}

/// The closed-world report for a case: the database predicates are
/// exactly the predicates the case asserts facts for.
fn closed_world_report(src: &str, case: &FuzzCase) -> ProgramReport {
    let mut e = Engine::new();
    let program = e.parse_program(src).expect("generated programs parse");
    let compiled = compile(&program).expect("generated programs compile");
    let edb: Vec<PredId> = case
        .union_facts()
        .filter_map(|(pred, _)| compiled.preds.lookup(pred))
        .collect();
    ProgramReport::analyze_with_edb(&compiled, &edb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn stratified_and_global_scheduling_agree_on_extents(case in cases()) {
        let stratified = batch_outcome(&case, &EvalConfig::default())
            .extents_sorted()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let global_cfg = EvalConfig {
            scheduling: Scheduling::Global,
            ..EvalConfig::default()
        };
        let global = batch_outcome(&case, &global_cfg)
            .extents_sorted()
            .unwrap_or_else(|| panic!("global scheduling must also settle:\n{case}"));
        prop_assert_eq!(
            stratified,
            global,
            "stratified and global scheduling disagree extensionally\n{}",
            case
        );
    }

    #[test]
    fn dead_flagged_clauses_never_contribute_a_tuple(case in cases()) {
        let report = closed_world_report(&case.program, &case);
        let dead: Vec<usize> = report
            .with_code(LintCode::DeadClause)
            .filter_map(|d| d.clause)
            .collect();
        // Deleting every SL003-flagged clause must leave the model intact.
        let mut e = Engine::new();
        let full = e.parse_program(&case.program).expect("generated programs parse");
        let mut reduced = full.clone();
        let mut idx = 0usize;
        reduced.clauses.retain(|_| {
            let keep = !dead.contains(&idx);
            idx += 1;
            keep
        });
        let full_extents = eval_ast(&mut e, &full, &case);
        let reduced_extents = eval_ast(&mut e, &reduced, &case);
        prop_assert_eq!(
            full_extents,
            reduced_extents,
            "an SL003-flagged clause contributed tuples (flagged: {:?})\n{}",
            &dead,
            case
        );
    }

    #[test]
    fn undefined_body_predicates_never_match(case in cases()) {
        // Splice in a clause whose body reads a predicate that heads no
        // clause and is never asserted: SL004 must flag it, and the clause
        // must derive nothing while leaving the rest of the model alone.
        let augmented = format!("{}\n__sl4(X) :- r0(X), __undef(X).", case.program.trim_end());
        let report = closed_world_report(&augmented, &case);
        prop_assert!(
            report
                .with_code(LintCode::UndefinedBodyPredicate)
                .any(|d| d.pred.as_deref() == Some("__undef")),
            "closed-world report must flag `__undef` as SL004\n{}",
            case
        );
        let base = eval_extents(&case.program, &case);
        let with_undef = eval_extents(&augmented, &case);
        prop_assert!(
            !with_undef.contains_key("__sl4"),
            "a clause reading an undefined predicate derived tuples\n{}",
            case
        );
        prop_assert_eq!(
            base,
            with_undef,
            "the SL004 clause perturbed the rest of the model\n{}",
            case
        );
    }
}
