//! Differential tests: independent execution routes must agree.
//!
//! * naive T-operator iteration ≡ semi-naive evaluation (same least
//!   fixpoint, Section 3.3);
//! * Transducer Datalog ≡ its Theorem 7 translation to Sequence Datalog;
//! * direct Turing-machine runs ≡ Theorem 1 Datalog simulation ≡ Theorem 5
//!   order-2 network simulation;
//! * unguarded programs ≡ their Theorem 10 guarding.

use sequence_datalog::core::prelude::*;
use sequence_datalog::core::EvalError;
use sequence_datalog::transducer::library;
use sequence_datalog::turing::{
    samples, strip_trailing_blanks, tm_to_network, tm_to_seqlog, NetworkOptions,
};

/// Evaluate under both strategies and compare every predicate's extent.
fn assert_strategies_agree(e: &mut Engine, program: &Program, db: &Database) {
    let naive = e
        .evaluate_with(
            program,
            db,
            &EvalConfig {
                strategy: Strategy::Naive,
                ..Default::default()
            },
        )
        .expect("naive evaluation terminates");
    let semi = e
        .evaluate_with(
            program,
            db,
            &EvalConfig {
                strategy: Strategy::SemiNaive,
                ..Default::default()
            },
        )
        .expect("semi-naive evaluation terminates");
    assert_eq!(
        naive.facts.total_facts(),
        semi.facts.total_facts(),
        "fact counts differ"
    );
    for pred in program.predicates() {
        let mut a = e.rendered_tuples(&naive, &pred);
        let mut b = e.rendered_tuples(&semi, &pred);
        a.sort();
        b.sort();
        assert_eq!(a, b, "extent of {pred} differs between strategies");
    }
}

#[test]
fn strategies_agree_on_paper_programs() {
    let programs: &[&str] = &[
        "suffix(X[N:end]) :- r(X).",
        "answer(X ++ Y) :- r(X), r(Y).",
        r#"
        answer(X) :- r(X), abcn(X[1:N1], X[N1+1:N2], X[N2+1:end]).
        abcn("", "", "") :- true.
        abcn(X, Y, Z) :- X[1] = "a", Y[1] = "b", Z[1] = "c",
                         abcn(X[2:end], Y[2:end], Z[2:end]).
        "#,
        r#"
        answer(Y) :- r(X), rev(X, Y).
        rev("", "") :- true.
        rev(X[1:N+1], X[N+1] ++ Y) :- r(X), rev(X[1:N], Y).
        "#,
        r#"
        rep1(X, X) :- true.
        rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).
        "#,
        "double(X ++ X) :- r(X).\nquadruple(X ++ X) :- double(X).",
        // Mutual recursion with inequality.
        "p(X) :- r(X).\np(X[2:end]) :- q(X), X != \"\".\nq(X) :- p(X).",
    ];
    for src in programs {
        let mut e = Engine::new();
        let mut db = Database::new();
        for s in ["abc", "aabbcc", "abab", "110", ""] {
            e.add_fact(&mut db, "r", &[s]);
        }
        let p = e.parse_program(src).unwrap();
        assert_strategies_agree(&mut e, &p, &db);
    }
}

#[test]
fn strategies_agree_on_large_mutual_recursion() {
    // A three-clause mutually recursive chain (chain0 → chain1 → chain2 →
    // chain0, each step trimming one symbol) plus a product predicate, over
    // enough seed words that the least fixpoint holds well over 5k facts.
    // This drives the semi-naive delta ranges across *multiple predicates
    // simultaneously* and across many round boundaries (one chain hop per
    // round), which is exactly the bookkeeping the PredId-indexed size
    // snapshots have to get right.
    let mut e = Engine::new();
    let (p, db) = chain_workload(&mut e);
    let semi = e
        .evaluate_with(
            &p,
            &db,
            &EvalConfig {
                strategy: Strategy::SemiNaive,
                ..Default::default()
            },
        )
        .expect("semi-naive evaluation terminates");
    assert!(
        semi.stats.facts >= 5_000,
        "workload too small to exercise delta ranges: {} facts",
        semi.stats.facts
    );
    // Rounds must actually progress through the chain (≥ one hop per
    // trimmed symbol), so deltas cross many round boundaries.
    assert!(
        semi.stats.rounds >= 33,
        "expected ≥33 rounds, got {}",
        semi.stats.rounds
    );
    assert_strategies_agree(&mut e, &p, &db);
}

/// Evaluate the same program at `threads ∈ {1, 2, 4, 8}` and demand
/// bit-for-bit agreement: identical per-relation tuple *insertion order*
/// (not just set equality), identical [`EvalStats`], and — via the caller —
/// identical error variants on failing programs.
fn assert_thread_counts_agree(
    e: &mut Engine,
    program: &Program,
    db: &Database,
    base: &EvalConfig,
) -> Result<sequence_datalog::core::Model, EvalError> {
    let mut reference: Option<(usize, sequence_datalog::core::Model)> = None;
    let mut reference_err: Option<(usize, EvalError)> = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = EvalConfig { threads, ..*base };
        match e.evaluate_with(program, db, &cfg) {
            Ok(model) => match &reference {
                None => {
                    assert!(
                        reference_err.is_none(),
                        "threads={threads} succeeded, earlier failed"
                    );
                    reference = Some((threads, model));
                }
                Some((t0, m0)) => {
                    assert_eq!(
                        m0.stats, model.stats,
                        "stats differ between threads={t0} and threads={threads}"
                    );
                    for pred in program.predicates() {
                        // Unsorted: insertion order itself must agree.
                        assert_eq!(
                            e.rendered_tuples(m0, &pred),
                            e.rendered_tuples(&model, &pred),
                            "insertion order of {pred} differs between threads={t0} and threads={threads}"
                        );
                    }
                }
            },
            Err(err) => match &reference_err {
                None => {
                    assert!(
                        reference.is_none(),
                        "threads={threads} failed, earlier succeeded"
                    );
                    reference_err = Some((threads, err));
                }
                Some((t0, e0)) => {
                    assert_eq!(
                        std::mem::discriminant(e0),
                        std::mem::discriminant(&err),
                        "error variant differs between threads={t0} and threads={threads}"
                    );
                    if let (
                        EvalError::Budget {
                            kind: k0,
                            stats: s0,
                        },
                        EvalError::Budget {
                            kind: k1,
                            stats: s1,
                        },
                    ) = (e0, &err)
                    {
                        assert_eq!(k0, k1, "budget kind differs at threads={threads}");
                        assert_eq!(
                            s0.facts, s1.facts,
                            "stats.facts at error differ at threads={threads}"
                        );
                    }
                }
            },
        }
    }
    match (reference, reference_err) {
        (Some((_, m)), None) => Ok(m),
        (None, Some((_, e))) => Err(e),
        _ => unreachable!("each run either succeeds or fails"),
    }
}

/// The shared ≥5k-fact mutual-recursion workload. Deterministic seed
/// words, each ending in a letter unique to it, so no two words share any
/// non-empty suffix — the chain relations grow to their full,
/// collision-free size.
fn chain_workload(e: &mut Engine) -> (Program, Database) {
    let src = r#"
        chain1(X[2:end]) :- chain0(X), X != "".
        chain2(X[2:end]) :- chain1(X), X != "".
        chain0(X[2:end]) :- chain2(X), X != "".
        pairs(X, Y) :- chain0(X), chain2(Y).
    "#;
    let mut db = Database::new();
    for i in 0..8usize {
        let mut word: String = (0..32)
            .map(|j| char::from(b'a' + ((i * 7 + j * 5 + i * j) % 3) as u8))
            .collect();
        word.push(char::from(b's' + i as u8));
        e.add_fact(&mut db, "chain0", &[&word]);
    }
    let p = e.parse_program(src).unwrap();
    (p, db)
}

#[test]
fn thread_counts_agree_on_large_mutual_recursion() {
    // Naive ≡ semi-naive ≡ parallel semi-naive at 1/2/4/8 threads on the
    // 5k-fact chain workload: identical models, identical insertion order
    // and stats across thread counts.
    let mut e = Engine::new();
    let (p, db) = chain_workload(&mut e);
    let parallel = assert_thread_counts_agree(&mut e, &p, &db, &EvalConfig::default())
        .expect("chain workload terminates");
    assert!(parallel.stats.facts >= 5_000, "workload too small");
    let naive = e
        .evaluate_with(
            &p,
            &db,
            &EvalConfig {
                strategy: Strategy::Naive,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(naive.facts.total_facts(), parallel.facts.total_facts());
    for pred in p.predicates() {
        let mut a = e.rendered_tuples(&naive, &pred);
        let mut b = e.rendered_tuples(&parallel, &pred);
        a.sort();
        b.sort();
        assert_eq!(a, b, "extent of {pred} differs from naive");
    }
}

#[test]
fn thread_counts_agree_on_transducer_heads() {
    // Transducer calls run in the sequential commit phase; sharding the
    // match phase must not reorder or duplicate them.
    let mut e = Engine::new();
    let t1 = library::transcribe(&mut e.alphabet);
    let t2 = library::translate(&mut e.alphabet);
    e.register_transducer("transcribe", t1);
    e.register_transducer("translate", t2);
    let p = e
        .parse_program(
            "rnaseq(D, @transcribe(D)) :- dnaseq(D).\n\
             proteinseq(D, @translate(R)) :- rnaseq(D, R).\n\
             tagged(D ++ P) :- proteinseq(D, P).",
        )
        .unwrap();
    let mut db = Database::new();
    for w in ["ctactg", "acg", "ctactgaaggtg", "tgcatgca"] {
        e.add_fact(&mut db, "dnaseq", &[w]);
    }
    let m = assert_thread_counts_agree(&mut e, &p, &db, &EvalConfig::default())
        .expect("genome program terminates");
    assert!(m.stats.transducer_calls > 0);
}

#[test]
fn thread_counts_agree_on_budget_errors() {
    // A fact-budget blowup must fail with the same EvalError variant, the
    // same BudgetKind, and the same stats.facts at every thread count (and
    // under both strategies): incremental enforcement stops all of them at
    // max_facts + 1.
    let mut e = Engine::new();
    let p = e.parse_program("pair(X, Y) :- s(X), s(Y).").unwrap();
    let mut db = Database::new();
    for i in 0..80 {
        e.add_fact(&mut db, "s", &[&format!("w{i}")]);
    }
    for strategy in [Strategy::SemiNaive, Strategy::Naive] {
        let base = EvalConfig {
            strategy,
            max_facts: 200,
            ..EvalConfig::default()
        };
        match assert_thread_counts_agree(&mut e, &p, &db, &base) {
            Err(EvalError::Budget { kind, stats }) => {
                assert_eq!(kind, sequence_datalog::core::BudgetKind::Facts);
                assert_eq!(stats.facts, 201, "{strategy:?}");
            }
            other => panic!("expected Facts budget error, got {other:?}"),
        }
    }
}

#[test]
fn theorem_7_roundtrip_on_the_genome_program() {
    let mut e = Engine::new();
    let t1 = library::transcribe(&mut e.alphabet);
    let t2 = library::translate(&mut e.alphabet);
    e.register_transducer("transcribe", t1);
    e.register_transducer("translate", t2);
    let td = e
        .parse_program(
            "rnaseq(D, @transcribe(D)) :- dnaseq(D).\n\
             proteinseq(D, @translate(R)) :- rnaseq(D, R).",
        )
        .unwrap();
    let sd = translate_program(&td, &e.registry, &mut e.alphabet, &mut e.store).unwrap();
    // The translation is pure Sequence Datalog.
    assert!(sd.transducer_names().is_empty());
    // And it preserves the original predicates' extents.
    let mut db = Database::new();
    e.add_fact(&mut db, "dnaseq", &["ctactg"]);
    e.add_fact(&mut db, "dnaseq", &["acg"]);
    let m_td = e.evaluate(&td, &db).unwrap();
    let m_sd = e.evaluate(&sd, &db).unwrap();
    for pred in ["rnaseq", "proteinseq"] {
        let mut a = e.rendered_tuples(&m_td, pred);
        let mut b = e.rendered_tuples(&m_sd, pred);
        a.sort();
        b.sort();
        assert_eq!(a, b, "{pred}");
    }
}

#[test]
fn theorem_7_preserves_finiteness_failures() {
    // A TD program with a constructive cycle diverges; so must its
    // translation (Theorem 7 preserves finiteness in both directions).
    let mut e = Engine::new();
    let syms: Vec<_> = "ab".chars().map(|c| e.alphabet.intern_char(c)).collect();
    let app = library::append(&mut e.alphabet, &syms);
    e.register_transducer("append", app);
    let td = e
        .parse_program("p(X) :- r(X).\np(@append(X, X)) :- p(X).")
        .unwrap();
    let sd = translate_program(&td, &e.registry, &mut e.alphabet, &mut e.store).unwrap();
    let mut db = Database::new();
    e.add_fact(&mut db, "r", &["ab"]);
    let cfg = EvalConfig::probe();
    assert!(matches!(
        e.evaluate_with(&td, &db, &cfg),
        Err(EvalError::Budget { .. })
    ));
    assert!(matches!(
        e.evaluate_with(&sd, &db, &cfg),
        Err(EvalError::Budget { .. })
    ));
}

#[test]
fn turing_three_routes_agree() {
    // Direct ≡ Theorem 1 Datalog ≡ Theorem 5 network, for every sample
    // machine on several inputs.
    type Case = (
        fn(&mut Alphabet) -> sequence_datalog::turing::TuringMachine,
        &'static [&'static str],
        usize,
    );
    let cases: &[Case] = &[
        (samples::complement_tm, &["0", "10", "1100"], 1),
        (samples::increment_tm, &["1", "011", "111"], 1),
        (samples::parity_tm, &["1", "110", "1011"], 1),
        (samples::sort_bits_tm, &["10", "101"], 2),
    ];
    for &(build, inputs, squarings) in cases {
        let mut e = Engine::new();
        let tm = build(&mut e.alphabet);
        let program = tm_to_seqlog(&tm, &mut e.alphabet, &mut e.store);
        let net = tm_to_network(
            &tm,
            &mut e.alphabet,
            NetworkOptions {
                counter_squarings: squarings,
            },
        );
        for input in inputs {
            let direct = {
                let syms = e.alphabet.seq_of_str(input);
                let run = tm.run(&syms, 1_000_000).unwrap();
                e.alphabet
                    .render(&strip_trailing_blanks(run.output, tm.blank))
            };
            // Theorem 1 route.
            let mut db = Database::new();
            e.add_fact(&mut db, "input", &[input]);
            let m = e.evaluate(&program, &db).unwrap();
            let sd_out = {
                let rows = e.rendered_tuples(&m, "output");
                let mut s = rows[0][0].clone();
                while s.ends_with('␣') {
                    s.pop();
                }
                s
            };
            assert_eq!(sd_out, direct, "{}: Theorem 1 route on {input}", tm.name);
            // Theorem 5 route.
            let syms = e.alphabet.seq_of_str(input);
            let net_out = e.alphabet.render(&net.run_simple(&[&syms]).unwrap());
            assert_eq!(net_out, direct, "{}: Theorem 5 route on {input}", tm.name);
        }
    }
}

#[test]
fn theorem_10_guarding_preserves_answers() {
    let sources: &[&str] = &[
        "p(X) :- q(X[1]).",
        "p(X) :- q(X[2:end]).",
        // Unguarded head variable: Y ranges over the domain.
        "pair(X, Y) :- q(X).",
        // rep1 has an unguarded base clause.
        "rep1(X, X) :- true.\nrep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).",
    ];
    for src in sources {
        let mut e = Engine::new();
        let p = e.parse_program(src).unwrap();
        let g = guard_program(&p, &[("seed".into(), 1)]);
        let mut db = Database::new();
        e.add_fact(&mut db, "seed", &["abc"]);
        e.add_fact(&mut db, "q", &["a"]);
        let m1 = e.evaluate(&p, &db).unwrap();
        let m2 = e.evaluate(&g, &db).unwrap();
        for pred in p.predicates() {
            let mut a = e.rendered_tuples(&m1, &pred);
            let mut b = e.rendered_tuples(&m2, &pred);
            a.sort();
            b.sort();
            assert_eq!(a, b, "{src}: extent of {pred}");
        }
    }
}

#[test]
fn theorem_10_guarded_programs_are_guarded() {
    let mut e = Engine::new();
    let p = e
        .parse_program("p(X) :- q(X[1]).\npair(X, Y) :- q(X).")
        .unwrap();
    assert!(!e.analyze(&p).guarded);
    let g = guard_program(&p, &[]);
    assert!(e.analyze(&g).guarded);
}

#[test]
fn transducer_datalog_concat_equals_append_machine() {
    // Section 7.1: `p(X ++ Y)` and `p(@append(X, Y))` are interchangeable.
    let mut e = Engine::new();
    let syms: Vec<_> = "abc".chars().map(|c| e.alphabet.intern_char(c)).collect();
    let app = library::append(&mut e.alphabet, &syms);
    e.register_transducer("append", app);
    let p_concat = e.parse_program("p(X ++ Y) :- q(X), q(Y).").unwrap();
    let p_machine = e.parse_program("p(@append(X, Y)) :- q(X), q(Y).").unwrap();
    let mut db = Database::new();
    for s in ["a", "bc", ""] {
        e.add_fact(&mut db, "q", &[s]);
    }
    let m1 = e.evaluate(&p_concat, &db).unwrap();
    let m2 = e.evaluate(&p_machine, &db).unwrap();
    let mut a = e.answers(&m1, "p");
    let mut b = e.answers(&m2, "p");
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn head_transducer_composition_matches_network() {
    // @translate(@transcribe(D)) in a head ≡ the serial network.
    let mut e = Engine::new();
    let t1 = library::transcribe(&mut e.alphabet);
    let t2 = library::translate(&mut e.alphabet);
    let net = Network::chain("pipe", vec![t1.clone(), t2.clone()]);
    e.register_transducer("transcribe", t1);
    e.register_transducer("translate", t2);
    let p = e
        .parse_program("protein(@translate(@transcribe(D))) :- dnaseq(D).")
        .unwrap();
    let mut db = Database::new();
    e.add_fact(&mut db, "dnaseq", &["ctactgaaggtg"]);
    let m = e.evaluate(&p, &db).unwrap();
    let got = e.answers(&m, "protein");
    let dna = e.seq("ctactgaaggtg");
    let expected = e
        .alphabet
        .render(&net.run_simple(&[e.store.get(dna)]).unwrap());
    assert_eq!(got, vec![expected]);
}
