//! Crash-injected recovery fuzzing: **recovered ≡ replay of the surviving
//! log**, at every kill point, at every thread count.
//!
//! `seqlog_testkit` executes generated assert/retract interleavings (the
//! PR 4 generator, ground-domain-sensitive shape forced in) inside a
//! durable session, tracing the write-ahead log's record boundaries and
//! every snapshot ever written. The harness then simulates `kill -9` at
//! fuzzed byte offsets — record boundaries *and* mid-record torn tails —
//! by materializing the directory a crash at that offset would leave, and
//! demands:
//!
//! * recovery **succeeds** at every kill point at or past the log header
//!   (an offset inside the header models a crash during `make_durable` and
//!   must fail cleanly — pinned in `crates/core/tests/durability.rs`);
//! * the recovered session is **bit-for-bit equal** (extents in insertion
//!   order, cumulative stats) to a fresh in-memory session replaying the
//!   surviving log — at threads 1 and at a rotating choice of {2, 4, 8};
//! * after a settling `run`, the recovered session equals a fresh **batch
//!   evaluation of the surviving base facts** extracted from the log, for
//!   every thread count in {1, 2, 4, 8} — the Definition 4 oracle: the
//!   least fixpoint is a function of the database, crashes included;
//! * under tightened budgets (refused asserts leaving `Abort` compensation
//!   pairs, runs that poison the session mid-commit), every kill point —
//!   including one cutting between a refused batch and its compensation —
//!   still recovers to a state consistent with the surviving log;
//! * random **bit flips** over the log and snapshot bytes yield a clean
//!   `RecoveryError` or a state equal to a valid logged prefix — never a
//!   panic, out-of-bounds access, or silently wrong model.
//!
//! The harness itself is mutation-tested at the bottom of this file: a
//! reader that skips checksum verification, skips torn-tail truncation, or
//! restores stale watermarks is caught by these oracles.
//!
//! Seeds are pinned by construction (the proptest shim derives its RNG from
//! the test name), so failures reproduce by rerunning the same test.

use proptest::prelude::*;
use seqlog_testkit::{
    crash_at, durable_run, interleaved_cases_with_gd, kill_offsets, recover_session,
    session_outcome, wal_replay_outcome, wal_surviving_batch_outcome, InterleavedCase, Op,
};
use sequence_datalog::core::wal::WAL_FILE;
use sequence_datalog::core::{DurabilityOptions, EvalConfig, EvalError, RecoveryError};
use std::fs;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Snapshot cadence 2 exercises both recover-from-snapshot and
/// replay-a-tail at most kill points; unbounded retention lets the crash
/// simulator reconstruct any point in time.
fn fuzz_opts() -> DurabilityOptions {
    DurabilityOptions {
        snapshot_every: 2,
        snapshots_kept: 1 << 20,
        ..Default::default()
    }
}

/// At most `n` of `offsets`, evenly spaced, endpoints always included —
/// bounds per-case work while still hitting the interesting extremes.
fn sample_offsets(offsets: &[u64], n: usize) -> Vec<u64> {
    if offsets.len() <= n {
        return offsets.to_vec();
    }
    let mut out: Vec<u64> = (0..n)
        .map(|i| offsets[i * (offsets.len() - 1) / (n - 1)])
        .collect();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The core crash-injection oracle: at every sampled kill offset the
    /// recovered session must be bit-for-bit equal to a fresh in-memory
    /// replay of the log that survived the crash.
    #[test]
    fn recovery_at_every_kill_point_matches_fresh_replay(case in interleaved_cases_with_gd()) {
        let opts = fuzz_opts();
        let run = durable_run(&case, &EvalConfig::with_threads(1), &opts);
        let offsets = kill_offsets(&run);
        prop_assert!(!offsets.is_empty(), "a durable run always has kill points\n{}", case);
        for (i, offset) in sample_offsets(&offsets, 8).into_iter().enumerate() {
            let crashed = crash_at(&run, offset);
            let recovered = recover_session(
                &case.program, crashed.path(), &EvalConfig::with_threads(1), &opts,
            ).unwrap_or_else(|e| panic!("recovery at offset {offset} must succeed: {e}\n{case}"));
            // Fresh replay AFTER recovery: recovery may have truncated a
            // torn tail, and the oracle is defined over the surviving log.
            let fresh = wal_replay_outcome(
                &case.program, crashed.path(), &EvalConfig::with_threads(1),
            );
            prop_assert_eq!(
                session_outcome(&recovered).bitwise_view(),
                fresh.bitwise_view(),
                "recovered state at offset {} differs from fresh replay\n{}",
                offset, case
            );
            // Thread determinism survives recovery: a rotating choice of
            // {2, 4, 8} must reproduce the threads=1 state bit-for-bit.
            let t = [2usize, 4, 8][i % 3];
            let recovered_t = recover_session(
                &case.program, crashed.path(), &EvalConfig::with_threads(t), &opts,
            ).unwrap_or_else(|e| panic!("recovery at threads={t} must succeed: {e}\n{case}"));
            prop_assert_eq!(
                session_outcome(&recovered_t).bitwise_view(),
                fresh.bitwise_view(),
                "recovery at threads={} is not bit-for-bit identical (offset {})\n{}",
                t, offset, case
            );
        }
    }

    /// The settled oracle at full thread coverage: recover at the final
    /// kill point (and one interior point), settle with `run`, and compare
    /// against a fresh batch evaluation of the log's surviving base facts —
    /// for every thread count in {1, 2, 4, 8}.
    #[test]
    fn recovered_then_settled_equals_batch_of_survivors(case in interleaved_cases_with_gd()) {
        let opts = fuzz_opts();
        let run = durable_run(&case, &EvalConfig::with_threads(1), &opts);
        let offsets = kill_offsets(&run);
        for offset in [offsets[offsets.len() / 2], *offsets.last().unwrap()] {
            let oracle_dir = crash_at(&run, offset);
            let oracle = wal_surviving_batch_outcome(
                &case.program, oracle_dir.path(), &EvalConfig::with_threads(1),
            );
            let expected = oracle.extents_sorted_nonempty()
                .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
            for t in THREADS {
                // A fresh crash image per thread: a recovered session is
                // durable, so its settling run appends to the image it
                // recovered from.
                let crashed = crash_at(&run, offset);
                let mut recovered = recover_session(
                    &case.program, crashed.path(), &EvalConfig::with_threads(t), &opts,
                ).unwrap_or_else(|e| panic!("recovery at threads={t} must succeed: {e}\n{case}"));
                recovered.run().unwrap_or_else(|e| panic!("settling run must succeed: {e}\n{case}"));
                prop_assert_eq!(
                    session_outcome(&recovered).extents_sorted_nonempty().as_ref(),
                    Some(&expected),
                    "recovered+settled at threads={} (offset {}) differs from a fresh \
                     batch evaluation of the surviving base facts\n{}",
                    t, offset, case
                );
            }
        }
    }

    /// The sharded-commit matrix under crash injection: generated cases
    /// are small, so the sweeps above reach the multi-worker machinery
    /// only through its dispatch decision. Here both the durable run that
    /// *writes* the log and every recovery that *replays* it are forced
    /// through the parallel dispatch path (multi-worker match + sharded
    /// commit) at threads 1/2/4/8 — WAL bytes and recovered state must
    /// stay bit-for-bit identical to the sequential reference at every
    /// kill point.
    #[test]
    fn sharded_commit_recovery_is_bit_for_bit(case in interleaved_cases_with_gd()) {
        let opts = fuzz_opts();
        let sharded = |threads: usize| EvalConfig {
            threads,
            danger_force_parallel: true,
            ..EvalConfig::default()
        };
        let reference_run = durable_run(&case, &EvalConfig::with_threads(1), &opts);
        // The log a forced-sharded multi-worker session writes is the
        // byte-identical log the sequential session writes.
        let sharded_run = durable_run(&case, &sharded(8), &opts);
        prop_assert_eq!(
            fs::read(sharded_run.dir.path().join(WAL_FILE)).expect("read sharded wal"),
            fs::read(reference_run.dir.path().join(WAL_FILE)).expect("read reference wal"),
            "sharded-commit session wrote different WAL bytes\n{}", case
        );
        let offsets = kill_offsets(&reference_run);
        for offset in sample_offsets(&offsets, 3) {
            let crashed = crash_at(&reference_run, offset);
            let fresh = wal_replay_outcome(
                &case.program, crashed.path(), &EvalConfig::with_threads(1),
            );
            for t in THREADS {
                let recovered = recover_session(
                    &case.program, crashed.path(), &sharded(t), &opts,
                ).unwrap_or_else(|e| panic!(
                    "sharded recovery at threads={t} offset {offset} must succeed: {e}\n{case}"
                ));
                prop_assert_eq!(
                    session_outcome(&recovered).bitwise_view(),
                    fresh.bitwise_view(),
                    "sharded recovery at threads={} (offset {}) is not bit-for-bit \
                     identical to the sequential replay\n{}",
                    t, offset, case
                );
            }
        }
    }

    /// Tightened budgets put `Abort` compensation pairs and poisoned run
    /// tails into the log; every kill point — including between a refused
    /// batch and its compensation — must still recover consistently.
    #[test]
    fn recovery_with_budget_refusals_and_poisoned_tails(case in interleaved_cases_with_gd()) {
        let config = EvalConfig {
            threads: 1,
            max_facts: 12,
            ..EvalConfig::default()
        };
        let opts = fuzz_opts();
        let run = durable_run(&case, &config, &opts);
        for offset in sample_offsets(&kill_offsets(&run), 8) {
            let crashed = crash_at(&run, offset);
            let recovered = recover_session(&case.program, crashed.path(), &config, &opts)
                .unwrap_or_else(|e| panic!("recovery at offset {offset} must succeed: {e}\n{case}"));
            let fresh = wal_replay_outcome(&case.program, crashed.path(), &config);
            prop_assert_eq!(
                session_outcome(&recovered).bitwise_view(),
                fresh.bitwise_view(),
                "tight-budget recovery at offset {} differs from fresh replay\n{}",
                offset, case
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-flip corruption fuzzing (satellite: corruption must be loud)
// ---------------------------------------------------------------------------

/// A fixed, history-rich case for the corruption and mutant tests below.
fn pinned_case() -> InterleavedCase {
    let assert = |pred: &str, word: &str| Op::Assert {
        pred: pred.into(),
        word: word.into(),
    };
    let retract = |pred: &str, word: &str| Op::Retract {
        pred: pred.into(),
        word: word.into(),
    };
    InterleavedCase {
        program: "t0(X) :- r0(X).\nt0(X[2:end]) :- t0(X), X != \"\".\ngd0(X, X) :- true.\n".into(),
        steps: vec![
            vec![assert("r0", "abc"), assert("r1", "ba")],
            vec![retract("r0", "abc"), assert("r0", "cab")],
            vec![assert("r0", "b")],
        ],
    }
}

/// Flipping any single bit in the log or a snapshot must produce either a
/// clean `RecoveryError` or a recovered state equal to a **valid logged
/// prefix** (the flip was behind a truncated tail) — never a panic and
/// never a silently different model.
#[test]
fn bit_flips_are_loud_or_harmless() {
    let case = pinned_case();
    let opts = fuzz_opts();
    let config = EvalConfig::with_threads(1);
    let run = durable_run(&case, &config, &opts);
    let original_wal = fs::read(run.dir.path().join(WAL_FILE)).expect("read live wal");

    // Targets: every 7th byte of the log, every 13th byte of the newest
    // snapshot — enough density to hit headers, length fields, checksums,
    // and payload content of each record kind.
    let newest_snap = run
        .snapshots
        .last()
        .expect("durable runs write snapshots")
        .name
        .clone();
    let mut checked = 0usize;
    for (file, stride) in [(WAL_FILE.to_string(), 7usize), (newest_snap, 13usize)] {
        let full = crash_at(&run, run.final_len);
        let len = fs::metadata(full.path().join(&file))
            .expect("target exists")
            .len() as usize;
        for offset in (0..len).step_by(stride) {
            let crashed = crash_at(&run, run.final_len);
            let target = crashed.path().join(&file);
            let mut bytes = fs::read(&target).unwrap();
            bytes[offset] ^= 1 << (offset % 8);
            fs::write(&target, &bytes).unwrap();
            checked += 1;
            match recover_session(&case.program, crashed.path(), &config, &opts) {
                Err(EvalError::Recovery(_)) => {} // loud and clean
                Err(other) => {
                    panic!("flip at {file}:{offset} leaked a non-recovery error: {other}")
                }
                Ok(recovered) => {
                    // Harmless only if the surviving (possibly truncated)
                    // log is a byte-prefix of the original — i.e. the flip
                    // was truncated away or hit a snapshot the reader
                    // rejected or never needed.
                    let survived = fs::read(crashed.path().join(WAL_FILE)).unwrap();
                    assert!(
                        original_wal.starts_with(&survived),
                        "flip at {file}:{offset} survived into the recovered log"
                    );
                    let fresh = wal_replay_outcome(&case.program, crashed.path(), &config);
                    assert_eq!(
                        session_outcome(&recovered).bitwise_view(),
                        fresh.bitwise_view(),
                        "flip at {file}:{offset} recovered to a wrong model"
                    );
                }
            }
        }
    }
    assert!(checked > 50, "corruption sweep too small: {checked} flips");
}

// ---------------------------------------------------------------------------
// Harness mutation tests: weakened readers must be caught by the oracles
// ---------------------------------------------------------------------------

/// Mutant 1: a reader that treats a torn tail as ordinary data (no
/// truncation). The torn-tail kill points above must fail loudly under it —
/// proving the truncation path is what makes those cases pass.
#[test]
fn mutant_skipping_tail_truncation_is_caught() {
    let case = pinned_case();
    let opts = fuzz_opts();
    let config = EvalConfig::with_threads(1);
    let run = durable_run(&case, &config, &opts);
    let offsets = kill_offsets(&run);
    let mid_record = offsets
        .iter()
        .copied()
        .find(|o| !run.boundaries.contains(o) && *o != run.final_len)
        .expect("kill_offsets includes mid-record torn tails");
    let crashed = crash_at(&run, mid_record);
    let mutant = DurabilityOptions {
        danger_skip_tail_truncation: true,
        ..fuzz_opts()
    };
    match recover_session(&case.program, crashed.path(), &config, &mutant) {
        Err(EvalError::Recovery(RecoveryError::Corrupt { .. })) => {}
        Err(other) => panic!("mutant failed with the wrong error: {other}"),
        Ok(_) => panic!("a reader without tail truncation must not recover a torn log"),
    }
    // The real reader recovers the same directory fine.
    recover_session(&case.program, crashed.path(), &config, &fuzz_opts())
        .expect("the real reader truncates the torn tail and recovers");
}

/// Mutant 2: a reader that skips CRC verification. A content flip that
/// preserves record framing must slide through it and produce a *different
/// model* — exactly what the bit-flip oracle rejects — while the real
/// reader reports corruption.
#[test]
fn mutant_skipping_crc_verification_is_caught() {
    let case = pinned_case();
    // Only the attach-time snapshot: recovery must replay the whole log, so
    // the corrupted record actually flows into the recovered state.
    let opts = DurabilityOptions {
        snapshot_every: 0,
        ..Default::default()
    };
    let config = EvalConfig::with_threads(1);
    let run = durable_run(&case, &config, &opts);
    let truth = run.outcome.bitwise_view().expect("run settles");

    let crashed = crash_at(&run, run.final_len);
    let wal = crashed.path().join(WAL_FILE);
    let mut bytes = fs::read(&wal).unwrap();
    // Flip 'a' → 'c' in the first assert record's payload ("abc" → "cbc"):
    // framing intact, content changed. The record is interior (many records
    // follow), so this cannot be mistaken for a torn tail.
    let pos = bytes
        .iter()
        .position(|&b| b == b'a')
        .expect("the word abc is in the log");
    bytes[pos] ^= 0x02;
    fs::write(&wal, &bytes).unwrap();

    match recover_session(&case.program, crashed.path(), &config, &opts) {
        Err(EvalError::Recovery(RecoveryError::Corrupt { .. })) => {}
        Err(other) => panic!("real reader failed with the wrong error: {other}"),
        Ok(_) => panic!("the real reader must reject an interior content flip"),
    }

    let mutant = DurabilityOptions {
        snapshot_every: 0,
        danger_skip_crc: true,
        ..Default::default()
    };
    match recover_session(&case.program, crashed.path(), &config, &mutant) {
        Ok(recovered) => {
            assert_ne!(
                session_outcome(&recovered).bitwise_view().as_ref(),
                Some(&truth),
                "a checksum-free reader silently accepted the flip — the \
                 bit-flip oracle would miss real corruption"
            );
        }
        // Decode may also fail structurally; either way the mutant's
        // behavior differs observably from the real reader's Corrupt.
        Err(EvalError::Recovery(_)) => {}
        Err(other) => panic!("mutant leaked a non-recovery error: {other}"),
    }
}

/// Mutant 3: restoring snapshots with stale (fully caught-up) watermarks.
/// A snapshot taken between an assert and its run then "forgets" the
/// pending fact is still the next run's semi-naive delta: the settled
/// state misses derivations and the surviving-batch oracle catches it.
#[test]
fn mutant_stale_watermarks_are_caught() {
    let assert = |pred: &str, word: &str| Op::Assert {
        pred: pred.into(),
        word: word.into(),
    };
    let case = InterleavedCase {
        program: "t0(X) :- r0(X).\n".into(),
        steps: vec![vec![assert("r0", "ab")]],
    };
    let opts = DurabilityOptions {
        snapshot_every: 1, // snapshot right after the assert record
        snapshots_kept: 1 << 20,
        ..Default::default()
    };
    let config = EvalConfig::with_threads(1);

    // Kill after the assert record but before the Run record: boundary 0
    // is the post-attach header length, boundary 1 the post-assert length.
    // With `snapshot_every: 1` the auto-checkpoint covering the assert has
    // already been written by then, so recovery restores from it with an
    // empty log tail — exactly the situation where watermarks matter.
    let run = durable_run(&case, &config, &opts);
    let offset = run.boundaries[1];
    // Two independent crash images: a recovered session is itself durable,
    // so the healthy recovery's settling run would otherwise append to the
    // log and snapshot the settled state — which the mutant recovery would
    // then happily restore.
    let crashed = crash_at(&run, offset);
    let crashed_mutant = crash_at(&run, offset);

    let expected = wal_surviving_batch_outcome(&case.program, crashed.path(), &config)
        .extents_sorted_nonempty()
        .expect("oracle settles");
    assert!(
        expected.contains_key("t0"),
        "the pending fact must derive t0"
    );

    let mut healthy =
        recover_session(&case.program, crashed.path(), &config, &opts).expect("recovery succeeds");
    healthy.run().expect("settling run succeeds");
    assert_eq!(
        session_outcome(&healthy).extents_sorted_nonempty().as_ref(),
        Some(&expected),
        "the real reader resumes the pending fact through the watermarks"
    );

    let mutant = DurabilityOptions {
        danger_stale_watermarks: true,
        ..opts
    };
    let mut stale = recover_session(&case.program, crashed_mutant.path(), &config, &mutant)
        .expect("the mutant recovers without error — that is its danger");
    stale.run().expect("settling run succeeds");
    assert_ne!(
        session_outcome(&stale).extents_sorted_nonempty().as_ref(),
        Some(&expected),
        "stale watermarks must lose the pending delta — otherwise the \
         fuzz oracle could not catch a watermark-persistence bug"
    );
}
