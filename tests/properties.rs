//! Cross-crate property-based tests (proptest).
//!
//! These pin the semantic invariants that the paper's theorems rest on,
//! over randomized inputs: structural recursion stays inside the extended
//! active domain, reversal/complement are involutions whichever route
//! computes them, machine simulations agree with direct execution, and the
//! two evaluation strategies compute the same least fixpoint.

use proptest::prelude::*;
use sequence_datalog::core::prelude::{guard_program, is_model};
use sequence_datalog::core::Strategy as EvalStrategy;
use sequence_datalog::core::{Database, Engine, EvalConfig};
use sequence_datalog::transducer::library;
use sequence_datalog::turing::{samples, strip_trailing_blanks};

fn bits() -> impl proptest::strategy::Strategy<Value = String> {
    proptest::collection::vec(prop_oneof!["0", "1"], 0..8).prop_map(|v| v.concat())
}

fn dna() -> impl proptest::strategy::Strategy<Value = String> {
    proptest::collection::vec(prop_oneof!["a", "c", "g", "t"], 0..15).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn suffix_program_computes_exactly_the_suffixes(word in dna()) {
        let mut e = Engine::new();
        let p = e.parse_program("suffix(X[N:end]) :- r(X).").unwrap();
        let mut db = Database::new();
        e.add_fact(&mut db, "r", &[&word]);
        let m = e.evaluate(&p, &db).unwrap();
        let mut got = e.answers(&m, "suffix");
        got.sort();
        let mut expected: Vec<String> =
            (0..=word.len()).map(|i| word[i..].to_string()).collect();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn reverse_program_reverses(word in bits()) {
        let mut e = Engine::new();
        let p = e.parse_program(
            r#"
            answer(Y) :- r(X), rev(X, Y).
            rev("", "") :- true.
            rev(X[1:N+1], X[N+1] ++ Y) :- r(X), rev(X[1:N], Y).
            "#,
        ).unwrap();
        let mut db = Database::new();
        e.add_fact(&mut db, "r", &[&word]);
        let m = e.evaluate(&p, &db).unwrap();
        let expected: String = word.chars().rev().collect();
        prop_assert!(e.answers(&m, "answer").contains(&expected));
    }

    #[test]
    fn structural_recursion_never_grows_the_domain(word in dna()) {
        // Theorem 3's engine-level content: a non-constructive program's
        // extended active domain equals the database's.
        let mut e = Engine::new();
        let p = e.parse_program(
            r#"
            rep1(X, X) :- true.
            rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).
            "#,
        ).unwrap();
        let mut db = Database::new();
        e.add_fact(&mut db, "seq", &[&word]);
        let m = e.evaluate(&p, &db).unwrap();
        let k = word.chars().count();
        prop_assert!(m.domain.len() <= k * (k + 1) / 2 + 1);
        prop_assert_eq!(m.domain.max_len(), k);
    }

    #[test]
    fn rep1_accepts_exactly_the_powers(base in proptest::collection::vec(prop_oneof!["a", "b"], 1..4), n in 1usize..4) {
        let base: String = base.concat();
        let word = base.repeat(n);
        let mut e = Engine::new();
        let p = e.parse_program(
            r#"
            rep1(X, X) :- true.
            rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).
            "#,
        ).unwrap();
        let mut db = Database::new();
        e.add_fact(&mut db, "seq", &[&word]);
        let m = e.evaluate(&p, &db).unwrap();
        let w = e.seq(&word);
        let b = e.seq(&base);
        prop_assert!(m.contains("rep1", &[w, b]), "{word} = {base}^{n}");
    }

    #[test]
    fn complement_machine_is_an_involution(word in bits()) {
        let mut e = Engine::new();
        let t = library::complement01(&mut e.alphabet);
        let syms = e.alphabet.seq_of_str(&word);
        let once = sequence_datalog::transducer::run_to_vec(&t, &[&syms]).unwrap();
        let twice = sequence_datalog::transducer::run_to_vec(&t, &[&once]).unwrap();
        prop_assert_eq!(twice, syms);
    }

    #[test]
    fn square_machine_output_is_quadratic(word in proptest::collection::vec(prop_oneof!["a", "b", "c"], 0..7)) {
        let word: String = word.concat();
        let mut e = Engine::new();
        let syms: Vec<_> = "abc".chars().map(|c| e.alphabet.intern_char(c)).collect();
        let t = library::square(&mut e.alphabet, &syms);
        let input = e.alphabet.seq_of_str(&word);
        let out = sequence_datalog::transducer::run_to_vec(&t, &[&input]).unwrap();
        let n = word.chars().count();
        prop_assert_eq!(out.len(), n * n);
        // The output is the input repeated n times.
        prop_assert_eq!(e.alphabet.render(&out), word.repeat(n));
    }

    #[test]
    fn tm_complement_agrees_with_rust(word in bits()) {
        let mut e = Engine::new();
        let tm = samples::complement_tm(&mut e.alphabet);
        let syms = e.alphabet.seq_of_str(&word);
        let run = tm.run(&syms, 100_000).unwrap();
        let got = e.alphabet.render(&strip_trailing_blanks(run.output, tm.blank));
        let expected: String =
            word.chars().map(|c| if c == '0' { '1' } else { '0' }).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn tm_sort_agrees_with_rust(word in bits()) {
        let mut e = Engine::new();
        let tm = samples::sort_bits_tm(&mut e.alphabet);
        let syms = e.alphabet.seq_of_str(&word);
        let run = tm.run(&syms, 1_000_000).unwrap();
        let got = e.alphabet.render(&strip_trailing_blanks(run.output, tm.blank));
        let mut chars: Vec<char> = word.chars().collect();
        chars.sort_unstable();
        let expected: String = chars.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn strategies_agree_on_random_databases(words in proptest::collection::vec(dna(), 1..4)) {
        let mut e = Engine::new();
        let p = e.parse_program(
            r#"
            pre(X[1:N]) :- r(X).
            pair(X, Y) :- pre(X), pre(Y), X != Y.
            cat(X ++ Y) :- pre(X), r(Y).
            "#,
        ).unwrap();
        let mut db = Database::new();
        for w in &words {
            e.add_fact(&mut db, "r", &[w]);
        }
        let naive = e.evaluate_with(&p, &db, &EvalConfig {
            strategy: EvalStrategy::Naive, ..Default::default()
        }).unwrap();
        let semi = e.evaluate_with(&p, &db, &EvalConfig {
            strategy: EvalStrategy::SemiNaive, ..Default::default()
        }).unwrap();
        prop_assert_eq!(naive.facts.total_facts(), semi.facts.total_facts());
        for pred in ["pre", "pair", "cat"] {
            let mut a = e.rendered_tuples(&naive, pred);
            let mut b = e.rendered_tuples(&semi, pred);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "{}", pred);
        }
    }

    #[test]
    fn least_fixpoint_is_a_model_of_random_instances(words in proptest::collection::vec(bits(), 1..4)) {
        // Appendix A: lfp(T_{P,db}) is a model (Corollary 5).
        let mut e = Engine::new();
        let p = e.parse_program(
            r#"
            pre(X[1:N]) :- r(X).
            anchored(X) :- pre(X), X[1] = "1".
            "#,
        ).unwrap();
        let mut db = Database::new();
        for w in &words {
            e.add_fact(&mut db, "r", &[w]);
        }
        let m = e.evaluate(&p, &db).unwrap();
        let ok = is_model(&p, &db, &m, &mut e.store, &e.registry, &EvalConfig::default())
            .unwrap();
        prop_assert!(ok);
    }

    #[test]
    fn echo_machine_doubles_every_symbol(word in dna()) {
        let mut e = Engine::new();
        let syms: Vec<_> = "acgt".chars().map(|c| e.alphabet.intern_char(c)).collect();
        let t = library::echo(&mut e.alphabet, &syms);
        let input = e.alphabet.seq_of_str(&word);
        let out = sequence_datalog::transducer::run_to_vec(&t, &[&input, &input]).unwrap();
        let expected: String = word.chars().flat_map(|c| [c, c]).collect();
        prop_assert_eq!(e.alphabet.render(&out), expected);
    }

    #[test]
    fn guarding_preserves_random_queries(word in dna(), probe in dna()) {
        let mut e = Engine::new();
        let p = e.parse_program("p(X) :- q(X[1:2]).").unwrap();
        let g = guard_program(&p, &[("seed".into(), 1)]);
        let mut db = Database::new();
        e.add_fact(&mut db, "seed", &[&word]);
        let probe2: String = probe.chars().take(2).collect();
        e.add_fact(&mut db, "q", &[&probe2]);
        let m1 = e.evaluate(&p, &db).unwrap();
        let m2 = e.evaluate(&g, &db).unwrap();
        let mut a = e.answers(&m1, "p");
        let mut b = e.answers(&m2, "p");
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
