//! Property-based fuzzing of demand-driven (bound-argument) queries:
//! **`query_bound` ≡ filter of the batch fixpoint**.
//!
//! For every generated case (the same terminating-by-construction shape
//! grammar as the differential suite — including the constructive,
//! domain-sensitive, and mutually recursive shapes that exercise the
//! magic transformation's fallback gates), every populated predicate of
//! arity ≤ 3, and **every** bound/free adornment of that arity (plus an
//! all-bound miss probe), the demand route must return exactly the
//! sorted filter of the batch model's extent — on both unsettled
//! sessions (the scratch evaluation derives everything itself) and
//! settled ones (the scratch starts from the session's facts).
//!
//! Thread determinism: the demand route is **bit-for-bit** identical
//! (answers *and* scratch `EvalStats`) at threads 1/2/4/8.
//!
//! The harness is mutation-tested at the bottom of this file:
//!
//! * `danger_drop_magic_guard` (guarded clause variants lose their magic
//!   guard) keeps answers correct — guards only *restrict* evaluation,
//!   so dropping them over-approximates back toward the batch fixpoint —
//!   but must be caught by the selectivity oracle (scratch fact count).
//! * `danger_skip_fallback` (the domain-sensitive full-fallback gate is
//!   bypassed) *under*-approximates: a predicate whose extent depends on
//!   domain growth from outside its cone silently loses answers, the
//!   exact bug class the gate exists to prevent — caught extent-wise.

use proptest::prelude::*;
use seqlog_testkit::{
    batch_outcome, cases, demand_outcome, demand_probes, filtered_extent, Bind, FuzzCase,
    MagicOptions,
};
use sequence_datalog::core::{EngineSession, EvalConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn demand_equals_filtered_batch_for_every_adornment(case in cases()) {
        let extents = batch_outcome(&case, &EvalConfig::with_threads(1))
            .extents_sorted()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        let config = EvalConfig::with_threads(1);
        for (pred, pattern) in demand_probes(&extents) {
            let expected = filtered_extent(&extents, &pred, &pattern);
            for settle in [false, true] {
                let got = demand_outcome(&case, &config, &pred, &pattern, settle, &MagicOptions::default())
                    .unwrap_or_else(|err| panic!("demand route failed ({err}):\n{case}"));
                prop_assert_eq!(
                    &got.answers,
                    &expected,
                    "query_bound({}, {:?}) settle={} diverged from the filtered batch extent\n{}",
                    pred,
                    pattern,
                    settle,
                    case
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn demand_is_bit_for_bit_across_thread_counts(case in cases()) {
        let extents = batch_outcome(&case, &EvalConfig::with_threads(1))
            .extents_sorted()
            .unwrap_or_else(|| panic!("default budgets must fit generated cases:\n{case}"));
        for (pred, pattern) in demand_probes(&extents) {
            let reference =
                demand_outcome(&case, &EvalConfig::with_threads(1), &pred, &pattern, false, &MagicOptions::default())
                    .unwrap_or_else(|err| panic!("demand route failed ({err}):\n{case}"));
            for t in THREADS {
                let got = demand_outcome(
                    &case,
                    &EvalConfig::with_threads(t),
                    &pred,
                    &pattern,
                    false,
                    &MagicOptions::default(),
                )
                .unwrap_or_else(|err| panic!("demand route failed ({err}):\n{case}"));
                prop_assert_eq!(
                    &got,
                    &reference,
                    "query_bound({}, {:?}) at threads={} is not bit-for-bit identical\n{}",
                    pred,
                    pattern,
                    t,
                    case
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned shape cases: the fallback-sensitive fragments, held still
// ---------------------------------------------------------------------------

/// Ground-domain-sensitive goal (`gd0(X, X) :- true.`) composed with a
/// constructive clause *outside* its cone: demand must fall back to the
/// full fixpoint or it misses the diagonal pair over the constructed word.
#[test]
fn pinned_gd_with_outside_cone_construction() {
    let case = FuzzCase {
        program: "dbl0(X ++ X) :- r0(X).\ngd0(X, X) :- true.\n".into(),
        batches: vec![vec![("r0".into(), "ab".into())]],
    };
    let extents = batch_outcome(&case, &EvalConfig::with_threads(1))
        .extents_sorted()
        .unwrap();
    let pattern = vec![None, None];
    let expected = filtered_extent(&extents, "gd0", &pattern);
    let got = demand_outcome(
        &case,
        &EvalConfig::with_threads(1),
        "gd0",
        &pattern,
        false,
        &MagicOptions::default(),
    )
    .unwrap();
    assert_eq!(got.answers, expected);
    assert!(got
        .answers
        .contains(&vec!["abab".to_string(), "abab".to_string()]));
}

/// Mutual recursion through two predicates (shape 8): the demand cone
/// must traverse both directions of the cycle.
#[test]
fn pinned_mutual_recursion_demand() {
    let case = FuzzCase {
        program: "m0p(X) :- r0(X).\nm0p(X[2:end]) :- m0q(X), X != \"\".\nm0q(X) :- m0p(X).\n"
            .into(),
        batches: vec![vec![("r0".into(), "abc".into()), ("r0".into(), "c".into())]],
    };
    let extents = batch_outcome(&case, &EvalConfig::with_threads(1))
        .extents_sorted()
        .unwrap();
    for (pred, pattern) in demand_probes(&extents) {
        let expected = filtered_extent(&extents, &pred, &pattern);
        let got = demand_outcome(
            &case,
            &EvalConfig::with_threads(1),
            &pred,
            &pattern,
            false,
            &MagicOptions::default(),
        )
        .unwrap();
        assert_eq!(got.answers, expected, "probe {pred} {pattern:?}");
    }
}

// ---------------------------------------------------------------------------
// Harness mutation tests: a broken transformation must be caught above
// ---------------------------------------------------------------------------

/// Two disjoint ancestor chains; the bound query touches only the short
/// one, so a healthy demand evaluation stays well under the full
/// fixpoint's fact count.
fn two_chain_session(threads: usize) -> EngineSession {
    let mut e = sequence_datalog::core::Engine::new();
    let program = e
        .parse_program("anc(X, Y) :- edge(X, Y).\nanc(X, Z) :- anc(X, Y), edge(Y, Z).")
        .unwrap();
    let mut s = e
        .into_session(&program, EvalConfig::with_threads(threads))
        .unwrap();
    for (x, y) in [
        ("a", "b"),
        ("b", "c"),
        ("c", "d"),
        ("d", "e"),
        ("p", "q"),
        ("q", "r"),
    ] {
        s.assert_fact("edge", &[x, y]).unwrap();
    }
    s
}

/// Mutant 1: dropping the magic guard from the rewritten clause variants.
/// Every original clause then runs unrestricted, so the scratch converges
/// to (a superset of) the batch fixpoint: answers stay **correct** —
/// over-approximation is the safe direction — but the selectivity that
/// justifies the whole transformation is gone, and the scratch fact
/// count gives it away. This is the oracle that pins demand evaluation
/// to actually *being* demand-driven.
#[test]
fn mutant_dropped_magic_guard_is_caught_by_selectivity() {
    let pattern = [Bind::Bound("p"), Bind::Free];
    let healthy = two_chain_session(1)
        .query_bound_instrumented("anc", &pattern, &MagicOptions::default())
        .unwrap();
    let mutant_opts = MagicOptions {
        danger_drop_magic_guard: true,
        ..MagicOptions::default()
    };
    let mutant = two_chain_session(1)
        .query_bound_instrumented("anc", &pattern, &mutant_opts)
        .unwrap();
    // Over-approximation: the answers themselves survive the mutation.
    assert_eq!(mutant.answers, healthy.answers);
    assert_eq!(healthy.answers.len(), 2); // p->q, p->r
                                          // ...but the selectivity oracle catches it: the healthy scratch stays
                                          // strictly below the mutant's (which derives both chains in full).
    assert!(
        healthy.stats.facts < mutant.stats.facts,
        "healthy demand ({}) must stay below the unguarded scratch ({})",
        healthy.stats.facts,
        mutant.stats.facts
    );
}

/// Mutant 2: skipping the domain-sensitive full-fallback gate. The goal's
/// cone no longer includes the constructive clause that grows the domain,
/// so the demand route *loses* answers — the unsound direction, caught
/// extent-wise by the differential property above. Pinned here so the
/// gate cannot rot even if the generator's shape mix drifts.
#[test]
fn mutant_skipped_fallback_is_caught_by_extents() {
    let case = FuzzCase {
        program: "dbl0(X ++ X) :- r0(X).\ngd0(X, X) :- true.\n".into(),
        batches: vec![vec![("r0".into(), "ab".into())]],
    };
    let extents = batch_outcome(&case, &EvalConfig::with_threads(1))
        .extents_sorted()
        .unwrap();
    let pattern = vec![None, None];
    let expected = filtered_extent(&extents, "gd0", &pattern);
    let mutant_opts = MagicOptions {
        danger_skip_fallback: true,
        ..MagicOptions::default()
    };
    let mutant = demand_outcome(
        &case,
        &EvalConfig::with_threads(1),
        "gd0",
        &pattern,
        false,
        &mutant_opts,
    )
    .unwrap();
    assert_ne!(
        mutant.answers, expected,
        "bypassing the fallback gate must lose answers — otherwise the \
         extent oracle could not catch an under-approximation bug"
    );
    // Specifically the diagonal pair over the *constructed* word is gone.
    assert!(!mutant
        .answers
        .contains(&vec!["abab".to_string(), "abab".to_string()]));
    assert!(expected.contains(&vec!["abab".to_string(), "abab".to_string()]));
}
