//! Property-based tests for the sequence substrate.
//!
//! These check the algebraic laws the rest of the workspace relies on:
//! interning is a bijection, `index_window` matches the Section 3.2
//! definedness conditions exactly, and extended-domain closure satisfies
//! Definition 2 and Lemma 1 (monotonicity under union).

use proptest::prelude::*;
use seqlog_sequence::{index_window, Alphabet, ExtendedDomain, SeqStore};

/// Strategy: short lowercase strings over a 4-symbol alphabet (repetitions
/// are common, which stresses interner dedup and closure early-outs).
fn word() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof!["a", "b", "c", "d"], 0..12).prop_map(|v| v.concat())
}

proptest! {
    #[test]
    fn interning_round_trips(text in word()) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let syms = a.seq_of_str(&text);
        let id = st.intern_vec(syms.clone());
        prop_assert_eq!(st.get(id), syms.as_slice());
        prop_assert_eq!(a.render(st.get(id)), text);
    }

    #[test]
    fn interning_is_injective(x in word(), y in word()) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let xs = a.seq_of_str(&x);
        let ys = a.seq_of_str(&y);
        let ix = st.intern_vec(xs);
        let iy = st.intern_vec(ys);
        prop_assert_eq!(ix == iy, x == y);
    }

    #[test]
    fn concat_length_is_additive(x in word(), y in word()) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let ix = st.intern_vec(a.seq_of_str(&x));
        let iy = st.intern_vec(a.seq_of_str(&y));
        let ixy = st.concat(ix, iy);
        prop_assert_eq!(st.len_of(ixy), x.len() + y.len());
        prop_assert_eq!(a.render(st.get(ixy)), format!("{x}{y}"));
    }

    #[test]
    fn concat_is_associative(x in word(), y in word(), z in word()) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let (ix, iy, iz) = {
            let ix = st.intern_vec(a.seq_of_str(&x));
            let iy = st.intern_vec(a.seq_of_str(&y));
            let iz = st.intern_vec(a.seq_of_str(&z));
            (ix, iy, iz)
        };
        let left = {
            let xy = st.concat(ix, iy);
            st.concat(xy, iz)
        };
        let right = {
            let yz = st.concat(iy, iz);
            st.concat(ix, yz)
        };
        prop_assert_eq!(left, right);
    }

    #[test]
    fn index_window_matches_definition(len in 0usize..20, n1 in -3i64..25, n2 in -3i64..25) {
        // Section 3.2: s[n1:n2] is defined iff 1 ≤ n1 ≤ n2+1 ≤ len+1.
        let defined = 1 <= n1 && n1 <= n2 + 1 && n2 < len as i64 + 1;
        prop_assert_eq!(index_window(len, n1, n2).is_some(), defined);
        if let Some((s, e)) = index_window(len, n1, n2) {
            prop_assert!(s <= e && e <= len);
            prop_assert_eq!(e.saturating_sub(s) as i64, (n2 - n1 + 1).max(0));
        }
    }

    #[test]
    fn subseq_agrees_with_slicing(text in word(), n1 in 1i64..14, n2 in 0i64..14) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let id = st.intern_vec(a.seq_of_str(&text));
        match st.subseq(id, n1, n2) {
            Some(sub) => {
                let expected: String = text
                    .chars()
                    .skip(n1 as usize - 1)
                    .take((n2 - n1 + 1).max(0) as usize)
                    .collect();
                prop_assert_eq!(a.render(st.get(sub)), expected);
            }
            None => {
                prop_assert!(n1 > n2 + 1 || n2 > text.len() as i64);
            }
        }
    }

    #[test]
    fn domain_closure_contains_every_window(text in word()) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        let id = st.intern_vec(a.seq_of_str(&text));
        d.insert_closed(&mut st, id);
        let syms = st.get(id).to_vec();
        for s in 0..syms.len() {
            for e in s..=syms.len() {
                let w = st.intern(&syms[s..e]);
                prop_assert!(d.contains(w));
            }
        }
        // Counting bound from Section 2.1.
        let k = text.len();
        prop_assert!(d.len() <= k * (k + 1) / 2 + 1);
    }

    #[test]
    fn domain_insertion_is_monotonic(xs in proptest::collection::vec(word(), 1..6)) {
        // Lemma 1: I1 ⊆ I2 implies Dext(I1) ⊆ Dext(I2). We check the
        // incremental analogue: inserting more sequences never removes
        // members, and the result is insertion-order independent as a set.
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let ids: Vec<_> = xs.iter().map(|t| {
            let syms = a.seq_of_str(t);
            st.intern_vec(syms)
        }).collect();

        let mut forward = ExtendedDomain::new();
        let mut snapshots = Vec::new();
        for &id in &ids {
            forward.insert_closed(&mut st, id);
            snapshots.push(forward.len());
        }
        prop_assert!(snapshots.windows(2).all(|w| w[0] <= w[1]));

        let mut backward = ExtendedDomain::new();
        for &id in ids.iter().rev() {
            backward.insert_closed(&mut st, id);
        }
        prop_assert_eq!(forward.len(), backward.len());
        for m in forward.iter() {
            prop_assert!(backward.contains(m));
        }
    }

    #[test]
    fn occurrences_are_exactly_the_matching_offsets(hay in word(), needle in word()) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let h = st.intern_vec(a.seq_of_str(&hay));
        let n = st.intern_vec(a.seq_of_str(&needle));
        let got = st.occurrences(h, n);
        let expected: Vec<usize> = (0..=hay.len().saturating_sub(needle.len()))
            .filter(|&i| hay.len() >= needle.len() && hay[i..i + needle.len()] == needle)
            .collect();
        if needle.is_empty() {
            prop_assert_eq!(got.len(), hay.len() + 1);
        } else {
            prop_assert_eq!(got, expected);
        }
    }
}
