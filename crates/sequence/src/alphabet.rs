//! Interned alphabet symbols.
//!
//! The paper fixes a finite alphabet Σ (Section 2.1). Symbols are usually
//! single characters (`a`, `c`, `g`, `t`, …) but the proof constructions also
//! need *compound* symbols — Turing-machine states embedded in configuration
//! strings (Theorem 5), marked tape cells like `(b,*)` (Section 6.1 remark),
//! and the special tape markers `⊣`, `▷` and blank. We therefore intern
//! symbols by **name**: single-character names for ordinary data, longer
//! names for machine-generated symbols.

use crate::fx::FxHashMap;
use std::fmt;

/// An interned alphabet symbol. Cheap to copy and compare; resolve names via
/// the owning [`Alphabet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw interner index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// The end-of-tape marker `⊣` read by transducer input heads (Definition 7).
pub const END_MARKER_NAME: &str = "⊣";
/// The left-end marker `▷` of a Turing-machine tape (Theorem 1).
pub const LEFT_MARKER_NAME: &str = "▷";
/// The blank tape symbol `␣` (Theorem 1).
pub const BLANK_NAME: &str = "␣";

/// A symbol interner: a bijection between symbol names and [`Sym`] handles.
///
/// `Alphabet` is append-only; interning the same name twice returns the same
/// handle. Display of sequences concatenates names, wrapping multi-character
/// names in angle brackets so output stays unambiguous.
#[derive(Default, Clone)]
pub struct Alphabet {
    names: Vec<String>,
    by_name: FxHashMap<String, Sym>,
}

impl Alphabet {
    /// Create an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an alphabet pre-populated with the characters of `chars`.
    pub fn with_chars(chars: &str) -> Self {
        let mut a = Self::new();
        for c in chars.chars() {
            a.intern_char(c);
        }
        a
    }

    /// Intern a symbol by name, returning its handle.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Sym(u32::try_from(self.names.len()).expect("alphabet overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// Intern a single-character symbol.
    pub fn intern_char(&mut self, c: char) -> Sym {
        let mut buf = [0u8; 4];
        self.intern(c.encode_utf8(&mut buf))
    }

    /// Look up a symbol by name without interning.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// The name of an interned symbol.
    ///
    /// # Panics
    /// Panics if `s` was not produced by this alphabet.
    pub fn name(&self, s: Sym) -> &str {
        &self.names[s.index()]
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Intern every character of `text` as a symbol, producing a sequence.
    pub fn seq_of_str(&mut self, text: &str) -> Vec<Sym> {
        text.chars().map(|c| self.intern_char(c)).collect()
    }

    /// Resolve every character of `text` **without interning**: `None` as
    /// soon as some character was never interned (such a sequence cannot
    /// exist in any store built through this alphabet). The read-only
    /// counterpart of [`Alphabet::seq_of_str`].
    pub fn lookup_seq_of_str(&self, text: &str) -> Option<Vec<Sym>> {
        let mut buf = [0u8; 4];
        text.chars()
            .map(|c| self.lookup(c.encode_utf8(&mut buf)))
            .collect()
    }

    /// Render a sequence of symbols as a string. Single-character symbol
    /// names are concatenated directly; longer names appear as `<name>`.
    pub fn render(&self, seq: &[Sym]) -> String {
        let mut out = String::with_capacity(seq.len());
        for &s in seq {
            let name = self.name(s);
            if name.chars().count() == 1 {
                out.push_str(name);
            } else {
                out.push('<');
                out.push_str(name);
                out.push('>');
            }
        }
        out
    }

    /// Iterate over all `(Sym, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }

    /// Intern the transducer end-of-tape marker `⊣`.
    pub fn end_marker(&mut self) -> Sym {
        self.intern(END_MARKER_NAME)
    }

    /// Intern the Turing-machine left-end marker `▷`.
    pub fn left_marker(&mut self) -> Sym {
        self.intern(LEFT_MARKER_NAME)
    }

    /// Intern the blank tape symbol.
    pub fn blank(&mut self) -> Sym {
        self.intern(BLANK_NAME)
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Alphabet")
            .field("len", &self.names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("a");
        let y = a.intern("a");
        assert_eq!(x, y);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let mut a = Alphabet::new();
        let x = a.intern("a");
        let y = a.intern("b");
        assert_ne!(x, y);
        assert_eq!(a.name(x), "a");
        assert_eq!(a.name(y), "b");
    }

    #[test]
    fn seq_of_str_round_trips() {
        let mut a = Alphabet::new();
        let s = a.seq_of_str("acgt");
        assert_eq!(s.len(), 4);
        assert_eq!(a.render(&s), "acgt");
    }

    #[test]
    fn compound_symbols_render_bracketed() {
        let mut a = Alphabet::new();
        let q = a.intern("q0");
        let x = a.intern_char('x');
        assert_eq!(a.render(&[q, x, q]), "<q0>x<q0>");
    }

    #[test]
    fn lookup_does_not_intern() {
        let a = Alphabet::new();
        assert_eq!(a.lookup("zzz"), None);
        assert!(a.is_empty());
    }

    #[test]
    fn special_markers_are_stable() {
        let mut a = Alphabet::new();
        let e1 = a.end_marker();
        let e2 = a.end_marker();
        assert_eq!(e1, e2);
        assert_ne!(a.left_marker(), a.blank());
    }

    #[test]
    fn with_chars_preloads() {
        let a = Alphabet::with_chars("01");
        assert_eq!(a.len(), 2);
        assert!(a.lookup("0").is_some());
        assert!(a.lookup("1").is_some());
    }

    #[test]
    fn unicode_chars_intern() {
        let mut a = Alphabet::new();
        let s = a.intern_char('⊣');
        assert_eq!(a.name(s), END_MARKER_NAME);
        assert_eq!(a.end_marker(), s);
    }
}
