//! A minimal reimplementation of the Fx hash used throughout `rustc`.
//!
//! The hot maps in this workspace are keyed by small integer handles
//! ([`crate::Sym`], [`crate::SeqId`]) or short symbol slices, for which
//! SipHash's HashDoS protection buys nothing and costs a lot. The sanctioned
//! dependency set does not include `rustc-hash`, so we inline the ~30-line
//! public-domain multiply-xor algorithm here (see DESIGN.md, "Design
//! deviations").

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (64-bit golden-ratio-ish prime).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state. Not HashDoS-resistant; only use for trusted keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let mut seen = HashSet::new();
        for k in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small dense keys");
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        // `write` must consume the same bytes regardless of chunk boundaries.
        let data: Vec<u8> = (0u8..32).collect();
        let mut whole = FxHasher::default();
        whole.write(&data);
        let mut split = FxHasher::default();
        split.write(&data[..16]);
        split.write(&data[16..]);
        // Note: Fx is not a streaming hash with this property in general
        // (chunking at non-8-byte boundaries changes word packing), but
        // 8-byte-aligned splits must agree.
        assert_eq!(whole.finish(), split.finish());
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&3), None);
    }
}
