//! Hash-consed sequence storage.
//!
//! Every sequence value that the engine touches — database constants,
//! subsequences added by extended-active-domain closure (Definition 2), and
//! sequences created by constructive terms or transducer calls — is interned
//! exactly once in a [`SeqStore`] and addressed by a [`SeqId`]. Equality of
//! sequence *values* is then equality of handles, which keeps fact tuples,
//! substitutions and domain sets small and cache-friendly.

use crate::alphabet::Sym;
use crate::fx::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// Handle of an interned sequence inside a [`SeqStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqId(pub u32);

/// Tag bit of a *provisional* [`SeqId`] handed out by [`PendingInterns`].
///
/// The epoch-frozen interning protocol lets evaluation workers resolve
/// sequence values against a shared `&SeqStore` while collecting genuinely
/// new values in a task-local [`PendingInterns`]. Those pending values get
/// ids with this bit set; [`PendingInterns::apply`] later interns them into
/// the real store (in a deterministic order) and reports the mapping from
/// provisional to real ids. Real ids never carry this bit —
/// [`SeqStore`] refuses to grow past `2^31` sequences.
pub const PROVISIONAL_BIT: u32 = 1 << 31;

impl SeqId {
    /// The raw interner index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this id is a provisional handle from [`PendingInterns`]
    /// rather than a real [`SeqStore`] id.
    #[inline]
    pub fn is_provisional(self) -> bool {
        self.0 & PROVISIONAL_BIT != 0
    }

    /// The index into the issuing [`PendingInterns`] of a provisional id.
    #[inline]
    pub fn provisional_index(self) -> usize {
        debug_assert!(self.is_provisional());
        (self.0 & !PROVISIONAL_BIT) as usize
    }
}

impl fmt::Debug for SeqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SeqId({})", self.0)
    }
}

/// Evaluate the paper's 1-based index pair `[n1 : n2]` against a sequence of
/// length `len` (Section 3.2).
///
/// Returns the half-open 0-based window `start..end` when the indexed term is
/// *defined*, i.e. when `1 ≤ n1 ≤ n2 + 1 ≤ len + 1`; `n1 == n2 + 1` denotes
/// the empty sequence. Returns `None` when the term is undefined (out of
/// bounds or crossed by more than one).
///
/// ```
/// use seqlog_sequence::index_window;
/// // The §3.2 table for the length-5 sequence "uvwxy":
/// assert_eq!(index_window(5, 3, 6), None);          // undefined
/// assert_eq!(index_window(5, 3, 5), Some((2, 5)));  // "wxy"
/// assert_eq!(index_window(5, 3, 4), Some((2, 4)));  // "wx"
/// assert_eq!(index_window(5, 3, 3), Some((2, 3)));  // "w"
/// assert_eq!(index_window(5, 3, 2), Some((2, 2)));  // ε
/// assert_eq!(index_window(5, 3, 1), None);          // undefined
/// ```
#[inline]
pub fn index_window(len: usize, n1: i64, n2: i64) -> Option<(usize, usize)> {
    let len = len as i64;
    if 1 <= n1 && n1 <= n2 + 1 && n2 <= len {
        Some((n1 as usize - 1, n2 as usize))
    } else {
        None
    }
}

/// An append-only, hash-consing store of sequences.
#[derive(Default, Clone)]
pub struct SeqStore {
    seqs: Vec<Arc<[Sym]>>,
    ids: FxHashMap<Arc<[Sym]>, SeqId>,
    /// Total symbols stored (for instrumentation).
    total_syms: usize,
    /// Ids already passed to [`SeqStore::close_windows`] (so re-closing a
    /// constant across evaluations costs one set probe, not O(len²)).
    closed: crate::fx::FxHashSet<SeqId>,
}

impl SeqStore {
    /// Create an empty store. The empty sequence ε is interned eagerly so
    /// that [`SeqStore::empty`] never allocates.
    pub fn new() -> Self {
        let mut s = Self::default();
        s.intern(&[]);
        s
    }

    /// Intern a sequence, returning its handle. Idempotent.
    pub fn intern(&mut self, syms: &[Sym]) -> SeqId {
        if let Some(&id) = self.ids.get(syms) {
            return id;
        }
        let arc: Arc<[Sym]> = Arc::from(syms);
        self.insert_arc(arc)
    }

    /// Intern a sequence from an owned vector (avoids one copy when fresh).
    pub fn intern_vec(&mut self, syms: Vec<Sym>) -> SeqId {
        if let Some(&id) = self.ids.get(syms.as_slice()) {
            return id;
        }
        let arc: Arc<[Sym]> = Arc::from(syms);
        self.insert_arc(arc)
    }

    fn insert_arc(&mut self, arc: Arc<[Sym]>) -> SeqId {
        assert!(
            self.seqs.len() < PROVISIONAL_BIT as usize,
            "sequence store overflow (provisional tag bit)"
        );
        let id = SeqId(u32::try_from(self.seqs.len()).expect("sequence store overflow"));
        self.total_syms += arc.len();
        self.seqs.push(arc.clone());
        self.ids.insert(arc, id);
        id
    }

    /// The handle of the empty sequence ε.
    #[inline]
    pub fn empty(&self) -> SeqId {
        SeqId(0)
    }

    /// The symbols of an interned sequence.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this store.
    #[inline]
    pub fn get(&self, id: SeqId) -> &[Sym] {
        &self.seqs[id.index()]
    }

    /// `len(σ)` — the length of an interned sequence.
    #[inline]
    pub fn len_of(&self, id: SeqId) -> usize {
        self.seqs[id.index()].len()
    }

    /// Look up a sequence value without interning it.
    pub fn lookup(&self, syms: &[Sym]) -> Option<SeqId> {
        self.ids.get(syms).copied()
    }

    /// Intern the concatenation `a · b` (the paper's constructive term
    /// `a • b`).
    pub fn concat(&mut self, a: SeqId, b: SeqId) -> SeqId {
        if self.len_of(a) == 0 {
            return b;
        }
        if self.len_of(b) == 0 {
            return a;
        }
        let mut v = Vec::with_capacity(self.len_of(a) + self.len_of(b));
        v.extend_from_slice(self.get(a));
        v.extend_from_slice(self.get(b));
        self.intern_vec(v)
    }

    /// Intern the single-symbol sequence `⟨s⟩`.
    pub fn singleton(&mut self, s: Sym) -> SeqId {
        self.intern(&[s])
    }

    /// Evaluate the indexed term `id[n1 : n2]` (1-based, inclusive, per
    /// Section 3.2) and intern the result. `None` when undefined.
    pub fn subseq(&mut self, id: SeqId, n1: i64, n2: i64) -> Option<SeqId> {
        let (start, end) = index_window(self.len_of(id), n1, n2)?;
        Some(self.intern_range(id, start, end))
    }

    /// Intern the window `id[start..end]` (0-based, half-open) without
    /// materializing an intermediate `Vec`.
    ///
    /// Fast paths: the full window returns `id` itself, and an
    /// already-interned window costs one hash lookup against the stored
    /// symbols in place. Only a genuinely new window allocates (the new
    /// `Arc<[Sym]>` itself).
    ///
    /// # Panics
    /// Panics if `id` is foreign or `start..end` is out of bounds.
    pub fn intern_range(&mut self, id: SeqId, start: usize, end: usize) -> SeqId {
        let seq = &self.seqs[id.index()];
        if start == 0 && end == seq.len() {
            return id;
        }
        if let Some(&found) = self.ids.get(&seq[start..end]) {
            return found;
        }
        // Miss: clone the Arc handle so the window can be copied out while
        // `self` is mutably borrowed for insertion.
        let seq = seq.clone();
        let arc: Arc<[Sym]> = Arc::from(&seq[start..end]);
        self.insert_arc(arc)
    }

    /// Resolve the window `id[start..end]` (0-based, half-open) to its
    /// interned handle **without interning**: `None` when the window's
    /// content has never been interned in this store.
    ///
    /// This is the read-only counterpart of [`SeqStore::intern_range`]: the
    /// full window is `id` itself, and any other window costs one in-place
    /// hash lookup against the stored symbols.
    ///
    /// # Panics
    /// Panics if `id` is foreign or `start..end` is out of bounds.
    #[inline]
    pub fn lookup_range(&self, id: SeqId, start: usize, end: usize) -> Option<SeqId> {
        let seq = &self.seqs[id.index()];
        if start == 0 && end == seq.len() {
            return Some(id);
        }
        self.ids.get(&seq[start..end]).copied()
    }

    /// Evaluate the indexed term `id[n1 : n2]` (1-based, inclusive, per
    /// Section 3.2) **without interning**.
    ///
    /// * `None` — the indexed term is undefined (out of bounds);
    /// * `Some(None)` — defined, but its value was never interned;
    /// * `Some(Some(w))` — defined with interned handle `w`.
    ///
    /// When the base is *window-closed* (every contiguous window interned —
    /// true for extended-active-domain members by Definition 2's closure
    /// invariant, and for program constants after [`SeqStore::close_windows`])
    /// the middle case cannot occur, which is what lets the matcher run on a
    /// shared `&SeqStore`.
    #[inline]
    pub fn subseq_lookup(&self, id: SeqId, n1: i64, n2: i64) -> Option<Option<SeqId>> {
        let (start, end) = index_window(self.len_of(id), n1, n2)?;
        Some(self.lookup_range(id, start, end))
    }

    /// Intern every contiguous window of `id`, making it *window-closed* so
    /// that [`SeqStore::subseq_lookup`] resolves all of its defined windows.
    /// Used to pre-close program constants before read-only matching (domain
    /// members are already closed by `ExtendedDomain::insert_closed`).
    /// Idempotent, and repeat calls for the same id cost one set probe.
    pub fn close_windows(&mut self, id: SeqId) {
        if !self.closed.insert(id) {
            return;
        }
        let len = self.len_of(id);
        for start in 0..len {
            for end in start + 1..=len {
                self.intern_range(id, start, end);
            }
        }
    }

    /// All start positions (0-based) at which `needle` occurs as a contiguous
    /// subsequence of `hay`. The empty needle occurs at every position
    /// `0..=len(hay)`.
    ///
    /// Scans with a memchr-style first-symbol skip: candidate positions are
    /// found by scanning for the needle's first symbol only, and the
    /// remaining symbols are compared just at those candidates — mismatching
    /// windows cost one symbol comparison instead of a window `==`.
    pub fn occurrences(&self, hay: SeqId, needle: SeqId) -> Vec<usize> {
        let h = self.get(hay);
        let n = self.get(needle);
        if n.is_empty() {
            return (0..=h.len()).collect();
        }
        if n.len() > h.len() {
            return Vec::new();
        }
        let (&first, rest) = n.split_first().expect("needle is non-empty");
        let limit = h.len() - n.len();
        let mut out = Vec::new();
        let mut start = 0;
        while start <= limit {
            // First-symbol prefilter over the remaining candidate window.
            match h[start..=limit].iter().position(|&s| s == first) {
                None => break,
                Some(off) => {
                    let pos = start + off;
                    if &h[pos + 1..pos + n.len()] == rest {
                        out.push(pos);
                    }
                    start = pos + 1;
                }
            }
        }
        out
    }

    /// Number of distinct sequences interned.
    pub fn count(&self) -> usize {
        self.seqs.len()
    }

    /// Total number of symbols across all interned sequences
    /// (instrumentation for the Theorem 8/9 model-size experiments).
    pub fn total_symbols(&self) -> usize {
        self.total_syms
    }
}

impl fmt::Debug for SeqStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeqStore")
            .field("sequences", &self.seqs.len())
            .field("total_symbols", &self.total_syms)
            .finish()
    }
}

/// The batched write side of the epoch-frozen interning protocol.
///
/// A round of evaluation freezes the [`SeqStore`] (workers hold `&SeqStore`
/// only) and gives each task its own `PendingInterns`. Sequence values that
/// miss the frozen store are deduped task-locally here and addressed by
/// *provisional* ids ([`PROVISIONAL_BIT`]` | local_index`). After the
/// parallel phase, [`PendingInterns::apply`] replays each task's pending
/// values into the real store **in task order**, which makes the final
/// interner contents independent of the number of worker threads: the value
/// → id assignment depends only on the task sequence, never on worker
/// interleaving (cross-task duplicates collapse because `apply` re-probes
/// the store).
#[derive(Default, Debug, Clone)]
pub struct PendingInterns {
    /// Pending values, in first-encounter order.
    syms: Vec<Box<[Sym]>>,
    /// Dedupe map over `syms` (local index values).
    ids: FxHashMap<Box<[Sym]>, u32>,
}

impl PendingInterns {
    /// Whether no value is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Number of pending values.
    #[inline]
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Resolve `syms` against the frozen store, falling back to a
    /// provisional id for a genuinely new value. Idempotent per value.
    pub fn resolve(&mut self, frozen: &SeqStore, syms: &[Sym]) -> SeqId {
        if let Some(id) = frozen.lookup(syms) {
            return id;
        }
        if let Some(&local) = self.ids.get(syms) {
            return SeqId(PROVISIONAL_BIT | local);
        }
        self.push_fresh(syms.into())
    }

    /// Owned-vector variant of [`PendingInterns::resolve`] (avoids one copy
    /// when the value is fresh).
    pub fn resolve_vec(&mut self, frozen: &SeqStore, syms: Vec<Sym>) -> SeqId {
        if let Some(id) = frozen.lookup(&syms) {
            return id;
        }
        if let Some(&local) = self.ids.get(syms.as_slice()) {
            return SeqId(PROVISIONAL_BIT | local);
        }
        self.push_fresh(syms.into_boxed_slice())
    }

    fn push_fresh(&mut self, boxed: Box<[Sym]>) -> SeqId {
        let local = u32::try_from(self.syms.len()).expect("pending intern overflow");
        assert!(local < PROVISIONAL_BIT, "pending intern overflow");
        self.syms.push(boxed.clone());
        self.ids.insert(boxed, local);
        SeqId(PROVISIONAL_BIT | local)
    }

    /// The symbols behind an id, whether real (resolved via `frozen`) or
    /// provisional (resolved locally).
    #[inline]
    pub fn syms_of<'a>(&'a self, frozen: &'a SeqStore, id: SeqId) -> &'a [Sym] {
        if id.is_provisional() {
            &self.syms[id.provisional_index()]
        } else {
            frozen.get(id)
        }
    }

    /// `len(σ)` for a real or provisional id.
    #[inline]
    pub fn len_of(&self, frozen: &SeqStore, id: SeqId) -> usize {
        self.syms_of(frozen, id).len()
    }

    /// Intern every pending value into `store` in first-encounter order and
    /// return the mapping `provisional index → real id`. Values another task
    /// already applied collapse to the existing id (`intern` is idempotent).
    pub fn apply(&self, store: &mut SeqStore) -> Vec<SeqId> {
        self.syms.iter().map(|syms| store.intern(syms)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn setup(text: &str) -> (Alphabet, SeqStore, SeqId) {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let syms = a.seq_of_str(text);
        let id = st.intern_vec(syms);
        (a, st, id)
    }

    #[test]
    fn interning_dedupes() {
        let (mut a, mut st, id) = setup("abc");
        let again = st.intern_vec(a.seq_of_str("abc"));
        assert_eq!(id, again);
        // ε + "abc"
        assert_eq!(st.count(), 2);
    }

    #[test]
    fn empty_is_preinterned() {
        let st = SeqStore::new();
        assert_eq!(st.len_of(st.empty()), 0);
        assert_eq!(st.lookup(&[]), Some(st.empty()));
    }

    #[test]
    fn concat_matches_paper_semantics() {
        let (mut a, mut st, _) = setup("ab");
        let x = st.intern_vec(a.seq_of_str("ab"));
        let y = st.intern_vec(a.seq_of_str("cd"));
        let xy = st.concat(x, y);
        assert_eq!(a.render(st.get(xy)), "abcd");
        // ε is a two-sided identity.
        let e = st.empty();
        assert_eq!(st.concat(e, x), x);
        assert_eq!(st.concat(x, e), x);
    }

    #[test]
    fn section_3_2_substitution_table() {
        // uvwxy[3:6] ↦ undefined, [3:5] ↦ wxy, [3:4] ↦ wx, [3:3] ↦ w,
        // [3:2] ↦ ε, [3:1] ↦ undefined.
        let (a, mut st, id) = setup("uvwxy");
        assert_eq!(st.subseq(id, 3, 6), None);
        let wxy = st.subseq(id, 3, 5).unwrap();
        assert_eq!(a.render(st.get(wxy)), "wxy");
        let wx = st.subseq(id, 3, 4).unwrap();
        assert_eq!(a.render(st.get(wx)), "wx");
        let w = st.subseq(id, 3, 3).unwrap();
        assert_eq!(a.render(st.get(w)), "w");
        assert_eq!(st.subseq(id, 3, 2), Some(st.empty()));
        assert_eq!(st.subseq(id, 3, 1), None);
    }

    #[test]
    fn subseq_full_range_returns_same_handle() {
        let (_, mut st, id) = setup("abc");
        assert_eq!(st.subseq(id, 1, 3), Some(id));
    }

    #[test]
    fn subseq_rejects_zero_and_negative_indices() {
        let (_, mut st, id) = setup("abc");
        assert_eq!(st.subseq(id, 0, 2), None);
        assert_eq!(st.subseq(id, -1, 2), None);
        // n1 = n2 + 1 is ε even at the right edge: s[4:3] on length 3.
        assert_eq!(st.subseq(id, 4, 3), Some(st.empty()));
        // ...but s[5:4] is undefined (n2 > len).
        assert_eq!(st.subseq(id, 5, 4), None);
    }

    #[test]
    fn occurrences_finds_all_matches() {
        let (mut a, mut st, hay) = setup("abab");
        let ab = st.intern_vec(a.seq_of_str("ab"));
        assert_eq!(st.occurrences(hay, ab), vec![0, 2]);
        let eps = st.empty();
        assert_eq!(st.occurrences(hay, eps), vec![0, 1, 2, 3, 4]);
        let z = st.intern_vec(a.seq_of_str("zz"));
        assert!(st.occurrences(hay, z).is_empty());
    }

    #[test]
    fn occurrences_needle_longer_than_hay() {
        let (mut a, mut st, hay) = setup("ab");
        let long = st.intern_vec(a.seq_of_str("abc"));
        assert!(st.occurrences(hay, long).is_empty());
    }

    #[test]
    fn occurrences_pathological_repeated_symbol() {
        // Worst case for the naive scan: "aaa…a" hay and "aa…a" needle —
        // every position is a first-symbol candidate and almost every
        // window matches. The result must be every offset 0..=hay-needle.
        let (mut a, mut st, hay) = setup(&"a".repeat(512));
        let needle = st.intern_vec(a.seq_of_str(&"a".repeat(256)));
        let occ = st.occurrences(hay, needle);
        assert_eq!(occ.len(), 512 - 256 + 1);
        assert_eq!(occ.first(), Some(&0));
        assert_eq!(occ.last(), Some(&256));
        assert!(occ.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn occurrences_prefilter_rejects_near_misses() {
        // Needles whose first symbol is frequent but whose tail mismatches:
        // the skip loop must still find exactly the true matches.
        let (mut a, mut st, hay) = setup("abaabaaabab");
        let ab = st.intern_vec(a.seq_of_str("ab"));
        assert_eq!(st.occurrences(hay, ab), vec![0, 3, 7, 9]);
        let aab = st.intern_vec(a.seq_of_str("aab"));
        assert_eq!(st.occurrences(hay, aab), vec![2, 6]);
        // No occurrence of a symbol absent from the hay.
        let z = st.intern_vec(a.seq_of_str("zb"));
        assert!(st.occurrences(hay, z).is_empty());
    }

    #[test]
    fn intern_range_matches_slice_interning() {
        let (mut a, mut st, id) = setup("abcabc");
        // Full range is the identity.
        assert_eq!(st.intern_range(id, 0, 6), id);
        // A fresh window interns to the same id as explicit interning.
        let bc = st.intern_range(id, 1, 3);
        assert_eq!(st.lookup(&a.seq_of_str("bc")), Some(bc));
        // A repeated window (second occurrence) hits the fast path and
        // returns the same handle — no duplicate interning.
        assert_eq!(st.intern_range(id, 4, 6), bc);
        // Empty window is ε.
        assert_eq!(st.intern_range(id, 2, 2), st.empty());
    }

    #[test]
    fn lookup_range_never_interns() {
        let (mut a, mut st, id) = setup("abcd");
        let before = st.count();
        // Full window resolves to the base itself.
        assert_eq!(st.lookup_range(id, 0, 4), Some(id));
        // A never-interned window misses without polluting the store.
        assert_eq!(st.lookup_range(id, 1, 3), None);
        assert_eq!(st.count(), before);
        // After interning, the same lookup hits.
        let bc = st.intern_vec(a.seq_of_str("bc"));
        assert_eq!(st.lookup_range(id, 1, 3), Some(bc));
    }

    #[test]
    fn subseq_lookup_matches_subseq_on_closed_bases() {
        let (_, mut st, id) = setup("uvwxy");
        st.close_windows(id);
        let before = st.count();
        for n1 in -1..=7i64 {
            for n2 in -1..=7i64 {
                let looked = st.subseq_lookup(id, n1, n2);
                let interned = st.subseq(id, n1, n2);
                match (looked, interned) {
                    (None, None) => {}
                    (Some(Some(a)), Some(b)) => assert_eq!(a, b, "[{n1}:{n2}]"),
                    other => panic!("closed base disagreed at [{n1}:{n2}]: {other:?}"),
                }
            }
        }
        // Neither route added anything: the base was closed.
        assert_eq!(st.count(), before);
    }

    #[test]
    fn subseq_lookup_reports_uninterned_windows() {
        let (_, st, id) = setup("abcd");
        assert_eq!(st.subseq_lookup(id, 2, 3), Some(None)); // "bc" not interned
        assert_eq!(st.subseq_lookup(id, 0, 2), None); // undefined
        assert_eq!(st.subseq_lookup(id, 1, 4), Some(Some(id))); // full window
    }

    #[test]
    fn pending_interns_resolve_hits_frozen_store_first() {
        let (mut a, mut st, id) = setup("abc");
        let mut pending = PendingInterns::default();
        // Already-interned values resolve to the real id, nothing pends.
        assert_eq!(pending.resolve(&st, &a.seq_of_str("abc")), id);
        assert!(pending.is_empty());
        // A fresh value gets a provisional id, deduped on repeat.
        let p1 = pending.resolve(&st, &a.seq_of_str("zz"));
        assert!(p1.is_provisional());
        assert_eq!(p1.provisional_index(), 0);
        let p2 = pending.resolve_vec(&st, a.seq_of_str("zz"));
        assert_eq!(p1, p2);
        assert_eq!(pending.len(), 1);
        // syms_of / len_of work for both real and provisional ids.
        assert_eq!(pending.syms_of(&st, id), st.get(id));
        assert_eq!(pending.len_of(&st, p1), 2);
        // Applying interns in first-encounter order.
        let before = st.count();
        let resolved = pending.apply(&mut st);
        assert_eq!(resolved.len(), 1);
        assert_eq!(st.count(), before + 1);
        assert_eq!(st.lookup(&a.seq_of_str("zz")), Some(resolved[0]));
        assert!(!resolved[0].is_provisional());
    }

    #[test]
    fn pending_interns_apply_collapses_cross_task_duplicates() {
        let (mut a, mut st, _) = setup("abc");
        // Two "tasks" independently pend the same fresh value plus one
        // distinct value each; applying in task order must dedupe the shared
        // value and keep first-encounter order deterministic.
        let mut t1 = PendingInterns::default();
        let mut t2 = PendingInterns::default();
        let s1 = t1.resolve(&st, &a.seq_of_str("xy"));
        let _ = t1.resolve(&st, &a.seq_of_str("only1"));
        let s2 = t2.resolve(&st, &a.seq_of_str("xy"));
        assert_eq!(s1.provisional_index(), 0);
        assert_eq!(s2.provisional_index(), 0);
        let r1 = t1.apply(&mut st);
        let r2 = t2.apply(&mut st);
        assert_eq!(r1[0], r2[0], "shared value collapses to one real id");
        assert_eq!(st.lookup(&a.seq_of_str("xy")), Some(r1[0]));
        assert_eq!(st.lookup(&a.seq_of_str("only1")), Some(r1[1]));
    }

    #[test]
    fn index_window_edges() {
        // Whole sequence.
        assert_eq!(index_window(3, 1, 3), Some((0, 3)));
        // Empty at the left edge: s[1:0].
        assert_eq!(index_window(3, 1, 0), Some((0, 0)));
        // Empty sequence: only s[1:0] is defined.
        assert_eq!(index_window(0, 1, 0), Some((0, 0)));
        assert_eq!(index_window(0, 1, 1), None);
    }
}
