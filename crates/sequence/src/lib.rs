//! Sequence substrate for the Sequence Datalog reproduction.
//!
//! This crate implements the primitives of Section 2.1 of Bonner & Mecca,
//! *Sequences, Datalog, and Transducers* (JCSS 57, 1998):
//!
//! * a finite **alphabet** Σ of interned symbols ([`Alphabet`], [`Sym`]),
//! * **sequences** over Σ, stored hash-consed in a [`SeqStore`] and addressed
//!   by cheap copyable [`SeqId`] handles (term graphs over owned `Vec`s are
//!   painful in Rust; interning gives O(1) equality and removes ownership
//!   friction),
//! * **contiguous subsequences** and the paper's 1-based indexing rules
//!   ([`index_window`], Section 3.2),
//! * the **extended active domain** of an interpretation ([`ExtendedDomain`],
//!   Definitions 2–3): a set of sequences closed under contiguous
//!   subsequences, together with the integer range `0..=lmax+1`.
//!
//! Everything upstream (the Datalog engine, the transducer machinery, the
//! Turing-machine compilers) works in terms of `Sym` and `SeqId`.

pub mod alphabet;
pub mod domain;
pub mod fx;
pub mod store;

pub use alphabet::{Alphabet, Sym};
pub use domain::{DomainMark, ExtendedDomain};
pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use store::{index_window, PendingInterns, SeqId, SeqStore, PROVISIONAL_BIT};
