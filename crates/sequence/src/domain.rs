//! The extended active domain (Definitions 2 and 3).
//!
//! The *active domain* of an interpretation is the set of sequences occurring
//! in it; its *extension* adds (1) every contiguous subsequence of every
//! member and (2) the integers `0..=lmax+1`, where `lmax` is the maximum
//! member length. Rule evaluation ranges substitutions over this domain, and
//! the domain **grows** whenever a constructive head or a transducer call
//! creates a sequence — that growth is exactly what separates safe structural
//! recursion from unsafe constructive recursion (Section 1.2).
//!
//! [`ExtendedDomain`] maintains the subsequence closure *incrementally*: the
//! invariant is that whenever a sequence is a member, so are all of its
//! contiguous subsequences. Members are recorded in insertion order so the
//! semi-naive evaluator can iterate over just the delta added in a round.

use crate::fx::FxHashSet;
use crate::store::{SeqId, SeqStore};
use std::fmt;

/// A set of interned sequences closed under contiguous subsequences,
/// together with the induced integer range (Definition 2).
#[derive(Default, Clone)]
pub struct ExtendedDomain {
    members: FxHashSet<SeqId>,
    order: Vec<SeqId>,
    /// Members bucketed by sequence length (for enumerations whose index
    /// pattern pins the solution length, e.g. `X[a:end] = v`).
    by_len: Vec<Vec<SeqId>>,
    max_len: usize,
}

/// A restore point for [`ExtendedDomain::truncate`]: everything inserted
/// after [`ExtendedDomain::mark`] can be popped off again, exactly reversing
/// the insertions (members are appended in insertion order, so the suffix
/// beyond the mark is precisely what was added since).
#[derive(Clone, Copy, Debug)]
pub struct DomainMark {
    members: usize,
    max_len: usize,
}

impl ExtendedDomain {
    /// Create an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `id` and close under contiguous subsequences. Returns the
    /// number of sequences actually added (0 when `id` was already present).
    ///
    /// Closure maintains the invariant of Definition 2: for each member, all
    /// its contiguous subsequences — there are at most `k(k+1)/2 + 1` of them
    /// for length `k` (Section 2.1) — are members too.
    pub fn insert_closed(&mut self, store: &mut SeqStore, id: SeqId) -> usize {
        if self.members.contains(&id) {
            return 0;
        }
        let mut added = 0;
        // ε is a subsequence of everything.
        added += usize::from(self.insert_raw(store.empty(), 0));

        let len = store.len_of(id);
        self.max_len = self.max_len.max(len);

        // Enumerate windows longest-first so that the early-out below fires
        // as often as possible: if a window is already a member, the closure
        // invariant guarantees all of its sub-windows are members as well,
        // but windows of *other* positions still need visiting, so we only
        // skip the identical window. `intern_range` resolves each window
        // with one in-place hash lookup (no intermediate `Vec`, no
        // re-borrowed symbol slice per window).
        for start in 0..len {
            for end in (start + 1..=len).rev() {
                let wid = store.intern_range(id, start, end);
                if self.insert_raw(wid, end - start) {
                    added += 1;
                } else {
                    // The window is already a member, so by the closure
                    // invariant all its sub-windows — including every shorter
                    // window at this start position — are members too.
                    break;
                }
            }
        }
        added
    }

    fn insert_raw(&mut self, id: SeqId, len: usize) -> bool {
        if self.members.insert(id) {
            self.order.push(id);
            if self.by_len.len() <= len {
                self.by_len.resize_with(len + 1, Vec::new);
            }
            self.by_len[len].push(id);
            true
        } else {
            false
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: SeqId) -> bool {
        self.members.contains(&id)
    }

    /// Number of member sequences. This is the paper's *database size*
    /// measure (Definition 11).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the domain has no members.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `lmax` — the maximum length of a member sequence.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The largest integer in the extended domain, `lmax + 1`
    /// (Definition 2, item 3).
    pub fn int_upper(&self) -> i64 {
        self.max_len as i64 + 1
    }

    /// Whether integer `n` belongs to the extended domain,
    /// i.e. `0 ≤ n ≤ lmax + 1`.
    pub fn contains_int(&self, n: i64) -> bool {
        0 <= n && n <= self.int_upper()
    }

    /// Iterate over members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = SeqId> + '_ {
        self.order.iter().copied()
    }

    /// Members whose sequence length is exactly `len` (arbitrary order).
    /// Lets callers whose constraints pin the solution length (e.g.
    /// `X[a:end] = v` forces `len(X) = a-1+len(v)`) skip the full domain.
    pub fn members_of_len(&self, len: usize) -> &[SeqId] {
        self.by_len.get(len).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Members added at or after snapshot index `since` (see [`Self::len`]
    /// for obtaining snapshots). Supports semi-naive domain deltas.
    pub fn members_since(&self, since: usize) -> &[SeqId] {
        &self.order[since.min(self.order.len())..]
    }

    /// Adopt `order` as the member order, without changing the member set.
    /// `order` must be exactly a permutation of the current members (same
    /// length, every element a member, no duplicates); returns `false` and
    /// leaves the domain untouched otherwise.
    ///
    /// This exists for snapshot restore: membership is always *recomputed*
    /// by closing over the restored interpretation — no on-disk format can
    /// install a member the facts do not justify — but the closure visits
    /// members in relation-iteration order, while a live session inserted
    /// them chronologically (asserts and commits interleaved). Member order
    /// is observable: clauses with free variables enumerate the domain in
    /// insertion order, so derived tuples land in an order that depends on
    /// it. Restoring the recorded order — once verified to be a mere
    /// permutation of the recomputed set — makes a recovered session
    /// bit-for-bit identical to the uncrashed one going forward.
    pub fn reorder(&mut self, store: &SeqStore, order: &[SeqId]) -> bool {
        if order.len() != self.order.len() {
            return false;
        }
        let mut seen = FxHashSet::default();
        for &id in order {
            if !self.members.contains(&id) || !seen.insert(id) {
                return false;
            }
        }
        self.order.clear();
        self.order.extend_from_slice(order);
        for bucket in &mut self.by_len {
            bucket.clear();
        }
        // Same member set, so every length bucket already exists and
        // `max_len` is unchanged.
        for &id in order {
            self.by_len[store.len_of(id)].push(id);
        }
        true
    }

    /// A restore point for [`ExtendedDomain::truncate`].
    pub fn mark(&self) -> DomainMark {
        DomainMark {
            members: self.order.len(),
            max_len: self.max_len,
        }
    }

    /// Roll the domain back to `mark`, removing every member inserted since.
    /// `store` resolves member lengths so the length buckets unwind; each
    /// popped member is necessarily the most recent entry of its bucket.
    /// Used by the session's exact budget enforcement to refuse an assert
    /// whose window closure would exceed `max_domain` without leaving a
    /// partial closure behind.
    pub fn truncate(&mut self, store: &SeqStore, mark: DomainMark) {
        debug_assert!(mark.members <= self.order.len(), "stale domain mark");
        while self.order.len() > mark.members {
            let id = self.order.pop().expect("non-empty beyond mark");
            self.members.remove(&id);
            let popped = self.by_len[store.len_of(id)].pop();
            debug_assert_eq!(popped, Some(id), "length buckets out of sync");
        }
        self.max_len = mark.max_len;
    }
}

impl fmt::Debug for ExtendedDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExtendedDomain")
            .field("members", &self.order.len())
            .field("max_len", &self.max_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn insert_str(
        a: &mut Alphabet,
        st: &mut SeqStore,
        d: &mut ExtendedDomain,
        text: &str,
    ) -> SeqId {
        let id = {
            let syms = a.seq_of_str(text);
            st.intern_vec(syms)
        };
        d.insert_closed(st, id);
        id
    }

    #[test]
    fn abc_has_seven_subsequences() {
        // Section 2.1: the contiguous subsequences of "abc" are
        // ε, a, b, c, ab, bc, abc — seven in total.
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        insert_str(&mut a, &mut st, &mut d, "abc");
        assert_eq!(d.len(), 7);
        for text in ["", "a", "b", "c", "ab", "bc", "abc"] {
            let id = st.intern_vec(a.seq_of_str(text));
            assert!(d.contains(id), "missing subsequence {text:?}");
        }
    }

    #[test]
    fn distinct_symbols_meet_the_counting_bound() {
        // k(k+1)/2 + 1 distinct subsequences for a sequence of k distinct
        // symbols.
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        insert_str(&mut a, &mut st, &mut d, "abcdefgh");
        assert_eq!(d.len(), 8 * 9 / 2 + 1);
    }

    #[test]
    fn repeated_symbols_dedupe() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        insert_str(&mut a, &mut st, &mut d, "aaaa");
        // Subsequences of "aaaa": ε, a, aa, aaa, aaaa.
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn insertion_is_idempotent() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        let id = insert_str(&mut a, &mut st, &mut d, "abab");
        let before = d.len();
        assert_eq!(d.insert_closed(&mut st, id), 0);
        assert_eq!(d.len(), before);
    }

    #[test]
    fn integer_range_tracks_lmax() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        insert_str(&mut a, &mut st, &mut d, "abc");
        assert_eq!(d.max_len(), 3);
        assert_eq!(d.int_upper(), 4);
        assert!(d.contains_int(0));
        assert!(d.contains_int(4));
        assert!(!d.contains_int(5));
        assert!(!d.contains_int(-1));
    }

    #[test]
    fn delta_iteration_sees_only_new_members() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        insert_str(&mut a, &mut st, &mut d, "ab");
        let snapshot = d.len();
        insert_str(&mut a, &mut st, &mut d, "cd");
        let delta: Vec<SeqId> = d.members_since(snapshot).to_vec();
        // "cd" adds c, d, cd (ε and nothing else shared).
        assert_eq!(delta.len(), 3);
        for id in delta {
            assert!(d.contains(id));
        }
    }

    #[test]
    fn closure_invariant_after_overlapping_inserts() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        insert_str(&mut a, &mut st, &mut d, "abcd");
        insert_str(&mut a, &mut st, &mut d, "bcde");
        // Every window of every member must be a member.
        let members: Vec<SeqId> = d.iter().collect();
        for id in members {
            let syms = st.get(id).to_vec();
            for s in 0..syms.len() {
                for e in s + 1..=syms.len() {
                    let w = st.intern(&syms[s..e]);
                    assert!(d.contains(w));
                }
            }
        }
    }

    #[test]
    fn truncate_exactly_reverses_insertions() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        insert_str(&mut a, &mut st, &mut d, "ab");
        let before_len = d.len();
        let mark = d.mark();
        insert_str(&mut a, &mut st, &mut d, "cdefg");
        assert!(d.len() > before_len);
        assert_eq!(d.max_len(), 5);
        d.truncate(&st, mark);
        assert_eq!(d.len(), before_len);
        assert_eq!(d.max_len(), 2);
        let cd = st.intern(&a.seq_of_str("cd"));
        assert!(!d.contains(cd), "rolled-back member must be gone");
        assert!(d.members_of_len(5).is_empty());
        // Re-inserting after a rollback restores the same set.
        insert_str(&mut a, &mut st, &mut d, "cdefg");
        assert!(d.contains(cd));
        assert_eq!(d.max_len(), 5);
        // Truncating to the current state is a no-op.
        let here = d.mark();
        let len = d.len();
        d.truncate(&st, here);
        assert_eq!(d.len(), len);
    }

    #[test]
    fn reorder_accepts_permutations_and_rejects_everything_else() {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let mut d = ExtendedDomain::new();
        insert_str(&mut a, &mut st, &mut d, "ab");
        insert_str(&mut a, &mut st, &mut d, "cd");
        let mut order: Vec<SeqId> = d.iter().collect();
        order.reverse();
        assert!(d.reorder(&st, &order));
        let now: Vec<SeqId> = d.iter().collect();
        assert_eq!(now, order, "iteration follows the adopted order");
        let len2: Vec<SeqId> = order
            .iter()
            .copied()
            .filter(|&id| st.len_of(id) == 2)
            .collect();
        assert_eq!(
            d.members_of_len(2),
            &len2[..],
            "length buckets follow the adopted order"
        );
        // Wrong length, duplicate, and non-member orders are all rejected
        // without disturbing the domain.
        assert!(!d.reorder(&st, &order[1..]));
        let mut dup = order.clone();
        dup[0] = dup[1];
        assert!(!d.reorder(&st, &dup));
        let mut alien = order.clone();
        alien[0] = st.intern(&a.seq_of_str("zzz"));
        assert!(!d.reorder(&st, &alien));
        let after: Vec<SeqId> = d.iter().collect();
        assert_eq!(after, order, "rejected orders leave the domain unchanged");
    }

    #[test]
    fn empty_domain_has_empty_int_range() {
        let d = ExtendedDomain::new();
        assert_eq!(d.len(), 0);
        assert!(d.is_empty());
        // lmax = 0 ⇒ integers {0, 1}.
        assert!(d.contains_int(1));
        assert!(!d.contains_int(2));
    }
}
