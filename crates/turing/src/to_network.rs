//! The Theorem 5 compiler: Turing machine → acyclic order-2 transducer
//! network.
//!
//! The network follows the proof's four-part layout:
//!
//! 1. **Pad** — an order-1, 3-input machine computing `w ↦ w·␣·␣`, so the
//!    counter chain works for short inputs;
//! 2. **Counter chain** — `d` copies of Example 6.1's `T_square`, producing
//!    a sequence of length `(n+2)^(2^d)` ≥ the machine's running time (the
//!    proof's σ_count; `d` plays the role of ⌈log₂ k⌉ for an `n^k`-time
//!    machine);
//! 3. **Init** — an order-1 machine emitting the initial configuration
//!    `q0 ▷ w`;
//! 4. **Driver** — the order-2 machine `T_M`: it first copies the initial
//!    configuration to its output, then, for every counter symbol, invokes
//!    the **step subtransducer**, which rewrites one machine configuration
//!    into the next (encoded `b1 … b_{i-1} q b_i … b_L`, state symbol
//!    before the scanned cell). A halted configuration passes through
//!    unchanged, so surplus counter steps are harmless;
//! 5. **Decode** — an order-1 machine stripping the marker, blanks, and the
//!    state symbol from the final configuration.
//!
//! The step subtransducer is a *base* transducer synthesized from the TM's
//! δ: it scans the old configuration with a one-symbol delay buffer (a left
//! move must emit the new state symbol *before* the already-read previous
//! cell), holds at most three pending symbols in its control state, and
//! flushes them while draining its other tapes. Appendix-level care: a right
//! move off the tape end appends a blank (the configuration grows), exactly
//! like footnote 4's padding in the Theorem 1 construction.

use crate::machine::{Move, TuringMachine};
use seqlog_sequence::{Alphabet, FxHashMap, Sym};
use seqlog_transducer::{
    library, synthesize_multi, HeadMove, Network, OutputAction, SynthStep, Transducer,
};

/// Options for [`tm_to_network`].
#[derive(Clone, Copy, Debug)]
pub struct NetworkOptions {
    /// Number of squarings in the counter chain: the counter has length
    /// `(n+2)^(2^d)`, which must dominate the machine's running time.
    /// Use 1 for linear-time machines, 2 for quadratic-time ones.
    pub counter_squarings: usize,
}

impl Default for NetworkOptions {
    fn default() -> Self {
        Self {
            counter_squarings: 1,
        }
    }
}

/// Per-machine symbol environment for the configuration encoding.
struct ConfigSyms {
    /// State symbol per TM state, `q:{name}:{state}`.
    state_syms: Vec<Sym>,
    /// All tape symbols (marker, blank, data/working).
    tape_syms: Vec<Sym>,
    blank: Sym,
}

impl ConfigSyms {
    fn new(tm: &TuringMachine, alphabet: &mut Alphabet) -> Self {
        let state_syms: Vec<Sym> = (0..tm.state_names.len())
            .map(|i| alphabet.intern(&format!("q:{}:{}", tm.name, tm.state_names[i])))
            .collect();
        Self {
            state_syms,
            tape_syms: tm.full_tape_alphabet(),
            blank: tm.blank,
        }
    }

    fn all_config_syms(&self) -> Vec<Sym> {
        let mut v = self.tape_syms.clone();
        v.extend_from_slice(&self.state_syms);
        v
    }
}

/// Compile `tm` into an order-2 network computing the same sequence
/// function (Theorem 5). The network requires non-empty inputs.
pub fn tm_to_network(tm: &TuringMachine, alphabet: &mut Alphabet, opts: NetworkOptions) -> Network {
    let syms = ConfigSyms::new(tm, alphabet);
    let end = alphabet.end_marker();

    // Data symbols that may appear in the input sequence.
    let data_syms: Vec<Sym> = tm.tape_syms.clone();
    // Counter tape symbols: padded input = data plus blank.
    let counter_syms: Vec<Sym> = {
        let mut v = data_syms.clone();
        v.push(tm.blank);
        v
    };

    let pad = pad3(alphabet, &data_syms, syms.blank, end);
    let square = library::square(alphabet, &counter_syms);
    let init = init_machine(tm, alphabet, &counter_syms, &data_syms, &syms, end);
    let step = step_machine(tm, alphabet, &counter_syms, &syms, end);
    let driver = driver_machine(tm, alphabet, &counter_syms, &syms, step, end);
    let decode = decode_machine(tm, alphabet, &syms, end);

    let mut net = Network::new(format!("net_{}", tm.name));
    let w = net.add_input();
    let padded = net.add_machine(pad, &[w, w, w]);
    let mut counter = padded;
    for _ in 0..opts.counter_squarings {
        counter = net.add_machine(square.clone(), &[counter]);
    }
    let init_cfg = net.add_machine(init, &[counter, w]);
    let run = net.add_machine(driver, &[counter, init_cfg]);
    net.add_machine(decode, &[run]);
    net
}

/// `(w, w, w) ↦ w·␣·␣` — order-1 padding so the counter is long enough even
/// for length-1 inputs.
fn pad3(_alphabet: &mut Alphabet, data_syms: &[Sym], blank: Sym, end: Sym) -> Transducer {
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum S {
        CopyW,
        Pad1,
        Pad2,
    }
    let universes = vec![data_syms.to_vec(); 3];
    synthesize_multi(
        "t_pad3",
        3,
        end,
        &universes,
        vec![],
        S::CopyW,
        |s| {
            match s {
                S::CopyW => "copy_w",
                S::Pad1 => "pad_1",
                S::Pad2 => "pad_2",
            }
            .to_string()
        },
        move |s, read| {
            let mv = |i: usize| {
                let mut m = vec![HeadMove::Stay; 3];
                m[i] = HeadMove::Consume;
                m
            };
            match s {
                S::CopyW if read[0] != end => Some(SynthStep {
                    next: S::CopyW,
                    moves: mv(0),
                    output: OutputAction::Emit(read[0]),
                }),
                S::CopyW if read[1] != end => Some(SynthStep {
                    next: S::Pad1,
                    moves: mv(1),
                    output: OutputAction::Emit(blank),
                }),
                S::CopyW => None,
                S::Pad1 if read[1] != end => Some(SynthStep {
                    next: S::Pad1,
                    moves: mv(1),
                    output: OutputAction::Epsilon,
                }),
                S::Pad1 if read[2] != end => Some(SynthStep {
                    next: S::Pad2,
                    moves: mv(2),
                    output: OutputAction::Emit(blank),
                }),
                S::Pad1 => None,
                S::Pad2 if read[2] != end => Some(SynthStep {
                    next: S::Pad2,
                    moves: mv(2),
                    output: OutputAction::Epsilon,
                }),
                S::Pad2 => None,
            }
        },
    )
    .expect("pad3 is well-formed")
}

/// `(counter, w) ↦ q0 ▷ w` — the initial configuration (the counter tape
/// supplies the two extra steps needed to emit `q0` and `▷`).
fn init_machine(
    tm: &TuringMachine,
    alphabet: &mut Alphabet,
    counter_syms: &[Sym],
    data_syms: &[Sym],
    syms: &ConfigSyms,
    end: Sym,
) -> Transducer {
    let _ = alphabet;
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum S {
        EmitState,
        EmitMarker,
        CopyW,
        Drain,
    }
    let q0_sym = syms.state_syms[tm.initial.0 as usize];
    let marker = tm.left_marker;
    let universes = vec![counter_syms.to_vec(), data_syms.to_vec()];
    synthesize_multi(
        format!("t_init_{}", tm.name),
        2,
        end,
        &universes,
        vec![],
        S::EmitState,
        |s| {
            match s {
                S::EmitState => "emit_state",
                S::EmitMarker => "emit_marker",
                S::CopyW => "copy_w",
                S::Drain => "drain",
            }
            .to_string()
        },
        move |s, read| {
            let mv = |i: usize| {
                let mut m = vec![HeadMove::Stay; 2];
                m[i] = HeadMove::Consume;
                m
            };
            match s {
                S::EmitState if read[0] != end => Some(SynthStep {
                    next: S::EmitMarker,
                    moves: mv(0),
                    output: OutputAction::Emit(q0_sym),
                }),
                S::EmitState => None, // counter too short (input was empty)
                S::EmitMarker if read[0] != end => Some(SynthStep {
                    next: S::CopyW,
                    moves: mv(0),
                    output: OutputAction::Emit(marker),
                }),
                S::EmitMarker => None,
                S::CopyW if read[1] != end => Some(SynthStep {
                    next: S::CopyW,
                    moves: mv(1),
                    output: OutputAction::Emit(read[1]),
                }),
                S::CopyW | S::Drain if read[0] != end => Some(SynthStep {
                    next: S::Drain,
                    moves: mv(0),
                    output: OutputAction::Epsilon,
                }),
                S::CopyW | S::Drain => None,
            }
        },
    )
    .expect("init is well-formed")
}

/// The configuration-step base transducer: 3 inputs `(counter, init-config,
/// old-config)`, output = the successor configuration (or the same
/// configuration if halted). See the module docs for the buffering scheme.
fn step_machine(
    tm: &TuringMachine,
    alphabet: &mut Alphabet,
    counter_syms: &[Sym],
    syms: &ConfigSyms,
    end: Sym,
) -> Transducer {
    let _ = alphabet;
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum S {
        Scan { prev: Option<Sym> },
        AfterState { prev: Option<Sym>, q: Sym },
        Flush { queue: Vec<Sym> },
        Drain { queue: Vec<Sym> },
    }

    let delta: FxHashMap<(Sym, Sym), (Sym, Sym, Move)> = tm
        .iter_transitions()
        .map(|(q, read, t)| {
            (
                (syms.state_syms[q.0 as usize], read),
                (syms.state_syms[t.next.0 as usize], t.write, t.mv),
            )
        })
        .collect();
    let state_set: Vec<Sym> = syms.state_syms.clone();
    let blank = syms.blank;

    // Universe per tape: counter / initial config / configurations.
    let init_cfg_syms: Vec<Sym> = {
        let mut v = tm.full_tape_alphabet();
        v.push(syms.state_syms[tm.initial.0 as usize]);
        v
    };
    let universes = vec![counter_syms.to_vec(), init_cfg_syms, syms.all_config_syms()];

    let is_state = move |s: Sym| state_set.contains(&s);
    let is_state = &is_state;

    let describe = |s: &S| match s {
        S::Scan { prev: None } => "scan".to_string(),
        S::Scan { prev: Some(p) } => format!("scan_p{}", p.0),
        S::AfterState { prev, q } => {
            format!("after_q{}_p{}", q.0, prev.map(|p| p.0 as i64).unwrap_or(-1))
        }
        S::Flush { queue } => {
            format!(
                "flush_{}",
                queue
                    .iter()
                    .map(|s| s.0.to_string())
                    .collect::<Vec<_>>()
                    .join("_")
            )
        }
        S::Drain { queue } => {
            format!(
                "drain_{}",
                queue
                    .iter()
                    .map(|s| s.0.to_string())
                    .collect::<Vec<_>>()
                    .join("_")
            )
        }
    };

    synthesize_multi(
        format!("t_step_{}", tm.name),
        3,
        end,
        &universes,
        vec![],
        S::Scan { prev: None },
        describe,
        move |s, read| {
            let mv = |i: usize| {
                let mut m = vec![HeadMove::Stay; 3];
                m[i] = HeadMove::Consume;
                m
            };
            // Consuming a non-config tape while flushing/draining: prefer
            // the counter, fall back to the init-config tape.
            let drain_mv = || {
                if read[0] != end {
                    Some(mv(0))
                } else if read[1] != end {
                    Some(mv(1))
                } else {
                    None
                }
            };
            // Entering Drain: pad a trailing state symbol with a blank (the
            // head moved right past the tape end — the configuration grows).
            let to_drain = |mut queue: Vec<Sym>| {
                if queue.last().copied().is_some_and(is_state) {
                    queue.push(blank);
                }
                let moves = drain_mv()?;
                let output = if queue.is_empty() {
                    OutputAction::Epsilon
                } else {
                    OutputAction::Emit(queue.remove(0))
                };
                Some(SynthStep {
                    next: S::Drain { queue },
                    moves,
                    output,
                })
            };

            let c2 = read[2];
            match s {
                S::Scan { prev } => {
                    if c2 == end {
                        return to_drain(prev.map(|p| vec![p]).unwrap_or_default());
                    }
                    if is_state(c2) {
                        return Some(SynthStep {
                            next: S::AfterState { prev: *prev, q: c2 },
                            moves: mv(2),
                            output: OutputAction::Epsilon,
                        });
                    }
                    Some(SynthStep {
                        next: S::Scan { prev: Some(c2) },
                        moves: mv(2),
                        output: match prev {
                            Some(p) => OutputAction::Emit(*p),
                            None => OutputAction::Epsilon,
                        },
                    })
                }
                S::AfterState { prev, q } => {
                    if c2 == end {
                        // State symbol at the very end: pass through (and
                        // pad, via to_drain's trailing-state rule).
                        let mut queue = Vec::new();
                        if let Some(p) = prev {
                            queue.push(*p);
                        }
                        queue.push(*q);
                        return to_drain(queue);
                    }
                    if is_state(c2) {
                        return None; // malformed: two adjacent state symbols
                    }
                    let b = c2;
                    let mut queue: Vec<Sym> = Vec::with_capacity(4);
                    match delta.get(&(*q, b)) {
                        None => {
                            // Halted (or stuck) configuration: pass through.
                            if let Some(p) = prev {
                                queue.push(*p);
                            }
                            queue.push(*q);
                            queue.push(b);
                        }
                        Some(&(qn, w, mvmt)) => match mvmt {
                            Move::Stay => {
                                if let Some(p) = prev {
                                    queue.push(*p);
                                }
                                queue.push(qn);
                                queue.push(w);
                            }
                            Move::Left => {
                                // ... p q b ... ↦ ... q' p w ...
                                let p = (*prev)?; // left of the marker: reject
                                queue.push(qn);
                                queue.push(p);
                                queue.push(w);
                            }
                            Move::Right => {
                                // ... p q b ... ↦ ... p w q' ...
                                if let Some(p) = prev {
                                    queue.push(*p);
                                }
                                queue.push(w);
                                queue.push(qn);
                            }
                        },
                    }
                    let front = queue.remove(0);
                    Some(SynthStep {
                        next: S::Flush { queue },
                        moves: mv(2),
                        output: OutputAction::Emit(front),
                    })
                }
                S::Flush { queue } => {
                    if c2 == end {
                        return to_drain(queue.clone());
                    }
                    if is_state(c2) {
                        return None; // malformed: second state symbol
                    }
                    let mut queue = queue.clone();
                    queue.push(c2);
                    let front = queue.remove(0);
                    Some(SynthStep {
                        next: S::Flush { queue },
                        moves: mv(2),
                        output: OutputAction::Emit(front),
                    })
                }
                S::Drain { queue } => {
                    let moves = drain_mv()?;
                    let mut queue = queue.clone();
                    let output = if queue.is_empty() {
                        OutputAction::Epsilon
                    } else {
                        OutputAction::Emit(queue.remove(0))
                    };
                    Some(SynthStep {
                        next: S::Drain { queue },
                        moves,
                        output,
                    })
                }
            }
        },
    )
    .expect("step machine is well-formed")
}

/// The order-2 driver `T_M`: copy the initial configuration to the output,
/// then call the step subtransducer once per counter symbol.
fn driver_machine(
    tm: &TuringMachine,
    alphabet: &mut Alphabet,
    counter_syms: &[Sym],
    syms: &ConfigSyms,
    step: Transducer,
    end: Sym,
) -> Transducer {
    let _ = alphabet;
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum S {
        Copy,
        Pump,
    }
    let init_cfg_syms: Vec<Sym> = {
        let mut v = tm.full_tape_alphabet();
        v.push(syms.state_syms[tm.initial.0 as usize]);
        v
    };
    let universes = vec![counter_syms.to_vec(), init_cfg_syms];
    synthesize_multi(
        format!("t_driver_{}", tm.name),
        2,
        end,
        &universes,
        vec![step],
        S::Copy,
        |s| match s {
            S::Copy => "copy_init".to_string(),
            S::Pump => "pump".to_string(),
        },
        move |s, read| {
            let mv = |i: usize| {
                let mut m = vec![HeadMove::Stay; 2];
                m[i] = HeadMove::Consume;
                m
            };
            match s {
                S::Copy if read[1] != end => Some(SynthStep {
                    next: S::Copy,
                    moves: mv(1),
                    output: OutputAction::Emit(read[1]),
                }),
                S::Copy | S::Pump if read[0] != end => Some(SynthStep {
                    next: S::Pump,
                    moves: mv(0),
                    output: OutputAction::Call(0),
                }),
                S::Copy | S::Pump => None,
            }
        },
    )
    .expect("driver is well-formed")
}

/// Strip marker, blanks and state symbols from the final configuration.
fn decode_machine(
    tm: &TuringMachine,
    alphabet: &mut Alphabet,
    syms: &ConfigSyms,
    end: Sym,
) -> Transducer {
    let _ = alphabet;
    let data: Vec<Sym> = tm
        .tape_syms
        .iter()
        .copied()
        .filter(|&s| s != tm.blank)
        .collect();
    let universes = vec![syms.all_config_syms()];
    let keep = data;
    synthesize_multi(
        format!("t_decode_{}", tm.name),
        1,
        end,
        &universes,
        vec![],
        (),
        |_| "decode".to_string(),
        move |_, read| {
            if read[0] == end {
                return None;
            }
            Some(SynthStep {
                next: (),
                moves: vec![HeadMove::Consume],
                output: if keep.contains(&read[0]) {
                    OutputAction::Emit(read[0])
                } else {
                    OutputAction::Epsilon
                },
            })
        },
    )
    .expect("decode is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::strip_trailing_blanks;
    use crate::samples;
    use seqlog_transducer::{ExecLimits, ExecStats};

    /// Direct TM output (blanks stripped everywhere — decode drops inner
    /// blanks too, and our sample machines leave none in the payload).
    fn direct(tm: &TuringMachine, a: &mut Alphabet, input: &str) -> String {
        let syms = a.seq_of_str(input);
        let run = tm.run(&syms, 10_000_000).unwrap();
        let out = strip_trailing_blanks(run.output, tm.blank);
        a.render(&out)
    }

    fn via_network(tm: &TuringMachine, a: &mut Alphabet, input: &str, squarings: usize) -> String {
        let net = tm_to_network(
            tm,
            a,
            NetworkOptions {
                counter_squarings: squarings,
            },
        );
        assert_eq!(net.order(), 2, "Theorem 5 networks have order 2");
        let syms = a.seq_of_str(input);
        let mut stats = ExecStats::default();
        let out = net
            .run(&[&syms], &ExecLimits::default(), &mut stats)
            .expect("network run succeeds");
        a.render(&out)
    }

    #[test]
    fn theorem_5_complement() {
        let mut a = Alphabet::new();
        let tm = samples::complement_tm(&mut a);
        for input in ["0", "1", "01", "110010"] {
            assert_eq!(
                via_network(&tm, &mut a, input, 1),
                direct(&tm, &mut a, input),
                "input {input}"
            );
        }
    }

    #[test]
    fn theorem_5_increment() {
        let mut a = Alphabet::new();
        let tm = samples::increment_tm(&mut a);
        for input in ["0", "1", "11", "1011"] {
            assert_eq!(
                via_network(&tm, &mut a, input, 1),
                direct(&tm, &mut a, input),
                "input {input}"
            );
        }
    }

    #[test]
    fn theorem_5_parity() {
        let mut a = Alphabet::new();
        let tm = samples::parity_tm(&mut a);
        for input in ["0", "1", "101", "1111"] {
            assert_eq!(
                via_network(&tm, &mut a, input, 1),
                direct(&tm, &mut a, input),
                "input {input}"
            );
        }
    }

    #[test]
    fn theorem_5_quadratic_time_sort() {
        let mut a = Alphabet::new();
        let tm = samples::sort_bits_tm(&mut a);
        for input in ["10", "110", "1010"] {
            assert_eq!(
                via_network(&tm, &mut a, input, 2),
                direct(&tm, &mut a, input),
                "input {input}"
            );
        }
    }

    #[test]
    fn theorem_5_abc_recognizer() {
        let mut a = Alphabet::new();
        let tm = samples::abc_recognizer_tm(&mut a);
        for input in ["abc", "aabbcc", "acb", "ab"] {
            assert_eq!(
                via_network(&tm, &mut a, input, 2),
                direct(&tm, &mut a, input),
                "input {input}"
            );
        }
    }

    #[test]
    fn network_shape_matches_the_proof() {
        let mut a = Alphabet::new();
        let tm = samples::complement_tm(&mut a);
        let net = tm_to_network(
            &tm,
            &mut a,
            NetworkOptions {
                counter_squarings: 2,
            },
        );
        // pad + 2 squarers + init + driver + decode.
        assert_eq!(net.num_machines(), 6);
        assert_eq!(net.order(), 2);
        // Longest path: pad → sq → sq → init → driver → decode.
        assert_eq!(net.diameter(), 6);
    }
}
