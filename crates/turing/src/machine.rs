//! Deterministic single-tape Turing machines with a left-end marker.
//!
//! This is the machine model of the Theorem 1 proof: the tape begins with
//! `▷`, which the machine never overwrites and never moves left of; blank
//! cells `␣` extend the tape on demand to the right. The machine halts when
//! it enters a state with no applicable transition and that state is marked
//! halting; entering a non-halting state with no transition is an error
//! (a hung machine).
//!
//! The *output* of a halted machine is its tape contents minus the left-end
//! marker. Because both the Theorem 1 Datalog simulation and the Theorem 5
//! network simulation pad the tape with extra trailing blanks, comparisons
//! use [`strip_trailing_blanks`] on both sides.

use seqlog_sequence::{Alphabet, FxHashMap, Sym};
use std::fmt;

/// A machine control state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TmState(pub u32);

impl fmt::Debug for TmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TmState({})", self.0)
    }
}

/// Head movement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay.
    Stay,
}

/// One transition: δ(state, scanned) = (next, write, move).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TmTransition {
    /// Successor state.
    pub next: TmState,
    /// Symbol written over the scanned cell.
    pub write: Sym,
    /// Head movement.
    pub mv: Move,
}

/// Errors from running a machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TmError {
    /// No transition from a non-halting state.
    Hung {
        /// State name.
        state: String,
        /// Head position (0-based; 0 is the marker).
        position: usize,
    },
    /// Step budget exhausted (the machine may loop forever).
    StepLimit(u64),
    /// The machine tried to move left of, or overwrite, the marker.
    MarkerViolation {
        /// State name.
        state: String,
    },
}

impl fmt::Display for TmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Hung { state, position } => {
                write!(f, "machine hung in state {state} at cell {position}")
            }
            Self::StepLimit(n) => write!(f, "step limit {n} exhausted"),
            Self::MarkerViolation { state } => {
                write!(f, "marker violation in state {state}")
            }
        }
    }
}

impl std::error::Error for TmError {}

/// The result of a halted run.
#[derive(Clone, Debug)]
pub struct TmRun {
    /// Tape contents minus the left-end marker (including blanks).
    pub output: Vec<Sym>,
    /// Steps performed.
    pub steps: u64,
    /// The halting state.
    pub final_state: TmState,
}

/// A deterministic single-tape Turing machine (Theorem 1 model).
#[derive(Clone)]
pub struct TuringMachine {
    /// Machine name.
    pub name: String,
    /// State names, indexed by [`TmState`].
    pub state_names: Vec<String>,
    /// Initial state (head starts on the marker).
    pub initial: TmState,
    /// Halting states.
    pub halting: Vec<TmState>,
    /// δ.
    pub transitions: FxHashMap<(TmState, Sym), TmTransition>,
    /// The left-end marker `▷`.
    pub left_marker: Sym,
    /// The blank symbol `␣`.
    pub blank: Sym,
    /// Every tape symbol the machine may read or write, **excluding** the
    /// marker and blank (data plus any working symbols).
    pub tape_syms: Vec<Sym>,
}

impl TuringMachine {
    /// The name of a state.
    pub fn state_name(&self, q: TmState) -> &str {
        &self.state_names[q.0 as usize]
    }

    /// Is `q` a halting state?
    pub fn is_halting(&self, q: TmState) -> bool {
        self.halting.contains(&q)
    }

    /// Run the machine on `input` (which must not contain the marker or
    /// blank), with a step budget.
    pub fn run(&self, input: &[Sym], max_steps: u64) -> Result<TmRun, TmError> {
        let mut tape: Vec<Sym> = Vec::with_capacity(input.len() + 2);
        tape.push(self.left_marker);
        tape.extend_from_slice(input);
        let mut head = 0usize;
        let mut state = self.initial;
        let mut steps = 0u64;

        loop {
            let scanned = tape[head];
            let Some(&t) = self.transitions.get(&(state, scanned)) else {
                if self.is_halting(state) {
                    return Ok(TmRun {
                        output: tape[1..].to_vec(),
                        steps,
                        final_state: state,
                    });
                }
                return Err(TmError::Hung {
                    state: self.state_name(state).to_string(),
                    position: head,
                });
            };
            steps += 1;
            if steps > max_steps {
                return Err(TmError::StepLimit(max_steps));
            }
            if head == 0 && (t.write != self.left_marker || t.mv == Move::Left) {
                return Err(TmError::MarkerViolation {
                    state: self.state_name(state).to_string(),
                });
            }
            tape[head] = t.write;
            match t.mv {
                Move::Left => head -= 1,
                Move::Stay => {}
                Move::Right => {
                    head += 1;
                    if head == tape.len() {
                        tape.push(self.blank);
                    }
                }
            }
            state = t.next;
        }
    }

    /// Iterate over δ entries.
    pub fn iter_transitions(&self) -> impl Iterator<Item = (TmState, Sym, TmTransition)> + '_ {
        self.transitions.iter().map(|(&(q, s), &t)| (q, s, t))
    }

    /// All symbols that may appear on the tape: marker, blank, and
    /// `tape_syms`.
    pub fn full_tape_alphabet(&self) -> Vec<Sym> {
        let mut out = vec![self.left_marker, self.blank];
        for &s in &self.tape_syms {
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }
}

impl fmt::Debug for TuringMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TuringMachine")
            .field("name", &self.name)
            .field("states", &self.state_names.len())
            .field("transitions", &self.transitions.len())
            .finish()
    }
}

/// Builder for Turing machines.
pub struct TmBuilder {
    name: String,
    state_names: Vec<String>,
    by_name: FxHashMap<String, TmState>,
    halting: Vec<TmState>,
    transitions: FxHashMap<(TmState, Sym), TmTransition>,
    left_marker: Sym,
    blank: Sym,
    tape_syms: Vec<Sym>,
}

impl TmBuilder {
    /// Start building; interns `▷` and `␣` in `alphabet`.
    pub fn new(name: impl Into<String>, alphabet: &mut Alphabet) -> Self {
        Self {
            name: name.into(),
            state_names: Vec::new(),
            by_name: FxHashMap::default(),
            halting: Vec::new(),
            transitions: FxHashMap::default(),
            left_marker: alphabet.left_marker(),
            blank: alphabet.blank(),
            tape_syms: Vec::new(),
        }
    }

    /// Declare (or fetch) a state. The first state is initial.
    pub fn state(&mut self, name: impl Into<String>) -> TmState {
        let name = name.into();
        if let Some(&q) = self.by_name.get(&name) {
            return q;
        }
        let q = TmState(self.state_names.len() as u32);
        self.by_name.insert(name.clone(), q);
        self.state_names.push(name);
        q
    }

    /// Mark a state halting.
    pub fn halt(&mut self, q: TmState) {
        if !self.halting.contains(&q) {
            self.halting.push(q);
        }
    }

    /// Register a data/working tape symbol.
    pub fn tape_sym(&mut self, s: Sym) {
        if s != self.left_marker && s != self.blank && !self.tape_syms.contains(&s) {
            self.tape_syms.push(s);
        }
    }

    /// Add δ(from, read) = (to, write, mv).
    ///
    /// # Panics
    /// Panics on duplicate (from, read) entries (determinism).
    pub fn on(&mut self, from: TmState, read: Sym, to: TmState, write: Sym, mv: Move) -> &mut Self {
        self.tape_sym(read);
        self.tape_sym(write);
        let prev = self.transitions.insert(
            (from, read),
            TmTransition {
                next: to,
                write,
                mv,
            },
        );
        assert!(prev.is_none(), "duplicate transition in {}", self.name);
        self
    }

    /// Finalize.
    pub fn build(self) -> TuringMachine {
        TuringMachine {
            name: self.name,
            state_names: self.state_names,
            initial: TmState(0),
            halting: self.halting,
            transitions: self.transitions,
            left_marker: self.left_marker,
            blank: self.blank,
            tape_syms: self.tape_syms,
        }
    }
}

/// Remove trailing blanks from a tape image (both simulations pad the tape
/// to the right; see the module docs).
pub fn strip_trailing_blanks(mut tape: Vec<Sym>, blank: Sym) -> Vec<Sym> {
    while tape.last() == Some(&blank) {
        tape.pop();
    }
    tape
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-state machine that erases its input.
    fn eraser(a: &mut Alphabet) -> TuringMachine {
        let x = a.intern_char('x');
        let blank = a.blank();
        let marker = a.left_marker();
        let mut b = TmBuilder::new("eraser", a);
        let q0 = b.state("q0");
        let scan = b.state("scan");
        let qh = b.state("halt");
        b.halt(qh);
        b.on(q0, marker, scan, marker, Move::Right);
        b.on(scan, x, scan, blank, Move::Right);
        b.on(scan, blank, qh, blank, Move::Stay);
        b.build()
    }

    #[test]
    fn eraser_erases() {
        let mut a = Alphabet::new();
        let m = eraser(&mut a);
        let x = a.intern_char('x');
        let run = m.run(&[x, x, x], 1000).unwrap();
        let out = strip_trailing_blanks(run.output, m.blank);
        assert!(out.is_empty());
        assert_eq!(run.steps, 5); // marker + 3 erases + final blank read
    }

    #[test]
    fn empty_input_halts_immediately_after_scan() {
        let mut a = Alphabet::new();
        let m = eraser(&mut a);
        let run = m.run(&[], 1000).unwrap();
        assert!(strip_trailing_blanks(run.output, m.blank).is_empty());
    }

    #[test]
    fn hung_machine_reports_state() {
        let mut a = Alphabet::new();
        let m = eraser(&mut a);
        let y = a.intern_char('y'); // no transition on 'y'
        match m.run(&[y], 1000) {
            Err(TmError::Hung { state, position }) => {
                assert_eq!(state, "scan");
                assert_eq!(position, 1);
            }
            other => panic!("expected Hung, got {other:?}"),
        }
    }

    #[test]
    fn step_limit_fires_on_loops() {
        let mut a = Alphabet::new();
        let marker = a.left_marker();
        let mut b = TmBuilder::new("loop", &mut a);
        let q0 = b.state("q0");
        b.on(q0, marker, q0, marker, Move::Stay);
        let m = b.build();
        match m.run(&[], 100) {
            Err(TmError::StepLimit(100)) => {}
            other => panic!("expected StepLimit, got {other:?}"),
        }
    }

    #[test]
    fn marker_violation_is_detected() {
        let mut a = Alphabet::new();
        let marker = a.left_marker();
        let blank = a.blank();
        let mut b = TmBuilder::new("bad", &mut a);
        let q0 = b.state("q0");
        b.on(q0, marker, q0, blank, Move::Stay); // overwrites ▷
        let m = b.build();
        assert!(matches!(
            m.run(&[], 10),
            Err(TmError::MarkerViolation { .. })
        ));
    }

    #[test]
    fn strip_trailing_blanks_only_strips_tail() {
        let mut a = Alphabet::new();
        let x = a.intern_char('x');
        let blank = a.blank();
        assert_eq!(
            strip_trailing_blanks(vec![x, blank, x, blank, blank], blank),
            vec![x, blank, x]
        );
    }
}
