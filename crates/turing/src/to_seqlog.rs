//! The Theorem 1 compiler: Turing machine → Sequence Datalog program.
//!
//! Machine configurations become facts `conf(state, left, scanned, right)`;
//! one rule per δ entry advances reachable configurations; `input`/`output`
//! glue the simulation to the Definition 5 query convention. The generated
//! program witnesses the paper's completeness theorem: Sequence Datalog
//! expresses every partial recursive sequence function.
//!
//! Faithful details from the proof:
//!
//! * right moves append a blank to the right part (`Xr[2:end] ++ "␣"`), so
//!   the simulated tape is effectively infinite — and, exactly as footnote 4
//!   observes, the simulated tape carries extra trailing blanks relative to
//!   a direct run (tests compare modulo trailing blanks);
//! * a non-halting machine makes the least fixpoint infinite (the heart of
//!   the Theorem 2 undecidability proof), which surfaces here as a budget
//!   error from the evaluator;
//! * we add γ1 blank-padding (`X ++ "␣"`) and a head-on-marker output rule,
//!   two boundary cases the paper's prose glosses over (see DESIGN.md).

use crate::machine::{Move, TuringMachine};
use seqlog_core::ast::{Atom, BodyLit, Clause, IndexTerm, IndexedBase, Program, SeqTerm};
use seqlog_sequence::{Alphabet, SeqStore, Sym};

/// Compile `tm` to a Sequence Datalog program over the `input`/`output`
/// predicates (Definition 5 / Theorem 1).
pub fn tm_to_seqlog(tm: &TuringMachine, alphabet: &mut Alphabet, store: &mut SeqStore) -> Program {
    let mut clauses = Vec::new();

    let state_const = |alphabet: &mut Alphabet, store: &mut SeqStore, q| {
        let sym = alphabet.intern(&format!("q:{}:{}", tm.name, tm.state_name(q)));
        SeqTerm::Const(store.intern(&[sym]))
    };
    let sym_const = |store: &mut SeqStore, s: Sym| SeqTerm::Const(store.intern(&[s]));
    let var = |n: &str| SeqTerm::Var(n.to_string());

    let marker = sym_const(store, tm.left_marker);
    let blank = sym_const(store, tm.blank);
    let empty = SeqTerm::Const(store.empty());

    // γ1: the initial configuration is reachable. We pad one blank so the
    // right part is never empty (the right-move rule keeps it non-empty
    // from then on).
    let q0 = state_const(alphabet, store, tm.initial);
    clauses.push(Clause {
        head: Atom {
            pred: "conf".into(),
            args: vec![
                q0,
                empty.clone(),
                marker.clone(),
                SeqTerm::Concat(Box::new(var("X")), Box::new(blank.clone())),
            ],
        },
        body: vec![BodyLit::Atom(Atom {
            pred: "input".into(),
            args: vec![var("X")],
        })],
    });

    // One rule per transition.
    for (q, read, t) in tm.iter_transitions() {
        let qc = state_const(alphabet, store, q);
        let qn = state_const(alphabet, store, t.next);
        let a = sym_const(store, read);
        let b = sym_const(store, t.write);

        let body = vec![BodyLit::Atom(Atom {
            pred: "conf".into(),
            args: vec![qc, var("Xl"), a, var("Xr")],
        })];

        let head_args = match t.mv {
            // δ(q,a) = (q', b, −): overwrite in place.
            Move::Stay => vec![qn, var("Xl"), b, var("Xr")],
            // δ(q,a) = (q', b, ←): the last symbol of Xl becomes scanned.
            Move::Left => vec![
                qn,
                SeqTerm::Indexed {
                    base: IndexedBase::Var("Xl".into()),
                    lo: IndexTerm::Int(1),
                    hi: IndexTerm::Sub(Box::new(IndexTerm::End), Box::new(IndexTerm::Int(1))),
                },
                SeqTerm::Indexed {
                    base: IndexedBase::Var("Xl".into()),
                    lo: IndexTerm::End,
                    hi: IndexTerm::End,
                },
                SeqTerm::Concat(Box::new(b), Box::new(var("Xr"))),
            ],
            // δ(q,a) = (q', b, →): consume the first symbol of Xr and pad
            // the tape with a fresh blank (footnote 4).
            Move::Right => vec![
                qn,
                SeqTerm::Concat(Box::new(var("Xl")), Box::new(b)),
                SeqTerm::Indexed {
                    base: IndexedBase::Var("Xr".into()),
                    lo: IndexTerm::Int(1),
                    hi: IndexTerm::Int(1),
                },
                SeqTerm::Concat(
                    Box::new(SeqTerm::Indexed {
                        base: IndexedBase::Var("Xr".into()),
                        lo: IndexTerm::Int(2),
                        hi: IndexTerm::End,
                    }),
                    Box::new(blank.clone()),
                ),
            ],
        };
        clauses.push(Clause {
            head: Atom {
                pred: "conf".into(),
                args: head_args,
            },
            body,
        });
    }

    // γ2: extract the tape on halting. The paper's rule handles a head
    // strictly right of the marker (Xl = ▷·…); a second rule covers halting
    // with the head on the marker itself.
    for &qh in &tm.halting {
        let qc = state_const(alphabet, store, qh);
        clauses.push(Clause {
            head: Atom {
                pred: "output".into(),
                args: vec![SeqTerm::Concat(
                    Box::new(SeqTerm::Indexed {
                        base: IndexedBase::Var("Xl".into()),
                        lo: IndexTerm::Int(2),
                        hi: IndexTerm::End,
                    }),
                    Box::new(SeqTerm::Concat(Box::new(var("S")), Box::new(var("Xr")))),
                )],
            },
            body: vec![BodyLit::Atom(Atom {
                pred: "conf".into(),
                args: vec![qc.clone(), var("Xl"), var("S"), var("Xr")],
            })],
        });
        clauses.push(Clause {
            head: Atom {
                pred: "output".into(),
                args: vec![var("Xr")],
            },
            body: vec![BodyLit::Atom(Atom {
                pred: "conf".into(),
                args: vec![qc, empty.clone(), marker.clone(), var("Xr")],
            })],
        });
    }

    Program { clauses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::strip_trailing_blanks;
    use crate::samples;
    use seqlog_core::database::Database;
    use seqlog_core::engine::Engine;
    use seqlog_core::eval::{EvalConfig, EvalError};

    /// Run `tm` on `input` both directly and via the Theorem 1 Datalog
    /// simulation; compare outputs modulo trailing blanks.
    fn differential(tm: &TuringMachine, engine: &mut Engine, input: &str) {
        let program = tm_to_seqlog(tm, &mut engine.alphabet, &mut engine.store);

        let direct = {
            let syms = engine.alphabet.seq_of_str(input);
            let run = tm.run(&syms, 1_000_000).expect("direct run halts");
            let out = strip_trailing_blanks(run.output, tm.blank);
            engine.alphabet.render(&out)
        };

        let mut db = Database::new();
        engine.add_fact(&mut db, "input", &[input]);
        let model = engine
            .evaluate(&program, &db)
            .expect("simulation terminates");
        let outputs = engine.rendered_tuples(&model, "output");
        assert!(!outputs.is_empty(), "no output derived for {input:?}");
        // All derived outputs agree modulo trailing blanks (they differ only
        // in padding).
        let mut stripped: Vec<String> = outputs
            .iter()
            .map(|t| {
                let mut s = t[0].clone();
                while s.ends_with('␣') {
                    s.pop();
                }
                s
            })
            .collect();
        stripped.sort();
        stripped.dedup();
        assert_eq!(
            stripped,
            vec![direct.clone()],
            "Theorem 1 mismatch on {input:?}"
        );
    }

    #[test]
    fn theorem_1_complement() {
        let mut e = Engine::new();
        let tm = samples::complement_tm(&mut e.alphabet);
        for input in ["", "0", "1", "0110", "111000"] {
            differential(&tm, &mut e, input);
        }
    }

    #[test]
    fn theorem_1_increment() {
        let mut e = Engine::new();
        let tm = samples::increment_tm(&mut e.alphabet);
        for input in ["", "0", "1", "11", "1101"] {
            differential(&tm, &mut e, input);
        }
    }

    #[test]
    fn theorem_1_parity() {
        let mut e = Engine::new();
        let tm = samples::parity_tm(&mut e.alphabet);
        for input in ["", "1", "10", "1111", "10101"] {
            differential(&tm, &mut e, input);
        }
    }

    #[test]
    fn theorem_2_nonhalting_machine_exhausts_budget() {
        // A machine that runs right forever: its Datalog simulation has an
        // infinite least fixpoint (the Theorem 2 construction), which the
        // evaluator surfaces as a budget error.
        let mut e = Engine::new();
        let marker = e.alphabet.left_marker();
        let blank = e.alphabet.blank();
        let mut b = crate::machine::TmBuilder::new("tm_runaway", &mut e.alphabet);
        let q0 = b.state("q0");
        let run = b.state("run");
        b.on(q0, marker, run, marker, crate::machine::Move::Right);
        b.on(run, blank, run, blank, crate::machine::Move::Right);
        let tm = b.build();

        let program = tm_to_seqlog(&tm, &mut e.alphabet, &mut e.store);
        let mut db = Database::new();
        e.add_fact(&mut db, "input", &[""]);
        let err = e
            .evaluate_with(&program, &db, &EvalConfig::probe())
            .expect_err("diverging simulation must hit a budget");
        assert!(matches!(err, EvalError::Budget { .. }), "{err}");
    }

    #[test]
    fn generated_program_is_constructively_cyclic() {
        // The simulation recurses through construction (conf → conf with
        // ++ in the head): exactly the unsafe recursion the strongly safe
        // fragment forbids.
        let mut e = Engine::new();
        let tm = samples::complement_tm(&mut e.alphabet);
        let program = tm_to_seqlog(&tm, &mut e.alphabet, &mut e.store);
        let report = e.analyze(&program);
        assert!(!report.strongly_safe);
    }
}
