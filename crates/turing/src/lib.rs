//! # seqlog-turing — the Turing-machine substrate of the expressibility
//! proofs
//!
//! Bonner & Mecca's two central expressibility results both run through
//! Turing machines:
//!
//! * **Theorem 1** — Sequence Datalog expresses every partial recursive
//!   sequence function, by compiling a machine into `conf`-predicate rules
//!   ([`to_seqlog`]);
//! * **Theorem 5** — acyclic order-2 transducer networks express exactly
//!   the PTIME sequence functions, by compiling a polynomial-time machine
//!   into a pad → counter-chain → init → driver → decode network
//!   ([`to_network`]).
//!
//! [`machine`] provides the deterministic single-tape model with a left-end
//! marker (the Theorem 1 conventions); [`samples`] provides clean-tape
//! machines (complement, parity, increment, bit sort, `aⁿbⁿcⁿ`) used by the
//! differential tests and benchmarks.

pub mod machine;
pub mod samples;
pub mod to_network;
pub mod to_seqlog;

pub use machine::{
    strip_trailing_blanks, Move, TmBuilder, TmError, TmRun, TmState, TmTransition, TuringMachine,
};
pub use to_network::{tm_to_network, NetworkOptions};
pub use to_seqlog::tm_to_seqlog;
