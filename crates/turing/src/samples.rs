//! Sample Turing machines used by the expressibility experiments.
//!
//! Each machine follows the Theorem 1 conventions (left-end marker, blank
//! padding) and halts with a *clean* tape — the meaningful output followed
//! only by blanks — so that outputs are comparable across the three
//! execution routes (direct, Theorem 1 Datalog simulation, Theorem 5
//! network simulation) after stripping trailing blanks.
//!
//! | machine | function | time |
//! |---------|----------|------|
//! | [`complement_tm`] | bitwise complement | O(n) |
//! | [`parity_tm`] | parity of the number of 1s | O(n) |
//! | [`increment_tm`] | binary increment, LSB first | O(n) |
//! | [`sort_bits_tm`] | sort bits (0s before 1s), bubble style | O(n²) |
//! | [`abc_recognizer_tm`] | decide `aⁿbⁿcⁿ` (Example 1.3's language) | O(n²) |

use crate::machine::{Move, TmBuilder, TuringMachine};
use seqlog_sequence::Alphabet;

/// Bitwise complement of a binary string (the restructuring stratified
/// Sequence Datalog cannot express, Section 5).
pub fn complement_tm(a: &mut Alphabet) -> TuringMachine {
    let zero = a.intern_char('0');
    let one = a.intern_char('1');
    let marker = a.left_marker();
    let blank = a.blank();
    let mut b = TmBuilder::new("tm_complement", a);
    let q0 = b.state("q0");
    let scan = b.state("scan");
    let done = b.state("done");
    b.halt(done);
    b.on(q0, marker, scan, marker, Move::Right);
    b.on(scan, zero, scan, one, Move::Right);
    b.on(scan, one, scan, zero, Move::Right);
    b.on(scan, blank, done, blank, Move::Stay);
    b.build()
}

/// Parity of the number of 1s: input erased, answer (`0` or `1`) written in
/// the first cell.
pub fn parity_tm(a: &mut Alphabet) -> TuringMachine {
    let zero = a.intern_char('0');
    let one = a.intern_char('1');
    let marker = a.left_marker();
    let blank = a.blank();
    let mut b = TmBuilder::new("tm_parity", a);
    let q0 = b.state("q0");
    let even = b.state("even");
    let odd = b.state("odd");
    let ret_even = b.state("ret_even");
    let ret_odd = b.state("ret_odd");
    let write_even = b.state("write_even");
    let write_odd = b.state("write_odd");
    let done = b.state("done");
    b.halt(done);
    b.on(q0, marker, even, marker, Move::Right);
    // Scan right, erasing, tracking parity in the state.
    b.on(even, zero, even, blank, Move::Right);
    b.on(even, one, odd, blank, Move::Right);
    b.on(odd, zero, odd, blank, Move::Right);
    b.on(odd, one, even, blank, Move::Right);
    b.on(even, blank, ret_even, blank, Move::Left);
    b.on(odd, blank, ret_odd, blank, Move::Left);
    // Return to the marker.
    b.on(ret_even, blank, ret_even, blank, Move::Left);
    b.on(ret_odd, blank, ret_odd, blank, Move::Left);
    b.on(ret_even, marker, write_even, marker, Move::Right);
    b.on(ret_odd, marker, write_odd, marker, Move::Right);
    // Write the answer in cell 1.
    b.on(write_even, blank, done, zero, Move::Stay);
    b.on(write_odd, blank, done, one, Move::Stay);
    b.build()
}

/// Binary increment with the least significant bit first: flip 1s to 0s
/// until a 0 (or the tape end) absorbs the carry.
pub fn increment_tm(a: &mut Alphabet) -> TuringMachine {
    let zero = a.intern_char('0');
    let one = a.intern_char('1');
    let marker = a.left_marker();
    let blank = a.blank();
    let mut b = TmBuilder::new("tm_increment", a);
    let q0 = b.state("q0");
    let carry = b.state("carry");
    let done = b.state("done");
    b.halt(done);
    b.on(q0, marker, carry, marker, Move::Right);
    b.on(carry, one, carry, zero, Move::Right);
    b.on(carry, zero, done, one, Move::Stay);
    b.on(carry, blank, done, one, Move::Stay); // all ones: grow the tape
    b.build()
}

/// Sort the bits of a binary string (all 0s before all 1s) by repeated
/// adjacent swaps — a clean-tape O(n²) machine for the Theorem 5 tests.
pub fn sort_bits_tm(a: &mut Alphabet) -> TuringMachine {
    let zero = a.intern_char('0');
    let one = a.intern_char('1');
    let marker = a.left_marker();
    let blank = a.blank();
    let mut b = TmBuilder::new("tm_sort_bits", a);
    let q0 = b.state("q0");
    // p(prev1?, dirty?) — scanning a pass; prev1 means the previous cell
    // holds a 1 (a potential "10" swap); dirty means this pass swapped.
    let p_fc = b.state("p_prev0_clean");
    let p_tc = b.state("p_prev1_clean");
    let p_fd = b.state("p_prev0_dirty");
    let p_td = b.state("p_prev1_dirty");
    let swapback = b.state("swapback");
    let resume = b.state("resume");
    let rewind = b.state("rewind");
    let done = b.state("done");
    b.halt(done);

    b.on(q0, marker, p_fc, marker, Move::Right);
    // prev is not 1: just remember the current bit.
    b.on(p_fc, zero, p_fc, zero, Move::Right);
    b.on(p_fc, one, p_tc, one, Move::Right);
    b.on(p_fd, zero, p_fd, zero, Move::Right);
    b.on(p_fd, one, p_td, one, Move::Right);
    // prev is 1: a 0 here means "10" → swap to "01".
    b.on(p_tc, one, p_tc, one, Move::Right);
    b.on(p_td, one, p_td, one, Move::Right);
    b.on(p_tc, zero, swapback, one, Move::Left);
    b.on(p_td, zero, swapback, one, Move::Left);
    b.on(swapback, one, resume, zero, Move::Right);
    b.on(resume, one, p_td, one, Move::Right);
    // End of pass.
    b.on(p_fc, blank, done, blank, Move::Stay);
    b.on(p_tc, blank, done, blank, Move::Stay);
    b.on(p_fd, blank, rewind, blank, Move::Left);
    b.on(p_td, blank, rewind, blank, Move::Left);
    b.on(rewind, zero, rewind, zero, Move::Left);
    b.on(rewind, one, rewind, one, Move::Left);
    b.on(rewind, marker, p_fc, marker, Move::Right);
    b.build()
}

/// Decide the non-context-free language `aⁿbⁿcⁿ` of Example 1.3 by the
/// classic crossing-off construction; the tape is erased at the end and the
/// verdict (`1` accept / `0` reject) written in cell 1.
pub fn abc_recognizer_tm(a: &mut Alphabet) -> TuringMachine {
    let sa = a.intern_char('a');
    let sb = a.intern_char('b');
    let sc = a.intern_char('c');
    let ca = a.intern_char('A'); // crossed-off working symbols
    let cb = a.intern_char('B');
    let cc = a.intern_char('C');
    let zero = a.intern_char('0');
    let one = a.intern_char('1');
    let marker = a.left_marker();
    let blank = a.blank();
    let mut b = TmBuilder::new("tm_abc", a);

    let q0 = b.state("q0");
    let find_a = b.state("find_a");
    let find_b = b.state("find_b");
    let find_c = b.state("find_c");
    let rewind = b.state("rewind");
    let check_rest = b.state("check_rest");
    let acc_erase = b.state("accept_erase");
    let acc_write = b.state("accept_write");
    let rej_seek = b.state("reject_seekend");
    let rej_erase = b.state("reject_erase");
    let rej_write = b.state("reject_write");
    let done = b.state("done");
    b.halt(done);

    b.on(q0, marker, find_a, marker, Move::Right);

    // Cross off one 'a'.
    b.on(find_a, ca, find_a, ca, Move::Right);
    b.on(find_a, sa, find_b, ca, Move::Right);
    b.on(find_a, cb, check_rest, cb, Move::Right); // no plain a's left
    b.on(find_a, blank, acc_erase, blank, Move::Left); // empty input
    b.on(find_a, sb, rej_seek, sb, Move::Right);
    b.on(find_a, sc, rej_seek, sc, Move::Right);

    // Cross off one 'b'.
    b.on(find_b, sa, find_b, sa, Move::Right);
    b.on(find_b, cb, find_b, cb, Move::Right);
    b.on(find_b, sb, find_c, cb, Move::Right);
    b.on(find_b, sc, rej_seek, sc, Move::Right);
    b.on(find_b, cc, rej_seek, cc, Move::Right);
    b.on(find_b, blank, rej_erase, blank, Move::Left);

    // Cross off one 'c'.
    b.on(find_c, sb, find_c, sb, Move::Right);
    b.on(find_c, cc, find_c, cc, Move::Right);
    b.on(find_c, sc, rewind, cc, Move::Left);
    b.on(find_c, sa, rej_seek, sa, Move::Right);
    b.on(find_c, blank, rej_erase, blank, Move::Left);

    // Back to the left end for the next round.
    for s in [sa, sb, sc, ca, cb, cc] {
        b.on(rewind, s, rewind, s, Move::Left);
    }
    b.on(rewind, marker, find_a, marker, Move::Right);

    // All a's crossed: the rest must be crossed b's and c's only.
    b.on(check_rest, cb, check_rest, cb, Move::Right);
    b.on(check_rest, cc, check_rest, cc, Move::Right);
    b.on(check_rest, blank, acc_erase, blank, Move::Left);
    for s in [sa, sb, sc, ca] {
        b.on(check_rest, s, rej_seek, s, Move::Right);
    }

    // Accept: erase leftwards, write 1.
    for s in [sa, sb, sc, ca, cb, cc] {
        b.on(acc_erase, s, acc_erase, blank, Move::Left);
    }
    b.on(acc_erase, blank, acc_erase, blank, Move::Left);
    b.on(acc_erase, marker, acc_write, marker, Move::Right);
    b.on(acc_write, blank, done, one, Move::Stay);

    // Reject: sweep right to the end, erase leftwards, write 0.
    for s in [sa, sb, sc, ca, cb, cc] {
        b.on(rej_seek, s, rej_seek, s, Move::Right);
    }
    b.on(rej_seek, blank, rej_erase, blank, Move::Left);
    for s in [sa, sb, sc, ca, cb, cc] {
        b.on(rej_erase, s, rej_erase, blank, Move::Left);
    }
    b.on(rej_erase, blank, rej_erase, blank, Move::Left);
    b.on(rej_erase, marker, rej_write, marker, Move::Right);
    b.on(rej_write, blank, done, zero, Move::Stay);
    b.on(rej_write, zero, done, zero, Move::Stay);
    b.on(rej_write, one, done, zero, Move::Stay);

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::strip_trailing_blanks;

    fn run_str(m: &TuringMachine, a: &mut Alphabet, input: &str) -> String {
        let syms = a.seq_of_str(input);
        let run = m.run(&syms, 1_000_000).unwrap();
        let out = strip_trailing_blanks(run.output, m.blank);
        a.render(&out)
    }

    #[test]
    fn complement_flips() {
        let mut a = Alphabet::new();
        let m = complement_tm(&mut a);
        assert_eq!(run_str(&m, &mut a, "110000"), "001111");
        assert_eq!(run_str(&m, &mut a, ""), "");
        assert_eq!(run_str(&m, &mut a, "0"), "1");
    }

    #[test]
    fn parity_counts_ones() {
        let mut a = Alphabet::new();
        let m = parity_tm(&mut a);
        assert_eq!(run_str(&m, &mut a, "1101"), "1");
        assert_eq!(run_str(&m, &mut a, "11"), "0");
        assert_eq!(run_str(&m, &mut a, ""), "0");
        assert_eq!(run_str(&m, &mut a, "0000"), "0");
    }

    #[test]
    fn increment_lsb_first() {
        let mut a = Alphabet::new();
        let m = increment_tm(&mut a);
        // 3 = "11" (LSB first) + 1 = 4 = "001".
        assert_eq!(run_str(&m, &mut a, "11"), "001");
        // 2 = "01" + 1 = 3 = "11".
        assert_eq!(run_str(&m, &mut a, "01"), "11");
        // 0 = "0" + 1 = "1".
        assert_eq!(run_str(&m, &mut a, "0"), "1");
        // "" + 1 = "1".
        assert_eq!(run_str(&m, &mut a, ""), "1");
    }

    #[test]
    fn increment_matches_arithmetic_exhaustively() {
        let mut a = Alphabet::new();
        let m = increment_tm(&mut a);
        for value in 0u32..64 {
            // LSB-first encoding with enough digits.
            let input: String = (0..7)
                .map(|i| char::from(b'0' + ((value >> i) & 1) as u8))
                .collect();
            let output = run_str(&m, &mut a, &input);
            let decoded = output
                .chars()
                .enumerate()
                .map(|(i, c)| if c == '1' { 1u32 << i } else { 0 })
                .sum::<u32>();
            assert_eq!(decoded, value + 1, "increment of {value}");
        }
    }

    #[test]
    fn sort_bits_sorts() {
        let mut a = Alphabet::new();
        let m = sort_bits_tm(&mut a);
        assert_eq!(run_str(&m, &mut a, "1010"), "0011");
        assert_eq!(run_str(&m, &mut a, "1110"), "0111");
        assert_eq!(run_str(&m, &mut a, "0001"), "0001");
        assert_eq!(run_str(&m, &mut a, ""), "");
        assert_eq!(run_str(&m, &mut a, "1"), "1");
    }

    #[test]
    fn sort_bits_exhaustive_up_to_length_7() {
        let mut a = Alphabet::new();
        let m = sort_bits_tm(&mut a);
        for len in 0..=7usize {
            for bits in 0..(1u32 << len) {
                let input: String = (0..len)
                    .map(|i| char::from(b'0' + ((bits >> i) & 1) as u8))
                    .collect();
                let mut expected: Vec<char> = input.chars().collect();
                expected.sort_unstable();
                let expected: String = expected.into_iter().collect();
                assert_eq!(run_str(&m, &mut a, &input), expected, "input {input}");
            }
        }
    }

    #[test]
    fn abc_recognizer_decides_the_language() {
        let mut a = Alphabet::new();
        let m = abc_recognizer_tm(&mut a);
        assert_eq!(run_str(&m, &mut a, ""), "1");
        assert_eq!(run_str(&m, &mut a, "abc"), "1");
        assert_eq!(run_str(&m, &mut a, "aabbcc"), "1");
        assert_eq!(run_str(&m, &mut a, "aaabbbccc"), "1");
        assert_eq!(run_str(&m, &mut a, "aabbc"), "0");
        assert_eq!(run_str(&m, &mut a, "abcabc"), "0");
        assert_eq!(run_str(&m, &mut a, "acb"), "0");
        assert_eq!(run_str(&m, &mut a, "ba"), "0");
        assert_eq!(run_str(&m, &mut a, "c"), "0");
        assert_eq!(run_str(&m, &mut a, "aab"), "0");
    }
}
