//! The generalized sequence transducer model (Definition 7).
//!
//! A generalized m-input transducer of order k is a 4-tuple (K, q0, Σ, δ)
//! where δ maps a control state and the m symbols under the one-way input
//! heads to a successor state, a head-movement command per input (`►` move
//! right / `−` stay), and an output action: append a symbol, append nothing,
//! or invoke a *subtransducer* of order < k on (the caller's inputs, the
//! caller's current output), whose output then **overwrites** the caller's
//! output tape.
//!
//! The paper's well-formedness restrictions (Definition 7, item 5) are
//! enforced by [`Transducer::validate`]:
//!
//! 1. every transition moves at least one input head (guarantees
//!    termination on finite inputs),
//! 2. a head reading the end-of-tape marker `⊣` must stay put,
//! 3. a subtransducer invoked by an m-input machine has exactly m+1 inputs.

use seqlog_sequence::{Alphabet, FxHashMap, Sym};
use std::fmt;

/// A control state of a transducer, local to its machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The raw state index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateId({})", self.0)
    }
}

/// Head-movement command: `►` consumes one input symbol, `−` stays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HeadMove {
    /// Move one symbol to the right (consume).
    Consume,
    /// Stay on the current symbol.
    Stay,
}

/// The output action of a transition: `out ∈ Σ ∪ {ε} ∪ T^{k-1}`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OutputAction {
    /// Append nothing (`ε`).
    Epsilon,
    /// Append one alphabet symbol.
    Emit(Sym),
    /// Invoke subtransducer `subs[i]` on (inputs…, current output); its
    /// output overwrites the caller's output tape.
    Call(usize),
}

/// One entry of the transition function δ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Successor control state `q'`.
    pub next: StateId,
    /// One movement command per input head.
    pub moves: Box<[HeadMove]>,
    /// The output action.
    pub output: OutputAction,
}

/// Errors detected by [`Transducer::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// A transition's `moves` vector has the wrong arity.
    MoveArity {
        /// Source state name.
        state: String,
        /// Expected arity (the machine's input count).
        expected: usize,
        /// Actual arity found.
        got: usize,
    },
    /// Definition 7(5)(i): no head moves in some transition.
    NoHeadMoves {
        /// Source state name.
        state: String,
    },
    /// Definition 7(5)(ii): a head reading `⊣` is commanded to move.
    MovePastEnd {
        /// Source state name.
        state: String,
        /// Offending head index.
        head: usize,
    },
    /// Definition 7(5)(iii): a subtransducer has the wrong number of inputs.
    SubArity {
        /// Subtransducer name.
        sub: String,
        /// Expected input count (caller's inputs + 1).
        expected: usize,
        /// Actual input count found.
        got: usize,
    },
    /// A transition references a subtransducer index that does not exist.
    UnknownSub {
        /// Source state name.
        state: String,
        /// The dangling subtransducer index.
        index: usize,
    },
    /// A transition emits the reserved end-of-tape marker.
    EmitsEndMarker {
        /// Source state name.
        state: String,
    },
    /// A transition references an undeclared state.
    UnknownState {
        /// The dangling state id.
        state: u32,
    },
    /// The machine has zero inputs (the model requires m ≥ 1).
    NoInputs,
    /// A nested error inside a subtransducer.
    InSub {
        /// Subtransducer name.
        sub: String,
        /// The underlying error.
        error: Box<MachineError>,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MoveArity {
                state,
                expected,
                got,
            } => {
                write!(
                    f,
                    "transition from {state}: {got} move commands, expected {expected}"
                )
            }
            Self::NoHeadMoves { state } => {
                write!(
                    f,
                    "transition from {state} moves no input head (Def 7.5(i))"
                )
            }
            Self::MovePastEnd { state, head } => {
                write!(
                    f,
                    "transition from {state} moves head {head} past ⊣ (Def 7.5(ii))"
                )
            }
            Self::SubArity { sub, expected, got } => {
                write!(
                    f,
                    "subtransducer {sub} has {got} inputs, expected {expected} (Def 7.5(iii))"
                )
            }
            Self::UnknownSub { state, index } => {
                write!(
                    f,
                    "transition from {state} calls unknown subtransducer #{index}"
                )
            }
            Self::EmitsEndMarker { state } => {
                write!(f, "transition from {state} emits the reserved end marker ⊣")
            }
            Self::UnknownState { state } => write!(f, "undeclared state id {state}"),
            Self::NoInputs => write!(f, "transducer must have at least one input"),
            Self::InSub { sub, error } => write!(f, "in subtransducer {sub}: {error}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// A generalized m-input sequence transducer (Definition 7).
///
/// Construct via [`crate::builder::TransducerBuilder`] or
/// [`crate::builder::synthesize`]; run via [`Transducer::run`]
/// (in [`crate::exec`]).
#[derive(Clone)]
pub struct Transducer {
    /// Human-readable machine name (used in diagnostics and Datalog
    /// translation).
    pub name: String,
    /// Number of input tapes, m ≥ 1.
    pub num_inputs: usize,
    /// State names, indexed by [`StateId`].
    pub state_names: Vec<String>,
    /// The initial state q0.
    pub initial: StateId,
    /// The transition function δ, keyed by (state, symbols under heads).
    pub(crate) transitions: FxHashMap<(StateId, Box<[Sym]>), Transition>,
    /// Subtransducers available to [`OutputAction::Call`]; each has
    /// `num_inputs + 1` inputs.
    pub subtransducers: Vec<Transducer>,
    /// The interned end-of-tape marker `⊣` this machine was built against.
    pub end_marker: Sym,
}

impl Transducer {
    /// The order of the machine: 1 + the maximum order of its
    /// subtransducers; ordinary (base) transducers have order 1 (T¹).
    pub fn order(&self) -> usize {
        1 + self
            .subtransducers
            .iter()
            .map(Transducer::order)
            .max()
            .unwrap_or(0)
    }

    /// Number of explicit transition entries (not counting subtransducers).
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Number of control states.
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Look up δ(state, read).
    pub fn transition(&self, state: StateId, read: &[Sym]) -> Option<&Transition> {
        // Keyed lookup without allocating: FxHashMap<(StateId, Box<[Sym]>)>
        // requires a borrowed key of the same shape; fall back to a probe
        // via raw iteration is O(n), so we allocate a small key instead.
        // Read tuples are tiny (m ≤ 4 in practice).
        let key: (StateId, Box<[Sym]>) = (state, read.into());
        self.transitions.get(&key)
    }

    /// Iterate over all transition entries.
    pub fn iter_transitions(&self) -> impl Iterator<Item = (StateId, &[Sym], &Transition)> + '_ {
        self.transitions
            .iter()
            .map(|((q, read), t)| (*q, read.as_ref(), t))
    }

    /// The name of a control state.
    pub fn state_name(&self, q: StateId) -> &str {
        &self.state_names[q.index()]
    }

    /// Validate the Definition 7 restrictions, recursively including all
    /// subtransducers. Builders call this automatically.
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.num_inputs == 0 {
            return Err(MachineError::NoInputs);
        }
        for ((q, read), t) in &self.transitions {
            let state = self.state_names[q.index()].clone();
            if t.moves.len() != self.num_inputs || read.len() != self.num_inputs {
                return Err(MachineError::MoveArity {
                    state,
                    expected: self.num_inputs,
                    got: t.moves.len(),
                });
            }
            if !t.moves.contains(&HeadMove::Consume) {
                return Err(MachineError::NoHeadMoves { state });
            }
            for (i, (&sym, &mv)) in read.iter().zip(t.moves.iter()).enumerate() {
                if sym == self.end_marker && mv == HeadMove::Consume {
                    return Err(MachineError::MovePastEnd { state, head: i });
                }
            }
            if t.next.index() >= self.state_names.len() {
                return Err(MachineError::UnknownState { state: t.next.0 });
            }
            match t.output {
                OutputAction::Emit(s) if s == self.end_marker => {
                    return Err(MachineError::EmitsEndMarker { state });
                }
                OutputAction::Call(i) => {
                    let sub = self.subtransducers.get(i).ok_or(MachineError::UnknownSub {
                        state: state.clone(),
                        index: i,
                    })?;
                    if sub.num_inputs != self.num_inputs + 1 {
                        return Err(MachineError::SubArity {
                            sub: sub.name.clone(),
                            expected: self.num_inputs + 1,
                            got: sub.num_inputs,
                        });
                    }
                }
                _ => {}
            }
        }
        for sub in &self.subtransducers {
            sub.validate().map_err(|e| MachineError::InSub {
                sub: sub.name.clone(),
                error: Box::new(e),
            })?;
        }
        Ok(())
    }

    /// Pretty-print the transition table (diagnostics / examples).
    pub fn describe(&self, alphabet: &Alphabet) -> String {
        let mut rows: Vec<String> = self
            .iter_transitions()
            .map(|(q, read, t)| {
                let read_s: Vec<&str> = read.iter().map(|&s| alphabet.name(s)).collect();
                let moves: Vec<&str> = t
                    .moves
                    .iter()
                    .map(|m| match m {
                        HeadMove::Consume => "►",
                        HeadMove::Stay => "−",
                    })
                    .collect();
                let out = match t.output {
                    OutputAction::Epsilon => "ε".to_string(),
                    OutputAction::Emit(s) => alphabet.name(s).to_string(),
                    OutputAction::Call(i) => format!("call {}", self.subtransducers[i].name),
                };
                format!(
                    "  δ({}, {}) = ({}, {}, {})",
                    self.state_name(q),
                    read_s.join(","),
                    self.state_name(t.next),
                    moves.join(","),
                    out
                )
            })
            .collect();
        rows.sort();
        format!(
            "{} (inputs={}, order={}, states={})\n{}",
            self.name,
            self.num_inputs,
            self.order(),
            self.num_states(),
            rows.join("\n")
        )
    }
}

impl fmt::Debug for Transducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transducer")
            .field("name", &self.name)
            .field("inputs", &self.num_inputs)
            .field("order", &self.order())
            .field("states", &self.state_names.len())
            .field("transitions", &self.transitions.len())
            .field("subtransducers", &self.subtransducers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TransducerBuilder;
    use seqlog_sequence::Alphabet;

    fn tiny_alphabet() -> (Alphabet, Vec<Sym>, Sym) {
        let mut a = Alphabet::new();
        let syms = vec![a.intern_char('0'), a.intern_char('1')];
        let end = a.end_marker();
        (a, syms, end)
    }

    #[test]
    fn order_of_base_machine_is_one() {
        let (_, syms, end) = tiny_alphabet();
        let mut b = TransducerBuilder::new("id", 1, end);
        let q0 = b.state("q0");
        for &s in &syms {
            b.on(q0, &[s], q0, &[HeadMove::Consume], OutputAction::Emit(s));
        }
        let t = b.build().unwrap();
        assert_eq!(t.order(), 1);
        assert_eq!(t.num_transitions(), 2);
    }

    #[test]
    fn validation_rejects_no_head_moves() {
        let (_, syms, end) = tiny_alphabet();
        let mut b = TransducerBuilder::new("bad", 1, end);
        let q0 = b.state("q0");
        b.on(q0, &[syms[0]], q0, &[HeadMove::Stay], OutputAction::Epsilon);
        assert!(matches!(
            b.build().unwrap_err(),
            MachineError::NoHeadMoves { .. }
        ));
    }

    #[test]
    fn validation_rejects_moving_past_end_marker() {
        let (_, _, end) = tiny_alphabet();
        let mut b = TransducerBuilder::new("bad", 1, end);
        let q0 = b.state("q0");
        b.on(q0, &[end], q0, &[HeadMove::Consume], OutputAction::Epsilon);
        assert!(matches!(
            b.build().unwrap_err(),
            MachineError::MovePastEnd { .. }
        ));
    }

    #[test]
    fn validation_rejects_wrong_sub_arity() {
        let (_, syms, end) = tiny_alphabet();
        // The sub has 1 input, but an m=1 caller requires m+1 = 2.
        let sub = {
            let mut b = TransducerBuilder::new("sub", 1, end);
            let q0 = b.state("q0");
            b.on(
                q0,
                &[syms[0]],
                q0,
                &[HeadMove::Consume],
                OutputAction::Epsilon,
            );
            b.build().unwrap()
        };
        let mut b = TransducerBuilder::new("caller", 1, end);
        let q0 = b.state("q0");
        let si = b.sub(sub);
        b.on(
            q0,
            &[syms[0]],
            q0,
            &[HeadMove::Consume],
            OutputAction::Call(si),
        );
        assert!(matches!(
            b.build().unwrap_err(),
            MachineError::SubArity { .. }
        ));
    }

    #[test]
    fn validation_rejects_emitting_end_marker() {
        let (_, syms, end) = tiny_alphabet();
        let mut b = TransducerBuilder::new("bad", 1, end);
        let q0 = b.state("q0");
        b.on(
            q0,
            &[syms[0]],
            q0,
            &[HeadMove::Consume],
            OutputAction::Emit(end),
        );
        assert!(matches!(
            b.build().unwrap_err(),
            MachineError::EmitsEndMarker { .. }
        ));
    }

    #[test]
    fn order_counts_nesting_depth() {
        let (_, syms, end) = tiny_alphabet();
        // base (order 1)
        let base = {
            let mut b = TransducerBuilder::new("base", 3, end);
            let q0 = b.state("q0");
            b.on(
                q0,
                &[syms[0], syms[0], syms[0]],
                q0,
                &[HeadMove::Consume, HeadMove::Stay, HeadMove::Stay],
                OutputAction::Epsilon,
            );
            b.build().unwrap()
        };
        // middle (order 2) calls base
        let middle = {
            let mut b = TransducerBuilder::new("middle", 2, end);
            let q0 = b.state("q0");
            let si = b.sub(base);
            b.on(
                q0,
                &[syms[0], syms[0]],
                q0,
                &[HeadMove::Consume, HeadMove::Stay],
                OutputAction::Call(si),
            );
            b.build().unwrap()
        };
        // top (order 3) calls middle
        let top = {
            let mut b = TransducerBuilder::new("top", 1, end);
            let q0 = b.state("q0");
            let si = b.sub(middle);
            b.on(
                q0,
                &[syms[0]],
                q0,
                &[HeadMove::Consume],
                OutputAction::Call(si),
            );
            b.build().unwrap()
        };
        assert_eq!(top.order(), 3);
    }
}
