//! Execution of generalized transducers.
//!
//! The computation model of Section 6.1: all heads start at the leftmost
//! symbol, the machine repeatedly applies δ to (state, symbols under heads),
//! and it stops exactly when every head reads the end-of-tape marker `⊣`.
//! Because every transition consumes at least one symbol (Definition 7.5(i)),
//! termination on finite inputs is guaranteed; we nevertheless enforce
//! explicit step and output budgets because order-3 machines legitimately
//! produce hyperexponential outputs (Theorem 4) that would exhaust memory.
//!
//! Step accounting follows the paper: "we count the number of transitions
//! performed by the top-level transducer and all its subtransducers."

use crate::machine::{HeadMove, OutputAction, StateId, Transducer};
use seqlog_sequence::{Alphabet, Sym};
use std::fmt;

/// Execution budgets. Termination is guaranteed by the model; these bound
/// *resources*, not time-to-halt.
#[derive(Clone, Copy, Debug)]
pub struct ExecLimits {
    /// Maximum total transitions (top-level plus subtransducers).
    pub max_steps: u64,
    /// Maximum length of any output tape.
    pub max_output_len: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        Self {
            max_steps: 50_000_000,
            max_output_len: 1 << 24,
        }
    }
}

/// Counters accumulated across a run (and all nested subtransducer runs).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Transitions performed, including inside subtransducers.
    pub steps: u64,
    /// Subtransducer invocations.
    pub subcalls: u64,
    /// Symbols appended by `Emit` actions.
    pub appended: u64,
    /// The longest output tape observed anywhere in the run.
    pub max_output_len: usize,
}

/// Execution failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// δ is undefined at the current (state, read) — the machine is stuck
    /// and its output is undefined (δ is a partial mapping).
    Stuck {
        /// Machine name.
        machine: String,
        /// Control state name at the point of sticking.
        state: String,
        /// 0-based head positions.
        heads: Vec<usize>,
    },
    /// The step budget was exhausted.
    StepLimit(u64),
    /// The output budget was exhausted.
    OutputLimit(usize),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Stuck {
                machine,
                state,
                heads,
            } => {
                write!(
                    f,
                    "{machine} stuck in state {state} at head positions {heads:?}"
                )
            }
            Self::StepLimit(n) => write!(f, "step limit {n} exhausted"),
            Self::OutputLimit(n) => write!(f, "output length limit {n} exhausted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Run `t` on `inputs`, returning the output tape.
///
/// `inputs` must have exactly `t.num_inputs` elements; the end markers are
/// implicit (supplied by the runtime, not stored in the sequences).
pub fn run(
    t: &Transducer,
    inputs: &[&[Sym]],
    limits: &ExecLimits,
    stats: &mut ExecStats,
) -> Result<Vec<Sym>, ExecError> {
    assert_eq!(
        inputs.len(),
        t.num_inputs,
        "{} expects {} inputs, got {}",
        t.name,
        t.num_inputs,
        inputs.len()
    );
    let mut output = Vec::new();
    run_inner(t, inputs, limits, stats, &mut output)?;
    Ok(output)
}

/// Run with default limits and discarded stats (convenience for tests).
pub fn run_to_vec(t: &Transducer, inputs: &[&[Sym]]) -> Result<Vec<Sym>, ExecError> {
    run(t, inputs, &ExecLimits::default(), &mut ExecStats::default())
}

fn run_inner(
    t: &Transducer,
    inputs: &[&[Sym]],
    limits: &ExecLimits,
    stats: &mut ExecStats,
    output: &mut Vec<Sym>,
) -> Result<(), ExecError> {
    let mut state = t.initial;
    let mut pos = vec![0usize; inputs.len()];
    let mut read: Vec<Sym> = Vec::with_capacity(inputs.len());

    loop {
        if pos.iter().zip(inputs).all(|(&p, inp)| p == inp.len()) {
            return Ok(());
        }
        read.clear();
        for (i, inp) in inputs.iter().enumerate() {
            read.push(if pos[i] == inp.len() {
                t.end_marker
            } else {
                inp[pos[i]]
            });
        }
        let tr = t.transition(state, &read).ok_or_else(|| ExecError::Stuck {
            machine: t.name.clone(),
            state: t.state_name(state).to_string(),
            heads: pos.clone(),
        })?;

        stats.steps += 1;
        if stats.steps > limits.max_steps {
            return Err(ExecError::StepLimit(limits.max_steps));
        }

        match tr.output {
            OutputAction::Epsilon => {}
            OutputAction::Emit(s) => {
                output.push(s);
                stats.appended += 1;
                if output.len() > limits.max_output_len {
                    return Err(ExecError::OutputLimit(limits.max_output_len));
                }
            }
            OutputAction::Call(i) => {
                stats.subcalls += 1;
                let sub = &t.subtransducers[i];
                // The subtransducer reads copies of the caller's inputs plus
                // the caller's current output (Fig. 1); its output then
                // overwrites the caller's output tape.
                let snapshot = std::mem::take(output);
                let mut sub_inputs: Vec<&[Sym]> = inputs.to_vec();
                sub_inputs.push(&snapshot);
                let mut sub_out = Vec::new();
                run_inner(sub, &sub_inputs, limits, stats, &mut sub_out)?;
                *output = sub_out;
                if output.len() > limits.max_output_len {
                    return Err(ExecError::OutputLimit(limits.max_output_len));
                }
            }
        }
        stats.max_output_len = stats.max_output_len.max(output.len());

        for (i, mv) in tr.moves.iter().enumerate() {
            if *mv == HeadMove::Consume {
                debug_assert!(pos[i] < inputs[i].len(), "validated: cannot move past ⊣");
                pos[i] += 1;
            }
        }
        state = tr.next;
    }
}

/// One row of a top-level execution trace (the shape of the paper's Fig. 2).
#[derive(Clone, Debug)]
pub struct TraceRow {
    /// 1-based step number.
    pub step: usize,
    /// Control state before the step.
    pub state: String,
    /// 1-based head positions just before the step (`len+1` means `⊣`).
    pub heads: Vec<usize>,
    /// Rendered output tape just before the step.
    pub output_before: String,
    /// Description of the action ("append a", "ε", "run T_append").
    pub operation: String,
    /// Rendered output tape just after the step.
    pub output_after: String,
}

/// Run `t` while recording one [`TraceRow`] per **top-level** transition
/// (subtransducer steps are summarized by their effect, exactly as in the
/// paper's Fig. 2). Returns the trace and the final output.
pub fn trace(
    t: &Transducer,
    inputs: &[&[Sym]],
    alphabet: &Alphabet,
) -> Result<(Vec<TraceRow>, Vec<Sym>), ExecError> {
    assert_eq!(inputs.len(), t.num_inputs);
    let limits = ExecLimits::default();
    let mut stats = ExecStats::default();
    let mut rows = Vec::new();
    let mut output: Vec<Sym> = Vec::new();
    let mut state: StateId = t.initial;
    let mut pos = vec![0usize; inputs.len()];

    loop {
        if pos.iter().zip(inputs).all(|(&p, inp)| p == inp.len()) {
            return Ok((rows, output));
        }
        let read: Vec<Sym> = inputs
            .iter()
            .enumerate()
            .map(|(i, inp)| {
                if pos[i] == inp.len() {
                    t.end_marker
                } else {
                    inp[pos[i]]
                }
            })
            .collect();
        let tr = t.transition(state, &read).ok_or_else(|| ExecError::Stuck {
            machine: t.name.clone(),
            state: t.state_name(state).to_string(),
            heads: pos.clone(),
        })?;

        let before = alphabet.render(&output);
        let operation = match tr.output {
            OutputAction::Epsilon => "ε".to_string(),
            OutputAction::Emit(s) => format!("append {}", alphabet.name(s)),
            OutputAction::Call(i) => format!("run {}", t.subtransducers[i].name),
        };

        match tr.output {
            OutputAction::Epsilon => {}
            OutputAction::Emit(s) => output.push(s),
            OutputAction::Call(i) => {
                let sub = &t.subtransducers[i];
                let snapshot = std::mem::take(&mut output);
                let mut sub_inputs: Vec<&[Sym]> = inputs.to_vec();
                sub_inputs.push(&snapshot);
                let mut sub_out = Vec::new();
                run_inner(sub, &sub_inputs, &limits, &mut stats, &mut sub_out)?;
                output = sub_out;
            }
        }

        rows.push(TraceRow {
            step: rows.len() + 1,
            state: t.state_name(state).to_string(),
            heads: pos.iter().map(|&p| p + 1).collect(),
            output_before: before,
            operation,
            output_after: alphabet.render(&output),
        });

        for (i, mv) in tr.moves.iter().enumerate() {
            if *mv == HeadMove::Consume {
                pos[i] += 1;
            }
        }
        state = tr.next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TransducerBuilder;
    use crate::machine::{HeadMove, OutputAction};
    use seqlog_sequence::Alphabet;

    /// A 1-input machine that emits `1` for each `0` and vice versa.
    fn complement(a: &mut Alphabet) -> Transducer {
        let zero = a.intern_char('0');
        let one = a.intern_char('1');
        let end = a.end_marker();
        let mut b = TransducerBuilder::new("complement", 1, end);
        let q0 = b.state("q0");
        b.on(
            q0,
            &[zero],
            q0,
            &[HeadMove::Consume],
            OutputAction::Emit(one),
        );
        b.on(
            q0,
            &[one],
            q0,
            &[HeadMove::Consume],
            OutputAction::Emit(zero),
        );
        b.build().unwrap()
    }

    #[test]
    fn complement_flips_bits() {
        let mut a = Alphabet::new();
        let t = complement(&mut a);
        let input = a.seq_of_str("110000");
        let out = run_to_vec(&t, &[&input]).unwrap();
        assert_eq!(a.render(&out), "001111");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let mut a = Alphabet::new();
        let t = complement(&mut a);
        let out = run_to_vec(&t, &[&[]]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn stuck_machine_reports_position() {
        let mut a = Alphabet::new();
        let t = complement(&mut a);
        let x = a.intern_char('x'); // no transition reads 'x'
        let input = vec![x];
        match run_to_vec(&t, &[&input]) {
            Err(ExecError::Stuck { machine, heads, .. }) => {
                assert_eq!(machine, "complement");
                assert_eq!(heads, vec![0]);
            }
            other => panic!("expected Stuck, got {other:?}"),
        }
    }

    #[test]
    fn step_accounting_counts_each_transition() {
        let mut a = Alphabet::new();
        let t = complement(&mut a);
        let input = a.seq_of_str("0101");
        let mut stats = ExecStats::default();
        run(&t, &[&input], &ExecLimits::default(), &mut stats).unwrap();
        assert_eq!(stats.steps, 4);
        assert_eq!(stats.appended, 4);
        assert_eq!(stats.subcalls, 0);
    }

    #[test]
    fn step_limit_is_enforced() {
        let mut a = Alphabet::new();
        let t = complement(&mut a);
        let input = a.seq_of_str("000000");
        let limits = ExecLimits {
            max_steps: 3,
            ..Default::default()
        };
        let r = run(&t, &[&input], &limits, &mut ExecStats::default());
        assert_eq!(r, Err(ExecError::StepLimit(3)));
    }

    #[test]
    fn trace_records_every_top_level_step() {
        let mut a = Alphabet::new();
        let t = complement(&mut a);
        let input = a.seq_of_str("01");
        let (rows, out) = trace(&t, &[&input], &a).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].heads, vec![1]);
        assert_eq!(rows[0].output_before, "");
        assert_eq!(rows[0].output_after, "1");
        assert_eq!(rows[1].output_after, "10");
        assert_eq!(a.render(&out), "10");
    }
}
