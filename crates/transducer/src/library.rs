//! A library of generalized transducers used throughout the paper.
//!
//! * [`copy`], [`mapper`], [`complement01`] — order-1 restructurings
//!   (Section 6: "transducers support a variety of low-complexity sequence
//!   restructurings, including concatenation and complementation").
//! * [`append`] / [`concat_ports`] — the concatenation machines; `T_append`
//!   from Example 6.1 is [`concat_ports`] with emit order `[1, 0]`.
//! * [`echo`] — the doubled-letters machine of Example 1.6, realized as a
//!   2-input base transducer fed the same sequence twice.
//! * [`square`] — `T_square` from Example 6.1 / Fig. 2 (order 2, quadratic
//!   output).
//! * [`exp`] — an order-3 machine whose output length is `2^(2^(n-2))`,
//!   witnessing the Theorem 4 lower bound for order-3 networks.
//! * [`transcribe`], [`translate`] — the DNA→RNA→protein machines of
//!   Example 7.1 (with the full standard genetic code; stop codons emit ε,
//!   mirroring the paper's simplification footnote).

use crate::builder::{synthesize, SynthStep, TransducerBuilder};
use crate::machine::{HeadMove, OutputAction, Transducer};
use seqlog_sequence::{Alphabet, Sym};

/// The 1-input identity machine over `syms`.
pub fn copy(a: &mut Alphabet, syms: &[Sym]) -> Transducer {
    mapper(
        a,
        "t_copy",
        &syms.iter().map(|&s| (s, s)).collect::<Vec<_>>(),
    )
}

/// A 1-input symbol-to-symbol mapper: emits `to` for each read `from`.
pub fn mapper(a: &mut Alphabet, name: &str, pairs: &[(Sym, Sym)]) -> Transducer {
    let end = a.end_marker();
    let mut b = TransducerBuilder::new(name, 1, end);
    let q0 = b.state("q0");
    for &(from, to) in pairs {
        b.on(
            q0,
            &[from],
            q0,
            &[HeadMove::Consume],
            OutputAction::Emit(to),
        );
    }
    b.build().expect("mapper is well-formed")
}

/// The bitwise complement machine over `{0, 1}` (a restructuring that
/// stratified Sequence Datalog cannot express — Section 5).
pub fn complement01(a: &mut Alphabet) -> Transducer {
    let zero = a.intern_char('0');
    let one = a.intern_char('1');
    mapper(a, "t_complement", &[(zero, one), (one, zero)])
}

/// An m-input, single-state machine that first silently consumes every port
/// not listed in `emit_order`, then copies the listed ports to the output in
/// the given order. `concat_ports(a, "t_append", syms, 2, &[0, 1])` is plain
/// concatenation; `&[1, 0]` is Example 6.1's `T_append` (output-first).
pub fn concat_ports(
    a: &mut Alphabet,
    name: &str,
    syms: &[Sym],
    num_inputs: usize,
    emit_order: &[usize],
) -> Transducer {
    let end = a.end_marker();
    assert!(emit_order.iter().all(|&p| p < num_inputs));
    // Schedule: silent ports in index order, then emit_order.
    let mut schedule: Vec<(usize, bool)> = (0..num_inputs)
        .filter(|p| !emit_order.contains(p))
        .map(|p| (p, false))
        .collect();
    schedule.extend(emit_order.iter().map(|&p| (p, true)));

    synthesize(
        name,
        num_inputs,
        end,
        syms,
        vec![],
        (),
        |_| "q0".to_string(),
        move |_, read| {
            // Act on the first scheduled port that is not exhausted. Because
            // only the scheduled port is ever consumed, earlier ports are
            // exhausted before later ones are touched, so a single state
            // suffices.
            let (port, emits) = *schedule.iter().find(|(p, _)| read[*p] != end)?;
            let mut moves = vec![HeadMove::Stay; read.len()];
            moves[port] = HeadMove::Consume;
            Some(SynthStep {
                next: (),
                moves,
                output: if emits {
                    OutputAction::Emit(read[port])
                } else {
                    OutputAction::Epsilon
                },
            })
        },
    )
    .expect("concat_ports is well-formed")
}

/// Plain 2-input concatenation: output = input₁ · input₂.
pub fn append(a: &mut Alphabet, syms: &[Sym]) -> Transducer {
    concat_ports(a, "t_append", syms, 2, &[0, 1])
}

/// The echo machine of Example 1.6 as a 2-input base transducer: fed the
/// same sequence on both ports it emits each symbol twice
/// (`abcd ↦ aabbccdd`) by strictly alternating between the two heads.
pub fn echo(a: &mut Alphabet, syms: &[Sym]) -> Transducer {
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum S {
        FromA,
        FromB,
    }
    let end = a.end_marker();
    synthesize(
        "t_echo",
        2,
        end,
        syms,
        vec![],
        S::FromA,
        |s| match s {
            S::FromA => "emit_a".to_string(),
            S::FromB => "emit_b".to_string(),
        },
        move |s, read| {
            let (port, next) = match s {
                S::FromA if read[0] != end => (0, S::FromB),
                S::FromA => (1, S::FromA), // drain unequal inputs
                S::FromB if read[1] != end => (1, S::FromA),
                S::FromB => (0, S::FromB),
            };
            if read[port] == end {
                return None;
            }
            let mut moves = vec![HeadMove::Stay; 2];
            moves[port] = HeadMove::Consume;
            Some(SynthStep {
                next,
                moves,
                output: OutputAction::Emit(read[port]),
            })
        },
    )
    .expect("echo is well-formed")
}

/// `T_square` from Example 6.1 / Fig. 2: a 1-input, order-2 machine that at
/// every step replaces its output `y` by `y · x` via the subtransducer
/// `T_append(x, y) = y · x`. On input of length n the output has length n².
pub fn square(a: &mut Alphabet, syms: &[Sym]) -> Transducer {
    let end = a.end_marker();
    let sub = concat_ports(a, "t_append", syms, 2, &[1, 0]);
    let mut b = TransducerBuilder::new("t_square", 1, end);
    let q0 = b.state("q0");
    let si = b.sub(sub);
    for &s in syms {
        b.on(q0, &[s], q0, &[HeadMove::Consume], OutputAction::Call(si));
    }
    b.build().expect("square is well-formed")
}

/// A 2-input, order-2 machine computing `(x, y) ↦ y^{len(y)}` (output length
/// `len(y)²`): it silently consumes `x`, then for every symbol of `y` calls a
/// 3-input subtransducer computing `(x, y, out) ↦ out · y`. This is the
/// "T2 squares its input" device from the Theorem 4 order-3 analysis.
pub fn square_output(a: &mut Alphabet, syms: &[Sym]) -> Transducer {
    let end = a.end_marker();
    let sub = concat_ports(a, "t_append_y", syms, 3, &[2, 1]);
    synthesize(
        "t_square_output",
        2,
        end,
        syms,
        vec![sub],
        (),
        |_| "q0".to_string(),
        move |_, read| {
            if read[0] != end {
                Some(SynthStep {
                    next: (),
                    moves: vec![HeadMove::Consume, HeadMove::Stay],
                    output: OutputAction::Epsilon,
                })
            } else if read[1] != end {
                Some(SynthStep {
                    next: (),
                    moves: vec![HeadMove::Stay, HeadMove::Consume],
                    output: OutputAction::Call(0),
                })
            } else {
                None
            }
        },
    )
    .expect("square_output is well-formed")
}

/// An order-3 machine realizing the Theorem 4 order-3 lower bound: it copies
/// its first two input symbols, then on each further symbol replaces its
/// output `y` by `y^{len(y)}` via [`square_output`]. On input length
/// `n ≥ 3` the output length is `2^(2^(n-2))` — doubly exponential.
pub fn exp(a: &mut Alphabet, syms: &[Sym]) -> Transducer {
    let end = a.end_marker();
    let sub = square_output(a, syms);
    let mut b = TransducerBuilder::new("t_exp", 1, end);
    let s0 = b.state("emit_first");
    let s1 = b.state("emit_second");
    let s2 = b.state("pump");
    let si = b.sub(sub);
    for &s in syms {
        b.on(s0, &[s], s1, &[HeadMove::Consume], OutputAction::Emit(s));
        b.on(s1, &[s], s2, &[HeadMove::Consume], OutputAction::Emit(s));
        b.on(s2, &[s], s2, &[HeadMove::Consume], OutputAction::Call(si));
    }
    b.build().expect("exp is well-formed")
}

/// The DNA alphabet `{a, c, g, t}`.
pub fn dna_syms(a: &mut Alphabet) -> Vec<Sym> {
    "acgt".chars().map(|c| a.intern_char(c)).collect()
}

/// The RNA alphabet `{a, c, g, u}`.
pub fn rna_syms(a: &mut Alphabet) -> Vec<Sym> {
    "acgu".chars().map(|c| a.intern_char(c)).collect()
}

/// The 20-letter protein alphabet of Example 7.1.
pub fn protein_syms(a: &mut Alphabet) -> Vec<Sym> {
    "ARNDCQEGHILKMFPSTWYV"
        .chars()
        .map(|c| a.intern_char(c))
        .collect()
}

/// `T_transcribe` (Example 7.1): DNA → RNA, `a↦u, c↦g, g↦c, t↦a`.
pub fn transcribe(a: &mut Alphabet) -> Transducer {
    let pairs: Vec<(Sym, Sym)> = [('a', 'u'), ('c', 'g'), ('g', 'c'), ('t', 'a')]
        .iter()
        .map(|&(f, t)| (a.intern_char(f), a.intern_char(t)))
        .collect();
    mapper(a, "t_transcribe", &pairs)
}

/// The standard genetic code: RNA codon → amino-acid letter, `None` for the
/// three stop codons (which the Example 7.1 machine skips, per the paper's
/// simplification footnote).
pub fn amino_for(codon: [char; 3]) -> Option<char> {
    let s: String = codon.iter().collect();
    let aa = match s.as_str() {
        "uuu" | "uuc" => 'F',
        "uua" | "uug" | "cuu" | "cuc" | "cua" | "cug" => 'L',
        "auu" | "auc" | "aua" => 'I',
        "aug" => 'M',
        "guu" | "guc" | "gua" | "gug" => 'V',
        "ucu" | "ucc" | "uca" | "ucg" | "agu" | "agc" => 'S',
        "ccu" | "ccc" | "cca" | "ccg" => 'P',
        "acu" | "acc" | "aca" | "acg" => 'T',
        "gcu" | "gcc" | "gca" | "gcg" => 'A',
        "uau" | "uac" => 'Y',
        "cau" | "cac" => 'H',
        "caa" | "cag" => 'Q',
        "aau" | "aac" => 'N',
        "aaa" | "aag" => 'K',
        "gau" | "gac" => 'D',
        "gaa" | "gag" => 'E',
        "ugu" | "ugc" => 'C',
        "ugg" => 'W',
        "cgu" | "cgc" | "cga" | "cgg" | "aga" | "agg" => 'R',
        "ggu" | "ggc" | "gga" | "ggg" => 'G',
        "uaa" | "uag" | "uga" => return None, // stop codons
        _ => panic!("not an RNA codon: {s}"),
    };
    Some(aa)
}

/// `T_translate` (Example 7.1): RNA → protein. Ribonucleotides are grouped
/// into codons by buffering up to two symbols in the control state; each
/// completed codon emits one amino-acid symbol (stop codons emit ε). A
/// trailing partial codon is consumed silently, matching the paper's
/// reading-frame simplification.
pub fn translate(a: &mut Alphabet) -> Transducer {
    let rna = rna_syms(a);
    protein_syms(a); // ensure the output alphabet is interned
    let end = a.end_marker();
    // Abstract state: the buffered codon prefix (0–2 symbols), stored as
    // characters for readability of the synthesized state names.
    let sym_char = {
        let mut table: Vec<(Sym, char)> = Vec::new();
        for (&s, c) in rna.iter().zip("acgu".chars()) {
            table.push((s, c));
        }
        move |s: Sym| table.iter().find(|(x, _)| *x == s).map(|(_, c)| *c)
    };
    let aa_sym = {
        let mut table: Vec<(char, Sym)> = Vec::new();
        for c in "ARNDCQEGHILKMFPSTWYV".chars() {
            let mut buf = [0u8; 4];
            table.push((
                c,
                a.lookup(c.encode_utf8(&mut buf)).expect("interned above"),
            ));
        }
        move |c: char| {
            table
                .iter()
                .find(|(x, _)| *x == c)
                .map(|(_, s)| *s)
                .unwrap()
        }
    };
    synthesize(
        "t_translate",
        1,
        end,
        &rna,
        vec![],
        Vec::<char>::new(),
        |buf| {
            if buf.is_empty() {
                "codon_start".to_string()
            } else {
                format!("codon_{}", buf.iter().collect::<String>())
            }
        },
        move |buf, read| {
            if read[0] == end {
                return None;
            }
            let c = sym_char(read[0])?;
            let step = |next: Vec<char>, output| SynthStep {
                next,
                moves: vec![HeadMove::Consume],
                output,
            };
            if buf.len() < 2 {
                let mut next = buf.clone();
                next.push(c);
                Some(step(next, OutputAction::Epsilon))
            } else {
                let codon = [buf[0], buf[1], c];
                let out = match amino_for(codon) {
                    Some(aa) => OutputAction::Emit(aa_sym(aa)),
                    None => OutputAction::Epsilon,
                };
                Some(step(Vec::new(), out))
            }
        },
    )
    .expect("translate is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run, run_to_vec, trace, ExecLimits, ExecStats};

    fn ab_alphabet() -> (Alphabet, Vec<Sym>) {
        let mut a = Alphabet::new();
        let syms: Vec<Sym> = "abc".chars().map(|c| a.intern_char(c)).collect();
        (a, syms)
    }

    #[test]
    fn copy_is_identity() {
        let (mut a, syms) = ab_alphabet();
        let t = copy(&mut a, &syms);
        let x = a.seq_of_str("abccba");
        assert_eq!(a.render(&run_to_vec(&t, &[&x]).unwrap()), "abccba");
    }

    #[test]
    fn complement_is_an_involution() {
        let mut a = Alphabet::new();
        let t = complement01(&mut a);
        let x = a.seq_of_str("110000");
        let once = run_to_vec(&t, &[&x]).unwrap();
        assert_eq!(a.render(&once), "001111");
        let twice = run_to_vec(&t, &[&once]).unwrap();
        assert_eq!(twice, x);
    }

    #[test]
    fn append_concatenates() {
        let (mut a, syms) = ab_alphabet();
        let t = append(&mut a, &syms);
        assert_eq!(t.num_inputs, 2);
        assert_eq!(t.order(), 1);
        let x = a.seq_of_str("ab");
        let y = a.seq_of_str("ccc");
        assert_eq!(a.render(&run_to_vec(&t, &[&x, &y]).unwrap()), "abccc");
        // ε cases
        assert_eq!(a.render(&run_to_vec(&t, &[&[], &y]).unwrap()), "ccc");
        assert_eq!(a.render(&run_to_vec(&t, &[&x, &[]]).unwrap()), "ab");
    }

    #[test]
    fn example_6_1_fig_2_square_trace() {
        // Fig. 2: T_square on "abc" — three steps, each running T_append,
        // outputs ε → abc → abcabc → abcabcabc.
        let (mut a, syms) = ab_alphabet();
        let t = square(&mut a, &syms);
        assert_eq!(t.order(), 2);
        let x = a.seq_of_str("abc");
        let (rows, out) = trace(&t, &[&x], &a).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].output_before, "");
        assert_eq!(rows[0].output_after, "abc");
        assert_eq!(rows[1].output_after, "abcabc");
        assert_eq!(rows[2].output_after, "abcabcabc");
        assert!(rows.iter().all(|r| r.operation == "run t_append"));
        assert_eq!(a.render(&out), "abcabcabc");
        assert_eq!(out.len(), 9); // n² for n = 3
    }

    #[test]
    fn square_output_length_is_quadratic() {
        let (mut a, syms) = ab_alphabet();
        let t = square(&mut a, &syms);
        for n in 0..8 {
            let x: Vec<Sym> = std::iter::repeat_n(syms[0], n).collect();
            let out = run_to_vec(&t, &[&x]).unwrap();
            assert_eq!(out.len(), n * n);
        }
    }

    #[test]
    fn echo_doubles_each_symbol() {
        // Example 1.6: abcd ↦ aabbccdd.
        let mut a = Alphabet::new();
        let syms: Vec<Sym> = "abcd".chars().map(|c| a.intern_char(c)).collect();
        let t = echo(&mut a, &syms);
        let x = a.seq_of_str("abcd");
        assert_eq!(a.render(&run_to_vec(&t, &[&x, &x]).unwrap()), "aabbccdd");
    }

    #[test]
    fn square_output_machine_matches_spec() {
        let (mut a, syms) = ab_alphabet();
        let t = square_output(&mut a, &syms);
        assert_eq!(t.order(), 2);
        let x = a.seq_of_str("ab");
        let y = a.seq_of_str("abc");
        let out = run_to_vec(&t, &[&x, &y]).unwrap();
        // y^{len(y)} = abc·abc·abc, length 9.
        assert_eq!(a.render(&out), "abcabcabc");
        // len(y) = 0 gives ε.
        assert!(run_to_vec(&t, &[&x, &[]]).unwrap().is_empty());
    }

    #[test]
    fn exp_is_doubly_exponential() {
        let (mut a, syms) = ab_alphabet();
        let t = exp(&mut a, &syms);
        assert_eq!(t.order(), 3);
        let mut stats = ExecStats::default();
        for (n, expected) in [(1, 1), (2, 2), (3, 4), (4, 16), (5, 256), (6, 65_536)] {
            let x: Vec<Sym> = std::iter::repeat_n(syms[0], n).collect();
            let out = run(&t, &[&x], &ExecLimits::default(), &mut stats).unwrap();
            assert_eq!(out.len(), expected, "input length {n}");
        }
    }

    #[test]
    fn transcribe_matches_example_7_1() {
        let mut a = Alphabet::new();
        let t = transcribe(&mut a);
        let dna = a.seq_of_str("acgtacgt");
        assert_eq!(a.render(&run_to_vec(&t, &[&dna]).unwrap()), "ugcaugca");
    }

    #[test]
    fn translate_matches_example_7_1() {
        let mut a = Alphabet::new();
        let t = translate(&mut a);
        let rna = a.seq_of_str("gaugacuuacac");
        assert_eq!(a.render(&run_to_vec(&t, &[&rna]).unwrap()), "DDLH");
    }

    #[test]
    fn translate_skips_stop_codons_and_partial_tails() {
        let mut a = Alphabet::new();
        let t = translate(&mut a);
        // aug (M) uaa (stop) gg (partial tail)
        let rna = a.seq_of_str("auguaagg");
        assert_eq!(a.render(&run_to_vec(&t, &[&rna]).unwrap()), "M");
    }

    #[test]
    fn genetic_code_is_total_on_codons() {
        let mut count = 0;
        let mut stops = 0;
        for a in "acgu".chars() {
            for b in "acgu".chars() {
                for c in "acgu".chars() {
                    match amino_for([a, b, c]) {
                        Some(aa) => {
                            assert!("ARNDCQEGHILKMFPSTWYV".contains(aa));
                            count += 1;
                        }
                        None => stops += 1,
                    }
                }
            }
        }
        assert_eq!(count + stops, 64);
        assert_eq!(stops, 3);
    }

    #[test]
    fn base_transducer_output_bounded_by_input() {
        // The Theorem 4 base case: |out| ≤ |in| for order-1 machines — here
        // checked for every library order-1 machine on sample inputs.
        let (mut a, syms) = ab_alphabet();
        let machines = vec![
            copy(&mut a, &syms),
            append(&mut a, &syms),
            echo(&mut a, &syms),
        ];
        let x = a.seq_of_str("abcabc");
        for t in machines {
            let inputs: Vec<&[Sym]> = (0..t.num_inputs).map(|_| x.as_slice()).collect();
            let out = run_to_vec(&t, &inputs).unwrap();
            assert!(out.len() <= x.len() * t.num_inputs, "{}", t.name);
            assert_eq!(t.order(), 1, "{}", t.name);
        }
    }
}
