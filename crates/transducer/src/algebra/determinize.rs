//! Mohri-style subsequential determinization with output-delay buffers.

use super::fst::Fst;
use super::AlgebraError;
use seqlog_sequence::{FxHashMap, Sym};
use std::collections::VecDeque;

/// Blow-up caps for [`Fst::determinize`]. Determinization of a functional
/// machine can still be exponential in states (and a non-subsequential
/// machine has unbounded delay buffers), so the construction declines —
/// with a reason — rather than diverging.
#[derive(Clone, Copy, Debug)]
pub struct DeterminizeCaps {
    /// Maximum number of subset states.
    pub max_states: usize,
    /// Maximum length of any output-delay (residual) buffer.
    pub max_residual: usize,
}

impl Default for DeterminizeCaps {
    fn default() -> Self {
        Self {
            max_states: 4096,
            max_residual: 64,
        }
    }
}

/// A subset state: `(state, pending output)` pairs, sorted for hashing.
type Subset = Vec<(u32, Vec<Sym>)>;

fn lcp_len(a: &[Sym], b: &[Sym]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

impl Fst {
    /// Subsequential determinization (Mohri's subset construction with
    /// output-delay buffers): the result is deterministic, emits the
    /// longest common prefix of all pending outputs on each arc, and
    /// carries the per-run remainder in the subset state.
    ///
    /// Declines (with [`AlgebraError::DeterminizeDeclined`]) when the
    /// subset count or a delay buffer exceeds `caps`, or when the machine
    /// is provably not subsequential (two distinct final outputs for one
    /// input). On success the result defines the same relation — which is
    /// then necessarily a partial function.
    pub fn determinize(&self, caps: &DeterminizeCaps) -> Result<Fst, AlgebraError> {
        let src = self.trim();
        let mut out = Fst::new(format!("det({})", self.name), 0);
        let mut ids: FxHashMap<Subset, u32> = FxHashMap::default();
        let mut queue: VecDeque<Subset> = VecDeque::new();
        let start: Subset = vec![(src.initial(), Vec::new())];
        ids.insert(start.clone(), out.add_state());
        queue.push_back(start);
        while let Some(subset) = queue.pop_front() {
            let id = ids[&subset];
            // Final output candidates: residual ⧺ final output, per member.
            let mut final_outs: Vec<Vec<Sym>> = Vec::new();
            for (q, res) in &subset {
                for f in src.finals_of(*q) {
                    let mut o = res.clone();
                    o.extend_from_slice(f);
                    final_outs.push(o);
                }
            }
            final_outs.sort();
            final_outs.dedup();
            if final_outs.len() > 1 {
                return Err(AlgebraError::DeterminizeDeclined {
                    name: self.name.clone(),
                    reason: "not subsequential: two distinct outputs for one input".into(),
                });
            }
            if let Some(f) = final_outs.pop() {
                out.set_final(id, f);
            }
            // Input symbols leaving this subset.
            let mut symbols: Vec<Sym> = subset
                .iter()
                .flat_map(|(q, _)| src.arcs_from(*q).iter().map(|a| a.input))
                .collect();
            symbols.sort();
            symbols.dedup();
            for sym in symbols {
                let mut targets: Subset = Vec::new();
                for (q, res) in &subset {
                    for a in src.arcs_from(*q) {
                        if a.input == sym {
                            let mut o = res.clone();
                            o.extend_from_slice(&a.output);
                            targets.push((a.next, o));
                        }
                    }
                }
                // Emit the longest common prefix of all pending outputs.
                let mut prefix = lcp_len(&targets[0].1, &targets[0].1);
                for (_, o) in &targets[1..] {
                    prefix = prefix.min(lcp_len(&targets[0].1, o));
                }
                let emitted: Vec<Sym> = targets[0].1[..prefix].to_vec();
                for (_, o) in &mut targets {
                    o.drain(..prefix);
                    if o.len() > caps.max_residual {
                        return Err(AlgebraError::DeterminizeDeclined {
                            name: self.name.clone(),
                            reason: format!(
                                "output-delay buffer exceeded {} symbols",
                                caps.max_residual
                            ),
                        });
                    }
                }
                targets.sort();
                targets.dedup();
                let tid = match ids.get(&targets) {
                    Some(&t) => t,
                    None => {
                        if ids.len() >= caps.max_states {
                            return Err(AlgebraError::DeterminizeDeclined {
                                name: self.name.clone(),
                                reason: format!(
                                    "subset construction exceeded {} states",
                                    caps.max_states
                                ),
                            });
                        }
                        let t = out.add_state();
                        ids.insert(targets.clone(), t);
                        queue.push_back(targets.clone());
                        t
                    }
                };
                out.add_arc(id, sym, emitted, tid);
            }
        }
        out.normalize();
        debug_assert!(out.is_deterministic());
        Ok(out)
    }
}
