//! Compile-time transducer algebra: determinization, composition, trim,
//! minimization, functionality and equivalence decision procedures.
//!
//! The runtime machine model ([`crate::machine::Transducer`]) is the paper's
//! Definition 7: δ is a *deterministic partial map* and every transition
//! consumes input. For static analysis we need the classical, more liberal
//! view of a 1-input order-1 machine as a **finite-state transducer** over
//! letter/word arcs — nondeterministic in general, with per-state final
//! output sets. That view is [`Fst`]; this module implements the algebra on
//! it and lifts the results back to `Transducer` where representable:
//!
//! * [`Fst::compose`] — relational composition (run `self`, feed `other`),
//! * [`Fst::trim`] — restrict to reachable ∧ co-reachable states,
//! * [`Fst::determinize`] — Mohri-style subsequential determinization with
//!   output-delay buffers, capped to decline blow-ups,
//! * [`Fst::minimize`] — partition-refinement minimization of deterministic
//!   machines,
//! * [`Fst::is_functional`] — squaring construction with output-lag
//!   tracking (Béal–Carton style),
//! * [`Fst::equivalent`] — bounded-delay equivalence of functional
//!   machines (domain equality + lag consistency on the joint square).
//!
//! The same operations are exposed on [`Transducer`] directly for 1-input
//! order-1 machines; higher-order or multi-input machines return
//! [`AlgebraError::Unsupported`].

mod compose;
mod decide;
mod determinize;
mod fst;
mod minimize;

pub use determinize::DeterminizeCaps;
pub use fst::{Arc, Fst};

use crate::machine::Transducer;
use std::fmt;

/// Why an algebra operation could not be performed (or its result could not
/// be represented as a runtime [`Transducer`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgebraError {
    /// The machine is outside the algebra's scope (multi-input, higher
    /// order, or mismatched end markers).
    Unsupported {
        /// Machine name.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Determinization was declined: the subset construction exceeded the
    /// state cap, an output-delay buffer exceeded the residual cap, or the
    /// machine is not subsequential (conflicting final outputs).
    DeterminizeDeclined {
        /// Machine name.
        name: String,
        /// Human-readable reason (cap hit or conflict found).
        reason: String,
    },
    /// The operation requires a deterministic machine.
    Nondeterministic {
        /// Machine name.
        name: String,
    },
    /// The operation is only defined for functional machines.
    NotFunctional {
        /// Machine name.
        name: String,
    },
    /// The [`Fst`] cannot be lowered to a runtime [`Transducer`] (arc
    /// emitting a word longer than one symbol, a non-final state, or a
    /// non-ε final output — Definition 7 machines accept everywhere and
    /// emit at most one symbol per transition).
    Unrepresentable {
        /// Machine name.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unsupported { name, reason } => {
                write!(f, "{name}: unsupported by the transducer algebra: {reason}")
            }
            Self::DeterminizeDeclined { name, reason } => {
                write!(f, "{name}: determinization declined: {reason}")
            }
            Self::Nondeterministic { name } => {
                write!(f, "{name}: operation requires a deterministic machine")
            }
            Self::NotFunctional { name } => {
                write!(f, "{name}: operation requires a functional machine")
            }
            Self::Unrepresentable { name, reason } => {
                write!(
                    f,
                    "{name}: not representable as a runtime transducer: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for AlgebraError {}

impl Transducer {
    /// View this machine as an [`Fst`] (1-input, order-1 machines only).
    pub fn algebra(&self) -> Result<Fst, AlgebraError> {
        Fst::from_transducer(self)
    }

    /// Subsequential determinization (default caps). Definition 7 machines
    /// are already deterministic, so this is essentially a normalization;
    /// it exists so [`Fst`]-level pipelines and `Transducer`s share one API.
    pub fn determinize(&self) -> Result<Transducer, AlgebraError> {
        let det = self.algebra()?.determinize(&DeterminizeCaps::default())?;
        det.to_transducer(&self.name, self.end_marker)
    }

    /// Compose two machines: run `self` first, feed its output to `other`.
    pub fn compose(&self, other: &Transducer) -> Result<Transducer, AlgebraError> {
        if self.end_marker != other.end_marker {
            return Err(AlgebraError::Unsupported {
                name: self.name.clone(),
                reason: format!("end marker differs from {}", other.name),
            });
        }
        let composed = self.algebra()?.compose(&other.algebra()?);
        composed.to_transducer(&format!("{}.{}", self.name, other.name), self.end_marker)
    }

    /// Remove states that are unreachable from the initial state. (Runtime
    /// machines accept in every state, so every reachable state is useful —
    /// trim equals reachability here.)
    pub fn trim(&self) -> Result<Transducer, AlgebraError> {
        self.algebra()?
            .trim()
            .to_transducer(&self.name, self.end_marker)
    }

    /// Minimize via partition refinement (Hopcroft-style, over the
    /// trimmed machine).
    pub fn minimize(&self) -> Result<Transducer, AlgebraError> {
        let min = self.algebra()?.minimize()?;
        min.to_transducer(&self.name, self.end_marker)
    }

    /// Decide functionality via the squaring construction. Definition 7
    /// machines are deterministic, so this always returns `Ok(true)`; it is
    /// the honest decision procedure nevertheless (and the one used for
    /// registered nondeterministic [`Fst`] relations).
    pub fn is_functional(&self) -> Result<bool, AlgebraError> {
        Ok(self.algebra()?.is_functional())
    }

    /// Decide whether two machines define the same sequence function
    /// (bounded-delay equivalence; exact for functional machines).
    pub fn equivalent(&self, other: &Transducer) -> Result<bool, AlgebraError> {
        self.algebra()?.equivalent(&other.algebra()?)
    }
}

#[cfg(test)]
mod tests;
