//! Partition-refinement minimization of deterministic machines.

use super::fst::Fst;
use super::AlgebraError;
use seqlog_sequence::{FxHashMap, Sym};

/// A state's refinement signature: sorted `(input, output, successor class)`.
type Signature = Vec<(Sym, Vec<Sym>, u32)>;

impl Fst {
    /// Minimize a deterministic machine by Hopcroft-style partition
    /// refinement: start from finality classes (keyed by the final-output
    /// word), split classes until every pair of states in a class has the
    /// same `(input, output word, successor class)` signature, then keep
    /// one state per class. The machine is trimmed first, so the result is
    /// the unique minimal trim machine for this transition/output labelling.
    ///
    /// (Canonical minimality of *subsequential* transducers additionally
    /// pushes output words towards the initial state; chains produced by
    /// [`Fst::determinize`] already emit eagerly, so plain refinement is
    /// exact for the machines this crate fuses.)
    pub fn minimize(&self) -> Result<Fst, AlgebraError> {
        if !self.is_deterministic() {
            return Err(AlgebraError::Nondeterministic {
                name: self.name.clone(),
            });
        }
        let src = self.trim();
        let n = src.num_states();
        if n == 0 {
            return Ok(src);
        }
        // Initial partition: by final-output set.
        let mut class: Vec<u32> = vec![0; n];
        let mut num_classes;
        {
            let mut keys: FxHashMap<Vec<Vec<Sym>>, u32> = FxHashMap::default();
            for (q, c) in class.iter_mut().enumerate() {
                let k = src.finals_of(q as u32).to_vec();
                let next = keys.len() as u32;
                *c = *keys.entry(k).or_insert(next);
            }
            num_classes = keys.len();
        }
        // Refine to fixpoint on (class, (input, output, successor-class))
        // signatures. The signature includes the current class, so classes
        // only ever split; the count is strictly increasing until stable
        // and bounded by n, so this terminates.
        loop {
            let mut sig_ids: FxHashMap<(u32, Signature), u32> = FxHashMap::default();
            let mut next_class: Vec<u32> = vec![0; n];
            for q in 0..n {
                let mut sig: Signature = src
                    .arcs_from(q as u32)
                    .iter()
                    .map(|a| (a.input, a.output.clone(), class[a.next as usize]))
                    .collect();
                sig.sort();
                let key = (class[q], sig);
                let fresh = sig_ids.len() as u32;
                next_class[q] = *sig_ids.entry(key).or_insert(fresh);
            }
            let count = sig_ids.len();
            class = next_class;
            if count == num_classes {
                break;
            }
            num_classes = count;
        }
        // Build the quotient machine.
        let num_classes = class.iter().copied().max().unwrap_or(0) as usize + 1;
        let mut out = Fst::new(self.name.clone(), num_classes);
        out.set_initial(class[src.initial() as usize]);
        let mut done = vec![false; num_classes];
        for q in 0..n {
            let c = class[q] as usize;
            if done[c] {
                continue;
            }
            done[c] = true;
            for a in src.arcs_from(q as u32) {
                out.add_arc(c as u32, a.input, a.output.clone(), class[a.next as usize]);
            }
            for f in src.finals_of(q as u32) {
                out.set_final(c as u32, f.clone());
            }
        }
        out.normalize();
        Ok(out)
    }
}
