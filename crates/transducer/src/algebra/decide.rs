//! Decision procedures: functionality (squaring construction) and
//! bounded-delay equivalence of functional machines.

use super::fst::Fst;
use super::AlgebraError;
use seqlog_sequence::{FxHashMap, Sym};
use std::collections::VecDeque;

/// An output lag between two runs: the two remainders after stripping the
/// longest common prefix. For consistent run pairs at most one side is
/// non-empty; both non-empty means the outputs have diverged.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Lag {
    left: Vec<Sym>,
    right: Vec<Sym>,
}

impl Lag {
    fn advance(&self, u: &[Sym], v: &[Sym]) -> Lag {
        let mut left = self.left.clone();
        left.extend_from_slice(u);
        let mut right = self.right.clone();
        right.extend_from_slice(v);
        let common = left
            .iter()
            .zip(right.iter())
            .take_while(|(a, b)| a == b)
            .count();
        left.drain(..common);
        right.drain(..common);
        Lag { left, right }
    }

    fn diverged(&self) -> bool {
        !self.left.is_empty() && !self.right.is_empty()
    }
}

/// One pair-graph edge: `(output self, output other, target pair)`.
type PairEdge = (Vec<Sym>, Vec<Sym>, u32);

/// The pair graph of two machines on a shared input: reachable pairs, the
/// arc-pair relation, and which pairs are both-final.
struct PairGraph {
    states: Vec<(u32, u32)>,
    edges: Vec<Vec<PairEdge>>,
    final_pairs: Vec<bool>,
}

fn pair_graph(a: &Fst, b: &Fst) -> PairGraph {
    let mut ids: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    let mut states = Vec::new();
    let mut edges: Vec<Vec<PairEdge>> = Vec::new();
    let start = (a.initial(), b.initial());
    ids.insert(start, 0);
    states.push(start);
    edges.push(Vec::new());
    let mut queue = VecDeque::from([start]);
    while let Some((qa, qb)) = queue.pop_front() {
        let id = ids[&(qa, qb)] as usize;
        let mut out = Vec::new();
        for arc_a in a.arcs_from(qa) {
            for arc_b in b.arcs_from(qb) {
                if arc_a.input != arc_b.input {
                    continue;
                }
                let target = (arc_a.next, arc_b.next);
                let tid = *ids.entry(target).or_insert_with(|| {
                    let t = states.len() as u32;
                    states.push(target);
                    edges.push(Vec::new());
                    queue.push_back(target);
                    t
                });
                out.push((arc_a.output.clone(), arc_b.output.clone(), tid));
            }
        }
        edges[id] = out;
    }
    let final_pairs = states
        .iter()
        .map(|&(qa, qb)| !a.finals_of(qa).is_empty() && !b.finals_of(qb).is_empty())
        .collect();
    PairGraph {
        states,
        edges,
        final_pairs,
    }
}

/// Check output-lag consistency of the joint square of `a` and `b`
/// (both must be trim). Returns `true` when every co-accessible pair has a
/// unique, non-diverged lag and lags cancel exactly against final outputs.
///
/// With `a == b` this is the squaring functionality test (Béal–Carton);
/// with `a ≠ b` of equal domain it decides equivalence of functional
/// machines.
fn lag_consistent(a: &Fst, b: &Fst) -> bool {
    let g = pair_graph(a, b);
    let n = g.states.len();
    // Co-accessible pairs: can reach a both-final pair.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, outs) in g.edges.iter().enumerate() {
        for (_, _, t) in outs {
            rev[*t as usize].push(i as u32);
        }
    }
    let mut useful = vec![false; n];
    let mut stack: Vec<u32> = (0..n as u32)
        .filter(|&i| g.final_pairs[i as usize])
        .collect();
    for &i in &stack {
        useful[i as usize] = true;
    }
    while let Some(i) = stack.pop() {
        for &p in &rev[i as usize] {
            if !useful[p as usize] {
                useful[p as usize] = true;
                stack.push(p);
            }
        }
    }
    if !useful[0] {
        // No accepted input reaches both machines jointly: nothing to
        // compare, trivially consistent.
        return true;
    }
    // BFS assigning each useful pair a unique lag.
    let mut lag: Vec<Option<Lag>> = vec![None; n];
    lag[0] = Some(Lag {
        left: Vec::new(),
        right: Vec::new(),
    });
    let mut queue = VecDeque::from([0u32]);
    while let Some(i) = queue.pop_front() {
        let cur = lag[i as usize].clone().expect("enqueued with a lag");
        for (u, v, t) in &g.edges[i as usize] {
            if !useful[*t as usize] {
                continue;
            }
            let next = cur.advance(u, v);
            if next.diverged() {
                return false;
            }
            match &lag[*t as usize] {
                Some(existing) => {
                    if *existing != next {
                        return false;
                    }
                }
                None => {
                    lag[*t as usize] = Some(next);
                    queue.push_back(*t);
                }
            }
        }
    }
    // Final pairs: the lag must cancel exactly against the final outputs.
    for (i, &(qa, qb)) in g.states.iter().enumerate() {
        if !g.final_pairs[i] || !useful[i] {
            continue;
        }
        let Some(l) = &lag[i] else { continue };
        for fa in a.finals_of(qa) {
            for fb in b.finals_of(qb) {
                let mut left = l.left.clone();
                left.extend_from_slice(fa);
                let mut right = l.right.clone();
                right.extend_from_slice(fb);
                if left != right {
                    return false;
                }
            }
        }
    }
    true
}

/// Deterministic view of a machine's input language (outputs ignored):
/// subset construction over the trim machine, so every DFA state can reach
/// an accepting DFA state.
struct DomainDfa {
    arcs: Vec<Vec<(Sym, u32)>>,
    accepting: Vec<bool>,
}

fn domain_dfa(t: &Fst) -> DomainDfa {
    let mut ids: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut arcs: Vec<Vec<(Sym, u32)>> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();
    let start = vec![t.initial()];
    ids.insert(start.clone(), 0);
    arcs.push(Vec::new());
    accepting.push(!t.finals_of(t.initial()).is_empty());
    let mut queue = VecDeque::from([start]);
    while let Some(subset) = queue.pop_front() {
        let id = ids[&subset] as usize;
        let mut symbols: Vec<Sym> = subset
            .iter()
            .flat_map(|&q| t.arcs_from(q).iter().map(|a| a.input))
            .collect();
        symbols.sort();
        symbols.dedup();
        for sym in symbols {
            let mut target: Vec<u32> = subset
                .iter()
                .flat_map(|&q| {
                    t.arcs_from(q)
                        .iter()
                        .filter(move |a| a.input == sym)
                        .map(|a| a.next)
                })
                .collect();
            target.sort();
            target.dedup();
            let tid = *ids.entry(target.clone()).or_insert_with(|| {
                let i = arcs.len() as u32;
                arcs.push(Vec::new());
                accepting.push(target.iter().any(|&q| !t.finals_of(q).is_empty()));
                queue.push_back(target.clone());
                i
            });
            arcs[id].push((sym, tid));
        }
    }
    DomainDfa { arcs, accepting }
}

/// Same input language? Product walk of the two partial DFAs. Both DFAs
/// come from trim machines, so every state can still reach acceptance —
/// an arc present on one side only is therefore a genuine domain mismatch.
fn same_domain(a: &Fst, b: &Fst) -> bool {
    let da = domain_dfa(a);
    let db = domain_dfa(b);
    let mut seen: FxHashMap<(u32, u32), ()> = FxHashMap::default();
    let mut queue = VecDeque::from([(0u32, 0u32)]);
    seen.insert((0, 0), ());
    while let Some((sa, sb)) = queue.pop_front() {
        if da.accepting[sa as usize] != db.accepting[sb as usize] {
            return false;
        }
        let arcs_a = &da.arcs[sa as usize];
        let arcs_b = &db.arcs[sb as usize];
        for &(sym, ta) in arcs_a {
            match arcs_b.iter().find(|(s, _)| *s == sym) {
                Some(&(_, tb)) => {
                    if seen.insert((ta, tb), ()).is_none() {
                        queue.push_back((ta, tb));
                    }
                }
                None => return false,
            }
        }
        for &(sym, _) in arcs_b {
            if !arcs_a.iter().any(|(s, _)| *s == sym) {
                return false;
            }
        }
    }
    true
}

impl Fst {
    /// Decide whether this machine defines a partial *function* (at most
    /// one output per input), via the squaring construction: the trim
    /// self-product with output-lag tracking. A diverged or non-unique lag
    /// at a co-accessible pair, or a lag that fails to cancel against the
    /// final outputs, exhibits an input with two outputs.
    pub fn is_functional(&self) -> bool {
        let t = self.trim();
        lag_consistent(&t, &t)
    }

    /// Decide whether two *functional* machines define the same sequence
    /// function: equal input domains and lag-consistent joint square.
    /// Exact (no bound guessing): the lag of each pair state is unique for
    /// equivalent machines, so the walk terminates within `n₁·n₂` pairs.
    ///
    /// Returns [`AlgebraError::NotFunctional`] when either machine is not
    /// functional — use [`Fst::is_functional`] first.
    pub fn equivalent(&self, other: &Fst) -> Result<bool, AlgebraError> {
        if !self.is_functional() {
            return Err(AlgebraError::NotFunctional {
                name: self.name.clone(),
            });
        }
        if !other.is_functional() {
            return Err(AlgebraError::NotFunctional {
                name: other.name.clone(),
            });
        }
        let a = self.trim();
        let b = other.trim();
        Ok(same_domain(&a, &b) && lag_consistent(&a, &b))
    }
}
