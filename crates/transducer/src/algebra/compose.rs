//! Pairwise composition and trim.

use super::fst::Fst;
use seqlog_sequence::FxHashMap;
use std::collections::VecDeque;

impl Fst {
    /// Relational composition: run `self` on the input, feed its output to
    /// `other`; the result maps input words directly to `other`'s outputs.
    ///
    /// States are reachable pairs `(q_self, q_other)`; for an arc
    /// `q_self --a/w--> q'_self` the pair machine has one arc per way
    /// `other` can consume `w` from `q_other`. A pair is final when `self`
    /// can accept with output `u` and `other` can consume `u` and accept.
    pub fn compose(&self, other: &Fst) -> Fst {
        let mut ids: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        let mut out = Fst::new(format!("{}.{}", self.name, other.name), 0);
        let mut queue = VecDeque::new();
        let start = (self.initial(), other.initial());
        ids.insert(start, out.add_state());
        queue.push_back(start);
        while let Some((qa, qb)) = queue.pop_front() {
            let id = ids[&(qa, qb)];
            for a in self.arcs_from(qa) {
                for (qb2, v) in other.run_word(qb, &a.output) {
                    let target = (a.next, qb2);
                    let tid = *ids.entry(target).or_insert_with(|| {
                        queue.push_back(target);
                        out.add_state()
                    });
                    out.add_arc(id, a.input, v, tid);
                }
            }
            for u in self.finals_of(qa) {
                for (qb2, v) in other.run_word(qb, u) {
                    for f in other.finals_of(qb2) {
                        let mut w = v.clone();
                        w.extend_from_slice(f);
                        out.set_final(id, w);
                    }
                }
            }
        }
        out.normalize();
        out
    }

    /// Restrict to useful states: reachable from the initial state *and*
    /// co-reachable (some final state is reachable from them). The initial
    /// state is always kept so the result is a well-formed machine (it may
    /// define the empty relation).
    pub fn trim(&self) -> Fst {
        let n = self.num_states();
        let mut reach = vec![false; n];
        let mut stack = vec![self.initial()];
        reach[self.initial() as usize] = true;
        while let Some(q) = stack.pop() {
            for a in self.arcs_from(q) {
                if !reach[a.next as usize] {
                    reach[a.next as usize] = true;
                    stack.push(a.next);
                }
            }
        }
        // Reverse edges for co-reachability.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for q in 0..n as u32 {
            for a in self.arcs_from(q) {
                rev[a.next as usize].push(q);
            }
        }
        let mut coreach = vec![false; n];
        let mut stack: Vec<u32> = (0..n as u32)
            .filter(|&q| !self.finals_of(q).is_empty())
            .collect();
        for &q in &stack {
            coreach[q as usize] = true;
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q as usize] {
                if !coreach[p as usize] {
                    coreach[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        let keep: Vec<bool> = (0..n)
            .map(|q| (reach[q] && coreach[q]) || q == self.initial() as usize)
            .collect();
        let mut remap = vec![u32::MAX; n];
        let mut out = Fst::new(self.name.clone(), 0);
        for q in 0..n {
            if keep[q] {
                remap[q] = out.add_state();
            }
        }
        let useful = |q: usize| reach[q] && coreach[q];
        for q in 0..n {
            if !keep[q] {
                continue;
            }
            // Arcs between useful states only; a kept-but-useless initial
            // state contributes no arcs or finals.
            if useful(q) {
                for a in self.arcs_from(q as u32) {
                    if useful(a.next as usize) {
                        out.add_arc(remap[q], a.input, a.output.clone(), remap[a.next as usize]);
                    }
                }
                for f in self.finals_of(q as u32) {
                    out.set_final(remap[q], f.clone());
                }
            }
        }
        out.set_initial(remap[self.initial() as usize]);
        out.normalize();
        out
    }
}
