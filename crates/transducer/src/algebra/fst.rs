//! The [`Fst`] representation and conversions to/from runtime machines.

use super::AlgebraError;
use crate::machine::{HeadMove, OutputAction, StateId, Transducer, Transition};
use seqlog_sequence::{FxHashMap, Sym};

/// One transition of an [`Fst`]: consume `input`, append `output`, go to
/// `next`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Arc {
    /// The consumed input symbol.
    pub input: Sym,
    /// The emitted output word (possibly empty).
    pub output: Vec<Sym>,
    /// The successor state.
    pub next: u32,
}

/// A classical finite-state transducer over letter/word arcs.
///
/// Nondeterministic in general; a state is *final* when its final-output
/// set is non-empty (accepting a run appends one of the final outputs).
/// The runtime model's 1-input order-1 machines embed via
/// [`Fst::from_transducer`] as deterministic machines in which every state
/// is final with the empty final output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fst {
    /// Machine name (diagnostics only).
    pub name: String,
    initial: u32,
    arcs: Vec<Vec<Arc>>,
    finals: Vec<Vec<Vec<Sym>>>,
}

impl Fst {
    /// Create a machine with `num_states` states (state 0 is initial) and
    /// no arcs or final outputs.
    pub fn new(name: impl Into<String>, num_states: usize) -> Self {
        Self {
            name: name.into(),
            initial: 0,
            arcs: vec![Vec::new(); num_states],
            finals: vec![Vec::new(); num_states],
        }
    }

    /// Append a fresh state and return its id.
    pub fn add_state(&mut self) -> u32 {
        self.arcs.push(Vec::new());
        self.finals.push(Vec::new());
        (self.arcs.len() - 1) as u32
    }

    /// Add a transition (duplicates are removed by [`Fst::normalize`]).
    pub fn add_arc(&mut self, from: u32, input: Sym, output: Vec<Sym>, next: u32) {
        self.arcs[from as usize].push(Arc {
            input,
            output,
            next,
        });
    }

    /// Mark `state` final with the given final-output word.
    pub fn set_final(&mut self, state: u32, output: Vec<Sym>) {
        self.finals[state as usize].push(output);
    }

    /// Sort and deduplicate arcs and final-output sets. All constructors in
    /// this module call this, so machine comparison is structural.
    pub fn normalize(&mut self) {
        for a in &mut self.arcs {
            a.sort();
            a.dedup();
        }
        for f in &mut self.finals {
            f.sort();
            f.dedup();
        }
    }

    /// The initial state.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// Designate the initial state.
    pub fn set_initial(&mut self, q: u32) {
        assert!((q as usize) < self.arcs.len());
        self.initial = q;
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.arcs.len()
    }

    /// Number of transitions.
    pub fn num_arcs(&self) -> usize {
        self.arcs.iter().map(Vec::len).sum()
    }

    /// The arcs leaving `state`.
    pub fn arcs_from(&self, state: u32) -> &[Arc] {
        &self.arcs[state as usize]
    }

    /// The final-output set of `state` (empty ⇒ non-final).
    pub fn finals_of(&self, state: u32) -> &[Vec<Sym>] {
        &self.finals[state as usize]
    }

    /// True when no state has two arcs on the same input symbol and no
    /// state has two distinct final outputs.
    pub fn is_deterministic(&self) -> bool {
        self.finals.iter().all(|f| f.len() <= 1)
            && self.arcs.iter().all(|arcs| {
                arcs.windows(2).all(|w| w[0].input != w[1].input) && {
                    // Arcs are only guaranteed adjacent-by-input after
                    // normalize(); check pairwise for safety on tiny
                    // fan-outs.
                    let mut seen: Vec<Sym> = Vec::with_capacity(arcs.len());
                    arcs.iter().all(|a| {
                        if seen.contains(&a.input) {
                            false
                        } else {
                            seen.push(a.input);
                            true
                        }
                    })
                }
            })
    }

    /// All outputs of the machine on `input` (sorted, deduplicated).
    /// Extensional ground truth for the property suite; exponential in the
    /// worst case, so callers keep inputs bounded.
    pub fn outputs(&self, input: &[Sym]) -> Vec<Vec<Sym>> {
        let mut out = Vec::new();
        let mut stack: Vec<(u32, usize, Vec<Sym>)> = vec![(self.initial, 0, Vec::new())];
        while let Some((q, pos, acc)) = stack.pop() {
            if pos == input.len() {
                for f in self.finals_of(q) {
                    let mut o = acc.clone();
                    o.extend_from_slice(f);
                    out.push(o);
                }
            } else {
                for a in self.arcs_from(q) {
                    if a.input == input[pos] {
                        let mut o = acc.clone();
                        o.extend_from_slice(&a.output);
                        stack.push((a.next, pos + 1, o));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// All `(state, emitted)` pairs reachable from `from` by consuming
    /// exactly the word `w` (used by composition).
    pub(super) fn run_word(&self, from: u32, w: &[Sym]) -> Vec<(u32, Vec<Sym>)> {
        let mut cur: Vec<(u32, Vec<Sym>)> = vec![(from, Vec::new())];
        for &sym in w {
            let mut next = Vec::new();
            for (q, emitted) in cur {
                for a in self.arcs_from(q) {
                    if a.input == sym {
                        let mut o = emitted.clone();
                        o.extend_from_slice(&a.output);
                        next.push((a.next, o));
                    }
                }
            }
            cur = next;
            if cur.is_empty() {
                break;
            }
        }
        cur.sort();
        cur.dedup();
        cur
    }

    /// View a 1-input order-1 runtime machine as an [`Fst`]: one arc per δ
    /// entry, every state final with the empty final output (a Definition 7
    /// machine halts successfully exactly when its input is exhausted).
    pub fn from_transducer(t: &Transducer) -> Result<Self, AlgebraError> {
        if t.num_inputs != 1 {
            return Err(AlgebraError::Unsupported {
                name: t.name.clone(),
                reason: format!(
                    "{}-input machine (algebra covers 1-input machines)",
                    t.num_inputs
                ),
            });
        }
        if t.order() != 1 {
            return Err(AlgebraError::Unsupported {
                name: t.name.clone(),
                reason: format!(
                    "order-{} machine (algebra covers order-1 machines)",
                    t.order()
                ),
            });
        }
        let mut fst = Fst::new(t.name.clone(), t.num_states());
        fst.initial = t.initial.0;
        for (q, read, tr) in t.iter_transitions() {
            // A unary transition must consume (Def 7.5(i)) and cannot
            // consume the end marker (Def 7.5(ii)), so `read` is a single
            // ordinary symbol.
            debug_assert_eq!(read.len(), 1);
            debug_assert_ne!(read[0], t.end_marker);
            let output = match tr.output {
                OutputAction::Epsilon => Vec::new(),
                OutputAction::Emit(s) => vec![s],
                OutputAction::Call(_) => unreachable!("order-1 machine has no subtransducers"),
            };
            fst.add_arc(q.0, read[0], output, tr.next.0);
        }
        for q in 0..fst.num_states() {
            fst.set_final(q as u32, Vec::new());
        }
        fst.normalize();
        Ok(fst)
    }

    /// Lower this machine to a runtime [`Transducer`]. Requires a
    /// deterministic machine whose arcs emit at most one symbol and whose
    /// states are all final with the empty final output (Definition 7
    /// machines accept everywhere and emit ≤ 1 symbol per step).
    pub fn to_transducer(&self, name: &str, end_marker: Sym) -> Result<Transducer, AlgebraError> {
        if !self.is_deterministic() {
            return Err(AlgebraError::Nondeterministic {
                name: self.name.clone(),
            });
        }
        let mut transitions: FxHashMap<(StateId, Box<[Sym]>), Transition> = FxHashMap::default();
        for (q, arcs) in self.arcs.iter().enumerate() {
            for a in arcs {
                let output = match a.output.len() {
                    0 => OutputAction::Epsilon,
                    1 => OutputAction::Emit(a.output[0]),
                    n => {
                        return Err(AlgebraError::Unrepresentable {
                            name: self.name.clone(),
                            reason: format!("an arc emits a {n}-symbol word"),
                        })
                    }
                };
                transitions.insert(
                    (StateId(q as u32), vec![a.input].into()),
                    Transition {
                        next: StateId(a.next),
                        moves: vec![HeadMove::Consume].into(),
                        output,
                    },
                );
            }
        }
        for (q, f) in self.finals.iter().enumerate() {
            if f.len() != 1 || !f[0].is_empty() {
                return Err(AlgebraError::Unrepresentable {
                    name: self.name.clone(),
                    reason: format!(
                        "state {q} is {} (runtime machines accept everywhere with ε)",
                        if f.is_empty() {
                            "non-final"
                        } else {
                            "final with a non-ε output"
                        }
                    ),
                });
            }
        }
        let t = Transducer {
            name: name.to_string(),
            num_inputs: 1,
            state_names: (0..self.num_states()).map(|i| format!("f{i}")).collect(),
            initial: StateId(self.initial),
            transitions,
            subtransducers: Vec::new(),
            end_marker,
        };
        t.validate().map_err(|e| AlgebraError::Unrepresentable {
            name: self.name.clone(),
            reason: e.to_string(),
        })?;
        Ok(t)
    }
}
