use super::{AlgebraError, DeterminizeCaps, Fst};
use crate::builder::TransducerBuilder;
use crate::library;
use seqlog_sequence::{Alphabet, Sym};

fn abc() -> (Alphabet, Vec<Sym>) {
    let mut a = Alphabet::new();
    let syms: Vec<Sym> = "abc".chars().map(|c| a.intern_char(c)).collect();
    (a, syms)
}

#[test]
fn transducer_roundtrips_through_fst() {
    let (mut a, syms) = abc();
    let rot = library::mapper(
        &mut a,
        "rot",
        &[(syms[0], syms[1]), (syms[1], syms[2]), (syms[2], syms[0])],
    );
    let fst = rot.algebra().unwrap();
    assert!(fst.is_deterministic());
    assert_eq!(fst.num_states(), rot.num_states());
    let back = fst.to_transducer("rot2", rot.end_marker).unwrap();
    let input = a.seq_of_str("abcba");
    assert_eq!(
        crate::run_to_vec(&rot, &[&input]).unwrap(),
        crate::run_to_vec(&back, &[&input]).unwrap()
    );
}

#[test]
fn compose_runs_first_then_second() {
    let (mut a, syms) = abc();
    // f: a→b, b→c, c→a ; g: drops b, copies a and c.
    let f = library::mapper(
        &mut a,
        "f",
        &[(syms[0], syms[1]), (syms[1], syms[2]), (syms[2], syms[0])],
    );
    let mut g = TransducerBuilder::new("g", 1, a.end_marker());
    let q = g.state("q");
    g.on(
        q,
        &[syms[0]],
        q,
        &[crate::HeadMove::Consume],
        crate::OutputAction::Emit(syms[0]),
    );
    g.on(
        q,
        &[syms[1]],
        q,
        &[crate::HeadMove::Consume],
        crate::OutputAction::Epsilon,
    );
    g.on(
        q,
        &[syms[2]],
        q,
        &[crate::HeadMove::Consume],
        crate::OutputAction::Emit(syms[2]),
    );
    let g = g.build().unwrap();
    // f;g on "abc": f gives "bca", g drops the b → "ca".
    let fg = f.compose(&g).unwrap();
    let input = a.seq_of_str("abc");
    assert_eq!(a.render(&crate::run_to_vec(&fg, &[&input]).unwrap()), "ca");
    // g;f on "abc": g gives "ac", f maps → "ba".
    let gf = g.compose(&f).unwrap();
    assert_eq!(a.render(&crate::run_to_vec(&gf, &[&input]).unwrap()), "ba");
}

#[test]
fn trim_drops_unreachable_states() {
    let (mut a, syms) = abc();
    let mut b = TransducerBuilder::new("dead", 1, a.end_marker());
    let q = b.state("q");
    let dead = b.state("dead");
    b.on(
        q,
        &[syms[0]],
        q,
        &[crate::HeadMove::Consume],
        crate::OutputAction::Emit(syms[0]),
    );
    b.on(
        dead,
        &[syms[1]],
        dead,
        &[crate::HeadMove::Consume],
        crate::OutputAction::Epsilon,
    );
    let t = b.build().unwrap();
    assert_eq!(t.num_states(), 2);
    let trimmed = t.trim().unwrap();
    assert_eq!(trimmed.num_states(), 1);
    assert_eq!(trimmed.num_transitions(), 1);
}

#[test]
fn determinize_merges_nondeterministic_relation() {
    let (_, syms) = abc();
    // Two parallel a-paths with the same outputs: a/b then a/c, via
    // distinct intermediate states. Determinization folds them together.
    let mut f = Fst::new("nd", 4);
    f.add_arc(0, syms[0], vec![syms[1]], 1);
    f.add_arc(0, syms[0], vec![syms[1]], 2);
    f.add_arc(1, syms[0], vec![syms[2]], 3);
    f.add_arc(2, syms[0], vec![syms[2]], 3);
    f.set_final(3, Vec::new());
    f.normalize();
    assert!(!f.is_deterministic());
    let det = f.determinize(&DeterminizeCaps::default()).unwrap();
    assert!(det.is_deterministic());
    let input = vec![syms[0], syms[0]];
    assert_eq!(det.outputs(&input), f.outputs(&input));
    assert_eq!(det.outputs(&[syms[0]]), f.outputs(&[syms[0]]));
}

#[test]
fn determinize_declines_non_subsequential_machines() {
    let (_, syms) = abc();
    // a → b or a → c from the initial state: two outputs for one input.
    let mut f = Fst::new("conflict", 2);
    f.add_arc(0, syms[0], vec![syms[1]], 1);
    f.add_arc(0, syms[0], vec![syms[2]], 1);
    f.set_final(1, Vec::new());
    f.normalize();
    assert!(!f.is_functional());
    let err = f.determinize(&DeterminizeCaps::default()).unwrap_err();
    assert!(matches!(err, AlgebraError::DeterminizeDeclined { .. }));
}

#[test]
fn determinize_declines_on_delay_cap() {
    let (_, syms) = abc();
    // Two a-loops with different outputs, both accepting: functional? No —
    // but the conflict only surfaces through unbounded delay buffers.
    let mut f = Fst::new("delay", 3);
    f.add_arc(0, syms[0], vec![syms[1]], 1);
    f.add_arc(0, syms[0], vec![syms[2]], 2);
    f.add_arc(1, syms[0], vec![syms[1]], 1);
    f.add_arc(2, syms[0], vec![syms[2]], 2);
    f.set_final(1, Vec::new());
    f.set_final(2, Vec::new());
    f.normalize();
    let err = f
        .determinize(&DeterminizeCaps {
            max_states: 4096,
            max_residual: 8,
        })
        .unwrap_err();
    assert!(matches!(err, AlgebraError::DeterminizeDeclined { .. }));
}

#[test]
fn minimize_collapses_equivalent_states() {
    let (_, syms) = abc();
    // Two states with identical behaviour (copy a) reached on a.
    let mut f = Fst::new("dup", 3);
    f.add_arc(0, syms[0], vec![syms[0]], 1);
    f.add_arc(0, syms[1], vec![syms[0]], 2);
    f.add_arc(1, syms[0], vec![syms[0]], 1);
    f.add_arc(2, syms[0], vec![syms[0]], 2);
    f.set_final(0, Vec::new());
    f.set_final(1, Vec::new());
    f.set_final(2, Vec::new());
    f.normalize();
    let min = f.minimize().unwrap();
    assert_eq!(min.num_states(), 2);
    for w in [vec![], vec![syms[0]], vec![syms[1], syms[0]]] {
        assert_eq!(min.outputs(&w), f.outputs(&w));
    }
}

#[test]
fn functionality_detects_two_outputs() {
    let (_, syms) = abc();
    let mut f = Fst::new("twoout", 2);
    f.add_arc(0, syms[0], vec![syms[1]], 1);
    f.add_arc(0, syms[0], vec![syms[2]], 1);
    f.set_final(1, Vec::new());
    f.normalize();
    assert!(!f.is_functional());
    // Restricting to one arc is functional.
    let mut g = Fst::new("oneout", 2);
    g.add_arc(0, syms[0], vec![syms[1]], 1);
    g.set_final(1, Vec::new());
    g.normalize();
    assert!(g.is_functional());
}

#[test]
fn functionality_ignores_non_coaccessible_conflicts() {
    let (_, syms) = abc();
    // The conflicting second arc leads to a dead (non-final, arcless)
    // state, so the relation is still a function.
    let mut f = Fst::new("deadconflict", 3);
    f.add_arc(0, syms[0], vec![syms[1]], 1);
    f.add_arc(0, syms[0], vec![syms[2]], 2);
    f.set_final(1, Vec::new());
    f.normalize();
    assert!(f.is_functional());
}

#[test]
fn equivalence_distinguishes_delay_and_agreement() {
    let (mut a, syms) = abc();
    let rot = library::mapper(
        &mut a,
        "rot",
        &[(syms[0], syms[1]), (syms[1], syms[2]), (syms[2], syms[0])],
    );
    // Same function built with a redundant extra state.
    let mut b = TransducerBuilder::new("rot_padded", 1, a.end_marker());
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    for (x, y) in [(syms[0], syms[1]), (syms[1], syms[2]), (syms[2], syms[0])] {
        b.on(
            q0,
            &[x],
            q1,
            &[crate::HeadMove::Consume],
            crate::OutputAction::Emit(y),
        );
        b.on(
            q1,
            &[x],
            q0,
            &[crate::HeadMove::Consume],
            crate::OutputAction::Emit(y),
        );
    }
    let padded = b.build().unwrap();
    assert!(rot.equivalent(&padded).unwrap());
    let copy = library::copy(&mut a, &syms);
    assert!(!rot.equivalent(&copy).unwrap());
    // Minimization of the padded machine reaches the 1-state form.
    let min = padded.minimize().unwrap();
    assert_eq!(min.num_states(), 1);
    assert!(rot.equivalent(&min).unwrap());
}

#[test]
fn algebra_rejects_unsupported_machines() {
    let mut a = Alphabet::new();
    let syms: Vec<Sym> = "ab".chars().map(|c| a.intern_char(c)).collect();
    let echo = library::echo(&mut a, &syms); // 2 inputs
    assert!(matches!(
        echo.algebra(),
        Err(AlgebraError::Unsupported { .. })
    ));
    let square = library::square(&mut a, &syms); // order 2
    assert!(matches!(
        square.algebra(),
        Err(AlgebraError::Unsupported { .. })
    ));
}
