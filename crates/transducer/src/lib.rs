//! Generalized sequence transducers (Sections 6 and 6.2 of Bonner & Mecca).
//!
//! A *generalized sequence transducer* is a multi-input, one-way finite-state
//! transducer that may, at any step, hand its inputs **plus its current
//! output** to a *subtransducer* whose result overwrites the output tape.
//! Nesting depth stratifies the machines into orders: `T¹` are ordinary
//! transducers, `T²` already computes outputs of polynomial length
//! (Example 6.1 squares its input), and `T³` reaches hyperexponential
//! lengths (Theorem 4).
//!
//! This crate provides:
//!
//! * the machine model with the Definition 7 well-formedness checks
//!   ([`machine`]),
//! * a direct interpreter with step/output accounting and resource budgets
//!   ([`exec`]), including a Fig. 2-style tracer,
//! * two construction APIs — an explicit builder and a reachability-driven
//!   synthesizer ([`builder`]),
//! * the machines used by the paper's examples and proofs ([`library`]),
//! * acyclic transducer networks with diameter/order computation
//!   ([`network`]).

// Every public item carries documentation, and the same pedantic-subset of
// clippy that crates/core promotes to warn applies here (CI runs clippy
// with `-D warnings`, so these are effectively deny).
#![warn(missing_docs)]
#![warn(
    clippy::cast_lossless,
    clippy::explicit_iter_loop,
    clippy::inefficient_to_string,
    clippy::items_after_statements,
    clippy::manual_let_else,
    clippy::map_unwrap_or,
    clippy::match_same_arms,
    clippy::redundant_closure_for_method_calls,
    clippy::semicolon_if_nothing_returned,
    clippy::uninlined_format_args
)]

pub mod algebra;
pub mod builder;
pub mod exec;
pub mod library;
pub mod machine;
pub mod network;

pub use algebra::{AlgebraError, Arc, DeterminizeCaps, Fst};
pub use builder::{synthesize, synthesize_multi, SynthStep, TransducerBuilder};
pub use exec::{run, run_to_vec, trace, ExecError, ExecLimits, ExecStats, TraceRow};
pub use machine::{HeadMove, MachineError, OutputAction, StateId, Transducer, Transition};
pub use network::{Network, NodeId};
