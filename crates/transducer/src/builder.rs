//! Construction of transducers: an explicit builder and a lazy synthesizer.
//!
//! [`TransducerBuilder`] is the low-level API: declare states, add δ entries,
//! attach subtransducers, and `build()` (which validates the Definition 7
//! restrictions).
//!
//! [`synthesize`] is the high-level API used by the machine library and the
//! Theorem 5 Turing-machine compiler: describe the machine as a pure function
//! from an *abstract state* (any `Eq + Hash` value, e.g. "copy mode with two
//! buffered symbols") and the symbols under the heads to an action; the
//! synthesizer explores exactly the reachable (state, read) space breadth-
//! first and materializes a concrete finite transition table. This keeps
//! machine definitions at the level the paper describes them ("at each step,
//! T_square appends a copy of its input to its output") while producing
//! honest finite-state machines.

use crate::machine::{HeadMove, MachineError, OutputAction, StateId, Transducer, Transition};
use seqlog_sequence::{FxHashMap, Sym};
use std::collections::VecDeque;
use std::hash::Hash;

/// Incremental transducer constructor. See the module docs.
pub struct TransducerBuilder {
    name: String,
    num_inputs: usize,
    end_marker: Sym,
    state_names: Vec<String>,
    by_name: FxHashMap<String, StateId>,
    transitions: FxHashMap<(StateId, Box<[Sym]>), Transition>,
    subtransducers: Vec<Transducer>,
}

impl TransducerBuilder {
    /// Start building an `m`-input machine named `name`. `end_marker` is the
    /// interned `⊣` symbol (see [`seqlog_sequence::Alphabet::end_marker`]).
    pub fn new(name: impl Into<String>, num_inputs: usize, end_marker: Sym) -> Self {
        Self {
            name: name.into(),
            num_inputs,
            end_marker,
            state_names: Vec::new(),
            by_name: FxHashMap::default(),
            transitions: FxHashMap::default(),
            subtransducers: Vec::new(),
        }
    }

    /// Declare (or fetch) a state by name. The first declared state is the
    /// initial state q0.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let name = name.into();
        if let Some(&q) = self.by_name.get(&name) {
            return q;
        }
        let q = StateId(self.state_names.len() as u32);
        self.by_name.insert(name.clone(), q);
        self.state_names.push(name);
        q
    }

    /// Attach a subtransducer; returns its index for [`OutputAction::Call`].
    pub fn sub(&mut self, t: Transducer) -> usize {
        self.subtransducers.push(t);
        self.subtransducers.len() - 1
    }

    /// Add the δ entry `δ(from, read) = (to, moves, out)`.
    ///
    /// # Panics
    /// Panics if a conflicting entry for `(from, read)` already exists —
    /// Definition 7 machines are deterministic.
    pub fn on(
        &mut self,
        from: StateId,
        read: &[Sym],
        to: StateId,
        moves: &[HeadMove],
        out: OutputAction,
    ) -> &mut Self {
        let key = (from, Box::<[Sym]>::from(read));
        let t = Transition {
            next: to,
            moves: moves.into(),
            output: out,
        };
        if let Some(prev) = self.transitions.insert(key, t.clone()) {
            assert!(
                prev == t,
                "conflicting transition from state {:?} in {}",
                from,
                self.name
            );
        }
        self
    }

    /// Finalize and validate the machine.
    pub fn build(self) -> Result<Transducer, MachineError> {
        let t = Transducer {
            name: self.name,
            num_inputs: self.num_inputs,
            state_names: if self.state_names.is_empty() {
                vec!["q0".to_string()]
            } else {
                self.state_names
            },
            initial: StateId(0),
            transitions: self.transitions,
            subtransducers: self.subtransducers,
            end_marker: self.end_marker,
        };
        t.validate()?;
        Ok(t)
    }
}

/// The action returned by a [`synthesize`] step function.
pub struct SynthStep<S> {
    /// Successor abstract state.
    pub next: S,
    /// One command per head.
    pub moves: Vec<HeadMove>,
    /// Output action (subtransducer indices refer to the `subs` argument of
    /// [`synthesize`]).
    pub output: OutputAction,
}

/// Materialize a finite transducer from a step function over abstract states.
///
/// * `universe` — the symbols that may appear on the input tapes **excluding**
///   the end marker; the synthesizer automatically extends each head's read
///   set with `⊣`.
/// * `step` — `step(state, read)` returns `None` when δ is undefined there
///   (the machine halts or gets stuck), or the action to take.
///
/// Only (state, read) pairs reachable from `initial` are explored, so the
/// abstract state type may be unbounded (e.g. carry buffered symbols) as long
/// as the *reachable* portion is finite.
#[allow(clippy::too_many_arguments)] // public API: explicit parameters beat a config struct here
pub fn synthesize<S: Eq + Hash + Clone>(
    name: impl Into<String>,
    num_inputs: usize,
    end_marker: Sym,
    universe: &[Sym],
    subs: Vec<Transducer>,
    initial: S,
    describe: impl Fn(&S) -> String,
    step: impl Fn(&S, &[Sym]) -> Option<SynthStep<S>>,
) -> Result<Transducer, MachineError> {
    let universes = vec![universe.to_vec(); num_inputs];
    synthesize_multi(
        name, num_inputs, end_marker, &universes, subs, initial, describe, step,
    )
}

/// Like [`synthesize`], but with a separate symbol universe per input tape.
/// This keeps the materialized transition table small when tapes carry
/// different alphabets (e.g. the Theorem 5 step transducer, whose counter
/// tape never carries state symbols).
#[allow(clippy::too_many_arguments)]
pub fn synthesize_multi<S: Eq + Hash + Clone>(
    name: impl Into<String>,
    num_inputs: usize,
    end_marker: Sym,
    universes: &[Vec<Sym>],
    subs: Vec<Transducer>,
    initial: S,
    describe: impl Fn(&S) -> String,
    step: impl Fn(&S, &[Sym]) -> Option<SynthStep<S>>,
) -> Result<Transducer, MachineError> {
    assert_eq!(universes.len(), num_inputs);
    let mut b = TransducerBuilder::new(name, num_inputs, end_marker);
    for sub in subs {
        b.sub(sub);
    }

    let mut ids: FxHashMap<S, StateId> = FxHashMap::default();
    let mut queue: VecDeque<S> = VecDeque::new();
    let q0 = b.state(describe(&initial));
    ids.insert(initial.clone(), q0);
    queue.push_back(initial);

    // The read alphabet for each head: its universe plus ⊣.
    let reads: Vec<Vec<Sym>> = universes
        .iter()
        .map(|u| {
            let mut r = u.clone();
            if !r.contains(&end_marker) {
                r.push(end_marker);
            }
            r
        })
        .collect();

    // Cartesian product of head readings.
    let mut tuple = vec![0usize; num_inputs];
    while let Some(state) = queue.pop_front() {
        let from = ids[&state];
        tuple.iter_mut().for_each(|i| *i = 0);
        'tuples: loop {
            let read: Vec<Sym> = tuple.iter().zip(&reads).map(|(&i, r)| r[i]).collect();
            // Skip the all-⊣ tuple: the machine has already halted there.
            if read.iter().any(|&s| s != end_marker) {
                if let Some(act) = step(&state, &read) {
                    let to = match ids.get(&act.next) {
                        Some(&q) => q,
                        None => {
                            let q = b.state(describe(&act.next));
                            ids.insert(act.next.clone(), q);
                            queue.push_back(act.next.clone());
                            q
                        }
                    };
                    b.on(from, &read, to, &act.moves, act.output);
                }
            }
            // Advance the product counter.
            for pos in (0..num_inputs).rev() {
                tuple[pos] += 1;
                if tuple[pos] < reads[pos].len() {
                    continue 'tuples;
                }
                tuple[pos] = 0;
            }
            break;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_to_vec;
    use seqlog_sequence::Alphabet;

    #[test]
    fn builder_dedupes_state_names() {
        let mut a = Alphabet::new();
        let end = a.end_marker();
        let mut b = TransducerBuilder::new("t", 1, end);
        let q = b.state("q0");
        let q2 = b.state("q0");
        assert_eq!(q, q2);
    }

    #[test]
    #[should_panic(expected = "conflicting transition")]
    fn builder_panics_on_nondeterminism() {
        let mut a = Alphabet::new();
        let x = a.intern_char('x');
        let end = a.end_marker();
        let mut b = TransducerBuilder::new("t", 1, end);
        let q = b.state("q0");
        b.on(q, &[x], q, &[HeadMove::Consume], OutputAction::Epsilon);
        b.on(q, &[x], q, &[HeadMove::Consume], OutputAction::Emit(x));
    }

    #[test]
    fn synthesized_identity_machine() {
        let mut a = Alphabet::new();
        let syms: Vec<Sym> = "ab".chars().map(|c| a.intern_char(c)).collect();
        let end = a.end_marker();
        let t = synthesize(
            "identity",
            1,
            end,
            &syms,
            vec![],
            (),
            |_| "copy".to_string(),
            |_, read| {
                (read[0] != end).then(|| SynthStep {
                    next: (),
                    moves: vec![HeadMove::Consume],
                    output: OutputAction::Emit(read[0]),
                })
            },
        )
        .unwrap();
        assert_eq!(t.order(), 1);
        let input = a.seq_of_str("abba");
        let out = run_to_vec(&t, &[&input]).unwrap();
        assert_eq!(a.render(&out), "abba");
    }

    #[test]
    fn synthesize_explores_only_reachable_states() {
        let mut a = Alphabet::new();
        let syms: Vec<Sym> = "a".chars().map(|c| a.intern_char(c)).collect();
        let end = a.end_marker();
        // Abstract states 0..u64::MAX, but only 0 and 1 are reachable
        // (parity machine).
        let t = synthesize(
            "parity",
            1,
            end,
            &syms,
            vec![],
            0u64,
            |s| format!("p{s}"),
            |s, read| {
                (read[0] != end).then(|| SynthStep {
                    next: (s + 1) % 2,
                    moves: vec![HeadMove::Consume],
                    output: OutputAction::Epsilon,
                })
            },
        )
        .unwrap();
        assert_eq!(t.num_states(), 2);
    }
}
