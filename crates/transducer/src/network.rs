//! Acyclic transducer networks (Section 6.2).
//!
//! A network wires transducer outputs to transducer inputs; the paper only
//! considers acyclic networks (so computations are finite) and measures two
//! parameters that govern complexity: the **diameter** (longest path,
//! Theorem 4's `d`) and the **order** (maximum machine order, Theorem 4's
//! `k`). A network with designated input ports and one designated output
//! node computes a sequence mapping `(Σ*)^m → Σ*`.
//!
//! Networks here are acyclic *by construction*: a machine node may only be
//! fed from nodes that already exist, so edges always point from lower to
//! higher node ids.

use crate::exec::{run, ExecError, ExecLimits, ExecStats};
use crate::machine::Transducer;
use seqlog_sequence::Sym;
use std::fmt;

/// Handle of a node inside a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone)]
enum Node {
    /// A network input port.
    Input,
    /// A transducer fed by earlier nodes (one feed per input tape, in tape
    /// order). The same node may feed several tapes — that is how Example
    /// 1.6's echo machine receives two copies of one sequence.
    Machine { t: Transducer, feeds: Vec<NodeId> },
}

/// An acyclic network of generalized transducers with one output node.
#[derive(Clone)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    output: Option<NodeId>,
}

impl Network {
    /// Create an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            output: None,
        }
    }

    /// Add a network input port.
    pub fn add_input(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Input);
        self.inputs.push(id);
        id
    }

    /// Add a machine node fed by `feeds` (one existing node per input tape).
    /// The most recently added node becomes the default output.
    ///
    /// # Panics
    /// Panics if the arity does not match or a feed refers to a node that
    /// does not exist yet (which is what makes cycles unrepresentable).
    pub fn add_machine(&mut self, t: Transducer, feeds: &[NodeId]) -> NodeId {
        assert_eq!(
            feeds.len(),
            t.num_inputs,
            "{} expects {} feeds, got {}",
            t.name,
            t.num_inputs,
            feeds.len()
        );
        for f in feeds {
            assert!(f.index() < self.nodes.len(), "feed from nonexistent node");
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Machine {
            t,
            feeds: feeds.to_vec(),
        });
        self.output = Some(id);
        id
    }

    /// Designate the network output node.
    pub fn set_output(&mut self, node: NodeId) {
        assert!(node.index() < self.nodes.len());
        self.output = Some(node);
    }

    /// Build a single-input chain `t1 ; t2 ; …` of 1-input machines.
    pub fn chain(name: impl Into<String>, machines: Vec<Transducer>) -> Self {
        let mut n = Self::new(name);
        let mut prev = n.add_input();
        for t in machines {
            assert_eq!(t.num_inputs, 1, "chain requires 1-input machines");
            prev = n.add_machine(t, &[prev]);
        }
        n
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// When this network is a single-input linear chain of 1-input
    /// machines ending at the output node, return the machines in
    /// application order (the shape [`Network::chain`] builds, and the
    /// shape the compile-time fusion pass can collapse). Returns `None`
    /// for any other topology.
    pub fn chain_machines(&self) -> Option<Vec<&Transducer>> {
        if self.inputs.len() != 1 {
            return None;
        }
        let output = self.output?;
        let mut machines = Vec::new();
        let mut expect = NodeId(0);
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Input => {
                    if i != 0 {
                        return None;
                    }
                }
                Node::Machine { t, feeds } => {
                    if t.num_inputs != 1 || feeds.as_slice() != [expect] {
                        return None;
                    }
                    machines.push(t);
                    expect = NodeId(i as u32);
                }
            }
        }
        (output == expect && !machines.is_empty()).then_some(machines)
    }

    /// Number of network input ports.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of machine nodes.
    pub fn num_machines(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Machine { .. }))
            .count()
    }

    /// The network's **order**: the maximum order of any machine in it
    /// (Section 6.2).
    pub fn order(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Machine { t, .. } => Some(t.order()),
                Node::Input => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The network's **diameter**: the maximum number of machine nodes on
    /// any path (Section 6.2).
    pub fn diameter(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            depth[i] = match node {
                Node::Input => 0,
                Node::Machine { feeds, .. } => {
                    1 + feeds.iter().map(|f| depth[f.index()]).max().unwrap_or(0)
                }
            };
            max = max.max(depth[i]);
        }
        max
    }

    /// Run the network on `inputs` (one sequence per input port, in creation
    /// order), evaluating machine nodes in topological (= id) order.
    pub fn run(
        &self,
        inputs: &[&[Sym]],
        limits: &ExecLimits,
        stats: &mut ExecStats,
    ) -> Result<Vec<Sym>, ExecError> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "{}: wrong input count",
            self.name
        );
        let output = self.output.expect("network has no output node");
        let mut values: Vec<Option<Vec<Sym>>> = vec![None; self.nodes.len()];
        let mut next_input = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Input => {
                    values[i] = Some(inputs[next_input].to_vec());
                    next_input += 1;
                }
                Node::Machine { t, feeds } => {
                    let tapes: Vec<&[Sym]> = feeds
                        .iter()
                        .map(|f| values[f.index()].as_deref().expect("topological order"))
                        .collect();
                    values[i] = Some(run(t, &tapes, limits, stats)?);
                }
            }
        }
        Ok(values[output.index()].take().expect("output evaluated"))
    }

    /// Run with default limits and discarded stats.
    pub fn run_simple(&self, inputs: &[&[Sym]]) -> Result<Vec<Sym>, ExecError> {
        self.run(inputs, &ExecLimits::default(), &mut ExecStats::default())
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("name", &self.name)
            .field("inputs", &self.inputs.len())
            .field("machines", &self.num_machines())
            .field("diameter", &self.diameter())
            .field("order", &self.order())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use seqlog_sequence::Alphabet;

    #[test]
    fn chain_of_squares_gives_n_to_the_2_to_the_d() {
        // Theorem 4, order 2: a diameter-d chain of T_square machines maps
        // length n to length n^(2^d).
        let mut a = Alphabet::new();
        let syms: Vec<_> = "x".chars().map(|c| a.intern_char(c)).collect();
        for d in 1..=3usize {
            let machines: Vec<_> = (0..d).map(|_| library::square(&mut a, &syms)).collect();
            let net = Network::chain(format!("square^{d}"), machines);
            assert_eq!(net.diameter(), d);
            assert_eq!(net.order(), 2);
            let n = 3usize;
            let input: Vec<_> = std::iter::repeat_n(syms[0], n).collect();
            let out = net.run_simple(&[&input]).unwrap();
            assert_eq!(out.len(), n.pow(2u32.pow(d as u32)));
        }
    }

    #[test]
    fn fan_out_feeds_one_node_to_two_ports() {
        // Echo needs the same sequence on both tapes (Example 1.6).
        let mut a = Alphabet::new();
        let syms: Vec<_> = "ab".chars().map(|c| a.intern_char(c)).collect();
        let echo = library::echo(&mut a, &syms);
        let mut net = Network::new("echo");
        let x = net.add_input();
        net.add_machine(echo, &[x, x]);
        let input = a.seq_of_str("ab");
        assert_eq!(a.render(&net.run_simple(&[&input]).unwrap()), "aabb");
    }

    #[test]
    fn dna_pipeline_is_a_serial_network() {
        // Example 7.1 as a diameter-2, order-1 network.
        let mut a = Alphabet::new();
        let machines = vec![library::transcribe(&mut a), library::translate(&mut a)];
        let net = Network::chain("dna_to_protein", machines);
        assert_eq!(net.diameter(), 2);
        assert_eq!(net.order(), 1);
        // ctactgaaggtg --transcribe--> gaugacuuccac --translate--> DDFH
        let dna = a.seq_of_str("ctactgaaggtg");
        let out = net.run_simple(&[&dna]).unwrap();
        assert_eq!(a.render(&out), "DDFH");
    }

    #[test]
    fn multi_input_network_routes_ports_in_order() {
        let mut a = Alphabet::new();
        let syms: Vec<_> = "ab".chars().map(|c| a.intern_char(c)).collect();
        let app = library::append(&mut a, &syms);
        let mut net = Network::new("cat");
        let x = net.add_input();
        let y = net.add_input();
        net.add_machine(app, &[y, x]); // deliberately swapped
        let sx = a.seq_of_str("aa");
        let sy = a.seq_of_str("b");
        assert_eq!(a.render(&net.run_simple(&[&sx, &sy]).unwrap()), "baa");
    }

    #[test]
    #[should_panic(expected = "expects 2 feeds")]
    fn arity_mismatch_panics() {
        let mut a = Alphabet::new();
        let syms: Vec<_> = "a".chars().map(|c| a.intern_char(c)).collect();
        let app = library::append(&mut a, &syms);
        let mut net = Network::new("bad");
        let x = net.add_input();
        net.add_machine(app, &[x]);
    }

    #[test]
    fn order_of_mixed_network_is_max_machine_order() {
        let mut a = Alphabet::new();
        let syms: Vec<_> = "a".chars().map(|c| a.intern_char(c)).collect();
        let mut net = Network::new("mixed");
        let x = net.add_input();
        let c = net.add_machine(library::copy(&mut a, &syms), &[x]);
        net.add_machine(library::square(&mut a, &syms), &[c]);
        assert_eq!(net.order(), 2);
        assert_eq!(net.diameter(), 2);
        assert_eq!(net.num_machines(), 2);
    }
}
