//! Property-based tests for the transducer substrate.
//!
//! The laws here are the quantitative backbone of Section 6: order-1
//! machines cannot emit more symbols than they consume (`|out| ≤ Σ|in|`,
//! the Theorem 4 base case), `T_square` realizes exactly the n² worst case,
//! and every library machine terminates on every input over its alphabet.

use proptest::prelude::*;
use seqlog_sequence::{Alphabet, Sym};
use seqlog_transducer::{library, run, run_to_vec, ExecLimits, ExecStats};

fn word(max: usize) -> impl proptest::strategy::Strategy<Value = String> {
    proptest::collection::vec(prop_oneof!["a", "b", "c"], 0..max).prop_map(|v| v.concat())
}

fn setup(text: &str) -> (Alphabet, Vec<Sym>, Vec<Sym>) {
    let mut a = Alphabet::new();
    let syms: Vec<Sym> = "abc".chars().map(|c| a.intern_char(c)).collect();
    let input = a.seq_of_str(text);
    (a, syms, input)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn order_1_output_is_bounded_by_total_input(x in word(20), y in word(20)) {
        // Theorem 4 base case: |out| ≤ |in| for base transducers.
        let (mut a, syms, _) = setup("");
        let machines = vec![
            library::copy(&mut a, &syms),
            library::append(&mut a, &syms),
            library::echo(&mut a, &syms),
        ];
        let xs = a.seq_of_str(&x);
        let ys = a.seq_of_str(&y);
        for t in machines {
            prop_assert_eq!(t.order(), 1);
            let inputs: Vec<&[Sym]> = if t.num_inputs == 1 {
                vec![&xs]
            } else {
                vec![&xs, &ys]
            };
            let total: usize = inputs.iter().map(|i| i.len()).sum();
            let mut stats = ExecStats::default();
            let out = run(&t, &inputs, &ExecLimits::default(), &mut stats).unwrap();
            prop_assert!(out.len() <= total, "{}: {} > {}", t.name, out.len(), total);
            // …and so is the number of steps (one consumption per step).
            prop_assert_eq!(stats.steps as usize, total);
        }
    }

    #[test]
    fn append_is_concatenation(x in word(15), y in word(15)) {
        let (mut a, syms, _) = setup("");
        let t = library::append(&mut a, &syms);
        let xs = a.seq_of_str(&x);
        let ys = a.seq_of_str(&y);
        let out = run_to_vec(&t, &[&xs, &ys]).unwrap();
        prop_assert_eq!(a.render(&out), format!("{x}{y}"));
    }

    #[test]
    fn square_attains_the_quadratic_worst_case(x in word(12)) {
        let (mut a, syms, input) = setup(&x);
        let t = library::square(&mut a, &syms);
        let mut stats = ExecStats::default();
        let out = run(&t, &[&input], &ExecLimits::default(), &mut stats).unwrap();
        let n = input.len();
        prop_assert_eq!(out.len(), n * n);
        prop_assert_eq!(stats.subcalls as usize, n);
        prop_assert_eq!(a.render(&out), x.repeat(n));
    }

    #[test]
    fn mapper_preserves_length_and_composes(x in word(20)) {
        let (mut a, syms, input) = setup(&x);
        // A rotation mapper a→b→c→a; applying it three times is the
        // identity.
        let rot: Vec<(Sym, Sym)> =
            (0..3).map(|i| (syms[i], syms[(i + 1) % 3])).collect();
        let t = library::mapper(&mut a, "rot", &rot);
        let once = run_to_vec(&t, &[&input]).unwrap();
        prop_assert_eq!(once.len(), input.len());
        let twice = run_to_vec(&t, &[&once]).unwrap();
        let thrice = run_to_vec(&t, &[&twice]).unwrap();
        prop_assert_eq!(thrice, input);
    }

    #[test]
    fn echo_fed_same_input_twice_doubles(x in word(20)) {
        let (mut a, syms, input) = setup(&x);
        let t = library::echo(&mut a, &syms);
        let out = run_to_vec(&t, &[&input, &input]).unwrap();
        let expected: String = x.chars().flat_map(|c| [c, c]).collect();
        prop_assert_eq!(a.render(&out), expected);
    }

    #[test]
    fn concat_ports_emits_in_the_requested_order(x in word(10), y in word(10), z in word(10)) {
        let (mut a, syms, _) = setup("");
        // Emit port 2 then port 0, consuming port 1 silently.
        let t = library::concat_ports(&mut a, "t_zx", &syms, 3, &[2, 0]);
        let (xs, ys, zs) = (a.seq_of_str(&x), a.seq_of_str(&y), a.seq_of_str(&z));
        let out = run_to_vec(&t, &[&xs, &ys, &zs]).unwrap();
        prop_assert_eq!(a.render(&out), format!("{z}{x}"));
    }

    #[test]
    fn trace_rows_match_step_count(x in word(10)) {
        let (mut a, syms, input) = setup(&x);
        let t = library::copy(&mut a, &syms);
        let (rows, out) = seqlog_transducer::trace(&t, &[&input], &a).unwrap();
        prop_assert_eq!(rows.len(), input.len());
        prop_assert_eq!(out, input);
        // Head positions are 1-based and strictly increasing for a copier.
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(r.heads[0], i + 1);
        }
    }

    #[test]
    fn transcribe_translate_pipeline_length_law(dna in proptest::collection::vec(prop_oneof!["a", "c", "g", "t"], 0..30).prop_map(|v| v.concat())) {
        let mut a = Alphabet::new();
        let t1 = library::transcribe(&mut a);
        let t2 = library::translate(&mut a);
        let input = a.seq_of_str(&dna);
        let rna = run_to_vec(&t1, &[&input]).unwrap();
        prop_assert_eq!(rna.len(), input.len());
        let protein = run_to_vec(&t2, &[&rna]).unwrap();
        // One amino acid per full codon, minus stop codons.
        prop_assert!(protein.len() <= rna.len() / 3);
    }
}

#[test]
fn square_output_on_empty_input_is_empty() {
    let (mut a, syms, _) = setup("");
    let t = library::square(&mut a, &syms);
    assert!(run_to_vec(&t, &[&[]]).unwrap().is_empty());
}

#[test]
fn output_limit_stops_the_order_3_pump() {
    let (mut a, syms, _) = setup("");
    let t = library::exp(&mut a, &syms);
    let input: Vec<Sym> = std::iter::repeat_n(syms[0], 8).collect();
    let limits = ExecLimits {
        max_output_len: 1 << 16,
        ..Default::default()
    };
    let err = run(&t, &[&input], &limits, &mut ExecStats::default()).unwrap_err();
    assert!(matches!(
        err,
        seqlog_transducer::ExecError::OutputLimit(_) | seqlog_transducer::ExecError::StepLimit(_)
    ));
}
