//! Property suite for the transducer algebra (`seqlog_transducer::algebra`)
//! over random machines from the testkit generator.
//!
//! Oracle: [`Fst::outputs`] — a brute-force extensional DFS over the
//! machine — evaluated on every word up to a bounded length. Each algebra
//! operation (trim, determinize, compose, minimize) must preserve the
//! input/output relation against that oracle, and [`Fst::equivalent`]
//! must agree with extensional comparison on the bounded input sets.
//!
//! The harness itself is mutation-tested at the bottom of the file: a
//! swapped-composition-order mutant and a skip-trim mutant are run
//! against the same oracles, and the tests assert the oracles *catch*
//! them — a property suite that would pass under those bugs would be
//! vacuous.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use seqlog_sequence::Sym;
use seqlog_testkit::fsts;
use seqlog_transducer::{DeterminizeCaps, Fst};

/// The 2-symbol universe the random machines range over. Small on
/// purpose: every word up to [`MAX_WORD`] is enumerable, so the
/// extensional oracle is total on the test set.
fn universe() -> Vec<Sym> {
    vec![Sym(0), Sym(1)]
}

const MAX_WORD: usize = 5;

/// Every word over `u` of length ≤ `max`.
fn words(u: &[Sym], max: usize) -> Vec<Vec<Sym>> {
    let mut out: Vec<Vec<Sym>> = vec![Vec::new()];
    let mut layer: Vec<Vec<Sym>> = vec![Vec::new()];
    for _ in 0..max {
        let mut next = Vec::new();
        for w in &layer {
            for &s in u {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        layer = next;
    }
    out
}

/// The machine's relation restricted to the bounded word set: for each
/// input word, the sorted set of outputs.
fn relation(f: &Fst, inputs: &[Vec<Sym>]) -> Vec<Vec<Vec<Sym>>> {
    inputs.iter().map(|w| f.outputs(w)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trim_preserves_the_relation(f in fsts(universe())) {
        let inputs = words(&universe(), MAX_WORD);
        let t = f.trim();
        prop_assert!(t.num_states() <= f.num_states());
        prop_assert_eq!(relation(&f, &inputs), relation(&t, &inputs));
    }

    #[test]
    fn determinize_preserves_the_relation_when_it_succeeds(f in fsts(universe())) {
        let inputs = words(&universe(), MAX_WORD);
        if let Ok(d) = f.determinize(&DeterminizeCaps::default()) {
            prop_assert!(d.is_deterministic());
            prop_assert_eq!(relation(&f, &inputs), relation(&d, &inputs));
        }
    }

    #[test]
    fn minimize_preserves_the_relation_and_never_grows(f in fsts(universe())) {
        let inputs = words(&universe(), MAX_WORD);
        // Route every machine through determinization first; minimize
        // requires a deterministic input.
        let Ok(d) = f.determinize(&DeterminizeCaps::default()) else {
            continue;
        };
        let m = d.minimize().expect("determinize output is deterministic");
        prop_assert!(m.num_states() <= d.num_states());
        prop_assert_eq!(relation(&d, &inputs), relation(&m, &inputs));
        // Minimization is idempotent at the state-count level.
        let mm = m.minimize().expect("still deterministic");
        prop_assert_eq!(mm.num_states(), m.num_states());
    }

    #[test]
    fn compose_matches_staged_execution(f in fsts(universe()), g in fsts(universe())) {
        let inputs = words(&universe(), MAX_WORD);
        let fg = f.compose(&g);
        for w in &inputs {
            // Staged oracle: run f, feed every output through g.
            let mut staged: Vec<Vec<Sym>> = f
                .outputs(w)
                .iter()
                .flat_map(|u| g.outputs(u))
                .collect();
            staged.sort();
            staged.dedup();
            prop_assert_eq!(fg.outputs(w), staged);
        }
    }

    #[test]
    fn is_functional_agrees_with_the_extensional_oracle(f in fsts(universe())) {
        let inputs = words(&universe(), MAX_WORD);
        // Soundness direction on the bounded set: a machine that emits two
        // distinct outputs for one bounded input is certainly not
        // functional. (The converse needs unboundedly long witnesses, which
        // the squaring construction decides exactly — covered by the unit
        // tests in `algebra::tests`.)
        if inputs.iter().any(|w| f.outputs(w).len() > 1) {
            prop_assert!(!f.is_functional());
        }
    }

    #[test]
    fn equivalent_agrees_with_extensional_comparison(
        f in fsts(universe()),
        g in fsts(universe()),
    ) {
        let inputs = words(&universe(), MAX_WORD);
        let (Ok(e_fg), Ok(e_ff)) = (f.equivalent(&g), f.equivalent(&f)) else {
            continue; // only defined for functional machines
        };
        prop_assert!(e_ff, "every functional machine is equivalent to itself");
        if e_fg {
            prop_assert_eq!(relation(&f, &inputs), relation(&g, &inputs));
        }
        if relation(&f, &inputs) != relation(&g, &inputs) {
            prop_assert!(!e_fg);
        }
    }

    // ── mutation tests of the harness ────────────────────────────────
    //
    // These do not test the algebra; they test that the oracles above are
    // strong enough to notice the two most plausible implementation bugs.

    #[test]
    fn trim_matches_an_independent_reachability_oracle(f in fsts(universe())) {
        // Forward reachability ∧ reverse co-reachability, computed here
        // from scratch. `trim` must keep exactly the useful states (plus
        // the initial state); a skip-trim mutant returns the machine
        // unchanged and diverges on any machine with dead states.
        let n = f.num_states();
        let mut reach = vec![false; n];
        reach[f.initial() as usize] = true;
        loop {
            let mut changed = false;
            for q in 0..n as u32 {
                if reach[q as usize] {
                    for a in f.arcs_from(q) {
                        if !reach[a.next as usize] {
                            reach[a.next as usize] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed { break; }
        }
        let mut coreach: Vec<bool> = (0..n as u32)
            .map(|q| !f.finals_of(q).is_empty())
            .collect();
        loop {
            let mut changed = false;
            for q in 0..n as u32 {
                if !coreach[q as usize] && f.arcs_from(q).iter().any(|a| coreach[a.next as usize]) {
                    coreach[q as usize] = true;
                    changed = true;
                }
            }
            if !changed { break; }
        }
        let useful = (0..n)
            .filter(|&q| reach[q] && coreach[q])
            .count()
            .max(1); // the initial state is always kept
        prop_assert_eq!(f.trim().num_states(), useful);
    }
}

/// A skip-trim mutant is only caught if the generator actually produces
/// machines with dead states — assert it does, so
/// `trim_matches_an_independent_reachability_oracle` has teeth.
#[test]
fn generator_produces_machines_with_dead_states() {
    let mut rng = TestRng::from_name("generator_produces_machines_with_dead_states");
    let strat = fsts(universe());
    let mut with_dead = 0;
    for _ in 0..64 {
        let f = strat.generate(&mut rng);
        if f.trim().num_states() < f.num_states() {
            with_dead += 1;
        }
    }
    assert!(
        with_dead >= 8,
        "only {with_dead}/64 machines had dead states — generator too tame to catch a skip-trim mutant"
    );
}

/// Swapped-composition-order mutant: composing `g` before `f` instead of
/// `f` before `g`. The staged-execution oracle from
/// `compose_matches_staged_execution` must flag it on some generated pair
/// within the same case budget — otherwise the property is vacuous.
#[test]
fn swapped_composition_order_mutant_is_caught() {
    let mut rng = TestRng::from_name("swapped_composition_order_mutant_is_caught");
    let strat = fsts(universe());
    let inputs = words(&universe(), MAX_WORD);
    let mut caught = false;
    for _ in 0..64 {
        let f = strat.generate(&mut rng);
        let g = strat.generate(&mut rng);
        let mutant = g.compose(&f); // bug under test: arguments swapped
        caught = inputs.iter().any(|w| {
            let mut staged: Vec<Vec<Sym>> =
                f.outputs(w).iter().flat_map(|u| g.outputs(u)).collect();
            staged.sort();
            staged.dedup();
            mutant.outputs(w) != staged
        });
        if caught {
            break;
        }
    }
    assert!(
        caught,
        "no generated pair distinguishes f;g from g;f — composition oracle is vacuous"
    );
}
