//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The container build has no crates-io access, so the real `proptest`
//! cannot be fetched. This shim implements the surface the workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! literal-string and integer-range strategies, `collection::vec`,
//! `prop_oneof!`, `ProptestConfig::with_cases`, and the `proptest!` macro.
//!
//! Differences from real proptest, deliberate and safe for these tests:
//!
//! * string strategies are **literal** (every `prop_oneof!` alternative in
//!   this workspace is a single plain literal, so regex semantics coincide);
//! * failing cases are reported by panic without shrinking;
//! * generation is deterministic per test (seeded from the test name), so
//!   CI failures reproduce locally.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (built by `prop_oneof!`).
    pub struct OneOf<S>(pub Vec<S>);

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let idx = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    /// Literal string strategy (real proptest treats `&str` as a regex; the
    /// alternatives used in this workspace are all plain literals, for which
    /// the semantics agree).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, _rng: &mut TestRng) -> String {
            (*self).to_string()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `elem` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (splitmix64 seeded from the test name).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name.
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Number-of-cases configuration for a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Cases generated per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among same-typed alternative strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($alt),+])
    };
}

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        assert!($cond $(, $($fmt)+)?)
    };
}

/// Assert equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($left, $right $(, $($fmt)+)?)
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }` becomes
/// a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let __strategies = ($($strat,)+);
                for __case in 0..__config.cases {
                    let ($($arg,)+) = {
                        let ($(ref $arg,)+) = __strategies;
                        ($($crate::strategy::Strategy::generate($arg, &mut __rng),)+)
                    };
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn letters() -> impl Strategy<Value = String> {
        crate::collection::vec(prop_oneof!["a", "b"], 0..6).prop_map(|v| v.concat())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_words_are_over_the_alphabet(word in letters()) {
            prop_assert!(word.chars().all(|c| c == 'a' || c == 'b'));
            prop_assert!(word.len() < 6);
        }

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, s in -4i64..4) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
