//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The container build has no crates-io access, so the real `criterion`
//! cannot be fetched. This shim implements the API surface the bench suite
//! uses — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`/`iter_batched` — with a real
//! wall-clock measurement loop (warmup + calibrated iterations per sample,
//! median-of-samples reporting).
//!
//! CLI flags recognized (everything else is ignored so `cargo bench`
//! pass-through flags don't break the binary):
//!
//! * `--measurement-time <secs>` — time budget per benchmark (default 2s);
//! * `--sample-size <n>` — override every group's sample count;
//! * a positional argument — substring filter on `group/id` names.
//!
//! When the `BENCH_JSON` environment variable names a file, one JSON object
//! per benchmark (`{"id", "median_ns", "min_ns", "max_ns", "samples"}`) is
//! appended to it — `scripts/bench_check.sh` aggregates those lines into
//! `BENCH_1.json` so the perf trajectory is tracked across PRs.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded for API compatibility, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched` (the shim measures per-iteration
/// either way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: fresh input per iteration.
    SmallInput,
    /// Large inputs: fresh input per iteration.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Harness configuration + CLI state.
pub struct Criterion {
    measurement_time: Duration,
    sample_size_override: Option<usize>,
    filter: Option<String>,
    json_path: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut c = Criterion {
            measurement_time: Duration::from_secs(2),
            sample_size_override: None,
            filter: None,
            json_path: std::env::var_os("BENCH_JSON").map(PathBuf::from),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if let Some(v) = a.strip_prefix("--measurement-time=") {
                if let Ok(secs) = v.parse::<f64>() {
                    c.measurement_time = Duration::from_secs_f64(secs);
                }
            } else if let Some(v) = a.strip_prefix("--sample-size=") {
                c.sample_size_override = v.parse().ok();
            } else {
                match a.as_str() {
                    "--measurement-time" => {
                        if let Some(v) = args.next() {
                            if let Ok(secs) = v.parse::<f64>() {
                                c.measurement_time = Duration::from_secs_f64(secs);
                            }
                        }
                    }
                    "--sample-size" => {
                        if let Some(v) = args.next() {
                            c.sample_size_override = v.parse().ok();
                        }
                    }
                    // Flags cargo/criterion pass that take a value.
                    "--save-baseline" | "--baseline" | "--load-baseline" | "--profile-time"
                    | "--warm-up-time" | "--color" | "--format" => {
                        let _ = args.next();
                    }
                    s if s.starts_with("--") => {}
                    s => c.filter = Some(s.to_string()),
                }
            }
        }
        c
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: None,
            criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group("bench");
        group.bench_with_input(id, &(), |b, ()| f(b));
        group.finish();
        self
    }
}

/// A group of related benchmarks sharing sample configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Option<Duration>,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Per-group time budget override.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Record throughput metadata (accepted for API compatibility).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Measure one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
            sample_size: self
                .criterion
                .sample_size_override
                .unwrap_or(self.sample_size),
            samples_ns: Vec::new(),
        };
        f(&mut bencher, input);
        report(&full, &bencher, self.criterion.json_path.as_deref());
        self
    }

    /// Measure one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id.into(), &(), |b, ()| f(b))
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn calibrate(&self, once: Duration) -> u64 {
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = per_sample / once.as_secs_f64().max(1e-9);
        iters.clamp(1.0, 10_000_000.0) as u64
    }

    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm = Instant::now();
        black_box(routine());
        let iters = self.calibrate(warm.elapsed());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` with a fresh `setup()` input per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let warm = Instant::now();
        black_box(routine(input));
        let iters = self.calibrate(warm.elapsed()).min(100_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut busy = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                busy += t.elapsed();
            }
            self.samples_ns.push(busy.as_nanos() as f64 / iters as f64);
        }
    }

    /// `iter_batched` variant taking the input by reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        size: BatchSize,
    ) {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn report(id: &str, bencher: &Bencher, json: Option<&Path>) {
    let mut sorted = bencher.samples_ns.clone();
    if sorted.is_empty() {
        return;
    }
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{id:<56} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    if let Some(path) = json {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\":\"{id}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{}}}",
                sorted.len()
            );
        }
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_produces_samples() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            sample_size_override: None,
            filter: None,
            json_path: None,
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(1), &3u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with(" s"));
    }
}
