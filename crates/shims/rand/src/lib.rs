//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in a hermetic container with no crates-io access,
//! so the real `rand` cannot be fetched. The benchmark workloads only need a
//! deterministic seedable generator with `gen_range` over integer ranges;
//! this shim provides exactly that surface (`rngs::StdRng`, [`SeedableRng`],
//! [`Rng::gen_range`]) on top of splitmix64. It is **not** a statistical or
//! cryptographic RNG — only the workload-determinism contract matters here.

use std::ops::Range;

pub mod rngs {
    /// Deterministic splitmix64 generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub use rngs::StdRng;

/// Seedable construction (the only constructor the workloads use).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Raw 64-bit output.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The subset of `rand::Rng` the workloads call.
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types `gen_range` can sample.
pub trait SampleUniform: Sized {
    /// Uniform sample from a half-open range.
    fn sample_uniform<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end - range.start) as u128;
                range.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }
}
