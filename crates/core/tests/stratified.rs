//! Pinned behavior of the SCC-stratified evaluation schedule
//! ([`seqlog_core::analysis::Schedule`], `Scheduling::Stratified` — the
//! default): extent equality against the global semi-naive loop,
//! bit-for-bit thread determinism *within* the stratified mode, the
//! downstream-cone property for session delta updates (an assert that
//! feeds only a late stratum never pays rounds for settled upstream
//! strata), domain-feedback re-arming of domain-sensitive strata, and the
//! one-quiescence-round contract under both scheduling modes.

use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_core::eval::{EvalConfig, Model, Scheduling, Strategy};
use seqlog_core::session::EngineSession;

/// One differential case: program source, base facts, observed predicates.
type Case = (
    &'static str,
    &'static [(&'static str, &'static str)],
    &'static [&'static str],
);

/// Representative programs spanning the evaluator's clause classes:
/// structural recursion, multi-stratum chains, constructive heads,
/// domain-sensitive enumeration, equality literals, and cross-stratum
/// joins.
const PROGRAMS: &[Case] = &[
    (
        // Example 1.1 — all suffixes.
        "suffix(X[N:end]) :- r(X).",
        &[("r", "abc"), ("r", "dd")],
        &["suffix"],
    ),
    (
        // Three-stratum chain with a cross-stratum join on top.
        "s1(X[2:end]) :- s0(X), X != \"\".\n\
         s2(X[2:end]) :- s1(X), X != \"\".\n\
         s3(X[2:end]) :- s2(X), X != \"\".\n\
         pairs(X, Y) :- s0(X), s3(Y).",
        &[("s0", "abcdef"), ("s0", "xyz")],
        &["s1", "s2", "s3", "pairs"],
    ),
    (
        // Constructive stratum grows the domain; the ground
        // domain-sensitive stratum must re-arm and enumerate the new
        // members (outer-pass feedback).
        "gd(X, X) :- true.\n\
         app(X ++ \"a\") :- r(X).\n\
         app2(X ++ Y) :- app(X), r(Y).",
        &[("r", "ab"), ("r", "c")],
        &["gd", "app", "app2"],
    ),
    (
        // Mutually recursive SCC between two predicates plus a consumer.
        "even(X[2:end]) :- odd(X), X != \"\".\n\
         odd(X[2:end]) :- even(X), X != \"\".\n\
         out(X) :- even(X).",
        &[("even", "aaaaaa")],
        &["even", "odd", "out"],
    ),
];

fn eval(src: &str, facts: &[(&str, &str)], config: &EvalConfig) -> (Engine, Model) {
    let mut e = Engine::new();
    let p = e.parse_program(src).unwrap();
    let mut db = Database::new();
    for (pred, w) in facts {
        e.add_fact(&mut db, pred, &[w]);
    }
    let m = e.evaluate_with(&p, &db, config).unwrap();
    (e, m)
}

/// Extents of `preds` in insertion order — the bit-for-bit shape.
fn extents(e: &Engine, m: &Model, preds: &[&str]) -> Vec<Vec<Vec<String>>> {
    preds.iter().map(|p| e.rendered_tuples(m, p)).collect()
}

/// Extents of `preds` as sets — the extensional shape.
fn extents_sorted(e: &Engine, m: &Model, preds: &[&str]) -> Vec<Vec<Vec<String>>> {
    let mut out = extents(e, m, preds);
    for rows in &mut out {
        rows.sort();
    }
    out
}

#[test]
fn stratified_matches_global_extensionally() {
    for (src, facts, preds) in PROGRAMS {
        let stratified = EvalConfig::default();
        assert_eq!(stratified.scheduling, Scheduling::Stratified, "default");
        let global = EvalConfig {
            scheduling: Scheduling::Global,
            ..EvalConfig::default()
        };
        let (es, ms) = eval(src, facts, &stratified);
        let (eg, mg) = eval(src, facts, &global);
        assert_eq!(
            extents_sorted(&es, &ms, preds),
            extents_sorted(&eg, &mg, preds),
            "stratified and global models differ as sets for\n{src}"
        );
        assert_eq!(
            ms.stats.facts, mg.stats.facts,
            "fact counts differ for\n{src}"
        );
        assert_eq!(
            ms.stats.domain_size, mg.stats.domain_size,
            "domain sizes differ for\n{src}"
        );
    }
}

#[test]
fn stratified_matches_naive_extensionally() {
    let naive = EvalConfig {
        strategy: Strategy::Naive,
        ..EvalConfig::default()
    };
    for (src, facts, preds) in PROGRAMS {
        let (es, ms) = eval(src, facts, &EvalConfig::default());
        let (en, mn) = eval(src, facts, &naive);
        assert_eq!(
            extents_sorted(&es, &ms, preds),
            extents_sorted(&en, &mn, preds),
            "stratified and naive models differ as sets for\n{src}"
        );
    }
}

#[test]
fn stratified_is_bit_for_bit_deterministic_across_threads() {
    for (src, facts, preds) in PROGRAMS {
        let (e1, m1) = eval(src, facts, &EvalConfig::with_threads(1));
        let reference = extents(&e1, &m1, preds);
        for t in [2usize, 4, 8] {
            let (et, mt) = eval(src, facts, &EvalConfig::with_threads(t));
            assert_eq!(
                extents(&et, &mt, preds),
                reference,
                "threads={t} not bit-for-bit identical for\n{src}"
            );
            assert_eq!(mt.stats, m1.stats, "stats differ at threads={t} for\n{src}");
        }
    }
}

fn session(src: &str, config: EvalConfig) -> EngineSession {
    let mut e = Engine::new();
    let p = e.parse_program(src).unwrap();
    e.into_session(&p, config).unwrap()
}

/// The downstream-cone property: after the model settles, an assert that
/// feeds only the *last* stratum re-runs that stratum alone — every
/// settled upstream stratum plans an empty delta and is skipped without
/// paying a round.
#[test]
fn assert_feeding_late_stratum_skips_settled_upstream_strata() {
    // `late` joins the chain's final output with its own feed predicate,
    // so `late`'s stratum is downstream of everything.
    let src = "s1(X[2:end]) :- s0(X), X != \"\".\n\
               s2(X[2:end]) :- s1(X), X != \"\".\n\
               s3(X[2:end]) :- s2(X), X != \"\".\n\
               late(X, Y) :- feed(X), s3(Y).";
    let mut s = session(src, EvalConfig::default());
    s.assert_fact("s0", &["abcdefgh"]).unwrap();
    s.run().unwrap();
    let after_chain = s.stats().rounds;
    // Populating the whole chain pays at least one round per stratum.
    assert!(after_chain >= 4, "chain run paid {after_chain} rounds");

    // A fact feeding only the final stratum: exactly one round — the
    // settled chain strata all plan empty deltas.
    s.assert_fact("feed", &["k"]).unwrap();
    s.run().unwrap();
    assert_eq!(
        s.stats().rounds - after_chain,
        1,
        "late-stratum assert must re-run only the downstream cone"
    );
    assert_eq!(s.query("late").len(), s.query("s3").len());

    // A fact at the chain's source re-runs the full cone again.
    let before = s.stats().rounds;
    s.assert_fact("s0", &["zzzzzz"]).unwrap();
    s.run().unwrap();
    assert!(
        s.stats().rounds - before >= 4,
        "source assert must re-run the whole chain"
    );
}

/// Quiescence contract, both scheduling modes: a run over a settled model
/// still pays exactly one (synthetic, for stratified) round.
#[test]
fn settled_run_costs_one_quiescence_round_in_both_modes() {
    for scheduling in [Scheduling::Stratified, Scheduling::Global] {
        let config = EvalConfig {
            scheduling,
            ..EvalConfig::default()
        };
        let mut s = session("suffix(X[N:end]) :- r(X).", config);
        s.assert_fact("r", &["abc"]).unwrap();
        s.run().unwrap();
        let settled = s.stats().rounds;
        s.run().unwrap();
        assert_eq!(
            s.stats().rounds,
            settled + 1,
            "settled run must cost one quiescence round under {scheduling:?}"
        );
    }
}

/// Domain feedback across strata: a constructive stratum grows the
/// extended active domain *after* the ground domain-sensitive stratum
/// first ran, so the outer pass loop must re-arm it.
#[test]
fn domain_sensitive_stratum_rearms_after_downstream_domain_growth() {
    let src = "gd(X, X) :- true.\n\
               app(X ++ \"!\") :- r(X).";
    let mut s = session(src, EvalConfig::default());
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    let gd: Vec<String> = s.query("gd").into_iter().map(|t| t[0].clone()).collect();
    // "ab!" exists only because `app` created it; `gd` enumerating it
    // proves the earlier stratum re-armed on domain growth.
    assert!(
        gd.iter().any(|w| w == "ab!"),
        "gd must enumerate constructive results: {gd:?}"
    );
}

/// The session-level closed-world lint report: a self-recursive predicate
/// with no base facts is provably empty (`SL003`), and asserting a base
/// fact for it revives the clause in the next report.
#[test]
fn session_report_tracks_asserted_base_facts() {
    use seqlog_core::analysis::LintCode;
    let mut s = session("p(X[2:end]) :- p(X), X != \"\".", EvalConfig::default());
    let report = s.report();
    assert_eq!(report.with_code(LintCode::DeadClause).count(), 1);
    s.assert_fact("p", &["abc"]).unwrap();
    s.run().unwrap();
    let report = s.report();
    assert_eq!(report.with_code(LintCode::DeadClause).count(), 0);
    assert!(!report.has_errors());
}
