//! Demand-driven (bound-argument) query API: session and engine routes,
//! fallback behavior, cache reuse, short-circuit paths, and the
//! byte-identity pin between demand-mode and batch-mode renderings.

use seqlog_core::analysis::magic::MagicOptions;
use seqlog_core::analysis::Bind;
use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_core::eval::{EvalConfig, EvalError};

const ANC: &str = "anc(X, Y) :- edge(X, Y).\nanc(X, Z) :- anc(X, Y), edge(Y, Z).";

/// Two disjoint chains a->b->c->d and p->q->r.
fn chain_session() -> seqlog_core::session::EngineSession {
    let mut e = Engine::new();
    let program = e.parse_program(ANC).unwrap();
    let mut s = e.into_session(&program, EvalConfig::default()).unwrap();
    for (x, y) in [("a", "b"), ("b", "c"), ("c", "d"), ("p", "q"), ("q", "r")] {
        s.assert_fact("edge", &[x, y]).unwrap();
    }
    s
}

/// The oracle: full run, then filter + sort the batch rendering.
fn filtered_batch(
    s: &mut seqlog_core::session::EngineSession,
    pred: &str,
    pos: usize,
    val: &str,
) -> Vec<Vec<String>> {
    s.run().unwrap();
    let mut out: Vec<Vec<String>> = s
        .query(pred)
        .into_iter()
        .filter(|t| t[pos] == val)
        .collect();
    out.sort();
    out.dedup();
    out
}

#[test]
fn session_point_query_matches_filtered_batch() {
    let mut s = chain_session();
    let demand = s
        .query_bound("anc", &[Bind::Bound("a"), Bind::Free])
        .unwrap();
    let oracle = filtered_batch(&mut s.clone(), "anc", 0, "a");
    assert_eq!(demand, oracle);
    assert_eq!(demand.len(), 3); // a->b, a->c, a->d
                                 // Second argument bound instead.
    let demand = s
        .query_bound("anc", &[Bind::Free, Bind::Bound("d")])
        .unwrap();
    let oracle = filtered_batch(&mut s.clone(), "anc", 1, "d");
    assert_eq!(demand, oracle);
    assert_eq!(demand.len(), 3); // a,b,c -> d
                                 // Fully free pattern = the whole (sorted) extent.
    let demand = s.query_bound("anc", &[Bind::Free, Bind::Free]).unwrap();
    let mut oracle = {
        let mut c = s.clone();
        c.run().unwrap();
        c.query("anc")
    };
    oracle.sort();
    oracle.dedup();
    assert_eq!(demand, oracle);
}

#[test]
fn demand_never_mutates_session_state() {
    let mut s = chain_session();
    let facts_before = s.stats().facts;
    s.query_bound("anc", &[Bind::Bound("a"), Bind::Free])
        .unwrap();
    assert_eq!(s.stats().facts, facts_before);
    // The session still settles to exactly the batch model afterwards.
    s.run().unwrap();
    assert_eq!(s.query("anc").len(), 9);
}

#[test]
fn demand_is_selective_on_the_chain() {
    let mut s = chain_session();
    let r = s
        .query_bound_instrumented(
            "anc",
            &[Bind::Bound("p"), Bind::Free],
            &MagicOptions::default(),
        )
        .unwrap();
    assert!(r.evaluated);
    assert_eq!(r.answers.len(), 2); // p->q, p->r
                                    // Full fixpoint has 5 base + 9 derived = 14 facts; the demand cone
                                    // from "p" must stay well under that (5 base + 2 anc + magic facts).
    let full = {
        let mut c = s.clone();
        c.run().unwrap();
        c.stats().facts
    };
    assert!(
        r.stats.facts < full,
        "demand facts {} not below full {}",
        r.stats.facts,
        full
    );
}

#[test]
fn engine_route_matches_session_route() {
    let mut e = Engine::new();
    let program = e.parse_program(ANC).unwrap();
    let mut db = Database::new();
    for (x, y) in [("a", "b"), ("b", "c"), ("c", "d")] {
        e.add_fact(&mut db, "edge", &[x, y]);
    }
    let engine_ans = e
        .query_bound(&program, &db, "anc", &[Bind::Bound("a"), Bind::Free])
        .unwrap();
    let mut e2 = Engine::new();
    let program2 = e2.parse_program(ANC).unwrap();
    let mut s = e2.into_session(&program2, EvalConfig::default()).unwrap();
    for (x, y) in [("a", "b"), ("b", "c"), ("c", "d")] {
        s.assert_fact("edge", &[x, y]).unwrap();
    }
    let session_ans = s
        .query_bound("anc", &[Bind::Bound("a"), Bind::Free])
        .unwrap();
    assert_eq!(engine_ans, session_ans);
    assert_eq!(engine_ans.len(), 3);
}

#[test]
fn demand_and_batch_renderings_are_byte_identical() {
    // The rendering-unification pin: Engine::rendered_tuples/answers,
    // EngineSession::query/answers, and query_bound must all format
    // through one helper. Compare every route on the same model.
    let src = "out(X[N:end]) :- r(X).";
    let mut e = Engine::new();
    let program = e.parse_program(src).unwrap();
    let mut db = Database::new();
    e.add_fact(&mut db, "r", &["ab"]);
    let model = e.evaluate(&program, &db).unwrap();
    let mut batch_tuples = e.rendered_tuples(&model, "out");
    batch_tuples.sort();
    batch_tuples.dedup();
    let batch_answers = e.answers(&model, "out");

    let mut e2 = Engine::new();
    let program2 = e2.parse_program(src).unwrap();
    let mut s = e2.into_session(&program2, EvalConfig::default()).unwrap();
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    let mut session_tuples = s.query("out");
    session_tuples.sort();
    session_tuples.dedup();
    assert_eq!(session_tuples, batch_tuples);
    assert_eq!(s.answers("out"), batch_answers);

    let demand = s.query_bound("out", &[Bind::Free]).unwrap();
    assert_eq!(demand, batch_tuples);
    let singles: Vec<String> = demand.into_iter().map(|mut t| t.remove(0)).collect();
    assert_eq!(singles, batch_answers);
}

#[test]
fn constructive_fallback_still_answers_unsettled() {
    // dbl's stratum is constructive: it must fall back to full
    // evaluation inside the scratch, or "abab" never enters the
    // scratch store and gd misses it. The session is deliberately
    // *unsettled* (no run) so the scratch derives everything itself.
    let src = "dbl(X ++ X) :- r(X).\nout(X) :- dbl(X).";
    let mut e = Engine::new();
    let program = e.parse_program(src).unwrap();
    let mut s = e.into_session(&program, EvalConfig::default()).unwrap();
    s.assert_fact("r", &["ab"]).unwrap();
    // Note "abab" was never interned; the query must still find it.
    let demand = s.query_bound("out", &[Bind::Bound("abab")]).unwrap();
    assert_eq!(demand, vec![vec!["abab".to_string()]]);
}

#[test]
fn domain_sensitive_goal_full_fallback() {
    // gd(X, X) :- true. is domain-sensitive: demand must degenerate to
    // the batch fixpoint (full fallback), including domain growth from
    // the constructive clause *outside* gd's cone.
    let src = "dbl(X ++ X) :- r(X).\ngd(X, X) :- true.";
    let mut e = Engine::new();
    let program = e.parse_program(src).unwrap();
    let mut s = e.into_session(&program, EvalConfig::default()).unwrap();
    s.assert_fact("r", &["ab"]).unwrap();
    let demand = s.query_bound("gd", &[Bind::Free, Bind::Free]).unwrap();
    let mut oracle: Vec<Vec<String>> = {
        let mut c = s.clone();
        c.run().unwrap();
        c.query("gd")
    };
    oracle.sort();
    oracle.dedup();
    assert_eq!(demand, oracle);
    // The oracle contains ("abab", "abab"): only domain growth from dbl
    // justifies it.
    assert!(demand.contains(&vec!["abab".to_string(), "abab".to_string()]));
}

#[test]
fn bound_query_value_outside_model_is_empty_not_error() {
    let mut s = chain_session();
    let demand = s
        .query_bound("anc", &[Bind::Bound("zz"), Bind::Free])
        .unwrap();
    assert!(demand.is_empty());
    // And the session is still healthy.
    s.run().unwrap();
}

#[test]
fn asserted_only_and_unknown_predicates_short_circuit() {
    let mut s = chain_session();
    s.assert_fact("extra", &["u", "v"]).unwrap();
    let r = s
        .query_bound_instrumented(
            "extra",
            &[Bind::Bound("u"), Bind::Free],
            &MagicOptions::default(),
        )
        .unwrap();
    assert!(!r.evaluated);
    assert_eq!(r.answers, vec![vec!["u".to_string(), "v".to_string()]]);
    // edge heads no clause: also a direct filter, no evaluation.
    let r = s
        .query_bound_instrumented(
            "edge",
            &[Bind::Bound("a"), Bind::Free],
            &MagicOptions::default(),
        )
        .unwrap();
    assert!(!r.evaluated);
    assert_eq!(r.answers, vec![vec!["a".to_string(), "b".to_string()]]);
    // Entirely unknown predicate: empty, no error.
    assert!(s.query_bound("nope", &[Bind::Free]).unwrap().is_empty());
}

#[test]
fn adornment_cache_reuses_transform_and_stays_correct() {
    let mut s = chain_session();
    let a1 = s
        .query_bound("anc", &[Bind::Bound("a"), Bind::Free])
        .unwrap();
    // Same adornment, different value: cache hit must not leak the old
    // binding.
    let a2 = s
        .query_bound("anc", &[Bind::Bound("p"), Bind::Free])
        .unwrap();
    assert_eq!(a1.len(), 3);
    assert_eq!(a2.len(), 2);
    // Repeat the first query bit-for-bit.
    let a1again = s
        .query_bound("anc", &[Bind::Bound("a"), Bind::Free])
        .unwrap();
    assert_eq!(a1, a1again);
}

#[test]
fn poisoned_session_refuses_query_bound() {
    let mut e = Engine::new();
    let program = e.parse_program(ANC).unwrap();
    let config = EvalConfig {
        max_facts: 3,
        ..EvalConfig::default()
    };
    let mut s = e.into_session(&program, config).unwrap();
    for (x, y) in [("a", "b"), ("b", "c"), ("c", "d")] {
        s.assert_fact("edge", &[x, y]).unwrap();
    }
    assert!(s.run().is_err());
    match s.query_bound("anc", &[Bind::Bound("a"), Bind::Free]) {
        Err(EvalError::Poisoned { .. }) => {}
        other => panic!("expected Poisoned, got {other:?}"),
    }
}

#[test]
fn demand_works_on_unsettled_and_mid_stream_sessions() {
    let mut s = chain_session();
    // Unsettled: facts asserted, never run.
    let demand = s
        .query_bound("anc", &[Bind::Bound("a"), Bind::Free])
        .unwrap();
    assert_eq!(demand.len(), 3);
    // Settle, then extend with a pending (un-run) assert: the pending
    // fact must be visible to demand.
    s.run().unwrap();
    s.assert_fact("edge", &[("d"), ("e")]).unwrap();
    let demand = s
        .query_bound("anc", &[Bind::Bound("a"), Bind::Free])
        .unwrap();
    assert_eq!(demand.len(), 4); // b, c, d, e
                                 // And the session's own state is still the settled-plus-pending one.
    s.run().unwrap();
    // a->b->c->d->e contributes 4+3+2+1 = 10 pairs, p->q->r contributes 3.
    assert_eq!(s.query("anc").len(), 13);
}
