//! Regression tests for [`seqlog_core::session::EngineSession`]: the
//! success path (resume ≡ batch, stats accumulation), the error path
//! (budget exhaustion mid-session poisons), and the per-run `max_rounds`
//! semantics.

use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_core::eval::{BudgetKind, EvalConfig, EvalError};
use seqlog_core::session::EngineSession;

const CHAIN_SRC: &str = r#"
    chain1(X[2:end]) :- chain0(X), X != "".
    chain2(X[2:end]) :- chain1(X), X != "".
    chain0(X[2:end]) :- chain2(X), X != "".
    pairs(X, Y) :- chain0(X), chain2(Y).
"#;

fn session(src: &str, config: EvalConfig) -> EngineSession {
    let mut e = Engine::new();
    let p = e.parse_program(src).unwrap();
    e.into_session(&p, config).unwrap()
}

/// Batch-evaluate `src` over string facts and return sorted extents of
/// `preds` — the oracle sessions are compared against.
fn batch_extents(src: &str, facts: &[(&str, &str)], preds: &[&str]) -> Vec<Vec<Vec<String>>> {
    let mut e = Engine::new();
    let p = e.parse_program(src).unwrap();
    let mut db = Database::new();
    for (pred, w) in facts {
        e.add_fact(&mut db, pred, &[w]);
    }
    let m = e.evaluate(&p, &db).unwrap();
    preds
        .iter()
        .map(|pred| {
            let mut rows = e.rendered_tuples(&m, pred);
            rows.sort();
            rows
        })
        .collect()
}

fn session_extents(s: &EngineSession, preds: &[&str]) -> Vec<Vec<Vec<String>>> {
    preds
        .iter()
        .map(|pred| {
            let mut rows = s.query(pred);
            rows.sort();
            rows
        })
        .collect()
}

#[test]
fn resume_matches_batch_and_stats_accumulate() {
    let preds = ["chain0", "chain1", "chain2", "pairs"];
    let facts = [
        ("chain0", "abcabs"),
        ("chain0", "bbat"),
        ("chain0", "cacacu"),
    ];
    let mut s = session(CHAIN_SRC, EvalConfig::default());

    // Batch 1: first two facts.
    assert!(s.assert_fact("chain0", &["abcabs"]).unwrap());
    assert!(s.assert_fact("chain0", &["bbat"]).unwrap());
    let stats1 = s.run().unwrap();
    assert!(stats1.rounds >= 2, "chain needs several rounds");
    let mid = session_extents(&s, &preds);
    assert_eq!(
        mid,
        batch_extents(CHAIN_SRC, &facts[..2], &preds),
        "settled prefix must equal batch over the prefix"
    );

    // Batch 2: one more fact resumes from the delta.
    assert!(s.assert_fact("chain0", &["cacacu"]).unwrap());
    let stats2 = s.run().unwrap();
    assert_eq!(
        session_extents(&s, &preds),
        batch_extents(CHAIN_SRC, &facts, &preds),
        "resumed model must equal batch re-evaluation from scratch"
    );

    // Stats accumulate across resumes: rounds strictly grow, fact count is
    // the cumulative model size, and the second run resumed rather than
    // restarting (it needed fewer new rounds than a from-scratch run).
    assert!(stats2.rounds > stats1.rounds);
    assert!(stats2.facts > stats1.facts);
    assert!(stats2.derivations > stats1.derivations);
    let fresh = {
        let mut e = Engine::new();
        let p = e.parse_program(CHAIN_SRC).unwrap();
        let mut db = Database::new();
        for (pred, w) in &facts {
            e.add_fact(&mut db, pred, &[w]);
        }
        e.evaluate(&p, &db).unwrap().stats
    };
    assert_eq!(stats2.facts, fresh.facts);
    assert!(
        stats2.derivations - stats1.derivations < fresh.derivations,
        "resume must not redo the settled prefix's derivation work"
    );
}

#[test]
fn settled_run_costs_one_quiescence_round() {
    let mut s = session("p(X) :- r(X).", EvalConfig::default());
    s.assert_fact("r", &["ab"]).unwrap();
    let s1 = s.run().unwrap();
    let s2 = s.run().unwrap();
    assert_eq!(s2.rounds, s1.rounds + 1, "one quiescence-check round");
    assert_eq!(s2.facts, s1.facts);
    assert_eq!(s2.derivations, s1.derivations);
}

#[test]
fn duplicate_asserts_are_noops() {
    let mut s = session("p(X) :- r(X).", EvalConfig::default());
    assert!(s.assert_fact("r", &["ab"]).unwrap());
    s.run().unwrap();
    assert!(!s.assert_fact("r", &["ab"]).unwrap());
    let before = s.stats();
    s.run().unwrap();
    assert_eq!(s.stats().facts, before.facts);
    assert_eq!(s.query("p"), vec![vec!["ab".to_string()]]);
}

#[test]
fn assert_seq_and_ids_round_trip() {
    let mut s = session("suffix(X[N:end]) :- r(X).", EvalConfig::default());
    let id = s.assert_seq("abc").unwrap();
    assert_eq!(s.render(id), "abc");
    assert!(s.assert_fact_ids("r", &[id]).unwrap());
    s.run().unwrap();
    assert_eq!(s.answers("suffix"), ["", "abc", "bc", "c"]);
}

#[test]
fn budget_error_mid_session_poisons() {
    // First fixpoint settles comfortably; the second batch blows the
    // cumulative fact budget mid-resume.
    let config = EvalConfig {
        max_facts: 120,
        ..EvalConfig::default()
    };
    let mut s = session("pair(X, Y) :- s(X), s(Y).", config);
    for i in 0..5 {
        s.assert_fact("s", &[&format!("a{i}")]).unwrap();
    }
    let stats1 = s.run().unwrap();
    assert_eq!(stats1.facts, 5 + 25);

    for i in 0..10 {
        s.assert_fact("s", &[&format!("b{i}")]).unwrap();
    }
    let err = s.run().unwrap_err();
    let EvalError::Budget { kind, stats } = &err else {
        panic!("expected Budget error, got {err:?}");
    };
    assert_eq!(*kind, BudgetKind::Facts);
    // Incremental enforcement stops exactly at max_facts + 1, and the
    // error stats are cumulative (they include the first run's rounds).
    assert_eq!(stats.facts, 121);
    assert!(stats.rounds > stats1.rounds);

    // The session is poisoned: every further mutation is refused with the
    // original error attached…
    assert!(s.is_poisoned());
    match s.assert_fact("s", &["c"]) {
        Err(EvalError::Poisoned { original }) => {
            assert!(matches!(*original, EvalError::Budget { .. }));
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }
    assert!(matches!(s.run(), Err(EvalError::Poisoned { .. })));
    assert!(matches!(
        s.assert_seq("zz"),
        Err(EvalError::Poisoned { .. })
    ));
    assert!(matches!(s.poison(), Some(EvalError::Budget { .. })));

    // …while the read API stays available, and the partial state is a
    // sound under-approximation of the full fixpoint: every committed pair
    // is a genuine derivation over the grown database.
    let partial = s.query("pair");
    assert!(!partial.is_empty());
    let snapshot = s.snapshot();
    assert_eq!(snapshot.stats.facts, 121);
    let mut e2 = Engine::new();
    let p2 = e2.parse_program("pair(X, Y) :- s(X), s(Y).").unwrap();
    let mut db2 = Database::new();
    for i in 0..5 {
        e2.add_fact(&mut db2, "s", &[&format!("a{i}")]);
    }
    for i in 0..10 {
        e2.add_fact(&mut db2, "s", &[&format!("b{i}")]);
    }
    let full2 = e2.evaluate(&p2, &db2).unwrap();
    let full_set: std::collections::BTreeSet<Vec<String>> =
        e2.rendered_tuples(&full2, "pair").into_iter().collect();
    for row in &partial {
        assert!(
            full_set.contains(row),
            "partial state contains an underivable fact: {row:?}"
        );
    }
}

#[test]
fn max_rounds_is_a_per_run_budget() {
    // A trimming chain needs ~len rounds per word. With max_rounds = 8,
    // two successive runs of ~6 rounds each must BOTH succeed (cumulative
    // rounds exceed 8), because the budget applies per run…
    let config = EvalConfig {
        max_rounds: 8,
        ..EvalConfig::default()
    };
    let src = "p(X[2:end]) :- p(X), X != \"\".";
    let mut s = session(src, config);
    s.assert_fact("p", &["aaaa"]).unwrap();
    let s1 = s.run().unwrap();
    s.assert_fact("p", &["bbbbb"]).unwrap();
    let s2 = s.run().unwrap();
    assert!(
        s2.rounds > 8,
        "cumulative rounds ({}) exceed the per-run budget — sessions are \
         not starved by uptime",
        s2.rounds
    );
    assert!(s2.rounds > s1.rounds);

    // …while a single delta needing more than max_rounds still fails.
    s.assert_fact("p", &["cccccccccccc"]).unwrap();
    let err = s.run().unwrap_err();
    match err {
        EvalError::Budget { kind, .. } => assert_eq!(kind, BudgetKind::Rounds),
        other => panic!("expected Rounds budget, got {other:?}"),
    }
    assert!(s.is_poisoned());
}

/// Oracle: after any retraction, the session must equal a fresh batch
/// evaluation of the surviving base facts.
fn assert_retract_matches_batch(
    s: &EngineSession,
    src: &str,
    survivors: &[(&str, &str)],
    preds: &[&str],
) {
    assert_eq!(
        session_extents(s, preds),
        batch_extents(src, survivors, preds),
        "retract ≢ fresh batch evaluation of the survivors"
    );
}

#[test]
fn retract_removes_unsupported_derivations() {
    let preds = ["chain0", "chain1", "chain2", "pairs"];
    let mut s = session(CHAIN_SRC, EvalConfig::default());
    s.assert_fact("chain0", &["abcabs"]).unwrap();
    s.assert_fact("chain0", &["bbat"]).unwrap();
    s.run().unwrap();

    assert!(s.retract_fact("chain0", &["abcabs"]).unwrap());
    assert_retract_matches_batch(&s, CHAIN_SRC, &[("chain0", "bbat")], &preds);
    assert!(!s.is_poisoned());

    // Retracting the last base fact empties the model entirely.
    assert!(s.retract_fact("chain0", &["bbat"]).unwrap());
    assert_retract_matches_batch(&s, CHAIN_SRC, &[], &preds);
    assert_eq!(s.stats().facts, 0);
    assert_eq!(s.stats().domain_size, 0, "domain shrinks with the facts");

    // The emptied session keeps serving.
    s.assert_fact("chain0", &["cacacu"]).unwrap();
    s.run().unwrap();
    assert_retract_matches_batch(&s, CHAIN_SRC, &[("chain0", "cacacu")], &preds);
}

#[test]
fn retract_preserves_alternative_derivations() {
    // p is derivable from either feed; retracting one base fact must keep
    // every fact the other still supports (the re-derive half of DRed).
    let src = r#"
        p(X) :- r(X).
        p(X) :- s(X).
        q(X[2:end]) :- p(X), X != "".
    "#;
    let mut s = session(src, EvalConfig::default());
    s.assert_fact("r", &["abc"]).unwrap();
    s.assert_fact("s", &["abc"]).unwrap();
    s.assert_fact("r", &["xyz"]).unwrap();
    s.run().unwrap();

    assert!(s.retract_fact("r", &["abc"]).unwrap());
    // p("abc") — and its whole derived chain — survives via s("abc").
    assert_retract_matches_batch(
        &s,
        src,
        &[("s", "abc"), ("r", "xyz")],
        &["p", "q", "r", "s"],
    );

    assert!(s.retract_fact("s", &["abc"]).unwrap());
    assert_retract_matches_batch(&s, src, &[("r", "xyz")], &["p", "q", "r", "s"]);
}

#[test]
fn retract_of_asserted_and_derived_fact_keeps_the_derivation() {
    // A fact both asserted as base AND derivable by a rule: retracting the
    // base record must leave the derived fact in place (it still has
    // support), matching batch evaluation of the survivors.
    let src = "p(X) :- r(X).";
    let mut s = session(src, EvalConfig::default());
    s.assert_fact("r", &["ab"]).unwrap();
    s.assert_fact("p", &["ab"]).unwrap(); // also derivable from r("ab")
    s.run().unwrap();
    assert!(s.is_base_fact("p", &["ab"]));

    assert!(s.retract_fact("p", &["ab"]).unwrap());
    assert!(!s.is_base_fact("p", &["ab"]));
    assert_retract_matches_batch(&s, src, &[("r", "ab")], &["p", "r"]);
    assert_eq!(s.query("p"), vec![vec!["ab".to_string()]], "still derived");

    // And the reverse order: retracting the supporting base fact while the
    // head stays asserted keeps p("ab") but drops r("ab").
    let mut s2 = session(src, EvalConfig::default());
    s2.assert_fact("r", &["ab"]).unwrap();
    s2.assert_fact("p", &["ab"]).unwrap();
    s2.run().unwrap();
    assert!(s2.retract_fact("r", &["ab"]).unwrap());
    assert_retract_matches_batch(&s2, src, &[("p", "ab")], &["p", "r"]);
}

#[test]
fn retract_shrinks_the_extended_domain_for_domain_sensitive_clauses() {
    // The Expressiveness-fragment trap: `pair(X, X) :- true.` instantiates
    // over the extended active domain itself. When the only fact that
    // introduced "ab" (and its windows) is retracted, those pair facts
    // must vanish even though no clause body mentions r0 — the domain
    // shrinkage pass of DRed, not atom propagation, has to catch it.
    let src = "pair(X, X) :- true.\nsuf(X[N:end]) :- r0(X).";
    let preds = ["pair", "r0", "suf"];
    let mut s = session(src, EvalConfig::default());
    s.assert_fact("r0", &["ab"]).unwrap();
    s.assert_fact("r0", &["c"]).unwrap();
    s.run().unwrap();
    let domain_before = s.stats().domain_size;
    // Domain: ε, a, b, ab, c → pair has 5 facts.
    assert_eq!(s.query("pair").len(), 5);

    assert!(s.retract_fact("r0", &["ab"]).unwrap());
    assert!(
        s.stats().domain_size < domain_before,
        "retraction must shrink the extended domain"
    );
    // Domain now: ε, c → pair(ε,ε), pair(c,c) only; suffixes of "ab" gone.
    assert_retract_matches_batch(&s, src, &[("r0", "c")], &preds);
    assert_eq!(s.query("pair").len(), 2);
}

#[test]
fn retract_noops_do_not_touch_state_or_intern() {
    let mut s = session("p(X) :- r(X).", EvalConfig::default());
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    let stats = s.stats();

    // Unknown predicate: no-op, and the predicate is NOT interned.
    assert!(!s.retract_fact("nosuch", &["ab"]).unwrap());
    assert!(s.pred_id("nosuch").is_none(), "read path must not intern");
    // Known predicate, never-asserted word: no-op.
    assert!(!s.retract_fact("r", &["zz"]).unwrap());
    // Derived-only fact: no-op (p("ab") has no base record).
    assert!(!s.retract_fact("p", &["ab"]).unwrap());
    assert!(!s.is_base_fact("p", &["ab"]));
    assert_eq!(s.stats(), stats, "no-op retractions leave stats untouched");
    assert_eq!(s.query("p"), vec![vec!["ab".to_string()]]);

    // A no-op retraction is NOT an implicit run: a pending assert stays
    // pending through it (only an *effective* retraction settles).
    s.assert_fact("r", &["cd"]).unwrap();
    assert!(!s.retract_fact("r", &["never-there"]).unwrap());
    assert_eq!(s.query("p").len(), 1, "pending delta not yet derived");
    s.run().unwrap();
    assert_eq!(s.answers("p"), ["ab", "cd"], "next run settles it");
}

#[test]
fn retract_with_pending_asserts_settles_the_union() {
    // Retraction settles eagerly: pending (un-run) asserts are processed
    // by the same maintenance pass, and a pending assert can itself be
    // retracted before it was ever run.
    let preds = ["chain0", "chain1", "chain2", "pairs"];
    let mut s = session(CHAIN_SRC, EvalConfig::default());
    s.assert_fact("chain0", &["abcabs"]).unwrap();
    s.run().unwrap();
    s.assert_fact("chain0", &["bbat"]).unwrap(); // pending
    s.assert_fact("chain0", &["cacacu"]).unwrap(); // pending
    assert!(s.retract_fact("chain0", &["cacacu"]).unwrap());
    assert_retract_matches_batch(
        &s,
        CHAIN_SRC,
        &[("chain0", "abcabs"), ("chain0", "bbat")],
        &preds,
    );

    // Retract before the very first run (virgin fixpoint).
    let mut v = session(CHAIN_SRC, EvalConfig::default());
    v.assert_fact("chain0", &["abcabs"]).unwrap();
    v.assert_fact("chain0", &["bbat"]).unwrap();
    assert!(v.retract_fact("chain0", &["abcabs"]).unwrap());
    assert_retract_matches_batch(&v, CHAIN_SRC, &[("chain0", "bbat")], &preds);
}

#[test]
fn retract_db_batches_one_maintenance_pass() {
    let preds = ["chain0", "chain1", "chain2", "pairs"];
    let mut e = Engine::new();
    let p = e.parse_program(CHAIN_SRC).unwrap();
    let mut keep = Database::new();
    e.add_fact(&mut keep, "chain0", &["cacacu"]);
    let mut drop2 = Database::new();
    e.add_fact(&mut drop2, "chain0", &["abcabs"]);
    e.add_fact(&mut drop2, "chain0", &["bbat"]);
    let mut never = Database::new();
    e.add_fact(&mut never, "nosuch", &["zz"]); // never asserted
    let mut s = e.into_session(&p, EvalConfig::default()).unwrap();
    s.assert_db(&keep).unwrap();
    s.assert_db(&drop2).unwrap();
    s.run().unwrap();

    // Retracting facts that were never asserted — unknown predicate
    // included — is a no-op pass.
    let stats_before = s.stats();
    assert_eq!(s.retract_db(&never).unwrap(), 0);
    assert_eq!(s.stats(), stats_before);
    assert!(
        s.pred_id("nosuch").is_none(),
        "retract path must not intern"
    );

    let rounds_before = s.stats().rounds;
    assert_eq!(s.retract_db(&drop2).unwrap(), 2);
    let maintenance_rounds = s.stats().rounds - rounds_before;
    assert_retract_matches_batch(&s, CHAIN_SRC, &[("chain0", "cacacu")], &preds);
    // Both retractions shared one DRed pass: one targeted re-derive round
    // plus the resumed loop — far fewer than two full maintenance runs.
    assert!(
        maintenance_rounds <= 4,
        "batched retraction used {maintenance_rounds} rounds"
    );
}

#[test]
fn retract_frees_budget_headroom() {
    // Budgets are cumulative state bounds; retraction shrinks the state,
    // so a full session regains capacity — important for long-lived
    // serving processes cycling through tenants.
    let config = EvalConfig {
        max_facts: 4,
        ..EvalConfig::default()
    };
    let mut s = session("p(X) :- r(X).", config);
    s.assert_fact("r", &["a"]).unwrap();
    s.assert_fact("r", &["b"]).unwrap();
    s.run().unwrap(); // 2 base + 2 derived = 4 = max_facts
    assert!(matches!(
        s.assert_fact("r", &["c"]),
        Err(EvalError::Budget { .. })
    ));
    assert!(s.retract_fact("r", &["a"]).unwrap()); // frees r(a), p(a)
    assert!(s.assert_fact("r", &["c"]).unwrap(), "headroom regained");
    s.run().unwrap();
    assert_eq!(s.answers("p"), ["b", "c"]);
    assert!(!s.is_poisoned());
}

#[test]
fn retract_is_bit_for_bit_deterministic_across_threads() {
    let src = r#"
        p(X) :- r(X).
        p(X) :- s(X).
        pairs(X, Y) :- p(X), p(Y).
    "#;
    let run_at = |threads: usize| {
        let mut s = session(src, EvalConfig::with_threads(threads));
        for w in ["abc", "de", "f", "gh"] {
            s.assert_fact("r", &[w]).unwrap();
        }
        s.assert_fact("s", &["abc"]).unwrap();
        s.run().unwrap();
        s.retract_fact("r", &["abc"]).unwrap();
        s.retract_fact("r", &["f"]).unwrap();
        let extents: Vec<Vec<Vec<String>>> = ["p", "pairs", "r", "s"]
            .iter()
            .map(|p| s.query(p)) // insertion order, NOT sorted: bit-for-bit
            .collect();
        (extents, s.stats())
    };
    let reference = run_at(1);
    for t in [2, 4, 8] {
        assert_eq!(run_at(t), reference, "threads={t} diverged");
    }
}

#[test]
fn check_model_confirms_settled_sessions() {
    let mut s = session(CHAIN_SRC, EvalConfig::default());
    s.assert_fact("chain0", &["abcabc"]).unwrap();
    s.run().unwrap();
    assert!(s.check_model().unwrap(), "a settled session is a model");
    // A fresh unsettled delta is not yet a model (the chain rule applies).
    s.assert_fact("chain0", &["bcabca"]).unwrap();
    assert!(!s.check_model().unwrap(), "pending delta: not closed yet");
    s.run().unwrap();
    assert!(s.check_model().unwrap());
}

#[test]
fn clone_forks_independent_sessions() {
    let mut s = session("p(X) :- r(X).", EvalConfig::default());
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    let mut fork = s.clone();
    fork.assert_fact("r", &["cd"]).unwrap();
    fork.run().unwrap();
    assert_eq!(s.answers("p"), ["ab"], "original unaffected by the fork");
    assert_eq!(fork.answers("p"), ["ab", "cd"]);
}

#[test]
fn oversized_asserts_are_rejected_eagerly_without_poisoning() {
    // Domain closure interns O(len²) windows, so the assert path enforces
    // max_seq_len *before* closure. Rejection leaves the interpretation
    // untouched and the session healthy.
    let config = EvalConfig {
        max_seq_len: 8,
        ..EvalConfig::default()
    };
    let mut s = session("p(X) :- r(X).", config);
    let long = "a".repeat(9);
    match s.assert_fact("r", &[&long]) {
        Err(EvalError::Budget { kind, .. }) => assert_eq!(kind, BudgetKind::SeqLen),
        other => panic!("expected SeqLen budget rejection, got {other:?}"),
    }
    assert!(matches!(s.assert_seq(&long), Err(EvalError::Budget { .. })));
    assert!(!s.is_poisoned(), "eager rejection must not poison");
    assert_eq!(s.stats().facts, 0, "no fact entered the interpretation");
    // The session keeps serving within budget.
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    assert_eq!(s.query("p"), vec![vec!["ab".to_string()]]);
}

#[test]
fn assert_floods_are_stopped_exactly_at_the_budget() {
    // The size budgets bite on the assert path with *exact* enforcement:
    // an assert that would push the state past max_facts is refused before
    // it applies — no overshoot, no waiting for the next run(), and no
    // poisoning. Crucially, the asserts and the run-entry budget check now
    // agree: a session filled to the brim by asserts still runs.
    let config = EvalConfig {
        max_facts: 3,
        ..EvalConfig::default()
    };
    let mut s = session("q(X) :- r(X), s(X).", config);
    let mut accepted = 0;
    let mut refused = 0;
    for i in 0..10 {
        match s.assert_fact("r", &[&format!("w{i}")]) {
            Ok(true) => accepted += 1,
            Ok(false) => unreachable!("all words distinct"),
            Err(EvalError::Budget { kind, stats }) => {
                assert_eq!(kind, BudgetKind::Facts);
                assert_eq!(stats.facts, 4, "error reports the would-be stats");
                refused += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert_eq!(accepted, 3, "exactly max_facts accepted, zero overshoot");
    assert_eq!(refused, 7);
    assert!(!s.is_poisoned(), "budget refusal must not poison");
    assert_eq!(s.stats().facts, 3);
    // Duplicate asserts are no-growth and stay admissible at the brim.
    assert!(!s.assert_fact("r", &["w0"]).unwrap());
    // The accepted asserts can never make the next run fail its entry
    // budget check (the join derives nothing: s is empty).
    s.run().expect("a full-to-the-budget session still runs");
    assert!(!s.is_poisoned());
}

#[test]
fn domain_budget_is_exact_on_the_assert_path() {
    // A word whose window closure would blow max_domain is refused with
    // the domain rolled back to exactly its pre-call state; smaller words
    // still fit afterwards.
    let config = EvalConfig {
        max_domain: 12,
        ..EvalConfig::default()
    };
    let mut s = session("p(X) :- r(X).", config);
    s.assert_fact("r", &["ab"]).unwrap(); // ε, a, b, ab → 4 members
    let before = s.stats();
    // "cdefg" alone closes to 5·6/2 = 15 windows ≫ the remaining headroom.
    match s.assert_fact("r", &["cdefg"]) {
        Err(EvalError::Budget { kind, stats }) => {
            assert_eq!(kind, BudgetKind::DomainSize);
            assert!(stats.domain_size > 12, "peak stats show what tripped");
        }
        other => panic!("expected DomainSize refusal, got {other:?}"),
    }
    assert!(!s.is_poisoned());
    let after = s.stats();
    assert_eq!(after.facts, before.facts, "fact rolled back");
    assert_eq!(after.domain_size, before.domain_size, "closure rolled back");
    // Headroom still serves smaller facts, and the session still runs.
    assert!(s.assert_fact("r", &["cd"]).unwrap());
    s.run().unwrap();
    assert_eq!(s.answers("p"), ["ab", "cd"]);
}

#[test]
fn batch_asserts_are_failure_atomic() {
    let config = EvalConfig {
        max_facts: 4,
        ..EvalConfig::default()
    };
    let mut s = session("p(X) :- r(X).", config);
    s.assert_fact("r", &["keep"]).unwrap();
    s.run().unwrap();
    let stats_before = s.stats();
    let rows_before = s.query("r");

    // Settled: r(keep) + p(keep) = 2 facts. a1, a2 fill to the budget of
    // 4; the duplicate is admissible (no growth); a3 trips — and then the
    // whole batch, duplicate's base record included, must roll back.
    let err = s
        .assert_facts(&[
            ("r", &["a1"] as &[&str]),
            ("r", &["a2"]),
            ("r", &["keep"]), // duplicate mid-batch: no growth, base-only
            ("r", &["a3"]),   // refused: would be fact 5 > 4
            ("r", &["a4"]),
        ])
        .unwrap_err();
    let EvalError::Budget { kind, .. } = &err else {
        panic!("expected Budget, got {err:?}");
    };
    assert_eq!(*kind, BudgetKind::Facts);
    assert!(!s.is_poisoned(), "batch refusal must not poison");
    assert_eq!(s.stats().facts, stats_before.facts, "no fact survived");
    assert_eq!(
        s.stats().domain_size,
        stats_before.domain_size,
        "no closure survived"
    );
    assert_eq!(s.query("r"), rows_before, "extents exactly restored");
    // The rolled-back batch left the session fully serviceable.
    assert_eq!(s.assert_facts(&[("r", &["b1"] as &[&str])]).unwrap(), 1);
    s.run().unwrap();
    assert_eq!(s.answers("p"), ["b1", "keep"]);
}

#[test]
fn batch_asserts_on_poisoned_sessions_apply_nothing() {
    let config = EvalConfig {
        max_rounds: 2,
        ..EvalConfig::default()
    };
    let mut s = session("p(X[2:end]) :- p(X), X != \"\".", config);
    s.assert_fact("p", &["aaaaaaaa"]).unwrap();
    assert!(s.run().is_err(), "the chain needs more than 2 rounds");
    assert!(s.is_poisoned());
    let facts_before = s.stats().facts;
    match s.assert_facts(&[("p", &["zz"] as &[&str]), ("p", &["yy"])]) {
        Err(EvalError::Poisoned { .. }) => {}
        other => panic!("expected Poisoned, got {other:?}"),
    }
    assert_eq!(s.stats().facts, facts_before, "nothing applied");
    assert!(matches!(
        s.retract_fact("p", &["aaaaaaaa"]),
        Err(EvalError::Poisoned { .. })
    ));
}

/// Every dispatch configuration the sharded-commit matrix cares about:
/// thread counts 1/2/4/8 crossed with the forced-parallel hook (which
/// pushes even sub-threshold rounds through the sharded path).
fn dispatch_matrix() -> Vec<EvalConfig> {
    let mut out = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        for force in [false, true] {
            out.push(EvalConfig {
                threads,
                danger_force_parallel: force,
                ..EvalConfig::default()
            });
        }
    }
    out
}

#[test]
fn threshold_straddling_runs_are_bit_for_bit_across_dispatch_paths() {
    // Two runs of a quadratic join, sized so the first (virgin) run's
    // full-round estimate sits far below PAR_THRESHOLD while the second
    // run's delta round estimates far above it: within one session some
    // rounds dispatch inline and others through the sharded commit. Both
    // paths must produce identical insertion order and EvalStats, so the
    // whole matrix is compared bit-for-bit against the sequential session.
    let src = "pair(X, Y) :- w(X), w(Y).";
    let run = |config: EvalConfig| {
        let mut s = session(src, config);
        for i in 0..60 {
            s.assert_fact("w", &[&format!("a{i}")]).unwrap();
        }
        s.run().unwrap();
        for i in 0..60 {
            s.assert_fact("w", &[&format!("b{i}")]).unwrap();
        }
        s.run().unwrap();
        (s.query("pair"), s.query("w"), s.stats())
    };

    let reference = run(EvalConfig::default());
    assert_eq!(reference.0.len(), 120 * 120);
    for config in dispatch_matrix() {
        let got = run(config);
        assert_eq!(
            got, reference,
            "insertion order or stats diverged under {config:?}"
        );
    }
}

#[test]
fn parallel_asserts_into_a_compacted_relation_are_bit_for_bit() {
    // Adversarial shard-probe scenario: settle a quadratic join, retract
    // scattered base words (tombstoning mid-relation dedupe slots), force
    // a compaction, then drive a wide forced-parallel round straight into
    // the rebuilt shards. The result must equal a fresh batch over the
    // survivors and stay bit-for-bit identical across the dispatch matrix.
    let src = "pair(X, Y) :- w(X), w(Y).";
    let retracted = ["a3", "a17", "a29"];
    let run = |config: EvalConfig| {
        let mut s = session(src, config);
        for i in 0..40 {
            s.assert_fact("w", &[&format!("a{i}")]).unwrap();
        }
        s.run().unwrap();
        // Each effective retraction runs Delete-and-Rederive, which removes
        // tombstoned mid-relation slots and compacts the rebuilt shards.
        for w in retracted {
            assert!(s.retract_fact("w", &[w]).unwrap());
        }
        for i in 0..60 {
            s.assert_fact("w", &[&format!("b{i}")]).unwrap();
        }
        s.run().unwrap();
        s
    };

    let survivors: Vec<(&str, String)> = (0..40)
        .map(|i| format!("a{i}"))
        .filter(|w| !retracted.contains(&w.as_str()))
        .chain((0..60).map(|i| format!("b{i}")))
        .map(|w| ("w", w))
        .collect();
    let survivor_refs: Vec<(&str, &str)> =
        survivors.iter().map(|(p, w)| (*p, w.as_str())).collect();

    let reference = run(EvalConfig::default());
    assert_eq!(
        session_extents(&reference, &["pair", "w"]),
        batch_extents(src, &survivor_refs, &["pair", "w"]),
        "compacted session ≢ fresh batch over the survivors"
    );

    let reference = (
        reference.query("pair"),
        reference.query("w"),
        reference.stats(),
    );
    for config in dispatch_matrix() {
        let s = run(config);
        let got = (s.query("pair"), s.query("w"), s.stats());
        assert_eq!(
            got, reference,
            "compacted-relation round diverged under {config:?}"
        );
    }
}
