//! Regression tests for [`seqlog_core::session::EngineSession`]: the
//! success path (resume ≡ batch, stats accumulation), the error path
//! (budget exhaustion mid-session poisons), and the per-run `max_rounds`
//! semantics.

use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_core::eval::{BudgetKind, EvalConfig, EvalError};
use seqlog_core::session::EngineSession;

const CHAIN_SRC: &str = r#"
    chain1(X[2:end]) :- chain0(X), X != "".
    chain2(X[2:end]) :- chain1(X), X != "".
    chain0(X[2:end]) :- chain2(X), X != "".
    pairs(X, Y) :- chain0(X), chain2(Y).
"#;

fn session(src: &str, config: EvalConfig) -> EngineSession {
    let mut e = Engine::new();
    let p = e.parse_program(src).unwrap();
    e.into_session(&p, config).unwrap()
}

/// Batch-evaluate `src` over string facts and return sorted extents of
/// `preds` — the oracle sessions are compared against.
fn batch_extents(src: &str, facts: &[(&str, &str)], preds: &[&str]) -> Vec<Vec<Vec<String>>> {
    let mut e = Engine::new();
    let p = e.parse_program(src).unwrap();
    let mut db = Database::new();
    for (pred, w) in facts {
        e.add_fact(&mut db, pred, &[w]);
    }
    let m = e.evaluate(&p, &db).unwrap();
    preds
        .iter()
        .map(|pred| {
            let mut rows = e.rendered_tuples(&m, pred);
            rows.sort();
            rows
        })
        .collect()
}

fn session_extents(s: &EngineSession, preds: &[&str]) -> Vec<Vec<Vec<String>>> {
    preds
        .iter()
        .map(|pred| {
            let mut rows = s.query(pred);
            rows.sort();
            rows
        })
        .collect()
}

#[test]
fn resume_matches_batch_and_stats_accumulate() {
    let preds = ["chain0", "chain1", "chain2", "pairs"];
    let facts = [
        ("chain0", "abcabs"),
        ("chain0", "bbat"),
        ("chain0", "cacacu"),
    ];
    let mut s = session(CHAIN_SRC, EvalConfig::default());

    // Batch 1: first two facts.
    assert!(s.assert_fact("chain0", &["abcabs"]).unwrap());
    assert!(s.assert_fact("chain0", &["bbat"]).unwrap());
    let stats1 = s.run().unwrap();
    assert!(stats1.rounds >= 2, "chain needs several rounds");
    let mid = session_extents(&s, &preds);
    assert_eq!(
        mid,
        batch_extents(CHAIN_SRC, &facts[..2], &preds),
        "settled prefix must equal batch over the prefix"
    );

    // Batch 2: one more fact resumes from the delta.
    assert!(s.assert_fact("chain0", &["cacacu"]).unwrap());
    let stats2 = s.run().unwrap();
    assert_eq!(
        session_extents(&s, &preds),
        batch_extents(CHAIN_SRC, &facts, &preds),
        "resumed model must equal batch re-evaluation from scratch"
    );

    // Stats accumulate across resumes: rounds strictly grow, fact count is
    // the cumulative model size, and the second run resumed rather than
    // restarting (it needed fewer new rounds than a from-scratch run).
    assert!(stats2.rounds > stats1.rounds);
    assert!(stats2.facts > stats1.facts);
    assert!(stats2.derivations > stats1.derivations);
    let fresh = {
        let mut e = Engine::new();
        let p = e.parse_program(CHAIN_SRC).unwrap();
        let mut db = Database::new();
        for (pred, w) in &facts {
            e.add_fact(&mut db, pred, &[w]);
        }
        e.evaluate(&p, &db).unwrap().stats
    };
    assert_eq!(stats2.facts, fresh.facts);
    assert!(
        stats2.derivations - stats1.derivations < fresh.derivations,
        "resume must not redo the settled prefix's derivation work"
    );
}

#[test]
fn settled_run_costs_one_quiescence_round() {
    let mut s = session("p(X) :- r(X).", EvalConfig::default());
    s.assert_fact("r", &["ab"]).unwrap();
    let s1 = s.run().unwrap();
    let s2 = s.run().unwrap();
    assert_eq!(s2.rounds, s1.rounds + 1, "one quiescence-check round");
    assert_eq!(s2.facts, s1.facts);
    assert_eq!(s2.derivations, s1.derivations);
}

#[test]
fn duplicate_asserts_are_noops() {
    let mut s = session("p(X) :- r(X).", EvalConfig::default());
    assert!(s.assert_fact("r", &["ab"]).unwrap());
    s.run().unwrap();
    assert!(!s.assert_fact("r", &["ab"]).unwrap());
    let before = s.stats();
    s.run().unwrap();
    assert_eq!(s.stats().facts, before.facts);
    assert_eq!(s.query("p"), vec![vec!["ab".to_string()]]);
}

#[test]
fn assert_seq_and_ids_round_trip() {
    let mut s = session("suffix(X[N:end]) :- r(X).", EvalConfig::default());
    let id = s.assert_seq("abc").unwrap();
    assert_eq!(s.render(id), "abc");
    assert!(s.assert_fact_ids("r", &[id]).unwrap());
    s.run().unwrap();
    assert_eq!(s.answers("suffix"), ["", "abc", "bc", "c"]);
}

#[test]
fn budget_error_mid_session_poisons() {
    // First fixpoint settles comfortably; the second batch blows the
    // cumulative fact budget mid-resume.
    let config = EvalConfig {
        max_facts: 120,
        ..EvalConfig::default()
    };
    let mut s = session("pair(X, Y) :- s(X), s(Y).", config);
    for i in 0..5 {
        s.assert_fact("s", &[&format!("a{i}")]).unwrap();
    }
    let stats1 = s.run().unwrap();
    assert_eq!(stats1.facts, 5 + 25);

    for i in 0..10 {
        s.assert_fact("s", &[&format!("b{i}")]).unwrap();
    }
    let err = s.run().unwrap_err();
    let EvalError::Budget { kind, stats } = &err else {
        panic!("expected Budget error, got {err:?}");
    };
    assert_eq!(*kind, BudgetKind::Facts);
    // Incremental enforcement stops exactly at max_facts + 1, and the
    // error stats are cumulative (they include the first run's rounds).
    assert_eq!(stats.facts, 121);
    assert!(stats.rounds > stats1.rounds);

    // The session is poisoned: every further mutation is refused with the
    // original error attached…
    assert!(s.is_poisoned());
    match s.assert_fact("s", &["c"]) {
        Err(EvalError::Poisoned { original }) => {
            assert!(matches!(*original, EvalError::Budget { .. }));
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }
    assert!(matches!(s.run(), Err(EvalError::Poisoned { .. })));
    assert!(matches!(s.assert_seq("zz"), Err(EvalError::Poisoned { .. })));
    assert!(matches!(s.poison(), Some(EvalError::Budget { .. })));

    // …while the read API stays available, and the partial state is a
    // sound under-approximation of the full fixpoint: every committed pair
    // is a genuine derivation over the grown database.
    let partial = s.query("pair");
    assert!(!partial.is_empty());
    let snapshot = s.snapshot();
    assert_eq!(snapshot.stats.facts, 121);
    let mut e2 = Engine::new();
    let p2 = e2.parse_program("pair(X, Y) :- s(X), s(Y).").unwrap();
    let mut db2 = Database::new();
    for i in 0..5 {
        e2.add_fact(&mut db2, "s", &[&format!("a{i}")]);
    }
    for i in 0..10 {
        e2.add_fact(&mut db2, "s", &[&format!("b{i}")]);
    }
    let full2 = e2.evaluate(&p2, &db2).unwrap();
    let full_set: std::collections::BTreeSet<Vec<String>> =
        e2.rendered_tuples(&full2, "pair").into_iter().collect();
    for row in &partial {
        assert!(
            full_set.contains(row),
            "partial state contains an underivable fact: {row:?}"
        );
    }
}

#[test]
fn max_rounds_is_a_per_run_budget() {
    // A trimming chain needs ~len rounds per word. With max_rounds = 8,
    // two successive runs of ~6 rounds each must BOTH succeed (cumulative
    // rounds exceed 8), because the budget applies per run…
    let config = EvalConfig {
        max_rounds: 8,
        ..EvalConfig::default()
    };
    let src = "p(X[2:end]) :- p(X), X != \"\".";
    let mut s = session(src, config);
    s.assert_fact("p", &["aaaa"]).unwrap();
    let s1 = s.run().unwrap();
    s.assert_fact("p", &["bbbbb"]).unwrap();
    let s2 = s.run().unwrap();
    assert!(
        s2.rounds > 8,
        "cumulative rounds ({}) exceed the per-run budget — sessions are \
         not starved by uptime",
        s2.rounds
    );
    assert!(s2.rounds > s1.rounds);

    // …while a single delta needing more than max_rounds still fails.
    s.assert_fact("p", &["cccccccccccc"]).unwrap();
    let err = s.run().unwrap_err();
    match err {
        EvalError::Budget { kind, .. } => assert_eq!(kind, BudgetKind::Rounds),
        other => panic!("expected Rounds budget, got {other:?}"),
    }
    assert!(s.is_poisoned());
}

#[test]
fn check_model_confirms_settled_sessions() {
    let mut s = session(CHAIN_SRC, EvalConfig::default());
    s.assert_fact("chain0", &["abcabc"]).unwrap();
    s.run().unwrap();
    assert!(s.check_model().unwrap(), "a settled session is a model");
    // A fresh unsettled delta is not yet a model (the chain rule applies).
    s.assert_fact("chain0", &["bcabca"]).unwrap();
    assert!(!s.check_model().unwrap(), "pending delta: not closed yet");
    s.run().unwrap();
    assert!(s.check_model().unwrap());
}

#[test]
fn clone_forks_independent_sessions() {
    let mut s = session("p(X) :- r(X).", EvalConfig::default());
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    let mut fork = s.clone();
    fork.assert_fact("r", &["cd"]).unwrap();
    fork.run().unwrap();
    assert_eq!(s.answers("p"), ["ab"], "original unaffected by the fork");
    assert_eq!(fork.answers("p"), ["ab", "cd"]);
}

#[test]
fn oversized_asserts_are_rejected_eagerly_without_poisoning() {
    // Domain closure interns O(len²) windows, so the assert path enforces
    // max_seq_len *before* closure. Rejection leaves the interpretation
    // untouched and the session healthy.
    let config = EvalConfig {
        max_seq_len: 8,
        ..EvalConfig::default()
    };
    let mut s = session("p(X) :- r(X).", config);
    let long = "a".repeat(9);
    match s.assert_fact("r", &[&long]) {
        Err(EvalError::Budget { kind, .. }) => assert_eq!(kind, BudgetKind::SeqLen),
        other => panic!("expected SeqLen budget rejection, got {other:?}"),
    }
    assert!(matches!(
        s.assert_seq(&long),
        Err(EvalError::Budget { .. })
    ));
    assert!(!s.is_poisoned(), "eager rejection must not poison");
    assert_eq!(s.stats().facts, 0, "no fact entered the interpretation");
    // The session keeps serving within budget.
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    assert_eq!(s.query("p"), vec![vec!["ab".to_string()]]);
}

#[test]
fn assert_floods_are_stopped_by_the_cumulative_budgets() {
    // The size budgets must bite on the assert path too: once the state
    // already exceeds max_facts, further asserts are refused (bounded
    // overshoot of one fact), without waiting for the next run() — and
    // without poisoning.
    let config = EvalConfig {
        max_facts: 3,
        ..EvalConfig::default()
    };
    let mut s = session("p(X) :- r(X).", config);
    let mut accepted = 0;
    let mut refused = 0;
    for i in 0..10 {
        match s.assert_fact("r", &[&format!("w{i}")]) {
            Ok(true) => accepted += 1,
            Ok(false) => unreachable!("all words distinct"),
            Err(EvalError::Budget { kind, .. }) => {
                assert_eq!(kind, BudgetKind::Facts);
                refused += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert_eq!(accepted, 4, "overshoot bounded at max_facts + 1");
    assert_eq!(refused, 6);
    assert!(!s.is_poisoned(), "budget refusal must not poison");
}
