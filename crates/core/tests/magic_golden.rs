//! Pinned golden renderings of the magic-set transformation.
//!
//! These tests freeze the *exact* transformed program for three
//! representative shapes: linear recursion with a bound first argument,
//! suffix recursion whose SIP loses the binding (deriving a free-pattern
//! demand and a domain-sensitive magic rule), and a constructive
//! predicate that must be exempted from guarding (the F-closure
//! fallback).  Any change to adornment order, SIP choice, guard
//! placement, or fallback scoping shows up here as a readable diff.

use seqlog_core::analysis::magic::{magic_transform, MagicOptions, MagicProgram};
use seqlog_core::analysis::Adornment;
use seqlog_core::compile::compile;
use seqlog_core::engine::Engine;

fn transform(src: &str, goal: &str, mask: &[bool]) -> MagicProgram {
    let mut e = Engine::new();
    let program = e.parse_program(src).unwrap();
    let compiled = compile(&program).unwrap();
    let g = compiled.preds.lookup(goal).unwrap();
    magic_transform(
        &compiled,
        g,
        &Adornment::from_mask(mask),
        &MagicOptions::default(),
    )
}

fn rendering(m: &MagicProgram) -> String {
    // None of the golden programs contain sequence constants, so the
    // constant renderer is never consulted.
    m.render(&|id| format!("#{}", id.0))
}

#[test]
fn golden_ancestor_bound_first_argument() {
    let m = transform(
        "anc(X, Y) :- edge(X, Y).\nanc(X, Z) :- anc(X, Y), edge(Y, Z).",
        "anc",
        &[true, false],
    );
    assert!(!m.full_fallback);
    assert!(m.fallback_names().is_empty());
    assert_eq!(
        rendering(&m),
        "anc(X, Y) :- magic[anc:bf](X), edge(X, Y).\n\
         anc(X, Z) :- magic[anc:bf](X), anc(X, Y), edge(Y, Z).\n\
         magic[anc:bf](X) :- magic[anc:bf](X).\n"
    );
}

#[test]
fn golden_suffix_recursion_loses_binding() {
    // The recursive clause's head is `suf(X[2:end])`: knowing the head
    // value does not bind X, so the recursive demand degrades to the
    // all-free adornment "f" — and the demand rule that performs the
    // degradation is domain-sensitive (X occurs only inside an indexed
    // term), which the evaluator re-fires on domain growth.
    let m = transform(
        "suf(X) :- base(X).\nsuf(X[2:end]) :- suf(X).",
        "suf",
        &[true],
    );
    assert!(!m.full_fallback);
    assert!(m.fallback_names().is_empty());
    assert_eq!(
        rendering(&m),
        "suf(X) :- magic[suf:b](X), base(X).\n\
         suf(X[2:end]) :- magic[suf:b](X[2:end]), suf(X).\n\
         magic[suf:f]() :- magic[suf:b](X[2:end]).\n\
         suf(X) :- magic[suf:f](), base(X).\n\
         suf(X[2:end]) :- magic[suf:f](), suf(X).\n\
         magic[suf:f]() :- magic[suf:f]().\n"
    );
    let ds: Vec<bool> = m
        .program
        .clauses
        .iter()
        .map(|c| c.domain_sensitive)
        .collect();
    assert_eq!(ds, [false, false, true, false, false, false]);
}

#[test]
fn golden_constructive_stratum_falls_back_unguarded() {
    // dbl's head is constructive (`X ++ X`); guarding it could starve
    // derivations the extended-active-domain semantics requires, so its
    // downward closure is emitted unguarded and only the goal stratum
    // keeps its magic guard.
    let m = transform("dbl(X ++ X) :- r(X).\nout(X) :- dbl(X).", "out", &[true]);
    assert!(!m.full_fallback);
    assert_eq!(m.fallback_names(), vec!["dbl".to_string()]);
    assert_eq!(
        rendering(&m),
        "dbl(X ++ X) :- r(X).\n\
         out(X) :- magic[out:b](X), dbl(X).\n"
    );
}

#[test]
fn golden_magic_rules_compact_variable_slots() {
    // The demand rule derived from `anc(X, Z) :- anc(X, Y), edge(Y, Z).`
    // under the "fb" adornment mentions only Y and Z; the source
    // clause's X slot must be compacted away or the matcher plans a
    // binding for a variable with no occurrence.
    let m = transform(
        "anc(X, Y) :- edge(X, Y).\nanc(X, Z) :- anc(X, Y), edge(Y, Z).",
        "anc",
        &[false, true],
    );
    let magic_rule = m
        .program
        .clauses
        .iter()
        .find(|c| c.body.len() == 2 && c.head.args.len() == 1)
        .expect("demand rule present");
    assert_eq!(magic_rule.n_seq, 2);
    assert_eq!(magic_rule.seq_names, ["Y", "Z"]);
}
