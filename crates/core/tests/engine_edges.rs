//! Edge-case and failure-injection tests for the engine.

use seqlog_core::database::Database;
use seqlog_core::engine::Engine;
use seqlog_core::eval::{BudgetKind, EvalConfig, EvalError};

fn db1(e: &mut Engine, pred: &str, w: &str) -> Database {
    let mut db = Database::new();
    e.add_fact(&mut db, pred, &[w]);
    db
}

#[test]
fn empty_program_yields_the_database() {
    let mut e = Engine::new();
    let p = e.parse_program("").unwrap();
    let db = db1(&mut e, "r", "abc");
    let m = e.evaluate(&p, &db).unwrap();
    assert_eq!(m.facts.total_facts(), 1);
    assert_eq!(m.domain.len(), 7); // closure of "abc"
}

#[test]
fn empty_database_yields_only_ground_facts() {
    let mut e = Engine::new();
    let p = e.parse_program("p(\"ab\").\nq(X) :- r(X).").unwrap();
    let m = e.evaluate(&p, &Database::new()).unwrap();
    assert_eq!(e.answers(&m, "p"), vec!["ab"]);
    assert!(m.tuples("q").is_empty());
}

#[test]
fn unknown_transducer_is_an_eval_error() {
    let mut e = Engine::new();
    let p = e.parse_program("p(@nope(X)) :- r(X).").unwrap();
    let db = db1(&mut e, "r", "a");
    match e.evaluate(&p, &db) {
        Err(EvalError::UnknownTransducer(name)) => assert_eq!(name, "nope"),
        other => panic!("expected UnknownTransducer, got {other:?}"),
    }
}

#[test]
fn each_budget_kind_can_fire() {
    let mut e = Engine::new();
    // A program that doubles a sequence every round.
    let p = e.parse_program("r(X ++ X) :- r(X).").unwrap();
    let db = db1(&mut e, "r", "ab");

    let rounds = EvalConfig {
        max_rounds: 3,
        ..EvalConfig::default()
    };
    match e.evaluate_with(&p, &db, &rounds) {
        Err(EvalError::Budget {
            kind: BudgetKind::Rounds,
            ..
        }) => {}
        other => panic!("expected Rounds, got {other:?}"),
    }

    let seqlen = EvalConfig {
        max_seq_len: 16,
        ..EvalConfig::default()
    };
    match e.evaluate_with(&p, &db, &seqlen) {
        Err(EvalError::Budget {
            kind: BudgetKind::SeqLen,
            ..
        }) => {}
        other => panic!("expected SeqLen, got {other:?}"),
    }

    let dom = EvalConfig {
        max_domain: 40,
        ..EvalConfig::default()
    };
    match e.evaluate_with(&p, &db, &dom) {
        Err(EvalError::Budget {
            kind: BudgetKind::DomainSize,
            ..
        }) => {}
        other => panic!("expected DomainSize, got {other:?}"),
    }

    // Facts budget needs a program that multiplies facts instead.
    let p2 = e.parse_program("pair(X, Y) :- s(X), s(Y).").unwrap();
    let mut db2 = Database::new();
    for w in ["a", "b", "c", "d", "e"] {
        e.add_fact(&mut db2, "s", &[w]);
    }
    let facts = EvalConfig {
        max_facts: 10,
        ..EvalConfig::default()
    };
    match e.evaluate_with(&p2, &db2, &facts) {
        Err(EvalError::Budget {
            kind: BudgetKind::Facts,
            ..
        }) => {}
        other => panic!("expected Facts, got {other:?}"),
    }
}

#[test]
fn facts_budget_cannot_overshoot_mid_round() {
    // One T-operator round can attempt far more head instantiations than
    // `max_facts`. Budgets are enforced incrementally as the commit phase
    // inserts, so the interpretation stops at `max_facts + 1` facts instead
    // of committing the whole round (previously a single wide round could
    // overshoot arbitrarily — here by ~10,000 pairs).
    let mut e = Engine::new();
    let p = e.parse_program("pair(X, Y) :- s(X), s(Y).").unwrap();
    let mut db = Database::new();
    for i in 0..100 {
        e.add_fact(&mut db, "s", &[&format!("w{i}")]);
    }
    let cfg = EvalConfig {
        max_facts: 150,
        ..EvalConfig::default()
    };
    match e.evaluate_with(&p, &db, &cfg) {
        Err(EvalError::Budget {
            kind: BudgetKind::Facts,
            stats,
        }) => {
            assert_eq!(
                stats.facts, 151,
                "a single wide round must not exceed max_facts + 1"
            );
        }
        other => panic!("expected Facts budget error, got {other:?}"),
    }
}

#[test]
fn adversarial_index_constants_evaluate_to_undefined() {
    // i64-overflowing index arithmetic in a head term: the term is
    // undefined (no fact), not a panic (debug) or a wrapped index
    // (release).
    let mut e = Engine::new();
    let p = e
        .parse_program(&format!("p(X[N + {} : end]) :- r(X).", i64::MAX))
        .unwrap();
    let db = db1(&mut e, "r", "abc");
    let m = e.evaluate(&p, &db).unwrap();
    assert!(m.tuples("p").is_empty());
    // And in a body literal.
    let p = e
        .parse_program(&format!("p(X) :- r(X), X[N + {} : end] = \"a\".", i64::MAX))
        .unwrap();
    let m = e.evaluate(&p, &db).unwrap();
    assert!(m.tuples("p").is_empty());
}

#[test]
fn self_join_derives_each_new_pair_once() {
    // Semi-naive with a clause mentioning the same grown predicate twice:
    // the firing for each literal occurrence restricts occurrences before
    // it to the pre-round prefix, so every ordered pair is derived exactly
    // once across firings. With `k` seed words of length `L` and pairwise
    // distinct suffixes, p reaches k·L + 1 facts and the expected
    // derivation count is exactly |p|² (each q pair once) + |p| - 1 (each
    // non-empty p fact extends once). The earlier per-literal scheme
    // re-derived every new–new pair once per occurrence.
    let (k, l) = (6usize, 8usize);
    let mut e = Engine::new();
    let p = e
        .parse_program("q(X, Y) :- p(X), p(Y).\np(X[2:end]) :- p(X), X != \"\".")
        .unwrap();
    let mut db = Database::new();
    for i in 0..k {
        let mut word: String = (0..l - 1)
            .map(|j| char::from(b'a' + ((i * 7 + j * 5 + i * j) % 3) as u8))
            .collect();
        word.push(char::from(b's' + i as u8)); // unique tail: disjoint suffixes
        e.add_fact(&mut db, "p", &[&word]);
    }
    let semi = e.evaluate(&p, &db).unwrap();
    let p_total = k * l + 1;
    assert_eq!(semi.tuples("p").len(), p_total);
    assert_eq!(semi.tuples("q").len(), p_total * p_total);
    assert_eq!(
        semi.stats.derivations,
        (p_total * p_total + p_total - 1) as u64,
        "each new-new pair must be derived exactly once"
    );
    // The model is unchanged with respect to the naive reference.
    let naive = e
        .evaluate_with(
            &p,
            &db,
            &EvalConfig {
                strategy: seqlog_core::eval::Strategy::Naive,
                ..EvalConfig::default()
            },
        )
        .unwrap();
    assert_eq!(naive.facts.total_facts(), semi.facts.total_facts());
}

#[test]
fn undefined_index_terms_fail_silently_in_heads() {
    // X[5:6] is undefined for short sequences: no fact derived, no error
    // (θ is simply not defined at the clause, Section 3.2).
    let mut e = Engine::new();
    let p = e.parse_program("p(X[5:6]) :- r(X).").unwrap();
    let db = db1(&mut e, "r", "abc");
    let m = e.evaluate(&p, &db).unwrap();
    assert!(m.tuples("p").is_empty());
}

#[test]
fn index_arithmetic_with_two_variables_enumerates() {
    // N+M = 3 has several solutions over the domain integers; each yields
    // the same window here, deduplicated by the fact store.
    let mut e = Engine::new();
    let p = e
        .parse_program("p(X[1:N+M]) :- r(X), X[N:M] = \"b\".")
        .unwrap();
    let db = db1(&mut e, "r", "abc");
    let m = e.evaluate(&p, &db).unwrap();
    // X[N:M] = "b" forces N = M = 2, so X[1:4] is undefined and nothing
    // else matches… except N=2, M=2 gives X[1:4]: undefined. So p is empty.
    assert!(m.tuples("p").is_empty());

    // A satisfiable variant: X[N:M] = "bc" forces N=2, M=3 ⇒ X[1:5]
    // undefined; X[N:M] = "a" forces N=M=1 ⇒ X[1:2] = "ab".
    let p2 = e
        .parse_program("p(X[1:N+M]) :- r(X), X[N:M] = \"a\".")
        .unwrap();
    let m2 = e.evaluate(&p2, &db).unwrap();
    assert_eq!(e.answers(&m2, "p"), vec!["ab"]);
}

#[test]
fn paper_term_shapes_parse_and_evaluate() {
    // Section 3.1's example terms: 3, N+3, N-M, end-5, end-5+M; and
    // ccgt ++ S1[1:end-3] ++ S2.
    let mut e = Engine::new();
    let p = e
        .parse_program(
            r#"
            tail5(X[end-5+M:end]) :- r(X).
            spliced("ccgt" ++ X[1:end-3] ++ Y) :- r(X), r(Y).
            "#,
        )
        .unwrap();
    // M occurs only in the head: it is enumerated over the domain integers,
    // and the head is defined only where end-5+M is a valid index.
    let mut db = Database::new();
    e.add_fact(&mut db, "r", &["acgtacgt"]);
    let m = e.evaluate(&p, &db).unwrap();
    assert!(!m.tuples("tail5").is_empty());
    let spliced = e.answers(&m, "spliced");
    // ccgt + acgta + acgtacgt
    assert!(spliced.contains(&"ccgtacgtaacgtacgt".to_string()));
}

#[test]
fn inequality_requires_definedness() {
    // X[9] != "a" is undefined for short X: the substitution is not
    // defined at the clause, so it contributes nothing.
    let mut e = Engine::new();
    let p = e.parse_program("p(X) :- r(X), X[9] != \"a\".").unwrap();
    let db = db1(&mut e, "r", "abc");
    let m = e.evaluate(&p, &db).unwrap();
    assert!(m.tuples("p").is_empty());
}

#[test]
fn zero_arity_predicates_work_end_to_end() {
    let mut e = Engine::new();
    let p = e
        .parse_program("go :- r(X), X[1] = \"a\".\nyes(X) :- go, r(X).")
        .unwrap();
    let db = db1(&mut e, "r", "abc");
    let m = e.evaluate(&p, &db).unwrap();
    assert!(m.contains("go", &[]));
    assert_eq!(e.answers(&m, "yes"), vec!["abc"]);
}

#[test]
fn duplicate_facts_are_idempotent() {
    let mut e = Engine::new();
    let p = e.parse_program("p(X) :- r(X).").unwrap();
    let mut db = Database::new();
    e.add_fact(&mut db, "r", &["ab"]);
    e.add_fact(&mut db, "r", &["ab"]);
    let m = e.evaluate(&p, &db).unwrap();
    assert_eq!(m.facts.total_facts(), 2); // r(ab), p(ab)
}

#[test]
fn stats_track_transducer_work() {
    let mut e = Engine::new();
    let syms: Vec<_> = "ab".chars().map(|c| e.alphabet.intern_char(c)).collect();
    let t = seqlog_transducer::library::copy(&mut e.alphabet, &syms);
    e.register_transducer("copy", t);
    let p = e.parse_program("c(@copy(X)) :- r(X).").unwrap();
    let db = db1(&mut e, "r", "abab");
    let m = e.evaluate(&p, &db).unwrap();
    assert_eq!(m.stats.transducer_calls, 1);
    assert_eq!(m.stats.transducer_steps, 4);
}

#[test]
fn ground_domain_sensitive_clauses_refire_on_late_domain_growth() {
    // Regression (found by the incremental paper-example coverage):
    // `pair(X, X) :- true.` has an empty body but is domain-sensitive —
    // its free head variable ranges over the extended active domain.
    // Semi-naive planning used to skip body-empty clauses *before* the
    // domain-growth check, losing instantiations over sequences first
    // created in later rounds (here `abab`, built by the `++` rule after
    // round 1), while naive evaluation derived them.
    let mut e = Engine::new();
    let p = e
        .parse_program("pair(X, X) :- true.\ngrown(Y ++ Y) :- r(Y).")
        .unwrap();
    let db = db1(&mut e, "r", "ab");
    let semi = e.evaluate(&p, &db).unwrap();
    let naive = e
        .evaluate_with(
            &p,
            &db,
            &EvalConfig {
                strategy: seqlog_core::eval::Strategy::Naive,
                ..EvalConfig::default()
            },
        )
        .unwrap();
    let abab = e.seq("abab");
    assert!(
        semi.contains("pair", &[abab, abab]),
        "late domain member must reach the ground domain-sensitive clause"
    );
    assert_eq!(naive.facts.total_facts(), semi.facts.total_facts());
    for pred in ["pair", "grown", "r"] {
        let mut a = e.rendered_tuples(&naive, pred);
        let mut b = e.rendered_tuples(&semi, pred);
        a.sort();
        b.sort();
        assert_eq!(a, b, "{pred}");
    }
}

#[test]
fn fixpoint_retry_after_budget_error_recovers_the_least_fixpoint() {
    // Driving the resumable Fixpoint directly (below the session layer,
    // which poisons instead): a mid-commit Facts-budget error must not
    // advance the round watermarks, so re-running with a larger budget
    // re-derives the interrupted round and converges to the same model a
    // from-scratch evaluation computes.
    use seqlog_core::compile::compile;
    use seqlog_core::eval::Fixpoint;
    use seqlog_core::model::closed_under_tp;

    let mut e = Engine::new();
    let p = e.parse_program("pair(X, Y) :- s(X), s(Y).").unwrap();
    let compiled = compile(&p).unwrap();
    let mut fx = Fixpoint::new(&compiled);
    let mut pid = None;
    for i in 0..10 {
        let id = e.seq(&format!("w{i}"));
        let pred = *pid.get_or_insert_with(|| fx.pred_id("s"));
        assert!(fx.assert_fact(&mut e.store, pred, vec![id].into()));
    }

    let tight = EvalConfig {
        max_facts: 50,
        ..EvalConfig::default()
    };
    match fx.run(&compiled, &mut e.store, &e.registry, &tight) {
        Err(EvalError::Budget { kind, stats }) => {
            assert_eq!(kind, BudgetKind::Facts);
            assert_eq!(stats.facts, 51, "commit stops at max_facts + 1");
        }
        other => panic!("expected Facts budget, got {other:?}"),
    }

    // Retry with room: must reach the full fixpoint (10 + 100 facts) and
    // be closed under the T-operator.
    fx.run(&compiled, &mut e.store, &e.registry, &EvalConfig::default())
        .expect("retry succeeds");
    let model = fx.snapshot();
    assert_eq!(model.stats.facts, 110);
    assert!(closed_under_tp(
        &compiled,
        &model.facts,
        &model.domain,
        &mut e.store,
        &e.registry,
        &EvalConfig::default(),
    )
    .unwrap());

    // And it matches a from-scratch evaluation extensionally.
    let mut db = Database::new();
    for i in 0..10 {
        e.add_fact(&mut db, "s", &[&format!("w{i}")]);
    }
    let batch = e.evaluate(&p, &db).unwrap();
    assert_eq!(batch.stats.facts, model.stats.facts);
    let mut a = e.rendered_tuples(&batch, "pair");
    let mut b: Vec<Vec<String>> = model
        .tuples("pair")
        .into_iter()
        .map(|t| t.iter().map(|&id| e.render(id)).collect())
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn wide_round_landing_exactly_on_the_facts_budget_succeeds_at_every_thread_count() {
    // 8 base words derive 64 pairs: 72 facts total. A budget of exactly 72
    // must succeed — the incremental check fires only when the total
    // *exceeds* the budget — and a budget of 71 must fail having admitted
    // exactly one fact past it (stats.facts == 72), identically on the
    // inline path, the threaded path, and the forced sharded-commit path.
    let mut e = Engine::new();
    let p = e.parse_program("pair(X, Y) :- s(X), s(Y).").unwrap();
    let mut db = Database::new();
    for i in 0..8 {
        e.add_fact(&mut db, "s", &[&format!("w{i}")]);
    }
    let configs = |max_facts: usize| {
        [1usize, 2, 4, 8].into_iter().flat_map(move |threads| {
            [false, true].into_iter().map(move |force| EvalConfig {
                threads,
                max_facts,
                danger_force_parallel: force,
                ..EvalConfig::default()
            })
        })
    };

    let reference = e
        .evaluate_with(
            &p,
            &db,
            &EvalConfig {
                max_facts: 72,
                ..EvalConfig::default()
            },
        )
        .expect("landing exactly on the budget is not an overshoot");
    assert_eq!(reference.stats.facts, 72);
    for cfg in configs(72) {
        let m = e
            .evaluate_with(&p, &db, &cfg)
            .unwrap_or_else(|err| panic!("exact-budget round failed under {cfg:?}: {err}"));
        assert_eq!(m.stats, reference.stats, "stats diverged under {cfg:?}");
        assert_eq!(
            m.tuples("pair"),
            reference.tuples("pair"),
            "insertion order diverged under {cfg:?}"
        );
    }

    for cfg in configs(71) {
        match e.evaluate_with(&p, &db, &cfg) {
            Err(EvalError::Budget {
                kind: BudgetKind::Facts,
                stats,
            }) => assert_eq!(
                stats.facts, 72,
                "refuse-before-apply bound violated under {cfg:?}"
            ),
            other => panic!("expected Facts budget error under {cfg:?}, got {other:?}"),
        }
    }
}
