//! Pinned regression tests for the durability layer: write-ahead logging,
//! snapshots, crash recovery, abort compensation, corruption handling, and
//! poisoned-session recovery ([`EngineSession::recover`]).
//!
//! The fuzz-scale counterpart (crash injection at fuzzed byte offsets over
//! generated assert/retract interleavings) lives at the workspace root in
//! `tests/fuzz_recovery.rs`; this file pins the individual behaviors with
//! hand-built cases so a failure names the broken mechanism directly.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use seqlog_core::engine::Engine;
use seqlog_core::eval::{BudgetKind, EvalConfig, EvalError, EvalStats};
use seqlog_core::session::{DurabilityOptions, EngineSession};
use seqlog_core::wal::{RecoveryError, WAL_FILE, WAL_HEADER_LEN};

/// Self-cleaning temp dir (the core crate cannot depend on `seqlog-testkit`
/// — testkit depends on core — so the helper is duplicated here, small).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("seqlog-core-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const SRC: &str = r#"
    t(X) :- r(X).
    t(X[2:end]) :- t(X), X != "".
    pair(X, Y) :- t(X), t(Y).
"#;

fn open_durable(
    src: &str,
    config: EvalConfig,
    dir: &Path,
    opts: DurabilityOptions,
) -> EngineSession {
    let mut e = Engine::new();
    let p = e.parse_program(src).unwrap();
    EngineSession::open_durable(e, &p, config, dir, opts).unwrap()
}

fn try_open_durable(
    src: &str,
    config: EvalConfig,
    dir: &Path,
    opts: DurabilityOptions,
) -> Result<EngineSession, EvalError> {
    let mut e = Engine::new();
    let p = e.parse_program(src).unwrap();
    EngineSession::open_durable(e, &p, config, dir, opts)
}

/// Insertion-order extents (empty relations dropped) plus stats: the
/// bit-for-bit state view recovery is compared on.
fn state(s: &EngineSession) -> (BTreeMap<String, Vec<Vec<String>>>, EvalStats) {
    let mut extents: BTreeMap<String, Vec<Vec<String>>> = s
        .predicates()
        .map(|p| (p.to_string(), s.query(p)))
        .collect();
    extents.retain(|_, v| !v.is_empty());
    (extents, s.stats())
}

#[test]
fn durable_reopen_round_trips_bit_for_bit() {
    let dir = TempDir::new("roundtrip");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    s.assert_fact("r", &["abcab"]).unwrap();
    s.assert_fact("r", &["bc"]).unwrap();
    s.run().unwrap();
    s.retract_fact("r", &["bc"]).unwrap();
    s.assert_fact("r", &["ca"]).unwrap();
    s.run().unwrap();
    let live = state(&s);
    drop(s); // simulated clean exit; a kill leaves the same files
    let recovered = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    assert_eq!(state(&recovered), live);
    assert!(recovered.is_durable());
}

#[test]
fn recovery_resumes_pending_asserts_through_the_watermarks() {
    // Crash between an assert and its run: the recovered session must hold
    // the fact as *pending* and derive from it on the next run — the
    // watermark-restoration contract.
    let dir = TempDir::new("pending");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    s.assert_fact("r", &["cc"]).unwrap(); // never run before the "crash"
    drop(s);
    let mut recovered = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    recovered.run().unwrap();

    let mut oracle = open_durable(
        SRC,
        EvalConfig::default(),
        TempDir::new("pending-oracle").path(),
        Default::default(),
    );
    oracle.assert_fact("r", &["ab"]).unwrap();
    oracle.run().unwrap();
    oracle.assert_fact("r", &["cc"]).unwrap();
    oracle.run().unwrap();
    assert_eq!(state(&recovered), state(&oracle));
    assert!(recovered
        .query("t")
        .iter()
        .any(|t| t == &vec!["cc".to_string()]));
}

#[test]
fn torn_tail_is_truncated_to_the_last_complete_record() {
    let dir = TempDir::new("torn");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    let settled = state(&s);
    let settled_len = s.wal_len().unwrap();
    s.assert_fact("r", &["cccc"]).unwrap();
    drop(s);

    // Kill mid-append: cut the last record in half.
    let wal = dir.path().join(WAL_FILE);
    let bytes = fs::read(&wal).unwrap();
    let cut = settled_len as usize + (bytes.len() - settled_len as usize) / 2;
    fs::write(&wal, &bytes[..cut]).unwrap();

    let recovered = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    assert_eq!(state(&recovered), settled, "torn record must vanish whole");
    assert_eq!(
        fs::metadata(&wal).unwrap().len(),
        settled_len,
        "reopen must truncate the torn bytes away"
    );
}

#[test]
fn interior_corruption_is_a_recovery_error_not_a_truncation() {
    let dir = TempDir::new("interior");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    let first_len = {
        s.assert_fact("r", &["ab"]).unwrap();
        s.wal_len().unwrap()
    };
    s.run().unwrap();
    drop(s);

    // Remove every snapshot so recovery must replay from the log start —
    // then flip a byte inside the *first* record (interior, not tail).
    for entry in fs::read_dir(dir.path()).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("snap-") {
            fs::remove_file(entry.path()).unwrap();
        }
    }
    let wal = dir.path().join(WAL_FILE);
    let mut bytes = fs::read(&wal).unwrap();
    let mid = (WAL_HEADER_LEN as usize + first_len as usize) / 2;
    bytes[mid] ^= 0x01;
    fs::write(&wal, &bytes).unwrap();

    // No snapshot at all → recovery refuses outright (Mismatch); put back a
    // fresh empty-state snapshot by re-creating the scenario instead: with
    // the corrupt record interior and no usable snapshot the error must be
    // a clean RecoveryError either way, never a panic or a silent model.
    match try_open_durable(SRC, EvalConfig::default(), dir.path(), Default::default()) {
        Err(EvalError::Recovery(RecoveryError::Corrupt { .. }))
        | Err(EvalError::Recovery(RecoveryError::Mismatch { .. })) => {}
        other => panic!(
            "expected a clean recovery error, got {:?}",
            other.map(|_| "a recovered session")
        ),
    }
}

#[test]
fn interior_corruption_with_a_valid_snapshot_is_corrupt() {
    // Same flip, snapshots left in place: the reader still walks the whole
    // log and must report the interior CRC failure as corruption rather
    // than truncating committed history at the flipped record.
    let dir = TempDir::new("interior2");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    let first_len = {
        s.assert_fact("r", &["ab"]).unwrap();
        s.wal_len().unwrap()
    };
    s.run().unwrap();
    drop(s);
    let wal = dir.path().join(WAL_FILE);
    let mut bytes = fs::read(&wal).unwrap();
    let mid = (WAL_HEADER_LEN as usize + first_len as usize) / 2;
    bytes[mid] ^= 0x01;
    fs::write(&wal, &bytes).unwrap();
    match try_open_durable(SRC, EvalConfig::default(), dir.path(), Default::default()) {
        Err(EvalError::Recovery(RecoveryError::Corrupt { .. })) => {}
        other => panic!(
            "expected Corrupt, got {:?}",
            other.map(|_| "a recovered session")
        ),
    }
}

#[test]
fn snapshot_corruption_falls_back_to_an_older_snapshot() {
    let dir = TempDir::new("snapfall");
    let opts = DurabilityOptions {
        snapshot_every: 1, // snapshot after every record
        ..Default::default()
    };
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), opts.clone());
    s.assert_fact("r", &["abc"]).unwrap();
    s.run().unwrap();
    let live = state(&s);
    drop(s);

    // Corrupt the *newest* snapshot; recovery must fall back to an older
    // one and make up the difference by replaying more of the log.
    let mut snaps: Vec<PathBuf> = fs::read_dir(dir.path())
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .unwrap()
                .to_string_lossy()
                .starts_with("snap-")
        })
        .collect();
    snaps.sort();
    assert!(snaps.len() >= 2, "cadence 1 must leave several snapshots");
    let newest = snaps.last().unwrap();
    let mut bytes = fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(newest, &bytes).unwrap();

    let recovered = open_durable(SRC, EvalConfig::default(), dir.path(), opts);
    assert_eq!(state(&recovered), live);
}

#[test]
fn crash_inside_the_header_is_a_clean_error() {
    // A kill during make_durable itself: less than a full header on disk.
    let dir = TempDir::new("header");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    s.assert_fact("r", &["ab"]).unwrap();
    drop(s);
    let wal = dir.path().join(WAL_FILE);
    let bytes = fs::read(&wal).unwrap();
    fs::write(&wal, &bytes[..(WAL_HEADER_LEN as usize) / 2]).unwrap();
    match try_open_durable(SRC, EvalConfig::default(), dir.path(), Default::default()) {
        Err(EvalError::Recovery(RecoveryError::Corrupt { .. })) => {}
        other => panic!(
            "expected Corrupt for a torn header, got {:?}",
            other.map(|_| "a recovered session")
        ),
    }
}

#[test]
fn poisoned_session_recovers_with_raised_budgets() {
    // Satellite (a): EvalError::Poisoned is no longer terminal for durable
    // sessions. Poison via a mid-run Facts budget, raise the budget, and
    // recover(): the replayed history now completes and the session serves.
    let dir = TempDir::new("poison");
    let config = EvalConfig {
        max_facts: 4,
        ..EvalConfig::default()
    };
    let mut s = open_durable(
        "p(X) :- r(X).\npair(X, Y) :- p(X), p(Y).",
        config,
        dir.path(),
        Default::default(),
    );
    s.assert_fact("r", &["a"]).unwrap();
    s.assert_fact("r", &["b"]).unwrap();
    match s.run() {
        Err(EvalError::Budget { kind, .. }) => assert_eq!(kind, BudgetKind::Facts),
        other => panic!("expected Facts budget poisoning, got {other:?}"),
    }
    assert!(s.is_poisoned());
    assert!(matches!(
        s.assert_fact("r", &["c"]),
        Err(EvalError::Poisoned { .. })
    ));

    s.config_mut().max_facts = 1_000_000;
    let stats = s.recover().unwrap();
    assert!(!s.is_poisoned());
    assert!(stats.facts >= 8, "2 base + 2 p + 4 pair");

    // The recovered state equals a fresh evaluation of the same history.
    let oracle_dir = TempDir::new("poison-oracle");
    let mut oracle = open_durable(
        "p(X) :- r(X).\npair(X, Y) :- p(X), p(Y).",
        EvalConfig::default(),
        oracle_dir.path(),
        Default::default(),
    );
    oracle.assert_fact("r", &["a"]).unwrap();
    oracle.assert_fact("r", &["b"]).unwrap();
    oracle.run().unwrap();
    assert_eq!(state(&s), state(&oracle));

    // And the session is truly live again.
    s.assert_fact("r", &["c"]).unwrap();
    s.run().unwrap();
    assert_eq!(s.query("pair").len(), 9);
}

#[test]
fn recover_without_raising_budgets_truncates_the_poisoned_tail() {
    // If the failure is deterministic and the caller recovers without
    // changing anything, the failing final record is dropped: the session
    // returns to the last healthy state (pending asserts included).
    let dir = TempDir::new("poison-trunc");
    let config = EvalConfig {
        max_facts: 4,
        ..EvalConfig::default()
    };
    let mut s = open_durable(
        "p(X) :- r(X).\npair(X, Y) :- p(X), p(Y).",
        config,
        dir.path(),
        Default::default(),
    );
    s.assert_fact("r", &["a"]).unwrap();
    s.assert_fact("r", &["b"]).unwrap();
    let records_before_run = s.durable_records().unwrap();
    assert!(s.run().is_err());
    assert!(s.is_poisoned());
    s.recover().unwrap();
    assert!(!s.is_poisoned());
    assert_eq!(
        s.durable_records().unwrap(),
        records_before_run,
        "the failing Run record must be truncated away"
    );
    // Both asserts survive as pending facts.
    assert_eq!(s.query("r").len(), 2);
}

#[test]
fn recover_on_a_non_durable_session_is_an_error() {
    let mut e = Engine::new();
    let p = e.parse_program(SRC).unwrap();
    let mut s = e.into_session(&p, EvalConfig::default()).unwrap();
    assert!(matches!(
        s.recover(),
        Err(EvalError::Recovery(RecoveryError::Mismatch { .. }))
    ));
}

#[test]
fn budget_refused_assert_is_compensated_and_replays_as_a_noop() {
    let dir = TempDir::new("abort");
    let config = EvalConfig {
        max_seq_len: 4,
        ..EvalConfig::default()
    };
    let mut s = open_durable(SRC, config, dir.path(), Default::default());
    s.assert_fact("r", &["ab"]).unwrap();
    // Refused (SeqLen) *after* logging on the ids route is impossible —
    // string asserts check before logging — so provoke a Facts refusal,
    // which happens after the record is appended.
    let config2 = EvalConfig {
        max_facts: 1,
        ..EvalConfig::default()
    };
    *s.config_mut() = config2;
    let records_before = s.durable_records().unwrap();
    assert!(matches!(
        s.assert_fact("r", &["cd"]),
        Err(EvalError::Budget { .. })
    ));
    assert!(!s.is_poisoned(), "budget refusal must not poison");
    assert_eq!(
        s.durable_records().unwrap(),
        records_before + 2,
        "refused assert leaves record + Abort compensation"
    );
    let live = state(&s);
    drop(s);
    let recovered = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    assert_eq!(state(&recovered), live);
    assert_eq!(
        recovered.query("r").len(),
        1,
        "refused fact must not replay"
    );
}

#[test]
fn checkpoint_and_compact_preserve_state_and_bound_the_log() {
    let dir = TempDir::new("compact");
    let opts = DurabilityOptions {
        snapshot_every: 0, // manual checkpoints only
        ..Default::default()
    };
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), opts.clone());
    for w in ["ab", "bc", "cab"] {
        s.assert_fact("r", &[w]).unwrap();
    }
    s.run().unwrap();
    s.checkpoint().unwrap();
    let records = s.durable_records().unwrap();
    assert!(s.wal_len().unwrap() > WAL_HEADER_LEN);
    s.compact().unwrap();
    assert_eq!(
        s.wal_len().unwrap(),
        WAL_HEADER_LEN,
        "compaction empties the log"
    );
    assert_eq!(s.durable_records().unwrap(), records);
    let live = state(&s);
    // Post-compaction mutations land in the fresh log...
    s.assert_fact("r", &["cc"]).unwrap();
    s.run().unwrap();
    let after = state(&s);
    assert_ne!(after, live);
    drop(s);
    // ...and recovery over snapshot + compacted log reproduces everything.
    let recovered = open_durable(SRC, EvalConfig::default(), dir.path(), opts);
    assert_eq!(state(&recovered), after);
}

#[test]
fn clone_detaches_durability() {
    let dir = TempDir::new("clone");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    s.assert_fact("r", &["ab"]).unwrap();
    let mut c = s.clone();
    assert!(!c.is_durable(), "clones must not share the log");
    assert!(s.is_durable());
    let len_before = s.wal_len().unwrap();
    c.assert_fact("r", &["zz"]).unwrap(); // clone mutations are not logged
    assert_eq!(s.wal_len().unwrap(), len_before);
    s.assert_fact("r", &["cd"]).unwrap(); // original keeps logging
    assert!(s.wal_len().unwrap() > len_before);
}

#[test]
fn make_durable_refuses_an_existing_log_and_double_attachment() {
    let dir = TempDir::new("attach");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    assert!(matches!(
        s.make_durable(dir.path(), Default::default()),
        Err(EvalError::Recovery(RecoveryError::Mismatch { .. }))
    ));
    drop(s);
    let mut e = Engine::new();
    let p = e.parse_program(SRC).unwrap();
    let mut fresh = e.into_session(&p, EvalConfig::default()).unwrap();
    assert!(matches!(
        fresh.make_durable(dir.path(), Default::default()),
        Err(EvalError::Recovery(RecoveryError::Mismatch { .. }))
    ));
}

#[test]
fn recovery_against_a_mismatched_program_is_refused() {
    // The persisted predicate table must extend the opening program's; a
    // directory written under a different program is rejected, not mangled.
    let dir = TempDir::new("mismatch");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    s.assert_fact("r", &["ab"]).unwrap();
    s.run().unwrap();
    drop(s);
    let other = "zzz(X, Y) :- qqq(X), qqq(Y).";
    match try_open_durable(other, EvalConfig::default(), dir.path(), Default::default()) {
        Err(EvalError::Recovery(RecoveryError::Mismatch { .. })) => {}
        other => panic!(
            "expected Mismatch, got {:?}",
            other.map(|_| "a recovered session")
        ),
    }
}

#[test]
fn ids_route_asserts_and_retracts_replay_identically() {
    // assert_seq is interner-only (not logged); the ids-route assert and
    // retract must log logical records that replay to the same state.
    let dir = TempDir::new("ids");
    let mut s = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    let id = s.assert_seq("abca").unwrap();
    s.assert_fact_ids("r", &[id]).unwrap();
    let id2 = s.assert_seq("bb").unwrap();
    s.assert_fact_ids("r", &[id2]).unwrap();
    s.run().unwrap();
    s.retract_fact_ids("r", &[id2]).unwrap();
    let live = state(&s);
    drop(s);
    let recovered = open_durable(SRC, EvalConfig::default(), dir.path(), Default::default());
    assert_eq!(state(&recovered), live);
}
