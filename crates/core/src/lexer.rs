//! Lexer for the concrete Sequence Datalog syntax.
//!
//! The syntax is Prolog-flavoured:
//!
//! ```text
//! % Example 1.1 — all suffixes of sequences in r
//! suffix(X[N:end]) :- r(X).
//! % Example 1.2 — all pairwise concatenations ('•' is written '++')
//! answer(X ++ Y) :- r(X), r(Y).
//! % Transducer Datalog (Example 7.1): transducer terms are '@name(…)'
//! rnaseq(D, @transcribe(D)) :- dnaseq(D).
//! ```
//!
//! Identifiers starting with an uppercase letter are variables; string
//! literals are constant sequences (one symbol per character); `%` starts a
//! line comment.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Lowercase-initial identifier (predicate / transducer name, `end`,
    /// `true`).
    Ident(String),
    /// Uppercase-initial identifier (variable).
    Var(String),
    /// Integer literal.
    Int(i64),
    /// String literal (constant sequence), unescaped.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:` (inside indexed terms)
    Colon,
    /// `:-`
    Implies,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `++`
    Concat,
    /// `@`
    At,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Var(s) => write!(f, "variable `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::Str(s) => write!(f, "string \"{s}\""),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Implies => write!(f, "`:-`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Neq => write!(f, "`!=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Concat => write!(f, "`++`"),
            Tok::At => write!(f, "`@`"),
        }
    }
}

/// A token plus its source position (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

/// A lexing error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub msg: String,
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        let (tline, tcol) = (line, col);
        let Some(c) = chars.peek().copied() else {
            break;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '%' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '(' | ')' | '[' | ']' | ',' | '.' | '=' | '-' | '@' => {
                bump!();
                let tok = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    '.' => Tok::Dot,
                    '=' => Tok::Eq,
                    '-' => Tok::Minus,
                    _ => Tok::At,
                };
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            ':' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Implies,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Colon,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            '+' => {
                bump!();
                if chars.peek() == Some(&'+') {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Concat,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Plus,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Neq,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    return Err(LexError {
                        msg: "expected `=` after `!`".into(),
                        line: tline,
                        col: tcol,
                    });
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some(c) => s.push(c),
                        None => {
                            return Err(LexError {
                                msg: "unterminated string literal".into(),
                                line: tline,
                                col: tcol,
                            })
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(i64::from(v)))
                            .ok_or(LexError {
                                msg: "integer literal overflow".into(),
                                line: tline,
                                col: tcol,
                            })?;
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Int(n),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                let tok = if s.chars().next().is_some_and(char::is_uppercase) {
                    Tok::Var(s)
                } else {
                    Tok::Ident(s)
                };
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                return Err(LexError {
                    msg: format!("unexpected character `{other}`"),
                    line: tline,
                    col: tcol,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_a_rule() {
        assert_eq!(
            toks("suffix(X[N:end]) :- r(X)."),
            vec![
                Tok::Ident("suffix".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::LBracket,
                Tok::Var("N".into()),
                Tok::Colon,
                Tok::Ident("end".into()),
                Tok::RBracket,
                Tok::RParen,
                Tok::Implies,
                Tok::Ident("r".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn distinguishes_plus_and_concat() {
        assert_eq!(
            toks("X[N+1] ++ Y"),
            vec![
                Tok::Var("X".into()),
                Tok::LBracket,
                Tok::Var("N".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::RBracket,
                Tok::Concat,
                Tok::Var("Y".into()),
            ]
        );
    }

    #[test]
    fn lexes_strings_and_comments() {
        assert_eq!(
            toks("r(\"abc\"). % a fact\nq(\"\")."),
            vec![
                Tok::Ident("r".into()),
                Tok::LParen,
                Tok::Str("abc".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Ident("q".into()),
                Tok::LParen,
                Tok::Str("".into()),
                Tok::RParen,
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn lexes_transducer_terms_and_neq() {
        assert_eq!(
            toks("p(@t(X)) :- q(X), X != \"a\"."),
            vec![
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::At,
                Tok::Ident("t".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::RParen,
                Tok::Implies,
                Tok::Ident("q".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Comma,
                Tok::Var("X".into()),
                Tok::Neq,
                Tok::Str("a".into()),
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn reports_positions() {
        let err = lex("p(X) :- \n  ?").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 3);
    }

    #[test]
    fn rejects_lone_bang() {
        assert!(lex("X ! Y").is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("r(\"abc").is_err());
    }
}
