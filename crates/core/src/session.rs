//! Persistent evaluation sessions: a serving-shaped wrapper around the
//! resumable fixpoint.
//!
//! Batch evaluation ([`crate::eval::evaluate`]) recomputes `lfp(T_{P,db})`
//! from scratch on every call. Under continuously arriving base facts that
//! is the dominant cost: the least fixpoint is *monotone* in the database
//! (Definitions 2–3 — `T_{P,db}` only grows when `db` grows), so a model
//! computed once can be extended by resuming the semi-naive round loop from
//! exactly the newly inserted tuples. [`EngineSession`] packages that:
//!
//! * it **owns** the compiled program, the sequence interners, the
//!   transducer registry, and the [`Fixpoint`] state (facts + extended
//!   active domain + cumulative [`EvalStats`]);
//! * [`assert_fact`](EngineSession::assert_fact) /
//!   [`assert_db`](EngineSession::assert_db) insert base facts *after* a
//!   fixpoint has been reached — window-closure of the new constants
//!   happens at assert time, mirroring the evaluator's pre-closing of
//!   program constants — and the next [`run`](EngineSession::run) resumes
//!   with those facts as the semi-naive delta;
//! * [`retract_fact`](EngineSession::retract_fact) /
//!   [`retract_db`](EngineSession::retract_db) **remove** base facts and
//!   immediately restore the least fixpoint of the surviving database by
//!   Delete-and-Rederive ([`Fixpoint::retract_facts`]) — the non-monotone
//!   half of the update surface;
//! * [`query`](EngineSession::query) / [`answers`](EngineSession::answers) /
//!   [`snapshot`](EngineSession::snapshot) read the current interpretation
//!   between updates.
//!
//! # Equivalence with batch evaluation
//!
//! For any split of a database into batches, asserting the batches in order
//! with a `run` after each yields the **same extents** as one batch
//! evaluation of the union — and, like batch evaluation, the result is
//! bit-for-bit identical for every `EvalConfig::threads` setting. (The
//! per-relation *insertion order* may differ from the batch order, because
//! facts settle in arrival order; set-level extents are identical. This is
//! differentially fuzzed in `tests/fuzz_differential.rs` and checked for
//! every paper example in `tests/paper_examples.rs`.)
//!
//! # Retraction
//!
//! Sessions distinguish **base facts** (asserted through this API, or
//! seeded from a database) from **derived facts**. Only base facts can be
//! retracted; derived facts disappear exactly when they lose all base
//! support. After any `retract_*` call that **takes effect** (returns
//! `true`, or a positive count), the session is settled at
//! `lfp(T_{P,db'})` for the surviving base set `db'` — bit-for-bit equal
//! across thread counts, and extent-equal to a fresh batch evaluation of
//! the survivors (the differential oracle in `tests/fuzz_differential.rs`).
//! Deletion under recursion is where naive implementations go wrong, so the
//! engine uses Delete-and-Rederive with an explicit *domain shrinkage* pass:
//! the extended active domain is a function of the interpretation
//! (Definition 4), so when the facts that introduced a sequence are
//! retracted, domain-sensitive clauses such as `pair(X, X) :- true.` must
//! lose the instantiations those sequences justified. See
//! [`Fixpoint::retract_facts`] for the four DRed passes. Retracting a fact
//! that is not a base fact — including a typo, an unknown predicate, or a
//! derived-only fact — is a **no-op**: it returns `false`/count `0`, never
//! interns anything, and leaves the session exactly as it was — including
//! any pending (un-run) asserts, which stay pending until the next
//! [`run`](EngineSession::run) or effective retraction.
//!
//! An effective retraction settles eagerly (it behaves like an implicit
//! [`run`](EngineSession::run), processing any pending asserts too): a
//! half-maintained interpretation would serve wrong answers, so there is no
//! "retract now, re-derive later" mode.
//!
//! # Budgets are exact on the update surface
//!
//! An assert that would push the state past `max_facts` or `max_domain` is
//! **refused before it applies**: the fact (and any partial window closure)
//! is rolled back, the error reports the would-be stats, and the session
//! stays healthy — so an accepted assert can never make the next `run` fail
//! its entry budget check. Batch asserts
//! ([`assert_facts`](EngineSession::assert_facts) /
//! [`assert_db`](EngineSession::assert_db)) are **failure-atomic**: on a
//! mid-batch rejection every fact of the batch is rolled back and the
//! pre-call state is restored exactly. (The commit phase of a `run` keeps
//! its documented behavior: it stops — and poisons — one fact past the
//! budget; the poisoned state is the diagnostic artifact.) Oversized
//! sequences are still rejected eagerly, before the quadratic window
//! closure. Budget refusals never poison. Refused asserts may leave
//! sequences in the append-only interner; the interner is not part of the
//! interpretation, so this is unobservable through the query API.
//!
//! # Predicates outside the compiled program
//!
//! `assert_*` **allows** predicates the program never mentions: they intern
//! fresh `PredId`s past the compiled table and become inert relations — no
//! clause consumes them, but they are queryable, contribute their sequences
//! to the extended active domain, and are retractable like any base fact.
//! (This mirrors batch evaluation, which seeds database-only predicates the
//! same way.) The read/retract surface (`query`, `relation`, `pred_id`,
//! `retract_*`) never interns: an unknown name is simply absent.
//!
//! # Error handling: sessions poison
//!
//! If a `run` fails — a budget exhausts mid-commit, a transducer gets stuck
//! — the session's state is a partially committed round: still a *sound*
//! under-approximation (every fact in it is derivable), but not a fixpoint.
//! The session then **poisons**: every later `assert_*`/`retract_*`/`run`
//! returns [`EvalError::Poisoned`] wrapping the original error, while the
//! read API (`query`/`snapshot`/`stats`) stays available for post-mortem
//! inspection. A failed **retraction** poisons identically, with one
//! honest difference in the post-mortem state: an interrupted
//! Delete-and-Rederive may leave facts whose base support is already gone,
//! i.e. an *over*-approximation of the new fixpoint (the retraction did not
//! finish taking effect). Callers that want to retry with larger budgets
//! re-evaluate from scratch; keeping recovery out of scope keeps the
//! equivalence guarantee above simple to state and test.

use crate::ast::Program;
use crate::compile::{compile, CompiledProgram, PredId};
use crate::database::Database;
use crate::engine::Engine;
use crate::eval::interp::Relation;
use crate::eval::{AssertOutcome, BudgetKind, EvalConfig, EvalError, EvalStats, Fixpoint, Model};
use crate::registry::TransducerRegistry;
use seqlog_sequence::{Alphabet, DomainMark, SeqId, SeqStore};

/// A persistent evaluation session over one compiled program.
///
/// Create one with [`Engine::into_session`] (the session takes ownership of
/// the engine's interners and registry). See the [module docs](self) for
/// the update/query protocol and the poisoning contract.
#[derive(Clone)]
pub struct EngineSession {
    alphabet: Alphabet,
    store: SeqStore,
    registry: TransducerRegistry,
    program: CompiledProgram,
    config: EvalConfig,
    fx: Fixpoint,
    poisoned: Option<EvalError>,
}

impl EngineSession {
    /// Open a session: compile `program`, window-close its constants, and
    /// take ownership of `engine`'s alphabet, store, and registry. No
    /// evaluation happens yet — call [`run`](EngineSession::run) after the
    /// first asserts (or immediately, to settle a program with ground
    /// clauses and no base facts).
    pub fn open(engine: Engine, program: &Program, config: EvalConfig) -> Result<Self, EvalError> {
        let compiled = compile(program)?;
        let Engine {
            alphabet,
            mut store,
            registry,
        } = engine;
        for id in compiled.constants() {
            store.close_windows(id);
        }
        let fx = Fixpoint::new(&compiled);
        Ok(Self {
            alphabet,
            store,
            registry,
            program: compiled,
            config,
            fx,
            poisoned: None,
        })
    }

    fn guard_poison(&self) -> Result<(), EvalError> {
        match &self.poisoned {
            Some(original) => Err(EvalError::Poisoned {
                original: Box::new(original.clone()),
            }),
            None => Ok(()),
        }
    }

    /// Eager `max_seq_len` enforcement on the assert path: domain closure
    /// interns O(len²) windows, so an oversized input must be rejected
    /// *before* closure, not discovered by the next run's budget check.
    /// Rejection does **not** poison — the interpretation is untouched and
    /// the session keeps serving (batch evaluation, by contrast, only
    /// discovers oversized database sequences at run time).
    fn check_seq_budget(&self, id: SeqId) -> Result<(), EvalError> {
        let len = self.store.len_of(id);
        if len > self.config.max_seq_len {
            let mut stats = self.fx.stats();
            stats.max_seq_len = stats.max_seq_len.max(len);
            return Err(EvalError::Budget {
                kind: BudgetKind::SeqLen,
                stats,
            });
        }
        Ok(())
    }

    /// Intern string arguments as a tuple, enforcing `max_seq_len` eagerly.
    fn intern_tuple(&mut self, args: &[&str]) -> Result<Vec<SeqId>, EvalError> {
        let mut tuple: Vec<SeqId> = Vec::with_capacity(args.len());
        for s in args {
            let syms = self.alphabet.seq_of_str(s);
            let id = self.store.intern_vec(syms);
            self.check_seq_budget(id)?;
            tuple.push(id);
        }
        Ok(tuple)
    }

    /// One assert with **exact** cumulative-budget enforcement: a fact that
    /// would push the state past `max_facts` or `max_domain` is refused
    /// with the interpretation restored to exactly its pre-call state
    /// (fact, base record, and partial window closure all rolled back).
    /// The reported stats are the would-be (peak) stats, so the caller sees
    /// what tripped. Duplicate asserts never grow the state and are always
    /// admitted (they still record base status for retraction). Refusal
    /// does not poison.
    fn assert_ids_exact(
        &mut self,
        pid: PredId,
        tuple: Box<[SeqId]>,
    ) -> Result<AssertOutcome, EvalError> {
        for &id in tuple.iter() {
            self.check_seq_budget(id)?;
        }
        if self.fx.facts().contains_id(pid, &tuple) {
            return Ok(self.fx.assert_fact_full(&mut self.store, pid, tuple));
        }
        let stats = self.fx.stats();
        if stats.facts + 1 > self.config.max_facts {
            let mut peak = stats;
            peak.facts += 1;
            return Err(EvalError::Budget {
                kind: BudgetKind::Facts,
                stats: peak,
            });
        }
        let dmark = self.fx.domain_mark();
        let outcome = self
            .fx
            .assert_fact_full(&mut self.store, pid, tuple.clone());
        debug_assert!(outcome.new_fact, "absent fact must insert");
        if self.fx.domain().len() > self.config.max_domain {
            let peak = self.fx.stats();
            self.fx.unassert_pending(pid, &tuple, outcome.new_base);
            self.fx.compact_pending();
            self.fx.domain_truncate(&self.store, dmark);
            return Err(EvalError::Budget {
                kind: BudgetKind::DomainSize,
                stats: peak,
            });
        }
        Ok(outcome)
    }

    /// Reverse a prefix of a failed batch assert (newest first), restoring
    /// the exact pre-batch state. Removals tombstone; one compaction pass
    /// at the end settles the whole rollback, however large the batch.
    fn rollback_asserts(
        &mut self,
        applied: &[(PredId, Box<[SeqId]>, AssertOutcome)],
        dmark: DomainMark,
    ) {
        for (pid, tuple, outcome) in applied.iter().rev() {
            if outcome.new_fact {
                self.fx.unassert_pending(*pid, tuple, outcome.new_base);
            } else if outcome.new_base {
                self.fx.drop_base_record(*pid, tuple);
            }
        }
        self.fx.compact_pending();
        self.fx.domain_truncate(&self.store, dmark);
    }

    /// Intern `text` as a sequence and window-close it, so it can serve as
    /// an indexed base as soon as it reaches the matcher. Use with
    /// [`assert_fact_ids`](EngineSession::assert_fact_ids) to build tuples
    /// without going through string arguments twice. Like every `assert_*`,
    /// refused on a poisoned session (the update surface closes uniformly)
    /// and on sequences longer than `max_seq_len` (rejected before the
    /// quadratic window closure; the session stays healthy).
    pub fn assert_seq(&mut self, text: &str) -> Result<SeqId, EvalError> {
        self.guard_poison()?;
        let syms = self.alphabet.seq_of_str(text);
        let id = self.store.intern_vec(syms);
        self.check_seq_budget(id)?;
        self.store.close_windows(id);
        Ok(id)
    }

    /// Assert one base fact with string arguments. Returns `true` when the
    /// fact is new; new facts become the next [`run`](EngineSession::run)'s
    /// semi-naive delta. Duplicate asserts never grow the interpretation
    /// (but still mark the fact as *base*, so it survives retraction of its
    /// other derivations); arguments longer than `max_seq_len` and facts
    /// that would exceed `max_facts`/`max_domain` are refused eagerly and
    /// exactly (state untouched, session not poisoned).
    pub fn assert_fact(&mut self, pred: &str, args: &[&str]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        let tuple = self.intern_tuple(args)?;
        let pid = self.fx.pred_id(pred);
        Ok(self.assert_ids_exact(pid, tuple.into())?.new_fact)
    }

    /// Assert a batch of string-argument facts; returns how many were new.
    ///
    /// **Failure-atomic**: if any fact of the batch is refused (budget) the
    /// whole batch rolls back and the session state is exactly what it was
    /// before the call; on a poisoned session nothing is applied either.
    pub fn assert_facts(&mut self, facts: &[(&str, &[&str])]) -> Result<usize, EvalError> {
        self.guard_poison()?;
        let dmark = self.fx.domain_mark();
        let mut applied: Vec<(PredId, Box<[SeqId]>, AssertOutcome)> = Vec::new();
        let mut added = 0;
        for (pred, args) in facts {
            let step = self.intern_tuple(args).and_then(|tuple| {
                let pid = self.fx.pred_id(pred);
                self.assert_batch_step(pid, tuple.into(), &mut applied)
            });
            match step {
                Ok(n) => added += n,
                Err(e) => {
                    self.rollback_asserts(&applied, dmark);
                    return Err(e);
                }
            }
        }
        Ok(added)
    }

    /// One entry of an atomic batch: apply the assert with exact budgets
    /// and record what it changed in `applied`, so a later
    /// [`rollback_asserts`](EngineSession::rollback_asserts) can reverse
    /// it. Returns 1 when the fact was new. The single place the batch
    /// bookkeeping condition lives — `assert_facts` and `assert_db` both
    /// route through it.
    fn assert_batch_step(
        &mut self,
        pid: PredId,
        tuple: Box<[SeqId]>,
        applied: &mut Vec<(PredId, Box<[SeqId]>, AssertOutcome)>,
    ) -> Result<usize, EvalError> {
        let outcome = self.assert_ids_exact(pid, tuple.clone())?;
        if outcome.new_fact || outcome.new_base {
            applied.push((pid, tuple, outcome));
        }
        Ok(usize::from(outcome.new_fact))
    }

    /// Assert one base fact over already-interned sequences (ids must come
    /// from this session's store — e.g. from
    /// [`assert_seq`](EngineSession::assert_seq), or from the owning
    /// [`Engine`] before [`Engine::into_session`]). Budgets are enforced
    /// exactly, as in [`assert_fact`](EngineSession::assert_fact).
    pub fn assert_fact_ids(&mut self, pred: &str, tuple: &[SeqId]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        let pid = self.fx.pred_id(pred);
        Ok(self.assert_ids_exact(pid, tuple.into())?.new_fact)
    }

    /// Assert every fact of `db` (built against this session's store);
    /// returns how many were new. **Failure-atomic**, like
    /// [`assert_facts`](EngineSession::assert_facts).
    pub fn assert_db(&mut self, db: &Database) -> Result<usize, EvalError> {
        self.guard_poison()?;
        let dmark = self.fx.domain_mark();
        let mut applied: Vec<(PredId, Box<[SeqId]>, AssertOutcome)> = Vec::new();
        let mut added = 0;
        for (pred, tuple) in db.iter() {
            let pid = self.fx.pred_id(pred);
            match self.assert_batch_step(pid, tuple.into(), &mut applied) {
                Ok(n) => added += n,
                Err(e) => {
                    self.rollback_asserts(&applied, dmark);
                    return Err(e);
                }
            }
        }
        Ok(added)
    }

    /// Retract one base fact with string arguments; returns `true` when the
    /// fact was a base fact and has been retracted. Non-base facts
    /// (derived-only, unknown predicate, never-interned arguments) are
    /// **no-ops** returning `false`: nothing is interned, and the session
    /// state — pending asserts included — is left exactly as it was.
    ///
    /// When the retraction takes effect the session is **settled**: the
    /// interpretation equals a fresh batch evaluation of the surviving base
    /// facts (pending asserts included), maintained incrementally by
    /// Delete-and-Rederive — see the [module docs](self) and
    /// [`Fixpoint::retract_facts`]. On failure the session poisons, exactly
    /// like [`run`](EngineSession::run).
    pub fn retract_fact(&mut self, pred: &str, args: &[&str]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        let Some(pid) = self.fx.facts().lookup_pred(pred) else {
            return Ok(false);
        };
        let Some(tuple) = self.lookup_tuple(args) else {
            return Ok(false);
        };
        self.retract_ids_batch(vec![(pid, tuple.into())])
            .map(|n| n > 0)
    }

    /// Resolve string arguments to interned ids **without interning**
    /// anything (not even alphabet symbols): `None` when some argument was
    /// never interned, in which case no such fact can exist.
    fn lookup_tuple(&self, args: &[&str]) -> Option<Vec<SeqId>> {
        let mut tuple: Vec<SeqId> = Vec::with_capacity(args.len());
        for s in args {
            let syms = self.alphabet.lookup_seq_of_str(s)?;
            tuple.push(self.store.lookup(&syms)?);
        }
        Some(tuple)
    }

    /// [`retract_fact`](EngineSession::retract_fact) over already-interned
    /// sequences.
    pub fn retract_fact_ids(&mut self, pred: &str, tuple: &[SeqId]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        let Some(pid) = self.fx.facts().lookup_pred(pred) else {
            return Ok(false);
        };
        self.retract_ids_batch(vec![(pid, tuple.into())])
            .map(|n| n > 0)
    }

    /// Retract every fact of `db` in one Delete-and-Rederive maintenance
    /// pass; returns how many were base facts (and are now gone). Unknown
    /// predicates and non-base facts are skipped; if nothing qualifies the
    /// call is a pure no-op (count `0`, session untouched).
    pub fn retract_db(&mut self, db: &Database) -> Result<usize, EvalError> {
        self.guard_poison()?;
        let mut batch: Vec<(PredId, Box<[SeqId]>)> = Vec::new();
        for (pred, tuple) in db.iter() {
            if let Some(pid) = self.fx.facts().lookup_pred(pred) {
                batch.push((pid, tuple.into()));
            }
        }
        self.retract_ids_batch(batch)
    }

    /// True when the session knows `pred(args…)` as a *base* fact (i.e. a
    /// retraction of it would take effect). Read-only: interns nothing.
    pub fn is_base_fact(&self, pred: &str, args: &[&str]) -> bool {
        let Some(pid) = self.fx.facts().lookup_pred(pred) else {
            return false;
        };
        match self.lookup_tuple(args) {
            Some(tuple) => self.fx.is_base_fact(pid, &tuple),
            None => false,
        }
    }

    /// Run one retraction maintenance pass, poisoning on failure (the same
    /// discipline as [`run`](EngineSession::run)).
    fn retract_ids_batch(
        &mut self,
        batch: Vec<(PredId, Box<[SeqId]>)>,
    ) -> Result<usize, EvalError> {
        match self.fx.retract_facts(
            &self.program,
            &mut self.store,
            &self.registry,
            &self.config,
            &batch,
        ) {
            Ok(n) => Ok(n),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Resume the fixpoint over everything asserted since the last run.
    /// Returns the cumulative statistics on success. On failure the error
    /// is returned **and the session poisons** (see the module docs);
    /// `max_rounds` is a per-run budget, the size budgets are cumulative.
    pub fn run(&mut self) -> Result<EvalStats, EvalError> {
        self.guard_poison()?;
        match self
            .fx
            .run(&self.program, &mut self.store, &self.registry, &self.config)
        {
            Ok(()) => Ok(self.fx.stats()),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Rendered tuples of `pred` in insertion order (empty when absent).
    /// Reflects the state as of the last `run` plus any raw asserts since.
    pub fn query(&self, pred: &str) -> Vec<Vec<String>> {
        match self.fx.facts().relation_named(pred) {
            None => Vec::new(),
            Some(rel) => rel
                .iter()
                .map(|t| t.iter().map(|&id| self.render(id)).collect())
                .collect(),
        }
    }

    /// Rendered, sorted, deduplicated single-column answers for `pred`
    /// (the `output(Y)` convention of Definition 5).
    pub fn answers(&self, pred: &str) -> Vec<String> {
        let mut out: Vec<String> = match self.fx.facts().relation_named(pred) {
            None => Vec::new(),
            Some(rel) => rel
                .iter()
                .filter(|t| t.len() == 1)
                .map(|t| self.render(t[0]))
                .collect(),
        };
        out.sort();
        out.dedup();
        out
    }

    /// The raw relation of `pred`, if present.
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.fx.facts().relation_named(pred)
    }

    /// A [`Model`] clone of the current interpretation (facts, extended
    /// active domain, finalized cumulative stats).
    pub fn snapshot(&self) -> Model {
        self.fx.snapshot()
    }

    /// Cumulative statistics (finalized against the current state).
    pub fn stats(&self) -> EvalStats {
        self.fx.stats()
    }

    /// Render an interned sequence back to a string.
    pub fn render(&self, id: SeqId) -> String {
        self.alphabet.render(self.store.get(id))
    }

    /// The interned id of `pred`, if it occurs in the program or has been
    /// asserted.
    pub fn pred_id(&self, pred: &str) -> Option<PredId> {
        self.fx.facts().lookup_pred(pred)
    }

    /// Every predicate this session knows, in `PredId` order: the compiled
    /// program's predicates followed by any asserted-only ones.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.fx.facts().predicates()
    }

    /// The compiled program this session serves.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The evaluation configuration (mutable: budgets and thread count may
    /// be adjusted between runs; determinism holds for any `threads`).
    pub fn config_mut(&mut self) -> &mut EvalConfig {
        &mut self.config
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// True when a failed run has poisoned the session.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// The error that poisoned the session, if any.
    pub fn poison(&self) -> Option<&EvalError> {
        self.poisoned.as_ref()
    }

    /// Verify the settled state is a model of `P ∪ db` (Lemma 4): one
    /// T-application over the current interpretation must derive nothing
    /// outside it ([`crate::model::closed_under_tp`]; the base facts are
    /// part of the interpretation by construction, so `db ⊆ I` needs no
    /// separate check). Diagnostic — a successful
    /// [`run`](EngineSession::run) guarantees this; a poisoned session
    /// typically fails it. Deliberately available on poisoned sessions:
    /// the T-application may grow the append-only interner, but it never
    /// changes the *interpretation* (facts and domain), which is what
    /// poisoning freezes.
    pub fn check_model(&mut self) -> Result<bool, EvalError> {
        crate::model::closed_under_tp(
            &self.program,
            self.fx.facts(),
            self.fx.domain(),
            &mut self.store,
            &self.registry,
            &self.config,
        )
    }
}
