//! Persistent evaluation sessions: a serving-shaped wrapper around the
//! resumable fixpoint.
//!
//! Batch evaluation ([`crate::eval::evaluate`]) recomputes `lfp(T_{P,db})`
//! from scratch on every call. Under continuously arriving base facts that
//! is the dominant cost: the least fixpoint is *monotone* in the database
//! (Definitions 2–3 — `T_{P,db}` only grows when `db` grows), so a model
//! computed once can be extended by resuming the semi-naive round loop from
//! exactly the newly inserted tuples. [`EngineSession`] packages that:
//!
//! * it **owns** the compiled program, the sequence interners, the
//!   transducer registry, and the [`Fixpoint`] state (facts + extended
//!   active domain + cumulative [`EvalStats`]);
//! * [`assert_fact`](EngineSession::assert_fact) /
//!   [`assert_db`](EngineSession::assert_db) insert base facts *after* a
//!   fixpoint has been reached — window-closure of the new constants
//!   happens at assert time, mirroring the evaluator's pre-closing of
//!   program constants — and the next [`run`](EngineSession::run) resumes
//!   with those facts as the semi-naive delta;
//! * [`retract_fact`](EngineSession::retract_fact) /
//!   [`retract_db`](EngineSession::retract_db) **remove** base facts and
//!   immediately restore the least fixpoint of the surviving database by
//!   Delete-and-Rederive ([`Fixpoint::retract_facts`]) — the non-monotone
//!   half of the update surface;
//! * [`query`](EngineSession::query) / [`answers`](EngineSession::answers) /
//!   [`snapshot`](EngineSession::snapshot) read the current interpretation
//!   between updates.
//!
//! # Equivalence with batch evaluation
//!
//! For any split of a database into batches, asserting the batches in order
//! with a `run` after each yields the **same extents** as one batch
//! evaluation of the union — and, like batch evaluation, the result is
//! bit-for-bit identical for every `EvalConfig::threads` setting. (The
//! per-relation *insertion order* may differ from the batch order, because
//! facts settle in arrival order; set-level extents are identical. This is
//! differentially fuzzed in `tests/fuzz_differential.rs` and checked for
//! every paper example in `tests/paper_examples.rs`.)
//!
//! # Retraction
//!
//! Sessions distinguish **base facts** (asserted through this API, or
//! seeded from a database) from **derived facts**. Only base facts can be
//! retracted; derived facts disappear exactly when they lose all base
//! support. After any `retract_*` call that **takes effect** (returns
//! `true`, or a positive count), the session is settled at
//! `lfp(T_{P,db'})` for the surviving base set `db'` — bit-for-bit equal
//! across thread counts, and extent-equal to a fresh batch evaluation of
//! the survivors (the differential oracle in `tests/fuzz_differential.rs`).
//! Deletion under recursion is where naive implementations go wrong, so the
//! engine uses Delete-and-Rederive with an explicit *domain shrinkage* pass:
//! the extended active domain is a function of the interpretation
//! (Definition 4), so when the facts that introduced a sequence are
//! retracted, domain-sensitive clauses such as `pair(X, X) :- true.` must
//! lose the instantiations those sequences justified. See
//! [`Fixpoint::retract_facts`] for the four DRed passes. Retracting a fact
//! that is not a base fact — including a typo, an unknown predicate, or a
//! derived-only fact — is a **no-op**: it returns `false`/count `0`, never
//! interns anything, and leaves the session exactly as it was — including
//! any pending (un-run) asserts, which stay pending until the next
//! [`run`](EngineSession::run) or effective retraction.
//!
//! An effective retraction settles eagerly (it behaves like an implicit
//! [`run`](EngineSession::run), processing any pending asserts too): a
//! half-maintained interpretation would serve wrong answers, so there is no
//! "retract now, re-derive later" mode.
//!
//! # Budgets are exact on the update surface
//!
//! An assert that would push the state past `max_facts` or `max_domain` is
//! **refused before it applies**: the fact (and any partial window closure)
//! is rolled back, the error reports the would-be stats, and the session
//! stays healthy — so an accepted assert can never make the next `run` fail
//! its entry budget check. Batch asserts
//! ([`assert_facts`](EngineSession::assert_facts) /
//! [`assert_db`](EngineSession::assert_db)) are **failure-atomic**: on a
//! mid-batch rejection every fact of the batch is rolled back and the
//! pre-call state is restored exactly. (The commit phase of a `run` keeps
//! its documented behavior: it stops — and poisons — one fact past the
//! budget; the poisoned state is the diagnostic artifact.) Oversized
//! sequences are still rejected eagerly, before the quadratic window
//! closure. Budget refusals never poison. Refused asserts may leave
//! sequences in the append-only interner; the interner is not part of the
//! interpretation, so this is unobservable through the query API.
//!
//! # Predicates outside the compiled program
//!
//! `assert_*` **allows** predicates the program never mentions: they intern
//! fresh `PredId`s past the compiled table and become inert relations — no
//! clause consumes them, but they are queryable, contribute their sequences
//! to the extended active domain, and are retractable like any base fact.
//! (This mirrors batch evaluation, which seeds database-only predicates the
//! same way.) The read/retract surface (`query`, `relation`, `pred_id`,
//! `retract_*`) never interns: an unknown name is simply absent.
//!
//! # Error handling: sessions poison
//!
//! If a `run` fails — a budget exhausts mid-commit, a transducer gets stuck
//! — the session's state is a partially committed round: still a *sound*
//! under-approximation (every fact in it is derivable), but not a fixpoint.
//! The session then **poisons**: every later `assert_*`/`retract_*`/`run`
//! returns [`EvalError::Poisoned`] wrapping the original error, while the
//! read API (`query`/`snapshot`/`stats`) stays available for post-mortem
//! inspection. A failed **retraction** poisons identically, with one
//! honest difference in the post-mortem state: an interrupted
//! Delete-and-Rederive may leave facts whose base support is already gone,
//! i.e. an *over*-approximation of the new fixpoint (the retraction did not
//! finish taking effect). In-memory sessions have no way back from poison
//! other than re-evaluating from scratch; **durable** sessions additionally
//! offer [`recover`](EngineSession::recover), which rebuilds the last
//! healthy state from disk (below).
//!
//! # Durability: write-ahead log, snapshots, recovery
//!
//! [`open_durable`](EngineSession::open_durable) /
//! [`make_durable`](EngineSession::make_durable) attach a durability
//! directory holding a **write-ahead log** (`wal.bin`) and binary
//! **snapshots** (`snap-<covered>.bin`):
//!
//! * Every committed mutation batch — assert batch, retract batch, and each
//!   [`run`](EngineSession::run) boundary — is appended to the log **before**
//!   its in-memory commit, as a length-prefixed, CRC-checksummed record. A
//!   batch that is logged but then *refused* (budget) is compensated with an
//!   `Abort` record so replay skips it. Records are **logical** (predicate
//!   names plus per-argument symbol names), so replay through the ordinary
//!   session API re-interns everything in the original order and the
//!   append-only interners reproduce identical ids.
//! * Snapshots capture the alphabet, sequence store, relations, base-fact
//!   set, cumulative stats, and the semi-naive watermarks — atomically
//!   (write-then-rename) and whole-file checksummed. One is written every
//!   [`DurabilityOptions::snapshot_every`] records, on
//!   [`checkpoint`](EngineSession::checkpoint), and on attach.
//! * **Recovery** ([`open_durable`](EngineSession::open_durable) on an
//!   existing directory, or [`recover`](EngineSession::recover) on a
//!   poisoned durable session) loads the newest valid snapshot, replays the
//!   log tail after it, and resumes the fixpoint from the watermarks. A torn
//!   final record (a crash mid-append) is truncated away; *interior*
//!   corruption is a hard [`RecoveryError`] — committed history is never
//!   silently dropped. The extended active domain is a **function of the
//!   interpretation** (Definition 4), so its membership is rebuilt from the
//!   restored facts by re-closing every tuple — never trusted from disk; a
//!   corrupted snapshot can therefore fail its checksum or its structural
//!   validation, but cannot smuggle domain members past the fixpoint
//!   semantics. Only the domain's member *order* — observable through
//!   free-variable enumeration, hence part of bit-for-bit fidelity — comes
//!   from the snapshot, and only after it verifies as an exact permutation
//!   of the rebuilt closure.
//!
//! The recovery oracle (fuzzed with crash injection in
//! `tests/fuzz_recovery.rs`): a recovered session is **bit-for-bit equal**
//! — relation extents, insertion order, stats invariants, for every
//! `EvalConfig::threads` — to a fresh session that applies the surviving
//! logged history in order. Equivalently, after a final `run`, its model
//! equals a fresh batch evaluation of the surviving base facts, by the
//! equivalence guarantee above.

use std::fs;
use std::path::{Path, PathBuf};

use crate::analysis::magic::{magic_transform, MagicOptions, MagicProgram};
use crate::analysis::Bind;
use crate::ast::Program;
use crate::compile::{compile, CompiledProgram, PredId};
use crate::database::Database;
use crate::engine::{
    filter_bound_answers, intern_pattern, render_answers_with, render_tuples_with, Engine,
};
use crate::eval::interp::Relation;
use crate::eval::{AssertOutcome, BudgetKind, EvalConfig, EvalError, EvalStats, Fixpoint, Model};
use crate::registry::TransducerRegistry;
use crate::snapshot::{list_snapshots, SessionSnapshot};
use crate::wal::{
    read_wal, LoggedFact, ReadRecord, RecoveryError, WalReadOptions, WalRecord, WalWriter, WAL_FILE,
};
use seqlog_sequence::{Alphabet, DomainMark, SeqId, SeqStore, Sym};
use std::collections::HashMap;

/// Tuning for a durable session (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct DurabilityOptions {
    /// Write a snapshot automatically after this many log records (0
    /// disables auto-checkpointing; only explicit
    /// [`checkpoint`](EngineSession::checkpoint)/
    /// [`compact`](EngineSession::compact) calls snapshot then).
    pub snapshot_every: usize,
    /// `fsync` the log after every record. Off by default: every record is
    /// still flushed to the OS before the in-memory commit, so recovery is
    /// exact after a process kill; syncing additionally survives an OS
    /// crash at a large per-record cost (measured by the `wal_overhead`
    /// bench).
    pub sync_data: bool,
    /// Snapshots retained after a new one is written.
    pub snapshots_kept: usize,
    /// Test-only mutant: skip WAL checksum verification. Exists so the
    /// recovery fuzz harness can prove its oracle catches a weakened
    /// reader; never set in production.
    #[doc(hidden)]
    pub danger_skip_crc: bool,
    /// Test-only mutant: treat a torn tail as a hard error instead of
    /// truncating it.
    #[doc(hidden)]
    pub danger_skip_tail_truncation: bool,
    /// Test-only mutant: restore snapshots with stale (fully caught-up)
    /// watermarks, erasing pending facts from the next run's delta.
    #[doc(hidden)]
    pub danger_stale_watermarks: bool,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            snapshot_every: 64,
            sync_data: false,
            snapshots_kept: 2,
            danger_skip_crc: false,
            danger_skip_tail_truncation: false,
            danger_stale_watermarks: false,
        }
    }
}

impl DurabilityOptions {
    fn read_options(&self) -> WalReadOptions {
        WalReadOptions {
            danger_verify_crc: !self.danger_skip_crc,
            danger_truncate_torn_tail: !self.danger_skip_tail_truncation,
        }
    }
}

/// The attached durability state of a session: the directory, the
/// append handle, and the auto-checkpoint cadence counter.
#[derive(Debug)]
struct Durability {
    dir: PathBuf,
    wal: WalWriter,
    opts: DurabilityOptions,
    since_snapshot: usize,
}

/// A persistent evaluation session over one compiled program.
///
/// Create one with [`Engine::into_session`] (the session takes ownership of
/// the engine's interners and registry). See the [module docs](self) for
/// the update/query protocol and the poisoning contract.
///
/// Cloning a durable session yields a **detached** (in-memory) clone: two
/// writers appending to one log would interleave incompatible histories,
/// so the clone's `durability` is dropped and only the original keeps
/// logging.
pub struct EngineSession {
    alphabet: Alphabet,
    store: SeqStore,
    registry: TransducerRegistry,
    program: CompiledProgram,
    config: EvalConfig,
    fx: Fixpoint,
    poisoned: Option<EvalError>,
    durability: Option<Durability>,
    /// Machine-level diagnostics (`SL007`–`SL009`) computed by the fusion
    /// pass at [`open`](EngineSession::open) time, against the *pre-rewrite*
    /// program (the stored program is post-rewrite when fusion applied).
    fusion_diagnostics: Vec<crate::analysis::Diagnostic>,
    /// Fusion decisions from the same pass, surfaced via
    /// [`report`](EngineSession::report).
    fusion_decisions: Vec<crate::analysis::FusionDecision>,
    /// Magic-transformed programs cached per `(goal, bound-mask)` — the
    /// program never changes over a session's life, so entries never
    /// invalidate; repeated point queries recompile nothing.
    demand_cache: HashMap<(PredId, Vec<bool>), MagicProgram>,
}

/// The result of an instrumented demand query
/// ([`EngineSession::query_bound_instrumented`]): the answers plus the
/// scratch evaluation's statistics, for the fuzz harness's selectivity
/// bounds.
#[doc(hidden)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemandAnswer {
    /// Rendered, sorted, deduplicated matching tuples.
    pub answers: Vec<Vec<String>>,
    /// Finalized statistics of the scratch evaluation (all-zero when the
    /// query short-circuited without evaluating).
    pub stats: EvalStats,
    /// False when the query short-circuited (unknown value or
    /// asserted-only predicate) without running the scratch fixpoint.
    pub evaluated: bool,
}

impl Clone for EngineSession {
    fn clone(&self) -> Self {
        Self {
            alphabet: self.alphabet.clone(),
            store: self.store.clone(),
            registry: self.registry.clone(),
            program: self.program.clone(),
            config: self.config,
            fx: self.fx.clone(),
            poisoned: self.poisoned.clone(),
            durability: None,
            fusion_diagnostics: self.fusion_diagnostics.clone(),
            fusion_decisions: self.fusion_decisions.clone(),
            demand_cache: self.demand_cache.clone(),
        }
    }
}

impl EngineSession {
    /// Open a session: compile `program`, window-close its constants, and
    /// take ownership of `engine`'s alphabet, store, and registry. No
    /// evaluation happens yet — call [`run`](EngineSession::run) after the
    /// first asserts (or immediately, to settle a program with ground
    /// clauses and no base facts).
    pub fn open(engine: Engine, program: &Program, config: EvalConfig) -> Result<Self, EvalError> {
        let mut compiled = compile(program)?;
        let Engine {
            alphabet,
            mut store,
            mut registry,
        } = engine;
        // Compile-time transducer fusion (see [`crate::analysis::fuse`]):
        // analyze against the pre-rewrite program, then store the rewritten
        // program and register the fused machines. A pure rewrite — the
        // session's extent is bit-for-bit identical either way.
        let pass = crate::analysis::fuse::fuse_program(
            &compiled,
            &registry,
            &crate::analysis::FuseLimits::default(),
        );
        if !config.danger_disable_fusion {
            if let Some((rewritten, machines)) = pass.fused {
                compiled = rewritten;
                for (name, machine) in machines {
                    registry.register(name, machine);
                }
            }
        }
        for id in compiled.constants() {
            store.close_windows(id);
        }
        let fx = Fixpoint::new(&compiled);
        Ok(Self {
            alphabet,
            store,
            registry,
            program: compiled,
            config,
            fx,
            poisoned: None,
            durability: None,
            fusion_diagnostics: pass.diagnostics,
            fusion_decisions: pass.decisions,
            demand_cache: HashMap::new(),
        })
    }

    /// Open a **durable** session backed by `dir`. On a fresh (or empty)
    /// directory this is [`open`](EngineSession::open) followed by
    /// [`make_durable`](EngineSession::make_durable); when `dir` already
    /// holds a log, the session is **recovered** instead: the newest valid
    /// snapshot is loaded, the log tail is replayed through the ordinary
    /// session paths, and the fixpoint resumes from the persisted
    /// watermarks (see the [module docs](self) for the recovery
    /// guarantee). The caller must supply the same program text and
    /// registered transducers the original session had; mismatches are
    /// refused with [`EvalError::Recovery`] before any state is replaced.
    pub fn open_durable(
        engine: Engine,
        program: &Program,
        config: EvalConfig,
        dir: impl AsRef<Path>,
        opts: DurabilityOptions,
    ) -> Result<Self, EvalError> {
        let dir = dir.as_ref();
        let mut session = Self::open(engine, program, config)?;
        if dir.join(WAL_FILE).exists() {
            session.attach_recover(dir.to_path_buf(), opts)?;
        } else {
            session.make_durable(dir, opts)?;
        }
        Ok(session)
    }

    fn guard_poison(&self) -> Result<(), EvalError> {
        match &self.poisoned {
            Some(original) => Err(EvalError::Poisoned {
                original: Box::new(original.clone()),
            }),
            None => Ok(()),
        }
    }

    /// Attach a write-ahead log (and snapshots) under `dir` to this
    /// session. The directory must not already hold a log (recover one
    /// with [`open_durable`](EngineSession::open_durable) instead); an
    /// initial snapshot of the current state is written immediately, so
    /// recovery never depends on replaying history from before this call.
    /// From here on every committed assert/retract batch and every
    /// [`run`](EngineSession::run) boundary is appended to the log
    /// **before** its in-memory commit.
    pub fn make_durable(
        &mut self,
        dir: impl AsRef<Path>,
        opts: DurabilityOptions,
    ) -> Result<(), EvalError> {
        self.guard_poison()?;
        if self.durability.is_some() {
            return Err(mismatch("session is already durable"));
        }
        let dir = dir.as_ref();
        fs::create_dir_all(dir)
            .map_err(|e| EvalError::Recovery(RecoveryError::io("create durability dir", &e)))?;
        let wal_path = dir.join(WAL_FILE);
        if wal_path.exists() {
            return Err(mismatch(
                "directory already holds a log; use open_durable to recover it",
            ));
        }
        let wal = WalWriter::create(&wal_path, 0, opts.sync_data).map_err(EvalError::Recovery)?;
        self.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
            opts,
            since_snapshot: 0,
        });
        match self.write_checkpoint() {
            Ok(_) => Ok(()),
            Err(e) => {
                self.durability = None;
                let _ = fs::remove_file(&wal_path);
                Err(e)
            }
        }
    }

    /// Write a snapshot of the current state now (in addition to the
    /// automatic cadence of [`DurabilityOptions::snapshot_every`]);
    /// returns the snapshot's path. Recovery loads the newest valid
    /// snapshot and replays only the log records after it.
    pub fn checkpoint(&mut self) -> Result<PathBuf, EvalError> {
        self.guard_poison()?;
        self.write_checkpoint()
    }

    /// [`checkpoint`](EngineSession::checkpoint), then rewrite the log as
    /// an empty file whose `base_index` is the snapshot's covered record
    /// count — bounding both the log's size and recovery's replay work.
    /// Old snapshots beyond [`DurabilityOptions::snapshots_kept`] are
    /// pruned as part of the checkpoint.
    pub fn compact(&mut self) -> Result<(), EvalError> {
        self.guard_poison()?;
        self.write_checkpoint()?;
        let d = self
            .durability
            .as_mut()
            .expect("write_checkpoint verified durability");
        let next = d.wal.next_index();
        let wal_path = d.dir.join(WAL_FILE);
        let tmp = d.dir.join(format!("{WAL_FILE}.tmp"));
        let fresh = WalWriter::create(&tmp, next, d.opts.sync_data).map_err(EvalError::Recovery)?;
        drop(fresh);
        fs::rename(&tmp, &wal_path)
            .map_err(|e| EvalError::Recovery(RecoveryError::io("rename compacted log", &e)))?;
        let contents = read_wal(&wal_path, &d.opts.read_options()).map_err(EvalError::Recovery)?;
        d.wal = WalWriter::reopen(&wal_path, &contents, d.opts.sync_data)
            .map_err(EvalError::Recovery)?;
        Ok(())
    }

    /// Rebuild this session's state from its own snapshot + log — the
    /// recovery path for a **poisoned** durable session. The in-memory
    /// state (a partially committed round, or an interrupted
    /// Delete-and-Rederive) is discarded and replaced by a replay of the
    /// durable history; a final record that fails replay — the one whose
    /// live execution poisoned the session — is truncated away, so the
    /// result is the last healthy state, pending (logged, un-run) asserts
    /// included, and the poison is cleared. Callers typically raise
    /// budgets via [`config_mut`](EngineSession::config_mut) first, in
    /// which case the failing record may now replay successfully and
    /// nothing is truncated.
    ///
    /// On failure the session is left exactly as it was (state, poison,
    /// and log attachment untouched). After a successful recovery,
    /// previously obtained [`SeqId`]s are invalidated: the interners are
    /// rebuilt from disk.
    pub fn recover(&mut self) -> Result<EvalStats, EvalError> {
        let Some(d) = self.durability.as_ref() else {
            return Err(mismatch("session is not durable; nothing to recover from"));
        };
        let dir = d.dir.clone();
        let opts = d.opts.clone();
        self.attach_recover(dir, opts)?;
        Ok(self.stats())
    }

    /// True when this session logs to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Total log records ever committed by this durable session (across
    /// compactions), or `None` when not durable.
    pub fn durable_records(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal.next_index())
    }

    /// Current byte length of the write-ahead log, or `None` when not
    /// durable. The crash-injection harness uses this to pick kill
    /// offsets at and between record boundaries.
    pub fn wal_len(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal.len())
    }

    /// The durability directory, when attached.
    pub fn durability_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Append one record, counting it toward the auto-checkpoint cadence.
    /// No-op on non-durable sessions. On append failure the mutation must
    /// be refused by the caller — nothing has committed in memory.
    fn log_record(&mut self, rec: &WalRecord) -> Result<(), EvalError> {
        if let Some(d) = self.durability.as_mut() {
            d.wal.append(rec).map_err(EvalError::Recovery)?;
            d.since_snapshot += 1;
        }
        Ok(())
    }

    /// Compensate a logged-but-refused batch with an [`WalRecord::Abort`]
    /// so replay skips it, and hand back the original refusal. If even the
    /// compensation cannot be written the session poisons: without it, a
    /// later crash would replay the refused batch as committed.
    fn abort_logged(&mut self, original: EvalError) -> EvalError {
        if self.durability.is_some() {
            if let Err(e) = self.log_record(&WalRecord::Abort) {
                self.poisoned = Some(e.clone());
                return e;
            }
        }
        original
    }

    /// Auto-checkpoint hook, called after every successfully committed
    /// durable mutation. A failed automatic snapshot is deliberately not
    /// surfaced: the log remains authoritative, so the only consequence is
    /// a longer replay tail (explicit
    /// [`checkpoint`](EngineSession::checkpoint) calls do surface errors).
    fn after_mutation(&mut self) {
        let Some(d) = self.durability.as_ref() else {
            return;
        };
        if d.opts.snapshot_every > 0 && d.since_snapshot >= d.opts.snapshot_every {
            let _ = self.write_checkpoint();
        }
    }

    fn write_checkpoint(&mut self) -> Result<PathBuf, EvalError> {
        let Some(d) = self.durability.as_ref() else {
            return Err(mismatch("session is not durable"));
        };
        let covered = d.wal.next_index();
        let snap = SessionSnapshot::capture(covered, &self.alphabet, &self.store, &self.fx);
        let path = snap
            .write(&d.dir, d.opts.snapshots_kept)
            .map_err(EvalError::Recovery)?;
        if let Some(d) = self.durability.as_mut() {
            d.since_snapshot = 0;
        }
        Ok(path)
    }

    /// A [`LoggedFact`] for an already-interned tuple: predicate name plus
    /// per-argument symbol names, read back through the interners.
    fn logged_fact_ids(&self, pred: &str, tuple: &[SeqId]) -> LoggedFact {
        LoggedFact {
            pred: pred.to_string(),
            args: tuple
                .iter()
                .map(|&id| {
                    self.store
                        .get(id)
                        .iter()
                        .map(|&s| self.alphabet.name(s).to_string())
                        .collect()
                })
                .collect(),
        }
    }

    /// Load the newest usable snapshot under `dir`, replay the log tail
    /// through the ordinary (unlogged) apply paths, and swap the rebuilt
    /// state into `self`. See the [module docs](self) for the protocol; on
    /// any error `self` is untouched.
    fn attach_recover(&mut self, dir: PathBuf, opts: DurabilityOptions) -> Result<(), EvalError> {
        let wal_path = dir.join(WAL_FILE);
        let contents = read_wal(&wal_path, &opts.read_options()).map_err(EvalError::Recovery)?;
        let last_index = contents.base_index + contents.records.len() as u64;

        // Newest snapshot consistent with the log. A snapshot claiming
        // records the log never had means committed history vanished —
        // hard corruption, not something to silently fall back from.
        let mut chosen: Option<(SessionSnapshot, PathBuf)> = None;
        let mut first_err: Option<RecoveryError> = None;
        for (covered, path) in list_snapshots(&dir).map_err(EvalError::Recovery)? {
            if covered > last_index {
                return Err(mismatch(&format!(
                    "snapshot covers {covered} records but the log ends at {last_index}"
                )));
            }
            if covered < contents.base_index {
                // Predates the log's compaction base: its tail records are
                // gone, so it cannot seed a replay. Try an older... there
                // is nothing older that could work either.
                first_err.get_or_insert(RecoveryError::Mismatch {
                    detail: format!(
                        "snapshot covers {covered} records but the log starts at {}",
                        contents.base_index
                    ),
                });
                continue;
            }
            match SessionSnapshot::read(&path) {
                Ok(s) => {
                    chosen = Some((s, path));
                    break;
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        let Some((snap, snap_path)) = chosen else {
            return Err(EvalError::Recovery(first_err.unwrap_or_else(|| {
                RecoveryError::Mismatch {
                    detail: "no usable snapshot found".to_string(),
                }
            })));
        };

        let tail: Vec<&ReadRecord> = contents
            .records
            .iter()
            .filter(|r| r.index >= snap.covered)
            .collect();
        let mut scratch = self.rebuild_scratch(&snap, &snap_path, &opts)?;
        let mut next_index = last_index;
        let mut truncate_at = None;
        if let Err((k, e)) = replay_records(&mut scratch, &tail, u64::MAX) {
            if k + 1 != last_index {
                // Only the *final* record may fail replay (the poisoned
                // tail, or a torn abort): committed interior records
                // replayed successfully once, so a mid-log failure means
                // the environment — program, registry, budgets — does not
                // match the history, and truncating would destroy it.
                return Err(mismatch(&format!(
                    "log record {k} failed to replay mid-log ({e}); refusing to truncate \
                     committed history"
                )));
            }
            scratch = self.rebuild_scratch(&snap, &snap_path, &opts)?;
            replay_records(&mut scratch, &tail, k).map_err(|(i, e2)| {
                mismatch(&format!("log record {i} failed prefix replay: {e2}"))
            })?;
            let failing = contents
                .records
                .iter()
                .find(|r| r.index == k)
                .expect("failing index comes from these records");
            truncate_at = Some(failing.start_offset);
            next_index = k;
        }

        let mut wal =
            WalWriter::reopen(&wal_path, &contents, opts.sync_data).map_err(EvalError::Recovery)?;
        if let Some(offset) = truncate_at {
            wal.truncate_to(offset, next_index)
                .map_err(EvalError::Recovery)?;
        }
        let since_snapshot = (next_index - snap.covered) as usize;
        self.alphabet = scratch.alphabet;
        self.store = scratch.store;
        self.fx = scratch.fx;
        self.poisoned = None;
        self.durability = Some(Durability {
            dir,
            wal,
            opts,
            since_snapshot,
        });
        Ok(())
    }

    /// Install a snapshot into a detached scratch session sharing this
    /// session's program, registry, and config, verifying the loaded
    /// interners extend the caller's (same alphabet prefix, same sequence
    /// prefix, program predicates a prefix of the loaded table) so the
    /// compiled program's ids stay valid over the loaded state.
    fn rebuild_scratch(
        &self,
        snap: &SessionSnapshot,
        snap_path: &Path,
        opts: &DurabilityOptions,
    ) -> Result<EngineSession, EvalError> {
        let (alphabet, mut store, fx) = snap
            .install(snap_path, opts.danger_stale_watermarks)
            .map_err(EvalError::Recovery)?;
        if !self.program.preds.is_prefix_of(fx.facts().preds()) {
            return Err(mismatch(
                "program predicates are not a prefix of the persisted predicate table",
            ));
        }
        // Shared-prefix consistency: the caller's interners and the loaded
        // ones both descend from the same compiled program by append-only
        // interning of the same logged history, so whichever is shorter
        // must be a content-prefix of the other. (On `open_durable` the
        // caller holds just the program's symbols; on `recover()` the live
        // session has grown past the snapshot — both directions are fine,
        // divergence is not.) Compared by *name*, not raw ids: past the
        // common length the two sides may intern different symbols.
        let n_syms = self.alphabet.len().min(alphabet.len());
        if self
            .alphabet
            .iter()
            .take(n_syms)
            .any(|(s, name)| alphabet.name(s) != name)
        {
            return Err(mismatch("persisted alphabet diverges from the session's"));
        }
        let n_seqs = self.store.count().min(store.count());
        for i in 0..n_seqs {
            let id = SeqId(i as u32);
            let live = self.store.get(id);
            let loaded = store.get(id);
            if live.len() != loaded.len()
                || live
                    .iter()
                    .zip(loaded.iter())
                    .any(|(&a, &b)| self.alphabet.name(a) != alphabet.name(b))
            {
                return Err(mismatch(
                    "persisted sequence store diverges from the session's",
                ));
            }
        }
        // Every compiled constant must resolve inside the loaded store (its
        // content equality is covered by the shared-prefix check above).
        if self
            .program
            .constants()
            .iter()
            .any(|id| (id.0 as usize) >= store.count())
        {
            return Err(mismatch(
                "program constants are missing from the persisted sequence store",
            ));
        }
        for id in self.program.constants() {
            store.close_windows(id);
        }
        Ok(EngineSession {
            alphabet,
            store,
            registry: self.registry.clone(),
            program: self.program.clone(),
            config: self.config,
            fx,
            poisoned: None,
            durability: None,
            fusion_diagnostics: self.fusion_diagnostics.clone(),
            fusion_decisions: self.fusion_decisions.clone(),
            demand_cache: HashMap::new(),
        })
    }

    /// Replay an [`WalRecord::AssertBatch`]: the unlogged twin of
    /// [`assert_facts`](EngineSession::assert_facts) (failure-atomic, same
    /// budget order), interning through the logged symbol names.
    fn apply_assert_batch(&mut self, facts: &[LoggedFact]) -> Result<usize, EvalError> {
        let dmark = self.fx.domain_mark();
        let mut applied: Vec<(PredId, Box<[SeqId]>, AssertOutcome)> = Vec::new();
        let mut added = 0;
        for f in facts {
            let step = self.intern_logged_tuple(&f.args).and_then(|tuple| {
                let pid = self.fx.pred_id(&f.pred);
                self.assert_batch_step(pid, tuple.into(), &mut applied)
            });
            match step {
                Ok(n) => added += n,
                Err(e) => {
                    self.rollback_asserts(&applied, dmark);
                    return Err(e);
                }
            }
        }
        Ok(added)
    }

    /// Replay a [`WalRecord::RetractBatch`]: the unlogged twin of
    /// [`retract_db`](EngineSession::retract_db). Resolution is
    /// lookup-only, exactly like the live path.
    fn apply_retract_batch(&mut self, facts: &[LoggedFact]) -> Result<usize, EvalError> {
        let mut batch: Vec<(PredId, Box<[SeqId]>)> = Vec::new();
        for f in facts {
            let Some(pid) = self.fx.facts().lookup_pred(&f.pred) else {
                continue;
            };
            let Some(tuple) = self.lookup_logged_tuple(&f.args) else {
                continue;
            };
            batch.push((pid, tuple.into()));
        }
        if batch.is_empty() {
            return Ok(0);
        }
        self.fx.retract_facts(
            &self.program,
            &mut self.store,
            &self.registry,
            &self.config,
            &batch,
        )
    }

    /// Replay a [`WalRecord::Run`] boundary.
    fn replay_run(&mut self) -> Result<(), EvalError> {
        self.fx
            .run(&self.program, &mut self.store, &self.registry, &self.config)
    }

    /// Intern a logged tuple (per-argument symbol names), enforcing
    /// `max_seq_len` eagerly like [`intern_tuple`](Self::intern_tuple).
    fn intern_logged_tuple(&mut self, args: &[Vec<String>]) -> Result<Vec<SeqId>, EvalError> {
        let mut tuple: Vec<SeqId> = Vec::with_capacity(args.len());
        for names in args {
            let syms: Vec<Sym> = names.iter().map(|n| self.alphabet.intern(n)).collect();
            let id = self.store.intern_vec(syms);
            self.check_seq_budget(id)?;
            tuple.push(id);
        }
        Ok(tuple)
    }

    /// Resolve a logged tuple without interning anything (`None` when some
    /// symbol or sequence was never interned — no such fact can exist).
    fn lookup_logged_tuple(&self, args: &[Vec<String>]) -> Option<Vec<SeqId>> {
        let mut tuple: Vec<SeqId> = Vec::with_capacity(args.len());
        for names in args {
            let mut syms: Vec<Sym> = Vec::with_capacity(names.len());
            for n in names {
                syms.push(self.alphabet.lookup(n)?);
            }
            tuple.push(self.store.lookup(&syms)?);
        }
        Some(tuple)
    }

    /// Eager `max_seq_len` enforcement on the assert path: domain closure
    /// interns O(len²) windows, so an oversized input must be rejected
    /// *before* closure, not discovered by the next run's budget check.
    /// Rejection does **not** poison — the interpretation is untouched and
    /// the session keeps serving (batch evaluation, by contrast, only
    /// discovers oversized database sequences at run time).
    fn check_seq_budget(&self, id: SeqId) -> Result<(), EvalError> {
        let len = self.store.len_of(id);
        if len > self.config.max_seq_len {
            let mut stats = self.fx.stats();
            stats.max_seq_len = stats.max_seq_len.max(len);
            return Err(EvalError::Budget {
                kind: BudgetKind::SeqLen,
                stats,
            });
        }
        Ok(())
    }

    /// Intern string arguments as a tuple, enforcing `max_seq_len` eagerly.
    fn intern_tuple(&mut self, args: &[&str]) -> Result<Vec<SeqId>, EvalError> {
        let mut tuple: Vec<SeqId> = Vec::with_capacity(args.len());
        for s in args {
            let syms = self.alphabet.seq_of_str(s);
            let id = self.store.intern_vec(syms);
            self.check_seq_budget(id)?;
            tuple.push(id);
        }
        Ok(tuple)
    }

    /// One assert with **exact** cumulative-budget enforcement: a fact that
    /// would push the state past `max_facts` or `max_domain` is refused
    /// with the interpretation restored to exactly its pre-call state
    /// (fact, base record, and partial window closure all rolled back).
    /// The reported stats are the would-be (peak) stats, so the caller sees
    /// what tripped. Duplicate asserts never grow the state and are always
    /// admitted (they still record base status for retraction). Refusal
    /// does not poison.
    fn assert_ids_exact(
        &mut self,
        pid: PredId,
        tuple: Box<[SeqId]>,
    ) -> Result<AssertOutcome, EvalError> {
        for &id in &tuple {
            self.check_seq_budget(id)?;
        }
        if self.fx.facts().contains_id(pid, &tuple) {
            return Ok(self.fx.assert_fact_full(&mut self.store, pid, tuple));
        }
        let stats = self.fx.stats();
        if stats.facts + 1 > self.config.max_facts {
            let mut peak = stats;
            peak.facts += 1;
            return Err(EvalError::Budget {
                kind: BudgetKind::Facts,
                stats: peak,
            });
        }
        let dmark = self.fx.domain_mark();
        let outcome = self
            .fx
            .assert_fact_full(&mut self.store, pid, tuple.clone());
        debug_assert!(outcome.new_fact, "absent fact must insert");
        if self.fx.domain().len() > self.config.max_domain {
            let peak = self.fx.stats();
            self.fx.unassert_pending(pid, &tuple, outcome.new_base);
            self.fx.compact_pending();
            self.fx.domain_truncate(&self.store, dmark);
            return Err(EvalError::Budget {
                kind: BudgetKind::DomainSize,
                stats: peak,
            });
        }
        Ok(outcome)
    }

    /// Reverse a prefix of a failed batch assert (newest first), restoring
    /// the exact pre-batch state. Removals tombstone; one compaction pass
    /// at the end settles the whole rollback, however large the batch.
    fn rollback_asserts(
        &mut self,
        applied: &[(PredId, Box<[SeqId]>, AssertOutcome)],
        dmark: DomainMark,
    ) {
        for (pid, tuple, outcome) in applied.iter().rev() {
            if outcome.new_fact {
                self.fx.unassert_pending(*pid, tuple, outcome.new_base);
            } else if outcome.new_base {
                self.fx.drop_base_record(*pid, tuple);
            }
        }
        self.fx.compact_pending();
        self.fx.domain_truncate(&self.store, dmark);
    }

    /// Intern `text` as a sequence and window-close it, so it can serve as
    /// an indexed base as soon as it reaches the matcher. Use with
    /// [`assert_fact_ids`](EngineSession::assert_fact_ids) to build tuples
    /// without going through string arguments twice. Like every `assert_*`,
    /// refused on a poisoned session (the update surface closes uniformly)
    /// and on sequences longer than `max_seq_len` (rejected before the
    /// quadratic window closure; the session stays healthy).
    pub fn assert_seq(&mut self, text: &str) -> Result<SeqId, EvalError> {
        self.guard_poison()?;
        let syms = self.alphabet.seq_of_str(text);
        let id = self.store.intern_vec(syms);
        self.check_seq_budget(id)?;
        self.store.close_windows(id);
        Ok(id)
    }

    /// Assert one base fact with string arguments. Returns `true` when the
    /// fact is new; new facts become the next [`run`](EngineSession::run)'s
    /// semi-naive delta. Duplicate asserts never grow the interpretation
    /// (but still mark the fact as *base*, so it survives retraction of its
    /// other derivations); arguments longer than `max_seq_len` and facts
    /// that would exceed `max_facts`/`max_domain` are refused eagerly and
    /// exactly (state untouched, session not poisoned).
    pub fn assert_fact(&mut self, pred: &str, args: &[&str]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        let tuple = self.intern_tuple(args)?;
        if self.durability.is_some() {
            let rec = WalRecord::AssertBatch(vec![logged_fact_strs(pred, args)]);
            self.log_record(&rec)?;
        }
        let pid = self.fx.pred_id(pred);
        match self.assert_ids_exact(pid, tuple.into()) {
            Ok(outcome) => {
                self.after_mutation();
                Ok(outcome.new_fact)
            }
            Err(e) => Err(self.abort_logged(e)),
        }
    }

    /// Assert a batch of string-argument facts; returns how many were new.
    ///
    /// **Failure-atomic**: if any fact of the batch is refused (budget) the
    /// whole batch rolls back and the session state is exactly what it was
    /// before the call; on a poisoned session nothing is applied either.
    pub fn assert_facts(&mut self, facts: &[(&str, &[&str])]) -> Result<usize, EvalError> {
        self.guard_poison()?;
        if self.durability.is_some() && !facts.is_empty() {
            let rec = WalRecord::AssertBatch(
                facts
                    .iter()
                    .map(|(pred, args)| logged_fact_strs(pred, args))
                    .collect(),
            );
            self.log_record(&rec)?;
        }
        let dmark = self.fx.domain_mark();
        let mut applied: Vec<(PredId, Box<[SeqId]>, AssertOutcome)> = Vec::new();
        let mut added = 0;
        for (pred, args) in facts {
            let step = self.intern_tuple(args).and_then(|tuple| {
                let pid = self.fx.pred_id(pred);
                self.assert_batch_step(pid, tuple.into(), &mut applied)
            });
            match step {
                Ok(n) => added += n,
                Err(e) => {
                    self.rollback_asserts(&applied, dmark);
                    return Err(self.abort_logged(e));
                }
            }
        }
        self.after_mutation();
        Ok(added)
    }

    /// One entry of an atomic batch: apply the assert with exact budgets
    /// and record what it changed in `applied`, so a later
    /// [`rollback_asserts`](EngineSession::rollback_asserts) can reverse
    /// it. Returns 1 when the fact was new. The single place the batch
    /// bookkeeping condition lives — `assert_facts` and `assert_db` both
    /// route through it.
    fn assert_batch_step(
        &mut self,
        pid: PredId,
        tuple: Box<[SeqId]>,
        applied: &mut Vec<(PredId, Box<[SeqId]>, AssertOutcome)>,
    ) -> Result<usize, EvalError> {
        let outcome = self.assert_ids_exact(pid, tuple.clone())?;
        if outcome.new_fact || outcome.new_base {
            applied.push((pid, tuple, outcome));
        }
        Ok(usize::from(outcome.new_fact))
    }

    /// Assert one base fact over already-interned sequences (ids must come
    /// from this session's store — e.g. from
    /// [`assert_seq`](EngineSession::assert_seq), or from the owning
    /// [`Engine`] before [`Engine::into_session`]). Budgets are enforced
    /// exactly, as in [`assert_fact`](EngineSession::assert_fact).
    pub fn assert_fact_ids(&mut self, pred: &str, tuple: &[SeqId]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        if self.durability.is_some() {
            let rec = WalRecord::AssertBatch(vec![self.logged_fact_ids(pred, tuple)]);
            self.log_record(&rec)?;
        }
        let pid = self.fx.pred_id(pred);
        match self.assert_ids_exact(pid, tuple.into()) {
            Ok(outcome) => {
                self.after_mutation();
                Ok(outcome.new_fact)
            }
            Err(e) => Err(self.abort_logged(e)),
        }
    }

    /// Assert every fact of `db` (built against this session's store);
    /// returns how many were new. **Failure-atomic**, like
    /// [`assert_facts`](EngineSession::assert_facts).
    pub fn assert_db(&mut self, db: &Database) -> Result<usize, EvalError> {
        self.guard_poison()?;
        if self.durability.is_some() {
            let logged: Vec<LoggedFact> = db
                .iter()
                .map(|(pred, tuple)| self.logged_fact_ids(pred, tuple))
                .collect();
            if !logged.is_empty() {
                self.log_record(&WalRecord::AssertBatch(logged))?;
            }
        }
        let dmark = self.fx.domain_mark();
        let mut applied: Vec<(PredId, Box<[SeqId]>, AssertOutcome)> = Vec::new();
        let mut added = 0;
        for (pred, tuple) in db.iter() {
            let pid = self.fx.pred_id(pred);
            match self.assert_batch_step(pid, tuple.into(), &mut applied) {
                Ok(n) => added += n,
                Err(e) => {
                    self.rollback_asserts(&applied, dmark);
                    return Err(self.abort_logged(e));
                }
            }
        }
        self.after_mutation();
        Ok(added)
    }

    /// Retract one base fact with string arguments; returns `true` when the
    /// fact was a base fact and has been retracted. Non-base facts
    /// (derived-only, unknown predicate, never-interned arguments) are
    /// **no-ops** returning `false`: nothing is interned, and the session
    /// state — pending asserts included — is left exactly as it was.
    ///
    /// When the retraction takes effect the session is **settled**: the
    /// interpretation equals a fresh batch evaluation of the surviving base
    /// facts (pending asserts included), maintained incrementally by
    /// Delete-and-Rederive — see the [module docs](self) and
    /// [`Fixpoint::retract_facts`]. On failure the session poisons, exactly
    /// like [`run`](EngineSession::run).
    pub fn retract_fact(&mut self, pred: &str, args: &[&str]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        let Some(pid) = self.fx.facts().lookup_pred(pred) else {
            return Ok(false);
        };
        let Some(tuple) = self.lookup_tuple(args) else {
            return Ok(false);
        };
        if self.durability.is_some() {
            let rec = WalRecord::RetractBatch(vec![self.logged_fact_ids(pred, &tuple)]);
            self.log_record(&rec)?;
        }
        let n = self.retract_ids_batch(vec![(pid, tuple.into())])?;
        self.after_mutation();
        Ok(n > 0)
    }

    /// Resolve string arguments to interned ids **without interning**
    /// anything (not even alphabet symbols): `None` when some argument was
    /// never interned, in which case no such fact can exist.
    fn lookup_tuple(&self, args: &[&str]) -> Option<Vec<SeqId>> {
        let mut tuple: Vec<SeqId> = Vec::with_capacity(args.len());
        for s in args {
            let syms = self.alphabet.lookup_seq_of_str(s)?;
            tuple.push(self.store.lookup(&syms)?);
        }
        Some(tuple)
    }

    /// [`retract_fact`](EngineSession::retract_fact) over already-interned
    /// sequences.
    pub fn retract_fact_ids(&mut self, pred: &str, tuple: &[SeqId]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        let Some(pid) = self.fx.facts().lookup_pred(pred) else {
            return Ok(false);
        };
        if self.durability.is_some() {
            let rec = WalRecord::RetractBatch(vec![self.logged_fact_ids(pred, tuple)]);
            self.log_record(&rec)?;
        }
        let n = self.retract_ids_batch(vec![(pid, tuple.into())])?;
        self.after_mutation();
        Ok(n > 0)
    }

    /// Retract every fact of `db` in one Delete-and-Rederive maintenance
    /// pass; returns how many were base facts (and are now gone). Unknown
    /// predicates and non-base facts are skipped; if nothing qualifies the
    /// call is a pure no-op (count `0`, session untouched).
    pub fn retract_db(&mut self, db: &Database) -> Result<usize, EvalError> {
        self.guard_poison()?;
        let mut batch: Vec<(PredId, Box<[SeqId]>)> = Vec::new();
        let mut logged: Vec<LoggedFact> = Vec::new();
        for (pred, tuple) in db.iter() {
            if let Some(pid) = self.fx.facts().lookup_pred(pred) {
                if self.durability.is_some() {
                    logged.push(self.logged_fact_ids(pred, tuple));
                }
                batch.push((pid, tuple.into()));
            }
        }
        if batch.is_empty() {
            return Ok(0);
        }
        if self.durability.is_some() {
            self.log_record(&WalRecord::RetractBatch(logged))?;
        }
        let n = self.retract_ids_batch(batch)?;
        self.after_mutation();
        Ok(n)
    }

    /// True when the session knows `pred(args…)` as a *base* fact (i.e. a
    /// retraction of it would take effect). Read-only: interns nothing.
    pub fn is_base_fact(&self, pred: &str, args: &[&str]) -> bool {
        let Some(pid) = self.fx.facts().lookup_pred(pred) else {
            return false;
        };
        match self.lookup_tuple(args) {
            Some(tuple) => self.fx.is_base_fact(pid, &tuple),
            None => false,
        }
    }

    /// Run one retraction maintenance pass, poisoning on failure (the same
    /// discipline as [`run`](EngineSession::run)).
    fn retract_ids_batch(
        &mut self,
        batch: Vec<(PredId, Box<[SeqId]>)>,
    ) -> Result<usize, EvalError> {
        match self.fx.retract_facts(
            &self.program,
            &mut self.store,
            &self.registry,
            &self.config,
            &batch,
        ) {
            Ok(n) => Ok(n),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Resume the fixpoint over everything asserted since the last run.
    /// Returns the cumulative statistics on success. On failure the error
    /// is returned **and the session poisons** (see the module docs);
    /// `max_rounds` is a per-run budget, the size budgets are cumulative.
    pub fn run(&mut self) -> Result<EvalStats, EvalError> {
        self.guard_poison()?;
        self.log_record(&WalRecord::Run)?;
        match self
            .fx
            .run(&self.program, &mut self.store, &self.registry, &self.config)
        {
            Ok(()) => {
                self.after_mutation();
                Ok(self.fx.stats())
            }
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Rendered tuples of `pred` in insertion order (empty when absent).
    /// Reflects the state as of the last `run` plus any raw asserts since.
    pub fn query(&self, pred: &str) -> Vec<Vec<String>> {
        render_tuples_with(
            self.fx.facts().relation_named(pred),
            &self.alphabet,
            &self.store,
        )
    }

    /// Rendered, sorted, deduplicated single-column answers for `pred`
    /// (the `output(Y)` convention of Definition 5).
    pub fn answers(&self, pred: &str) -> Vec<String> {
        render_answers_with(
            self.fx.facts().relation_named(pred),
            &self.alphabet,
            &self.store,
        )
    }

    /// Demand-driven (goal-directed) point query: return the tuples of
    /// `pred` matching `pattern` — rendered, sorted, deduplicated — by
    /// evaluating only what the goal needs, via the magic-set
    /// transformation ([`crate::analysis::magic`]).
    ///
    /// Evaluation happens in a **scratch fixpoint** seeded from this
    /// session's current facts (settled derivations plus any raw asserts
    /// since the last [`run`](EngineSession::run)): the session's own
    /// interpretation, watermarks, WAL, and durability state are never
    /// touched, and an evaluation error here returns without poisoning
    /// the session. The answers equal filtering a full
    /// [`run`](EngineSession::run)-then-[`query`](EngineSession::query)
    /// by the pattern — byte-identically, on any thread count — while a
    /// selective goal evaluates a small cone (the fallback gate in
    /// [`crate::analysis::magic`] degrades gracefully to the batch
    /// fixpoint when domain-sensitive strata make demand restriction
    /// unsound).
    ///
    /// `&mut self` because bound values and derived sequences intern into
    /// the session's append-only store; like
    /// [`check_model`](EngineSession::check_model), this never changes
    /// the session's interpretation. Magic-transformed programs are
    /// cached per `(goal, bound-mask)`, so repeated point queries
    /// recompile nothing.
    pub fn query_bound(
        &mut self,
        pred: &str,
        pattern: &[Bind<'_>],
    ) -> Result<Vec<Vec<String>>, EvalError> {
        self.query_bound_instrumented(pred, pattern, &MagicOptions::default())
            .map(|r| r.answers)
    }

    /// [`query_bound`](EngineSession::query_bound) with explicit
    /// [`MagicOptions`] and scratch-evaluation statistics — the demand
    /// fuzz harness's hook for mutation testing (non-default options
    /// bypass the adornment cache).
    #[doc(hidden)]
    pub fn query_bound_instrumented(
        &mut self,
        pred: &str,
        pattern: &[Bind<'_>],
        opts: &MagicOptions,
    ) -> Result<DemandAnswer, EvalError> {
        self.guard_poison()?;
        let bound = intern_pattern(pattern, &mut self.alphabet, &mut self.store);
        let goal = self.program.preds.lookup(pred);
        let derivable = goal.is_some_and(|g| self.program.clauses.iter().any(|c| c.head.pred == g));
        if !derivable {
            // Asserted-only (or unknown) predicate: no clause can derive
            // into it, so its extent is its current relation as-is.
            return Ok(DemandAnswer {
                answers: filter_bound_answers(
                    self.fx.facts().relation_named(pred),
                    pattern.len(),
                    &bound,
                    &self.alphabet,
                    &self.store,
                ),
                stats: EvalStats::default(),
                evaluated: false,
            });
        }
        let goal = goal.expect("derivable implies interned");
        let adornment = Bind::adornment(pattern);
        let mask: Vec<bool> = pattern
            .iter()
            .map(|b| matches!(b, Bind::Bound(_)))
            .collect();
        let program = &self.program;
        let fresh;
        let magic: &MagicProgram = if *opts == MagicOptions::default() {
            self.demand_cache
                .entry((goal, mask))
                .or_insert_with(|| magic_transform(program, goal, &adornment, opts))
        } else {
            fresh = magic_transform(program, goal, &adornment, opts);
            &fresh
        };
        for id in magic.program.constants() {
            self.store.close_windows(id);
        }
        let mut scratch = self.fx.demand_scratch(&magic.program.preds);
        let seed: Box<[SeqId]> = bound.iter().map(|&(_, id)| id).collect();
        scratch.seed_demand(magic.seed, seed);
        scratch.run(
            &magic.program,
            &mut self.store,
            &self.registry,
            &self.config,
        )?;
        Ok(DemandAnswer {
            answers: filter_bound_answers(
                Some(scratch.facts().relation(goal)),
                pattern.len(),
                &bound,
                &self.alphabet,
                &self.store,
            ),
            stats: scratch.stats(),
            evaluated: true,
        })
    }

    /// The raw relation of `pred`, if present.
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.fx.facts().relation_named(pred)
    }

    /// A [`Model`] clone of the current interpretation (facts, extended
    /// active domain, finalized cumulative stats).
    pub fn snapshot(&self) -> Model {
        self.fx.snapshot()
    }

    /// Cumulative statistics (finalized against the current state).
    pub fn stats(&self) -> EvalStats {
        self.fx.stats()
    }

    /// Render an interned sequence back to a string.
    pub fn render(&self, id: SeqId) -> String {
        self.alphabet.render(self.store.get(id))
    }

    /// The interned id of `pred`, if it occurs in the program or has been
    /// asserted.
    pub fn pred_id(&self, pred: &str) -> Option<PredId> {
        self.fx.facts().lookup_pred(pred)
    }

    /// Every predicate this session knows, in `PredId` order: the compiled
    /// program's predicates followed by any asserted-only ones.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.fx.facts().predicates()
    }

    /// The compiled program this session serves.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Compile-time analysis of this session's program against what has
    /// actually been asserted (see [`crate::analysis`]): the database
    /// predicates are the program's non-head predicates plus every
    /// predicate currently holding base facts, so a recursively defined
    /// predicate stops being provably empty (`SL003`) as soon as a base
    /// fact for it lands. The report's
    /// [`Schedule`](crate::analysis::Schedule) is the one the session's
    /// runs follow: an assert into predicate `p` re-runs only `p`'s
    /// stratum and its downstream cone — every other stratum's planning
    /// finds an empty delta and skips without paying a round.
    pub fn report(&self) -> crate::analysis::ProgramReport {
        let n = self.program.preds.len();
        let mut is_head = vec![false; n];
        for c in &self.program.clauses {
            is_head[c.head.pred.index()] = true;
        }
        let base = self.fx.base_relations();
        let edb: Vec<PredId> = (0..n)
            .filter(|&p| !is_head[p] || base.get(p).is_some_and(|r| !r.is_empty()))
            .map(|p| PredId(p as u32))
            .collect();
        let mut report = crate::analysis::ProgramReport::analyze_with_edb(&self.program, &edb);
        report.attach_fusion(&crate::analysis::fuse::FusePass {
            diagnostics: self.fusion_diagnostics.clone(),
            decisions: self.fusion_decisions.clone(),
            fused: None,
        });
        report
    }

    /// The evaluation configuration (mutable: budgets and thread count may
    /// be adjusted between runs; determinism holds for any `threads`).
    pub fn config_mut(&mut self) -> &mut EvalConfig {
        &mut self.config
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// True when a failed run has poisoned the session.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// The error that poisoned the session, if any.
    pub fn poison(&self) -> Option<&EvalError> {
        self.poisoned.as_ref()
    }

    /// Verify the settled state is a model of `P ∪ db` (Lemma 4): one
    /// T-application over the current interpretation must derive nothing
    /// outside it ([`crate::model::closed_under_tp`]; the base facts are
    /// part of the interpretation by construction, so `db ⊆ I` needs no
    /// separate check). Diagnostic — a successful
    /// [`run`](EngineSession::run) guarantees this; a poisoned session
    /// typically fails it. Deliberately available on poisoned sessions:
    /// the T-application may grow the append-only interner, but it never
    /// changes the *interpretation* (facts and domain), which is what
    /// poisoning freezes.
    pub fn check_model(&mut self) -> Result<bool, EvalError> {
        crate::model::closed_under_tp(
            &self.program,
            self.fx.facts(),
            self.fx.domain(),
            &mut self.store,
            &self.registry,
            &self.config,
        )
    }
}

/// A consistency violation between snapshot, log, and caller environment.
fn mismatch(detail: &str) -> EvalError {
    EvalError::Recovery(RecoveryError::Mismatch {
        detail: detail.to_string(),
    })
}

/// A [`LoggedFact`] for string arguments, split per character exactly like
/// [`Alphabet::seq_of_str`] — interner-independent, so replay re-interns in
/// the same order and reproduces identical ids.
fn logged_fact_strs(pred: &str, args: &[&str]) -> LoggedFact {
    LoggedFact {
        pred: pred.to_string(),
        args: args
            .iter()
            .map(|s| s.chars().map(String::from).collect())
            .collect(),
    }
}

/// Replay a log tail (records already filtered to `index >= snapshot
/// coverage`) against a freshly restored scratch session, stopping before
/// `limit`. A record followed by [`WalRecord::Abort`] was refused and rolled
/// back live, so the pair is skipped whole; a replay failure reports the
/// failing record's index so the caller can decide between truncating a
/// poisoned tail and refusing to touch committed history.
fn replay_records(
    s: &mut EngineSession,
    tail: &[&ReadRecord],
    limit: u64,
) -> Result<(), (u64, EvalError)> {
    let mut i = 0;
    while i < tail.len() {
        let r = tail[i];
        if r.index >= limit {
            break;
        }
        let aborted = tail
            .get(i + 1)
            .is_some_and(|n| matches!(n.record, WalRecord::Abort));
        match &r.record {
            WalRecord::Abort => {}
            _ if aborted => {
                i += 2;
                continue;
            }
            WalRecord::AssertBatch(facts) => {
                s.apply_assert_batch(facts).map_err(|e| (r.index, e))?;
            }
            WalRecord::RetractBatch(facts) => {
                s.apply_retract_batch(facts).map_err(|e| (r.index, e))?;
            }
            WalRecord::Run => s.replay_run().map_err(|e| (r.index, e))?,
        }
        i += 1;
    }
    Ok(())
}
