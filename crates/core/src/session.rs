//! Persistent evaluation sessions: a serving-shaped wrapper around the
//! resumable fixpoint.
//!
//! Batch evaluation ([`crate::eval::evaluate`]) recomputes `lfp(T_{P,db})`
//! from scratch on every call. Under continuously arriving base facts that
//! is the dominant cost: the least fixpoint is *monotone* in the database
//! (Definitions 2–3 — `T_{P,db}` only grows when `db` grows), so a model
//! computed once can be extended by resuming the semi-naive round loop from
//! exactly the newly inserted tuples. [`EngineSession`] packages that:
//!
//! * it **owns** the compiled program, the sequence interners, the
//!   transducer registry, and the [`Fixpoint`] state (facts + extended
//!   active domain + cumulative [`EvalStats`]);
//! * [`assert_fact`](EngineSession::assert_fact) /
//!   [`assert_db`](EngineSession::assert_db) insert base facts *after* a
//!   fixpoint has been reached — window-closure of the new constants
//!   happens at assert time, mirroring the evaluator's pre-closing of
//!   program constants — and the next [`run`](EngineSession::run) resumes
//!   with those facts as the semi-naive delta;
//! * [`query`](EngineSession::query) / [`answers`](EngineSession::answers) /
//!   [`snapshot`](EngineSession::snapshot) read the current interpretation
//!   between updates.
//!
//! # Equivalence with batch evaluation
//!
//! For any split of a database into batches, asserting the batches in order
//! with a `run` after each yields the **same extents** as one batch
//! evaluation of the union — and, like batch evaluation, the result is
//! bit-for-bit identical for every `EvalConfig::threads` setting. (The
//! per-relation *insertion order* may differ from the batch order, because
//! facts settle in arrival order; set-level extents are identical. This is
//! differentially fuzzed in `tests/fuzz_differential.rs` and checked for
//! every paper example in `tests/paper_examples.rs`.)
//!
//! # Error handling: sessions poison
//!
//! If a `run` fails — a budget exhausts mid-commit, a transducer gets stuck
//! — the session's state is a partially committed round: still a *sound*
//! under-approximation (every fact in it is derivable), but not a fixpoint.
//! The session then **poisons**: every later `assert_*`/`run` returns
//! [`EvalError::Poisoned`] wrapping the original error, while the read API
//! (`query`/`snapshot`/`stats`) stays available for post-mortem inspection.
//! Callers that want to retry with larger budgets re-evaluate from scratch;
//! keeping recovery out of scope keeps the equivalence guarantee above
//! simple to state and test.

use crate::ast::Program;
use crate::compile::{compile, CompiledProgram, PredId};
use crate::database::Database;
use crate::engine::Engine;
use crate::eval::interp::Relation;
use crate::eval::{EvalConfig, EvalError, EvalStats, Fixpoint, Model};
use crate::registry::TransducerRegistry;
use seqlog_sequence::{Alphabet, SeqId, SeqStore};

/// A persistent evaluation session over one compiled program.
///
/// Create one with [`Engine::into_session`] (the session takes ownership of
/// the engine's interners and registry). See the [module docs](self) for
/// the update/query protocol and the poisoning contract.
#[derive(Clone)]
pub struct EngineSession {
    alphabet: Alphabet,
    store: SeqStore,
    registry: TransducerRegistry,
    program: CompiledProgram,
    config: EvalConfig,
    fx: Fixpoint,
    poisoned: Option<EvalError>,
}

impl EngineSession {
    /// Open a session: compile `program`, window-close its constants, and
    /// take ownership of `engine`'s alphabet, store, and registry. No
    /// evaluation happens yet — call [`run`](EngineSession::run) after the
    /// first asserts (or immediately, to settle a program with ground
    /// clauses and no base facts).
    pub fn open(engine: Engine, program: &Program, config: EvalConfig) -> Result<Self, EvalError> {
        let compiled = compile(program)?;
        let Engine {
            alphabet,
            mut store,
            registry,
        } = engine;
        for id in compiled.constants() {
            store.close_windows(id);
        }
        let fx = Fixpoint::new(&compiled);
        Ok(Self {
            alphabet,
            store,
            registry,
            program: compiled,
            config,
            fx,
            poisoned: None,
        })
    }

    fn guard_poison(&self) -> Result<(), EvalError> {
        match &self.poisoned {
            Some(original) => Err(EvalError::Poisoned {
                original: Box::new(original.clone()),
            }),
            None => Ok(()),
        }
    }

    /// Eager `max_seq_len` enforcement on the assert path: domain closure
    /// interns O(len²) windows, so an oversized input must be rejected
    /// *before* closure, not discovered by the next run's budget check.
    /// Rejection does **not** poison — the interpretation is untouched and
    /// the session keeps serving (batch evaluation, by contrast, only
    /// discovers oversized database sequences at run time).
    fn check_seq_budget(&self, id: SeqId) -> Result<(), EvalError> {
        let len = self.store.len_of(id);
        if len > self.config.max_seq_len {
            let mut stats = self.fx.stats();
            stats.max_seq_len = stats.max_seq_len.max(len);
            return Err(EvalError::Budget {
                kind: crate::eval::BudgetKind::SeqLen,
                stats,
            });
        }
        Ok(())
    }

    /// Eager cumulative-size enforcement on the assert path: once the fact
    /// count or domain size already exceeds its budget, further asserts
    /// are refused (each accepted assert can overshoot by at most one fact
    /// plus one tuple's window closure — the same bounded overshoot the
    /// commit phase allows). Without this, a flood of asserts between runs
    /// would grow the state unboundedly before any budget fired. Rejection
    /// does not poison.
    fn check_state_budgets(&self) -> Result<(), EvalError> {
        let stats = self.fx.stats();
        if stats.facts > self.config.max_facts {
            return Err(EvalError::Budget {
                kind: crate::eval::BudgetKind::Facts,
                stats,
            });
        }
        if stats.domain_size > self.config.max_domain {
            return Err(EvalError::Budget {
                kind: crate::eval::BudgetKind::DomainSize,
                stats,
            });
        }
        Ok(())
    }

    /// Intern `text` as a sequence and window-close it, so it can serve as
    /// an indexed base as soon as it reaches the matcher. Use with
    /// [`assert_fact_ids`](EngineSession::assert_fact_ids) to build tuples
    /// without going through string arguments twice. Like every `assert_*`,
    /// refused on a poisoned session (the update surface closes uniformly)
    /// and on sequences longer than `max_seq_len` (rejected before the
    /// quadratic window closure; the session stays healthy).
    pub fn assert_seq(&mut self, text: &str) -> Result<SeqId, EvalError> {
        self.guard_poison()?;
        let syms = self.alphabet.seq_of_str(text);
        let id = self.store.intern_vec(syms);
        self.check_seq_budget(id)?;
        self.store.close_windows(id);
        Ok(id)
    }

    /// Assert one base fact with string arguments. Returns `true` when the
    /// fact is new; new facts become the next [`run`](EngineSession::run)'s
    /// semi-naive delta. Duplicate asserts are no-ops; arguments longer
    /// than `max_seq_len` are rejected eagerly (no fact inserted, session
    /// not poisoned).
    pub fn assert_fact(&mut self, pred: &str, args: &[&str]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        self.check_state_budgets()?;
        let mut tuple: Vec<SeqId> = Vec::with_capacity(args.len());
        for s in args {
            let syms = self.alphabet.seq_of_str(s);
            let id = self.store.intern_vec(syms);
            self.check_seq_budget(id)?;
            tuple.push(id);
        }
        let pid = self.fx.pred_id(pred);
        Ok(self.fx.assert_fact(&mut self.store, pid, tuple.into()))
    }

    /// Assert a batch of string-argument facts; returns how many were new.
    pub fn assert_facts(&mut self, facts: &[(&str, &[&str])]) -> Result<usize, EvalError> {
        let mut added = 0;
        for (pred, args) in facts {
            added += usize::from(self.assert_fact(pred, args)?);
        }
        Ok(added)
    }

    /// Assert one base fact over already-interned sequences (ids must come
    /// from this session's store — e.g. from
    /// [`assert_seq`](EngineSession::assert_seq), or from the owning
    /// [`Engine`] before [`Engine::into_session`]).
    pub fn assert_fact_ids(&mut self, pred: &str, tuple: &[SeqId]) -> Result<bool, EvalError> {
        self.guard_poison()?;
        self.check_state_budgets()?;
        for &id in tuple {
            self.check_seq_budget(id)?;
        }
        let pid = self.fx.pred_id(pred);
        Ok(self.fx.assert_fact(&mut self.store, pid, tuple.into()))
    }

    /// Assert every fact of `db` (built against this session's store);
    /// returns how many were new.
    pub fn assert_db(&mut self, db: &Database) -> Result<usize, EvalError> {
        self.guard_poison()?;
        let mut added = 0;
        for (pred, tuple) in db.iter() {
            self.check_state_budgets()?;
            for &id in tuple {
                self.check_seq_budget(id)?;
            }
            let pid = self.fx.pred_id(pred);
            added += usize::from(self.fx.assert_fact(&mut self.store, pid, tuple.into()));
        }
        Ok(added)
    }

    /// Resume the fixpoint over everything asserted since the last run.
    /// Returns the cumulative statistics on success. On failure the error
    /// is returned **and the session poisons** (see the module docs);
    /// `max_rounds` is a per-run budget, the size budgets are cumulative.
    pub fn run(&mut self) -> Result<EvalStats, EvalError> {
        self.guard_poison()?;
        match self
            .fx
            .run(&self.program, &mut self.store, &self.registry, &self.config)
        {
            Ok(()) => Ok(self.fx.stats()),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Rendered tuples of `pred` in insertion order (empty when absent).
    /// Reflects the state as of the last `run` plus any raw asserts since.
    pub fn query(&self, pred: &str) -> Vec<Vec<String>> {
        match self.fx.facts().relation_named(pred) {
            None => Vec::new(),
            Some(rel) => rel
                .iter()
                .map(|t| t.iter().map(|&id| self.render(id)).collect())
                .collect(),
        }
    }

    /// Rendered, sorted, deduplicated single-column answers for `pred`
    /// (the `output(Y)` convention of Definition 5).
    pub fn answers(&self, pred: &str) -> Vec<String> {
        let mut out: Vec<String> = match self.fx.facts().relation_named(pred) {
            None => Vec::new(),
            Some(rel) => rel
                .iter()
                .filter(|t| t.len() == 1)
                .map(|t| self.render(t[0]))
                .collect(),
        };
        out.sort();
        out.dedup();
        out
    }

    /// The raw relation of `pred`, if present.
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.fx.facts().relation_named(pred)
    }

    /// A [`Model`] clone of the current interpretation (facts, extended
    /// active domain, finalized cumulative stats).
    pub fn snapshot(&self) -> Model {
        self.fx.snapshot()
    }

    /// Cumulative statistics (finalized against the current state).
    pub fn stats(&self) -> EvalStats {
        self.fx.stats()
    }

    /// Render an interned sequence back to a string.
    pub fn render(&self, id: SeqId) -> String {
        self.alphabet.render(self.store.get(id))
    }

    /// The interned id of `pred`, if it occurs in the program or has been
    /// asserted.
    pub fn pred_id(&self, pred: &str) -> Option<PredId> {
        self.fx.facts().lookup_pred(pred)
    }

    /// Every predicate this session knows, in `PredId` order: the compiled
    /// program's predicates followed by any asserted-only ones.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.fx.facts().predicates()
    }

    /// The compiled program this session serves.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The evaluation configuration (mutable: budgets and thread count may
    /// be adjusted between runs; determinism holds for any `threads`).
    pub fn config_mut(&mut self) -> &mut EvalConfig {
        &mut self.config
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// True when a failed run has poisoned the session.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// The error that poisoned the session, if any.
    pub fn poison(&self) -> Option<&EvalError> {
        self.poisoned.as_ref()
    }

    /// Verify the settled state is a model of `P ∪ db` (Lemma 4): one
    /// T-application over the current interpretation must derive nothing
    /// outside it ([`crate::model::closed_under_tp`]; the base facts are
    /// part of the interpretation by construction, so `db ⊆ I` needs no
    /// separate check). Diagnostic — a successful
    /// [`run`](EngineSession::run) guarantees this; a poisoned session
    /// typically fails it. Deliberately available on poisoned sessions:
    /// the T-application may grow the append-only interner, but it never
    /// changes the *interpretation* (facts and domain), which is what
    /// poisoning freezes.
    pub fn check_model(&mut self) -> Result<bool, EvalError> {
        crate::model::closed_under_tp(
            &self.program,
            self.fx.facts(),
            self.fx.domain(),
            &mut self.store,
            &self.registry,
            &self.config,
        )
    }
}
