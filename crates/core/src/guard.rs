//! The guarding transformation of Appendix B (Theorem 10).
//!
//! Given a program `P`, build `P^G`:
//!
//! 1. introduce a fresh unary predicate `dom` meaning "X is a sequence in
//!    the extended active domain";
//! 2. replace each clause `head :- body` by
//!    `head :- body, dom(X1), …, dom(Xm)` for its sequence variables
//!    (clause (1) of the construction; we add `dom(X)` only for variables
//!    that are not already guarded, which yields the same guarded semantics
//!    with fewer redundant premises);
//! 3. add the closure clause `dom(X[M:N]) :- dom(X)` (clause (2)); and
//! 4. for every predicate `p` of arity m mentioned in `P` or the database
//!    schema, add `dom(Xi) :- p(X1,…,Xm)` for each position (clauses (3)).
//!
//! `P^G` is guarded, computes the same extents for every predicate of
//! `P ∪ db`, and has a finite semantics iff `P` does (Theorem 10 /
//! Lemmas 5–7).

use crate::ast::{Atom, BodyLit, Clause, IndexTerm, Program, SeqTerm};
use crate::safety::is_guarded;

/// The reserved predicate name introduced by guarding.
pub const DOM_PRED: &str = "dom";

/// Arities of the predicates mentioned in a program (first-seen arity wins;
/// Sequence Datalog predicates have fixed arity).
fn arities(program: &Program, extra_schema: &[(String, usize)]) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = Vec::new();
    let mut push = |name: &str, arity: usize| {
        if !out.iter().any(|(n, _)| n == name) {
            out.push((name.to_string(), arity));
        }
    };
    for c in &program.clauses {
        push(&c.head.pred, c.head.args.len());
        for l in &c.body {
            if let BodyLit::Atom(a) = l {
                push(&a.pred, a.args.len());
            }
        }
    }
    for (n, a) in extra_schema {
        push(n, *a);
    }
    out
}

/// Build the guarded program `P^G` (Theorem 10). `extra_schema` lists base
/// predicates of the database that the program may not mention explicitly.
pub fn guard_program(program: &Program, extra_schema: &[(String, usize)]) -> Program {
    let mut clauses = Vec::with_capacity(program.clauses.len() + 8);

    // (1) Guard every clause.
    for c in &program.clauses {
        if is_guarded(c) {
            clauses.push(c.clone());
            continue;
        }
        let mut seq_vars = Vec::new();
        let mut idx_vars = Vec::new();
        for t in &c.head.args {
            t.vars(&mut seq_vars, &mut idx_vars);
        }
        for l in &c.body {
            match l {
                BodyLit::Atom(a) => {
                    for t in &a.args {
                        t.vars(&mut seq_vars, &mut idx_vars);
                    }
                }
                BodyLit::Eq(a, b) | BodyLit::Neq(a, b) => {
                    a.vars(&mut seq_vars, &mut idx_vars);
                    b.vars(&mut seq_vars, &mut idx_vars);
                }
            }
        }
        seq_vars.sort();
        seq_vars.dedup();
        let mut body = c.body.clone();
        for v in seq_vars {
            let already = c.body.iter().any(|l| match l {
                BodyLit::Atom(a) => a
                    .args
                    .iter()
                    .any(|t| matches!(t, SeqTerm::Var(x) if *x == v)),
                _ => false,
            });
            if !already {
                body.push(BodyLit::Atom(Atom {
                    pred: DOM_PRED.into(),
                    args: vec![SeqTerm::Var(v)],
                }));
            }
        }
        clauses.push(Clause {
            head: c.head.clone(),
            body,
        });
    }

    // (2) dom is closed under contiguous subsequences.
    clauses.push(Clause {
        head: Atom {
            pred: DOM_PRED.into(),
            args: vec![SeqTerm::Indexed {
                base: crate::ast::IndexedBase::Var("X".into()),
                lo: IndexTerm::Var("M".into()),
                hi: IndexTerm::Var("N".into()),
            }],
        },
        body: vec![BodyLit::Atom(Atom {
            pred: DOM_PRED.into(),
            args: vec![SeqTerm::Var("X".into())],
        })],
    });

    // (3) dom contains every sequence occurring in any predicate.
    for (pred, arity) in arities(program, extra_schema) {
        if pred == DOM_PRED {
            continue;
        }
        let vars: Vec<SeqTerm> = (0..arity).map(|i| SeqTerm::Var(format!("X{i}"))).collect();
        for i in 0..arity {
            clauses.push(Clause {
                head: Atom {
                    pred: DOM_PRED.into(),
                    args: vec![vars[i].clone()],
                },
                body: vec![BodyLit::Atom(Atom {
                    pred: pred.clone(),
                    args: vars.clone(),
                })],
            });
        }
    }

    Program { clauses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::engine::Engine;

    #[test]
    fn guarded_output_is_guarded() {
        let mut e = Engine::new();
        let p = e.parse_program("p(X) :- q(X[1]).").unwrap();
        assert!(!is_guarded(&p.clauses[0]));
        let g = guard_program(&p, &[]);
        assert!(g.clauses.iter().all(is_guarded), "{g:?}");
        // dom closure clause and projection clauses were added.
        assert!(g.clauses.iter().any(|c| c.head.pred == DOM_PRED));
    }

    #[test]
    fn already_guarded_clauses_pass_through() {
        let mut e = Engine::new();
        let p = e.parse_program("p(X[1]) :- q(X).").unwrap();
        let g = guard_program(&p, &[]);
        assert_eq!(g.clauses[0], p.clauses[0]);
    }

    #[test]
    fn theorem_10_same_answers_on_paper_example() {
        // p(X) :- q(X[1]) asks for domain members whose first symbol is in
        // q. Unguarded and guarded versions must agree on p.
        let mut e = Engine::new();
        let p = e.parse_program("p(X) :- q(X[1]).").unwrap();
        let g = guard_program(&p, &[("seed".into(), 1)]);

        let mut db = Database::new();
        e.add_fact(&mut db, "seed", &["abc"]);
        e.add_fact(&mut db, "q", &["a"]);

        let m1 = e.evaluate(&p, &db).unwrap();
        let m2 = e.evaluate(&g, &db).unwrap();
        let mut a1 = e.answers(&m1, "p");
        let mut a2 = e.answers(&m2, "p");
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2);
        // "a", "ab", "abc" are the domain members starting with 'a'.
        assert_eq!(a1, vec!["a".to_string(), "ab".into(), "abc".into()]);
    }

    #[test]
    fn schema_only_predicates_get_projection_clauses() {
        let mut e = Engine::new();
        let p = e.parse_program("p(X) :- q(X).").unwrap();
        let g = guard_program(&p, &[("base2".into(), 2)]);
        let projections: Vec<&Clause> = g
            .clauses
            .iter()
            .filter(|c| {
                c.head.pred == DOM_PRED
                    && c.body
                        .iter()
                        .any(|l| matches!(l, BodyLit::Atom(a) if a.pred == "base2"))
            })
            .collect();
        assert_eq!(projections.len(), 2);
    }
}
