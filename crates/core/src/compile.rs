//! Validation and compilation of programs for the evaluator.
//!
//! Compilation performs the static checks of Section 3.1 and Section 7.1:
//!
//! * constructive (`++`) and transducer terms may appear **only in heads**;
//! * every variable is used consistently as either a sequence variable or an
//!   index variable (the paper's V_Σ / V_I are disjoint; we infer the kind
//!   from positions instead of requiring an annotation);
//!
//! and resolves variable names to dense slots, computes guardedness
//! (Appendix B: a sequence variable is *guarded* when it occurs in the body
//! as a direct argument of some predicate) and records which clauses are
//! constructive. The result is the [`CompiledProgram`] consumed by
//! [`crate::eval`].

use crate::ast::{Atom, BodyLit, Clause, IndexTerm, IndexedBase, Program, SeqTerm};
use seqlog_sequence::{FxHashMap, SeqId};
use std::fmt;

/// Dense handle of an interned predicate name (see [`PredTable`]).
///
/// All hot-path data structures — [`crate::eval::interp::FactStore`]
/// relations, semi-naive size snapshots, the evaluator's `new_facts`
/// buffer — are addressed by `PredId`, so the steady-state evaluation loop
/// never hashes or allocates a predicate-name `String`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

impl PredId {
    /// The raw table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PredId({})", self.0)
    }
}

/// An append-only interner of predicate names.
///
/// Compilation interns every head/body predicate; evaluation seeds its
/// [`crate::eval::interp::FactStore`] from the program's table so compiled
/// `PredId`s index the store's relation vector directly, and extends the
/// same table with database-only predicates.
#[derive(Clone, Debug, Default)]
pub struct PredTable {
    names: Vec<String>,
    ids: FxHashMap<String, u32>,
}

impl PredTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its dense id. Idempotent.
    pub fn intern(&mut self, name: &str) -> PredId {
        if let Some(&id) = self.ids.get(name) {
            return PredId(id);
        }
        let id = u32::try_from(self.names.len()).expect("predicate table overflow");
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        PredId(id)
    }

    /// Look up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<PredId> {
        self.ids.get(name).copied().map(PredId)
    }

    /// The name of an interned predicate.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: PredId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned predicates.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no predicate has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (PredId(i as u32), n.as_str()))
    }

    /// True when `other`'s ids are a prefix-compatible extension of this
    /// table (same names at the same ids for all of `self`).
    pub fn is_prefix_of(&self, other: &PredTable) -> bool {
        self.names.len() <= other.names.len()
            && self.names.iter().zip(&other.names).all(|(a, b)| a == b)
    }
}

/// A compiled index term: variables are slots into the index bindings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CIdx {
    /// Integer literal.
    Int(i64),
    /// Index-variable slot.
    Var(u16),
    /// `end` (resolved against the enclosing base's length).
    End,
    /// Addition.
    Add(Box<CIdx>, Box<CIdx>),
    /// Subtraction.
    Sub(Box<CIdx>, Box<CIdx>),
}

/// The base of a compiled indexed term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CBase {
    /// Sequence-variable slot.
    Var(u16),
    /// Interned constant.
    Const(SeqId),
}

/// A compiled sequence term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CSeq {
    /// Interned constant.
    Const(SeqId),
    /// Sequence-variable slot.
    Var(u16),
    /// `base[lo:hi]`.
    Indexed {
        /// Base (variable slot or constant).
        base: CBase,
        /// Lower index.
        lo: CIdx,
        /// Upper index.
        hi: CIdx,
    },
    /// Concatenation (heads only).
    Concat(Box<CSeq>, Box<CSeq>),
    /// Transducer call (heads only); resolved by name against the engine's
    /// registry at evaluation time.
    Transducer {
        /// Registered machine name.
        name: String,
        /// Input terms.
        args: Vec<CSeq>,
    },
}

impl CSeq {
    /// Interned sequence constants occurring in the term (including indexed
    /// bases).
    pub fn constants(&self, out: &mut Vec<SeqId>) {
        match self {
            CSeq::Const(id) => out.push(*id),
            CSeq::Var(_) => {}
            CSeq::Indexed { base, .. } => {
                if let CBase::Const(id) = base {
                    out.push(*id);
                }
            }
            CSeq::Concat(a, b) => {
                a.constants(out);
                b.constants(out);
            }
            CSeq::Transducer { args, .. } => {
                for a in args {
                    a.constants(out);
                }
            }
        }
    }

    /// Sequence-variable slots occurring in the term.
    pub fn seq_vars(&self, out: &mut Vec<u16>) {
        match self {
            CSeq::Const(_) => {}
            CSeq::Var(v) => out.push(*v),
            CSeq::Indexed { base, .. } => {
                if let CBase::Var(v) = base {
                    out.push(*v);
                }
            }
            CSeq::Concat(a, b) => {
                a.seq_vars(out);
                b.seq_vars(out);
            }
            CSeq::Transducer { args, .. } => {
                for a in args {
                    a.seq_vars(out);
                }
            }
        }
    }

    /// Index-variable slots occurring in the term.
    pub fn idx_vars(&self, out: &mut Vec<u16>) {
        fn idx(t: &CIdx, out: &mut Vec<u16>) {
            match t {
                CIdx::Int(_) | CIdx::End => {}
                CIdx::Var(v) => out.push(*v),
                CIdx::Add(a, b) | CIdx::Sub(a, b) => {
                    idx(a, out);
                    idx(b, out);
                }
            }
        }
        match self {
            CSeq::Const(_) | CSeq::Var(_) => {}
            CSeq::Indexed { lo, hi, .. } => {
                idx(lo, out);
                idx(hi, out);
            }
            CSeq::Concat(a, b) => {
                a.idx_vars(out);
                b.idx_vars(out);
            }
            CSeq::Transducer { args, .. } => {
                for a in args {
                    a.idx_vars(out);
                }
            }
        }
    }
}

/// A compiled atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CAtom {
    /// Interned predicate id (resolve names via [`CompiledProgram::preds`]).
    pub pred: PredId,
    /// Compiled argument terms.
    pub args: Vec<CSeq>,
}

/// A compiled body literal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CBody {
    /// Positive atom.
    Atom(CAtom),
    /// Equality.
    Eq(CSeq, CSeq),
    /// Inequality.
    Neq(CSeq, CSeq),
}

/// A compiled clause with variable-slot metadata.
#[derive(Clone, Debug)]
pub struct CompiledClause {
    /// Compiled head.
    pub head: CAtom,
    /// Compiled body.
    pub body: Vec<CBody>,
    /// Number of sequence-variable slots.
    pub n_seq: usize,
    /// Number of index-variable slots.
    pub n_idx: usize,
    /// Sequence-variable names by slot.
    pub seq_names: Vec<String>,
    /// Index-variable names by slot.
    pub idx_names: Vec<String>,
    /// Guardedness per sequence-variable slot (Appendix B).
    pub guarded_seq: Vec<bool>,
    /// Whether the head contains a constructive or transducer term.
    pub constructive: bool,
    /// Whether evaluating this clause may consult the extended active
    /// domain beyond the matched facts (free variables or unguarded bases) —
    /// such clauses must be re-evaluated when the domain grows.
    pub domain_sensitive: bool,
}

impl CompiledClause {
    /// True when every sequence variable is guarded (Appendix B).
    pub fn is_guarded(&self) -> bool {
        self.guarded_seq.iter().all(|&g| g)
    }
}

/// A compiled program.
#[derive(Clone, Debug, Default)]
pub struct CompiledProgram {
    /// Compiled clauses in source order.
    pub clauses: Vec<CompiledClause>,
    /// Predicate-name interner; every `PredId` in `clauses` indexes it.
    pub preds: PredTable,
    /// The SCC-stratified evaluation schedule (see [`crate::analysis`]);
    /// the evaluator's default scheduling mode walks it in topological
    /// order instead of rescanning every clause each round.
    pub schedule: crate::analysis::Schedule,
}

impl CompiledProgram {
    /// Predicate names interned by compilation, in `PredId` order (heads
    /// and bodies alike) — the program-declared subset of a session's
    /// [`crate::session::EngineSession::predicates`], which additionally
    /// lists asserted-only predicates.
    pub fn pred_names(&self) -> impl Iterator<Item = &str> {
        self.preds.iter().map(|(_, n)| n)
    }

    /// Every sequence constant occurring in a clause **body** (with
    /// duplicates). The evaluator window-closes these in the store before
    /// matching, so the read-only matcher can resolve any window of a
    /// constant by lookup — a body constant can become a variable binding
    /// through unification and then serve as an indexed base. Head-only
    /// constants never reach the matcher: heads are evaluated in the commit
    /// phase, and their values are closed when they enter the domain.
    pub fn constants(&self) -> Vec<SeqId> {
        let mut out = Vec::new();
        for clause in &self.clauses {
            for lit in &clause.body {
                match lit {
                    CBody::Atom(a) => {
                        for t in &a.args {
                            t.constants(&mut out);
                        }
                    }
                    CBody::Eq(l, r) | CBody::Neq(l, r) => {
                        l.constants(&mut out);
                        r.constants(&mut out);
                    }
                }
            }
        }
        out
    }
}

/// Static validation errors (Section 3.1 / 7.1 restrictions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A constructive (`++`) or transducer term occurs in a body literal.
    ConstructiveInBody {
        /// 0-based clause index.
        clause: usize,
    },
    /// The same name is used both as a sequence and as an index variable.
    VarKindConflict {
        /// 0-based clause index.
        clause: usize,
        /// Offending variable name.
        var: String,
    },
    /// A clause body exceeds the evaluator's literal limit (the matcher
    /// tracks the unsolved-literal set in a 128-bit mask).
    BodyTooLarge {
        /// 0-based clause index.
        clause: usize,
        /// Number of body literals.
        len: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ConstructiveInBody { clause } => write!(
                f,
                "clause {clause}: constructive terms may appear only in rule heads (Section 3.1)"
            ),
            Self::VarKindConflict { clause, var } => write!(
                f,
                "clause {clause}: variable {var} is used both as a sequence and as an index variable"
            ),
            Self::BodyTooLarge { clause, len } => write!(
                f,
                "clause {clause}: body has {len} literals, exceeding the evaluator limit of 128"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile and validate a program.
pub fn compile(program: &Program) -> Result<CompiledProgram, CompileError> {
    let mut preds = PredTable::new();
    let clauses = program
        .clauses
        .iter()
        .enumerate()
        .map(|(i, c)| compile_clause(i, c, &mut preds))
        .collect::<Result<Vec<_>, _>>()?;
    let schedule = crate::analysis::Schedule::build(&clauses, preds.len());
    Ok(CompiledProgram {
        clauses,
        preds,
        schedule,
    })
}

struct VarTable {
    clause: usize,
    seq: FxHashMap<String, u16>,
    idx: FxHashMap<String, u16>,
    seq_names: Vec<String>,
    idx_names: Vec<String>,
}

impl VarTable {
    fn seq_slot(&mut self, name: &str) -> Result<u16, CompileError> {
        if self.idx.contains_key(name) {
            return Err(CompileError::VarKindConflict {
                clause: self.clause,
                var: name.to_string(),
            });
        }
        if let Some(&s) = self.seq.get(name) {
            return Ok(s);
        }
        let s = self.seq_names.len() as u16;
        self.seq.insert(name.to_string(), s);
        self.seq_names.push(name.to_string());
        Ok(s)
    }

    fn idx_slot(&mut self, name: &str) -> Result<u16, CompileError> {
        if self.seq.contains_key(name) {
            return Err(CompileError::VarKindConflict {
                clause: self.clause,
                var: name.to_string(),
            });
        }
        if let Some(&s) = self.idx.get(name) {
            return Ok(s);
        }
        let s = self.idx_names.len() as u16;
        self.idx.insert(name.to_string(), s);
        self.idx_names.push(name.to_string());
        Ok(s)
    }
}

fn compile_clause(
    ci: usize,
    clause: &Clause,
    preds: &mut PredTable,
) -> Result<CompiledClause, CompileError> {
    if clause.body.len() > 128 {
        return Err(CompileError::BodyTooLarge {
            clause: ci,
            len: clause.body.len(),
        });
    }
    let mut vt = VarTable {
        clause: ci,
        seq: FxHashMap::default(),
        idx: FxHashMap::default(),
        seq_names: Vec::new(),
        idx_names: Vec::new(),
    };

    // Compile body first so body-variable slots come first (harmless but
    // keeps free head variables at the tail).
    let mut body = Vec::with_capacity(clause.body.len());
    for lit in &clause.body {
        match lit {
            BodyLit::Atom(a) => {
                for t in &a.args {
                    if t.is_constructive() {
                        return Err(CompileError::ConstructiveInBody { clause: ci });
                    }
                }
                body.push(CBody::Atom(compile_atom(a, &mut vt, preds)?));
            }
            BodyLit::Eq(l, r) | BodyLit::Neq(l, r) => {
                if l.is_constructive() || r.is_constructive() {
                    return Err(CompileError::ConstructiveInBody { clause: ci });
                }
                let cl = compile_seq(l, &mut vt)?;
                let cr = compile_seq(r, &mut vt)?;
                body.push(match lit {
                    BodyLit::Eq(..) => CBody::Eq(cl, cr),
                    _ => CBody::Neq(cl, cr),
                });
            }
        }
    }
    let head = compile_atom(&clause.head, &mut vt, preds)?;

    // Guardedness (Appendix B): a sequence variable is guarded when it
    // occurs as a *whole argument* of some body atom.
    let mut guarded_seq = vec![false; vt.seq_names.len()];
    for lit in &body {
        if let CBody::Atom(a) = lit {
            for t in &a.args {
                if let CSeq::Var(v) = t {
                    guarded_seq[*v as usize] = true;
                }
            }
        }
    }

    // Domain sensitivity: evaluation consults the extended active domain
    // when some sequence variable is unguarded, or when some index variable
    // never occurs inside a body atom (it is then enumerated over the
    // integer range).
    let mut idx_in_body_atom = vec![false; vt.idx_names.len()];
    for lit in &body {
        if let CBody::Atom(a) = lit {
            let mut vs = Vec::new();
            for t in &a.args {
                t.idx_vars(&mut vs);
            }
            for v in vs {
                idx_in_body_atom[v as usize] = true;
            }
        }
    }
    let domain_sensitive = guarded_seq.iter().any(|&g| !g) || idx_in_body_atom.iter().any(|&g| !g);

    Ok(CompiledClause {
        head,
        body,
        n_seq: vt.seq_names.len(),
        n_idx: vt.idx_names.len(),
        seq_names: vt.seq_names,
        idx_names: vt.idx_names,
        guarded_seq,
        constructive: clause.is_constructive(),
        domain_sensitive,
    })
}

fn compile_atom(a: &Atom, vt: &mut VarTable, preds: &mut PredTable) -> Result<CAtom, CompileError> {
    Ok(CAtom {
        pred: preds.intern(&a.pred),
        args: a
            .args
            .iter()
            .map(|t| compile_seq(t, vt))
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn compile_seq(t: &SeqTerm, vt: &mut VarTable) -> Result<CSeq, CompileError> {
    Ok(match t {
        SeqTerm::Const(id) => CSeq::Const(*id),
        SeqTerm::Var(v) => CSeq::Var(vt.seq_slot(v)?),
        SeqTerm::Indexed { base, lo, hi } => CSeq::Indexed {
            base: match base {
                IndexedBase::Var(v) => CBase::Var(vt.seq_slot(v)?),
                IndexedBase::Const(id) => CBase::Const(*id),
            },
            lo: compile_idx(lo, vt)?,
            hi: compile_idx(hi, vt)?,
        },
        SeqTerm::Concat(a, b) => {
            CSeq::Concat(Box::new(compile_seq(a, vt)?), Box::new(compile_seq(b, vt)?))
        }
        SeqTerm::Transducer { name, args } => CSeq::Transducer {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| compile_seq(a, vt))
                .collect::<Result<Vec<_>, _>>()?,
        },
    })
}

fn compile_idx(t: &IndexTerm, vt: &mut VarTable) -> Result<CIdx, CompileError> {
    Ok(match t {
        IndexTerm::Int(i) => CIdx::Int(*i),
        IndexTerm::Var(v) => CIdx::Var(vt.idx_slot(v)?),
        IndexTerm::End => CIdx::End,
        IndexTerm::Add(a, b) => {
            CIdx::Add(Box::new(compile_idx(a, vt)?), Box::new(compile_idx(b, vt)?))
        }
        IndexTerm::Sub(a, b) => {
            CIdx::Sub(Box::new(compile_idx(a, vt)?), Box::new(compile_idx(b, vt)?))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use seqlog_sequence::{Alphabet, SeqStore};

    fn compiled(src: &str) -> Result<CompiledProgram, CompileError> {
        let mut a = Alphabet::new();
        let mut st = SeqStore::new();
        let p = parse_program(src, &mut a, &mut st).unwrap();
        compile(&p)
    }

    #[test]
    fn rejects_constructive_terms_in_bodies() {
        let e = compiled("p(X) :- q(X ++ X).").unwrap_err();
        assert!(matches!(e, CompileError::ConstructiveInBody { clause: 0 }));
        let e = compiled("p(X) :- q(X), X = Y ++ Z.").unwrap_err();
        assert!(matches!(e, CompileError::ConstructiveInBody { clause: 0 }));
        let e = compiled("p(X) :- q(@t(X)).").unwrap_err();
        assert!(matches!(e, CompileError::ConstructiveInBody { clause: 0 }));
    }

    #[test]
    fn rejects_variable_kind_conflicts() {
        // X used as a sequence variable in q(X) and as an index variable in
        // the head.
        let e = compiled("p(Y[X:end]) :- q(X, Y).").unwrap_err();
        assert!(matches!(e, CompileError::VarKindConflict { var, .. } if var == "X"));
    }

    #[test]
    fn guardedness_follows_appendix_b() {
        // p(X[1]) :- q(X): X guarded.
        let cp = compiled("p(X[1]) :- q(X).").unwrap();
        assert!(cp.clauses[0].is_guarded());
        // p(X) :- q(X[1]): X unguarded.
        let cp = compiled("p(X) :- q(X[1]).").unwrap();
        assert!(!cp.clauses[0].is_guarded());
        assert!(cp.clauses[0].domain_sensitive);
    }

    #[test]
    fn domain_sensitivity_of_suffix_rule() {
        // N occurs only in the head, so the rule enumerates the integer
        // range — domain sensitive.
        let cp = compiled("suffix(X[N:end]) :- r(X).").unwrap();
        assert!(cp.clauses[0].domain_sensitive);
        assert!(cp.clauses[0].is_guarded());
        // X appears only inside an indexed term in the body — unguarded
        // (Appendix B), hence domain sensitive.
        let cp = compiled("p(X[1:N]) :- q(X[1:N]).").unwrap();
        assert!(!cp.clauses[0].is_guarded());
        assert!(cp.clauses[0].domain_sensitive);
        // Guarded base, index var bound inside a body atom — insensitive.
        let cp = compiled("p(X[1:N]) :- q(X, X[1:N]).").unwrap();
        assert!(cp.clauses[0].is_guarded());
        assert!(!cp.clauses[0].domain_sensitive);
    }

    #[test]
    fn slots_are_shared_across_occurrences() {
        let cp = compiled("p(X, X) :- q(X, N, N).").unwrap_err_or_ok();
        // q(X, N, N) uses N as a *sequence* variable (whole argument), so
        // this is fine and N is a sequence var.
        let cp = cp.expect("N used consistently as sequence variable");
        let c = &cp.clauses[0];
        assert_eq!(c.n_seq, 2);
        assert_eq!(c.n_idx, 0);
    }

    trait UnwrapErrOrOk<T, E> {
        fn unwrap_err_or_ok(self) -> Result<T, E>;
    }
    impl<T, E> UnwrapErrOrOk<T, E> for Result<T, E> {
        fn unwrap_err_or_ok(self) -> Result<T, E> {
            self
        }
    }

    #[test]
    fn constructive_flag_matches_ast() {
        let cp = compiled("p(X ++ Y) :- q(X), q(Y).").unwrap();
        assert!(cp.clauses[0].constructive);
        let cp = compiled("p(X[1:2]) :- q(X).").unwrap();
        assert!(!cp.clauses[0].constructive);
    }
}
