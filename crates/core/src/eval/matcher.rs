//! Body matching: enumerating the substitutions of Definition 4.
//!
//! Given a clause body and the current interpretation, this module
//! enumerates every substitution θ *based on the extended active domain*
//! (Definition 1) that is defined at the clause and satisfies the body. The
//! search binds variables from facts wherever possible (joins with greedy
//! literal scheduling) and falls back to honest domain enumeration exactly
//! where the semantics requires it: unguarded sequence variables range over
//! the domain's member sequences, and index variables that no fact
//! determines range over the integers `0..=lmax+1`.
//!
//! Unification against indexed terms is occurrence-driven: matching
//! `X[N1:N2] = v` with `X` bound finds the occurrences of `v` inside `X` and
//! solves the index equations `N1 = start`, `N2 = end` — multiple
//! occurrences yield multiple substitutions, as the fixpoint semantics
//! demands.

use crate::compile::{CBase, CBody, CIdx, CSeq, CompiledClause};
use crate::eval::interp::FactStore;
use seqlog_sequence::{ExtendedDomain, SeqId, SeqStore};

/// A partial substitution over a clause's variable slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bindings {
    /// Sequence-variable slots.
    pub seq: Vec<Option<SeqId>>,
    /// Index-variable slots.
    pub idx: Vec<Option<i64>>,
}

impl Bindings {
    /// Fresh, all-unbound bindings for a clause.
    pub fn for_clause(c: &CompiledClause) -> Self {
        Self {
            seq: vec![None; c.n_seq],
            idx: vec![None; c.n_idx],
        }
    }
}

/// Outcome of evaluating a term under a partial substitution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TermVal {
    /// Some variable in the term is still unbound.
    Unbound,
    /// All variables bound but the term is undefined (index out of range,
    /// Section 3.2).
    Undefined,
    /// The term's value.
    Val(SeqId),
}

/// Read-only context for matching (the store is mutable because evaluating
/// indexed terms interns their result).
pub struct MatchEnv<'a> {
    /// Sequence interner.
    pub store: &'a mut SeqStore,
    /// Extended active domain of the current interpretation.
    pub domain: &'a ExtendedDomain,
    /// Current interpretation.
    pub facts: &'a FactStore,
    /// `lmax + 1` — the top of the integer range.
    pub int_upper: i64,
}

/// Evaluate an index term. `end_val` is the length of the enclosing indexed
/// term's base. `None` when the term contains an unbound variable.
pub fn eval_idx(t: &CIdx, b: &Bindings, end_val: i64) -> Option<i64> {
    match t {
        CIdx::Int(i) => Some(*i),
        CIdx::Var(v) => b.idx[*v as usize],
        CIdx::End => Some(end_val),
        CIdx::Add(x, y) => Some(eval_idx(x, b, end_val)? + eval_idx(y, b, end_val)?),
        CIdx::Sub(x, y) => Some(eval_idx(x, b, end_val)? - eval_idx(y, b, end_val)?),
    }
}

/// Evaluate a non-constructive sequence term under `b`.
pub fn eval_seq(t: &CSeq, b: &Bindings, store: &mut SeqStore) -> TermVal {
    match t {
        CSeq::Const(id) => TermVal::Val(*id),
        CSeq::Var(v) => match b.seq[*v as usize] {
            Some(id) => TermVal::Val(id),
            None => TermVal::Unbound,
        },
        CSeq::Indexed { base, lo, hi } => {
            let base_id = match base {
                CBase::Const(id) => *id,
                CBase::Var(v) => match b.seq[*v as usize] {
                    Some(id) => id,
                    None => return TermVal::Unbound,
                },
            };
            let end_val = store.len_of(base_id) as i64;
            let (Some(n1), Some(n2)) = (eval_idx(lo, b, end_val), eval_idx(hi, b, end_val)) else {
                return TermVal::Unbound;
            };
            match store.subseq(base_id, n1, n2) {
                Some(id) => TermVal::Val(id),
                None => TermVal::Undefined,
            }
        }
        CSeq::Concat(..) | CSeq::Transducer { .. } => {
            unreachable!("constructive terms are head-only (validated)")
        }
    }
}

/// Solve `t = target` for the unbound index variables of `t`, appending each
/// solution to `out`. Uses linear isolation when one side of `+`/`-` is
/// ground and falls back to enumerating a variable over `0..=int_upper`
/// otherwise (index variables range over the domain integers).
pub fn solve_idx(
    t: &CIdx,
    target: i64,
    end_val: i64,
    b: &Bindings,
    int_upper: i64,
    out: &mut Vec<Bindings>,
) {
    match t {
        CIdx::Int(i) => {
            if *i == target {
                out.push(b.clone());
            }
        }
        CIdx::End => {
            if end_val == target {
                out.push(b.clone());
            }
        }
        CIdx::Var(v) => match b.idx[*v as usize] {
            Some(val) => {
                if val == target {
                    out.push(b.clone());
                }
            }
            None => {
                if (0..=int_upper).contains(&target) {
                    let mut b2 = b.clone();
                    b2.idx[*v as usize] = Some(target);
                    out.push(b2);
                }
            }
        },
        CIdx::Add(x, y) => match (eval_idx(x, b, end_val), eval_idx(y, b, end_val)) {
            (Some(xv), _) => solve_idx(y, target - xv, end_val, b, int_upper, out),
            (None, Some(yv)) => solve_idx(x, target - yv, end_val, b, int_upper, out),
            (None, None) => enumerate_then_solve(t, target, end_val, b, int_upper, out),
        },
        CIdx::Sub(x, y) => match (eval_idx(x, b, end_val), eval_idx(y, b, end_val)) {
            (Some(xv), _) => solve_idx(y, xv - target, end_val, b, int_upper, out),
            (None, Some(yv)) => solve_idx(x, target + yv, end_val, b, int_upper, out),
            (None, None) => enumerate_then_solve(t, target, end_val, b, int_upper, out),
        },
    }
}

/// Fallback for index terms with two unbound variables (e.g. `N+M`): bind
/// the first unbound variable to each domain integer and retry.
fn enumerate_then_solve(
    t: &CIdx,
    target: i64,
    end_val: i64,
    b: &Bindings,
    int_upper: i64,
    out: &mut Vec<Bindings>,
) {
    let Some(v) = first_unbound_idx(t, b) else {
        return;
    };
    for n in 0..=int_upper {
        let mut b2 = b.clone();
        b2.idx[v as usize] = Some(n);
        solve_idx(t, target, end_val, &b2, int_upper, out);
    }
}

fn first_unbound_idx(t: &CIdx, b: &Bindings) -> Option<u16> {
    match t {
        CIdx::Int(_) | CIdx::End => None,
        CIdx::Var(v) => b.idx[*v as usize].is_none().then_some(*v),
        CIdx::Add(x, y) | CIdx::Sub(x, y) => {
            first_unbound_idx(x, b).or_else(|| first_unbound_idx(y, b))
        }
    }
}

/// Unify a non-constructive term with a concrete value, appending every
/// extended substitution to `out`.
pub fn unify(t: &CSeq, v: SeqId, b: &Bindings, env: &mut MatchEnv<'_>, out: &mut Vec<Bindings>) {
    match t {
        CSeq::Const(id) => {
            if *id == v {
                out.push(b.clone());
            }
        }
        CSeq::Var(x) => match b.seq[*x as usize] {
            Some(id) => {
                if id == v {
                    out.push(b.clone());
                }
            }
            None => {
                let mut b2 = b.clone();
                b2.seq[*x as usize] = Some(v);
                out.push(b2);
            }
        },
        CSeq::Indexed { base, lo, hi } => {
            match base {
                CBase::Const(id) => unify_indexed(*id, lo, hi, v, b, env, out),
                CBase::Var(x) => match b.seq[*x as usize] {
                    Some(id) => unify_indexed(id, lo, hi, v, b, env, out),
                    None => {
                        // The base ranges over the extended active domain
                        // (the honest Definition 4 semantics for unguarded
                        // variables).
                        let members: Vec<SeqId> = env.domain.iter().collect();
                        for s in members {
                            let mut b2 = b.clone();
                            b2.seq[*x as usize] = Some(s);
                            unify_indexed(s, lo, hi, v, &b2, env, out);
                        }
                    }
                },
            }
        }
        CSeq::Concat(..) | CSeq::Transducer { .. } => {
            unreachable!("constructive terms are head-only (validated)")
        }
    }
}

/// Unify `base[lo:hi] = v` for a bound base: enumerate occurrences of `v` in
/// `base` and solve the index equations.
fn unify_indexed(
    base: SeqId,
    lo: &CIdx,
    hi: &CIdx,
    v: SeqId,
    b: &Bindings,
    env: &mut MatchEnv<'_>,
    out: &mut Vec<Bindings>,
) {
    let end_val = env.store.len_of(base) as i64;
    // Fast path: both indexes already evaluable — evaluate and compare.
    if let (Some(n1), Some(n2)) = (eval_idx(lo, b, end_val), eval_idx(hi, b, end_val)) {
        if env.store.subseq(base, n1, n2) == Some(v) {
            out.push(b.clone());
        }
        return;
    }
    let vlen = env.store.len_of(v) as i64;
    for start0 in env.store.occurrences(base, v) {
        // 1-based window: [start0+1 .. start0+vlen].
        let n1 = start0 as i64 + 1;
        let n2 = start0 as i64 + vlen;
        let mut lo_sols = Vec::new();
        solve_idx(lo, n1, end_val, b, env.int_upper, &mut lo_sols);
        for bl in lo_sols {
            solve_idx(hi, n2, end_val, &bl, env.int_upper, out);
        }
    }
}

/// Match one atom's argument terms against a fact tuple.
pub fn unify_tuple(
    args: &[CSeq],
    tuple: &[SeqId],
    b: &Bindings,
    env: &mut MatchEnv<'_>,
) -> Vec<Bindings> {
    let mut cur = vec![b.clone()];
    for (arg, &val) in args.iter().zip(tuple) {
        let mut next = Vec::new();
        for bb in &cur {
            unify(arg, val, bb, env, &mut next);
        }
        if next.is_empty() {
            return next;
        }
        cur = next;
    }
    cur
}

/// Enumerate the substitutions satisfying `clause`'s body in `env`,
/// optionally forcing body-atom occurrence `delta_at` to match only tuples
/// at position `>= delta_from` in its relation (semi-naive evaluation).
/// Calls `on_match` for every satisfying (still possibly partial — free head
/// variables unbound) substitution.
pub fn solve_body(
    clause: &CompiledClause,
    env: &mut MatchEnv<'_>,
    delta: Option<(usize, usize)>,
    on_match: &mut dyn FnMut(&Bindings, &mut MatchEnv<'_>),
) {
    let remaining: Vec<usize> = (0..clause.body.len()).collect();
    let b = Bindings::for_clause(clause);
    search(clause, env, delta, remaining, b, on_match);
}

fn search(
    clause: &CompiledClause,
    env: &mut MatchEnv<'_>,
    delta: Option<(usize, usize)>,
    remaining: Vec<usize>,
    b: Bindings,
    on_match: &mut dyn FnMut(&Bindings, &mut MatchEnv<'_>),
) {
    if remaining.is_empty() {
        on_match(&b, env);
        return;
    }

    // 1. Ground (in)equalities: decide without branching.
    for (pos, &li) in remaining.iter().enumerate() {
        match &clause.body[li] {
            CBody::Eq(l, r) => {
                let (lv, rv) = (eval_seq(l, &b, env.store), eval_seq(r, &b, env.store));
                match (lv, rv) {
                    (TermVal::Undefined, _) | (_, TermVal::Undefined) => return,
                    (TermVal::Val(a), TermVal::Val(c)) => {
                        if a != c {
                            return;
                        }
                        let mut rest = remaining.clone();
                        rest.remove(pos);
                        search(clause, env, delta, rest, b, on_match);
                        return;
                    }
                    _ => {}
                }
            }
            CBody::Neq(l, r) => {
                let (lv, rv) = (eval_seq(l, &b, env.store), eval_seq(r, &b, env.store));
                match (lv, rv) {
                    (TermVal::Undefined, _) | (_, TermVal::Undefined) => return,
                    (TermVal::Val(a), TermVal::Val(c)) => {
                        if a == c {
                            return;
                        }
                        let mut rest = remaining.clone();
                        rest.remove(pos);
                        search(clause, env, delta, rest, b, on_match);
                        return;
                    }
                    _ => {}
                }
            }
            CBody::Atom(_) => {}
        }
    }

    // 2. Equalities with one evaluable side whose other side unifies
    // *cheaply* (no domain enumeration): a bare variable, or an indexed
    // term with a bound base. Equalities over unbound bases are deferred
    // until the atoms have had a chance to bind them — matching an atom is
    // proportional to its extent, while domain enumeration is proportional
    // to the (much larger) extended active domain.
    let cheap = |t: &CSeq, b: &Bindings| match t {
        CSeq::Var(_) | CSeq::Const(_) => true,
        CSeq::Indexed { base, .. } => match base {
            CBase::Const(_) => true,
            CBase::Var(x) => b.seq[*x as usize].is_some(),
        },
        _ => false,
    };
    let mut deferred_eq = false;
    for (pos, &li) in remaining.iter().enumerate() {
        if let CBody::Eq(l, r) = &clause.body[li] {
            let lv = eval_seq(l, &b, env.store);
            let rv = eval_seq(r, &b, env.store);
            let (val, other) = match (lv, rv) {
                (TermVal::Val(a), TermVal::Unbound) => (a, r),
                (TermVal::Unbound, TermVal::Val(c)) => (c, l),
                _ => continue,
            };
            if !cheap(other, &b) {
                deferred_eq = true;
                continue;
            }
            let mut branches = Vec::new();
            unify(other, val, &b, env, &mut branches);
            let mut rest = remaining.clone();
            rest.remove(pos);
            for b2 in branches {
                search(clause, env, delta, rest.clone(), b2, on_match);
            }
            return;
        }
    }

    // 3. Best atom: fewest candidate tuples (using ground columns).
    let mut best: Option<(usize, usize, Vec<u32>)> = None; // (pos, li, candidates)
    for (pos, &li) in remaining.iter().enumerate() {
        let CBody::Atom(atom) = &clause.body[li] else {
            continue;
        };
        let from = match delta {
            Some((at, f)) if at == li => f,
            _ => 0,
        };
        let rel = env.facts.relation(&atom.pred);
        let candidates: Vec<u32> = match rel {
            None => Vec::new(),
            Some(rel) => {
                // Choose the most selective ground column, if any.
                let mut chosen: Option<Vec<u32>> = None;
                for (c, arg) in atom.args.iter().enumerate() {
                    if let TermVal::Val(v) = eval_seq(arg, &b, env.store) {
                        let list = rel.positions_with(c, v, from).to_vec();
                        if chosen.as_ref().is_none_or(|cur| list.len() < cur.len()) {
                            chosen = Some(list);
                        }
                    }
                }
                chosen.unwrap_or_else(|| (from..rel.len()).map(|i| i as u32).collect())
            }
        };
        if best
            .as_ref()
            .is_none_or(|(_, _, c)| candidates.len() < c.len())
        {
            best = Some((pos, li, candidates));
        }
    }

    if let Some((pos, li, candidates)) = best {
        let CBody::Atom(atom) = &clause.body[li] else {
            unreachable!()
        };
        let mut rest = remaining.clone();
        rest.remove(pos);
        for cand in candidates {
            let tuple: Vec<SeqId> = {
                let rel = env
                    .facts
                    .relation(&atom.pred)
                    .expect("candidates imply relation");
                rel.tuple(cand as usize).to_vec()
            };
            for b2 in unify_tuple(&atom.args, &tuple, &b, env) {
                search(clause, env, delta, rest.clone(), b2, on_match);
            }
        }
        return;
    }

    // 3½. No atoms remain: process a deferred equality by unification with
    // domain enumeration of its unbound base (the honest Definition 4
    // semantics, now unavoidable).
    if deferred_eq {
        for (pos, &li) in remaining.iter().enumerate() {
            if let CBody::Eq(l, r) = &clause.body[li] {
                let lv = eval_seq(l, &b, env.store);
                let rv = eval_seq(r, &b, env.store);
                let (val, other) = match (lv, rv) {
                    (TermVal::Val(a), TermVal::Unbound) => (a, r),
                    (TermVal::Unbound, TermVal::Val(c)) => (c, l),
                    _ => continue,
                };
                let mut branches = Vec::new();
                unify(other, val, &b, env, &mut branches);
                let mut rest = remaining.clone();
                rest.remove(pos);
                for b2 in branches {
                    search(clause, env, delta, rest.clone(), b2, on_match);
                }
                return;
            }
        }
    }

    // 4. Only non-evaluable (in)equalities remain: enumerate one of their
    // free variables over the domain (sequence) or integer range (index),
    // then retry. This is the honest Definition 4 semantics.
    let mut free_seq: Option<u16> = None;
    let mut free_idx: Option<u16> = None;
    for &li in &remaining {
        let (l, r) = match &clause.body[li] {
            CBody::Eq(l, r) | CBody::Neq(l, r) => (l, r),
            CBody::Atom(_) => unreachable!("atoms handled above"),
        };
        for t in [l, r] {
            let mut sv = Vec::new();
            let mut iv = Vec::new();
            t.seq_vars(&mut sv);
            t.idx_vars(&mut iv);
            free_seq = free_seq.or(sv.into_iter().find(|&v| b.seq[v as usize].is_none()));
            free_idx = free_idx.or(iv.into_iter().find(|&v| b.idx[v as usize].is_none()));
        }
    }
    if let Some(v) = free_seq {
        let members: Vec<SeqId> = env.domain.iter().collect();
        for s in members {
            let mut b2 = b.clone();
            b2.seq[v as usize] = Some(s);
            search(clause, env, delta, remaining.clone(), b2, on_match);
        }
    } else if let Some(v) = free_idx {
        for n in 0..=env.int_upper {
            let mut b2 = b.clone();
            b2.idx[v as usize] = Some(n);
            search(clause, env, delta, remaining.clone(), b2, on_match);
        }
    } else {
        // All variables bound yet some (in)equality was neither ground nor
        // one-sided — impossible: with all vars bound every term evaluates.
        unreachable!("bound bindings with non-evaluable literals");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse_program;
    use seqlog_sequence::{Alphabet, ExtendedDomain};

    struct Fixture {
        alphabet: Alphabet,
        store: SeqStore,
        domain: ExtendedDomain,
        facts: FactStore,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                alphabet: Alphabet::new(),
                store: SeqStore::new(),
                domain: ExtendedDomain::new(),
                facts: FactStore::new(),
            }
        }

        fn fact(&mut self, pred: &str, args: &[&str]) {
            let tuple: Vec<SeqId> = args
                .iter()
                .map(|s| {
                    let syms = self.alphabet.seq_of_str(s);
                    self.store.intern_vec(syms)
                })
                .collect();
            for &id in &tuple {
                self.domain.insert_closed(&mut self.store, id);
            }
            self.facts.insert(pred, tuple.into());
        }

        fn matches(&mut self, rule: &str) -> Vec<Bindings> {
            let prog = parse_program(rule, &mut self.alphabet, &mut self.store).unwrap();
            let cp = compile(&prog).unwrap();
            let clause = &cp.clauses[0];
            let mut out = Vec::new();
            let mut env = MatchEnv {
                store: &mut self.store,
                domain: &self.domain,
                facts: &self.facts,
                int_upper: self.domain.int_upper(),
            };
            solve_body(clause, &mut env, None, &mut |b, _| out.push(b.clone()));
            out
        }
    }

    #[test]
    fn plain_join_binds_variables() {
        let mut fx = Fixture::new();
        fx.fact("r", &["ab"]);
        fx.fact("r", &["cd"]);
        let ms = fx.matches("answer(X ++ Y) :- r(X), r(Y).");
        assert_eq!(ms.len(), 4); // 2 × 2 pairs
        assert!(ms.iter().all(|b| b.seq.iter().all(Option::is_some)));
    }

    #[test]
    fn indexed_term_unification_enumerates_occurrences() {
        let mut fx = Fixture::new();
        fx.fact("hay", &["abab"]);
        fx.fact("needle", &["ab"]);
        // For each occurrence of the needle: N1 bound to its start.
        let ms = fx.matches("p(X) :- hay(X), needle(X[N1:N2]).");
        assert_eq!(ms.len(), 2);
        let mut starts: Vec<i64> = ms.iter().map(|b| b.idx[0].unwrap()).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![1, 3]);
    }

    #[test]
    fn equality_with_one_ground_side_unifies() {
        let mut fx = Fixture::new();
        fx.fact("r", &["abc"]);
        let ms = fx.matches(r#"p(X) :- r(X), X[1] = "a"."#);
        assert_eq!(ms.len(), 1);
        let ms = fx.matches(r#"p(X) :- r(X), X[1] = "b"."#);
        assert!(ms.is_empty());
    }

    #[test]
    fn undefined_terms_fail_the_substitution() {
        let mut fx = Fixture::new();
        fx.fact("r", &["ab"]);
        // X[5] is undefined for a length-2 sequence: θ is not defined at the
        // clause, so no substitution matches.
        let ms = fx.matches(r#"p(X) :- r(X), X[5] = "a"."#);
        assert!(ms.is_empty());
    }

    #[test]
    fn inequality_filters() {
        let mut fx = Fixture::new();
        fx.fact("r", &["a"]);
        fx.fact("r", &["b"]);
        let ms = fx.matches("p(X, Y) :- r(X), r(Y), X != Y.");
        assert_eq!(ms.len(), 2); // (a,b) and (b,a)
    }

    #[test]
    fn unguarded_base_ranges_over_domain() {
        let mut fx = Fixture::new();
        fx.fact("q", &["bc"]);
        fx.fact("seed", &["abc"]);
        // X is unguarded: it ranges over the extended active domain; the
        // members with X[2:end] = "bc" are exactly "abc" (from seed's
        // closure... "abc"[2:3]="bc" ✓) and "bbc"? not in domain. Also "bc"
        // itself? "bc"[2:2]="c" ≠ "bc". So only "abc".
        let ms = fx.matches("p(X) :- q(X[2:end]).");
        let vals: Vec<SeqId> = ms.iter().map(|b| b.seq[0].unwrap()).collect();
        assert_eq!(vals.len(), 1);
        let expected = {
            let syms = fx.alphabet.seq_of_str("abc");
            fx.store.intern_vec(syms)
        };
        assert_eq!(vals[0], expected);
    }

    #[test]
    fn delta_restriction_limits_candidates() {
        let mut fx = Fixture::new();
        fx.fact("r", &["a"]);
        fx.fact("r", &["b"]);
        let prog = parse_program("p(X) :- r(X).", &mut fx.alphabet, &mut fx.store).unwrap();
        let cp = compile(&prog).unwrap();
        let mut out = Vec::new();
        let mut env = MatchEnv {
            store: &mut fx.store,
            domain: &fx.domain,
            facts: &fx.facts,
            int_upper: fx.domain.int_upper(),
        };
        // Only tuples from position 1 (the second fact).
        solve_body(&cp.clauses[0], &mut env, Some((0, 1)), &mut |b, _| {
            out.push(b.clone())
        });
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn trailing_free_equality_enumerates_domain() {
        let mut fx = Fixture::new();
        fx.fact("r", &["ab"]);
        // Y is free on both sides of the equality: enumerate the domain.
        // Members equal to their own full slice: all of them.
        let ms = fx.matches("p(Y) :- r(X), Y = Y.");
        // domain of "ab": ε, a, b, ab → 4 members.
        assert_eq!(ms.len(), 4);
    }
}
