//! Body matching: enumerating the substitutions of Definition 4.
//!
//! Given a clause body and the current interpretation, this module
//! enumerates every substitution θ *based on the extended active domain*
//! (Definition 1) that is defined at the clause and satisfies the body. The
//! search binds variables from facts wherever possible (joins with greedy
//! literal scheduling) and falls back to honest domain enumeration exactly
//! where the semantics requires it: unguarded sequence variables range over
//! the domain's member sequences, and index variables that no fact
//! determines range over the integers `0..=lmax+1`.
//!
//! Unification against indexed terms is occurrence-driven: matching
//! `X[N1:N2] = v` with `X` bound finds the occurrences of `v` inside `X` and
//! solves the index equations `N1 = start`, `N2 = end` — multiple
//! occurrences yield multiple substitutions, as the fixpoint semantics
//! demands.
//!
//! # Matching is read-only
//!
//! The matcher borrows the store as `&SeqStore` and never interns: indexed
//! terms resolve through [`SeqStore::subseq_lookup`]. This is sound because
//! every sequence a substitution can reach is *window-closed* — extended
//! active domain members by Definition 2's closure invariant, and program
//! constants because the evaluator pre-closes them — so any defined window
//! already has an interned handle. A shared store is what lets the evaluator
//! shard one round's match work across threads.
//!
//! The search is also **allocation-free in its steady state**: one scratch
//! [`Bindings`] per clause evaluation, mutated in place through a bind/undo
//! [`Trail`] (no `Bindings` clone per candidate substitution), the
//! unsolved-literal set as a `u128` bitmask, and join candidates taken as
//! borrowed slices from the fact store's column indexes. Alternative
//! solutions are delivered through continuations instead of result vectors.

use crate::compile::{CBase, CBody, CIdx, CSeq, CompiledClause};
use crate::eval::interp::FactStore;
use seqlog_sequence::{index_window, ExtendedDomain, SeqId, SeqStore};

/// A partial substitution over a clause's variable slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bindings {
    /// Sequence-variable slots.
    pub seq: Vec<Option<SeqId>>,
    /// Index-variable slots.
    pub idx: Vec<Option<i64>>,
}

impl Bindings {
    /// Fresh, all-unbound bindings for a clause.
    pub fn for_clause(c: &CompiledClause) -> Self {
        Self {
            seq: vec![None; c.n_seq],
            idx: vec![None; c.n_idx],
        }
    }
}

/// One recorded binding, undone on backtrack.
#[derive(Clone, Copy, Debug)]
enum TrailEntry {
    Seq(u16),
    Idx(u16),
}

/// The single scratch substitution threaded through a clause's search,
/// with its undo trail. Binding writes a slot and records it; backtracking
/// pops to a mark and clears the recorded slots — no clone per candidate.
pub struct Search {
    /// The current (partial) substitution.
    pub b: Bindings,
    trail: Vec<TrailEntry>,
}

impl Search {
    /// Fresh scratch state for a clause.
    pub fn for_clause(c: &CompiledClause) -> Self {
        Self {
            b: Bindings::for_clause(c),
            trail: Vec::with_capacity(c.n_seq + c.n_idx),
        }
    }

    #[inline]
    fn mark(&self) -> usize {
        self.trail.len()
    }

    #[inline]
    fn bind_seq(&mut self, v: u16, id: SeqId) {
        debug_assert!(self.b.seq[v as usize].is_none());
        self.b.seq[v as usize] = Some(id);
        self.trail.push(TrailEntry::Seq(v));
    }

    #[inline]
    fn bind_idx(&mut self, v: u16, n: i64) {
        debug_assert!(self.b.idx[v as usize].is_none());
        self.b.idx[v as usize] = Some(n);
        self.trail.push(TrailEntry::Idx(v));
    }

    #[inline]
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            match self.trail.pop().unwrap() {
                TrailEntry::Seq(v) => self.b.seq[v as usize] = None,
                TrailEntry::Idx(v) => self.b.idx[v as usize] = None,
            }
        }
    }
}

/// Outcome of evaluating a term under a partial substitution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TermVal {
    /// Some variable in the term is still unbound.
    Unbound,
    /// All variables bound but the term is undefined (index out of range,
    /// Section 3.2).
    Undefined,
    /// The term's value.
    Val(SeqId),
}

/// Outcome of evaluating an index term under a partial substitution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdxVal {
    /// Some index variable in the term is still unbound.
    Unbound,
    /// All variables bound but the arithmetic over- or underflowed `i64`
    /// — the term denotes no domain integer, so any enclosing indexed term
    /// is undefined.
    Undefined,
    /// The term's value.
    Val(i64),
}

/// Read-only context for matching. All fields are shared borrows — matching
/// never mutates the store (indexed terms resolve by lookup against
/// window-closed bases), which is what allows a round's match work to be
/// sharded across threads.
pub struct MatchEnv<'a> {
    /// Sequence interner (read-only during matching).
    pub store: &'a SeqStore,
    /// Extended active domain of the current interpretation.
    pub domain: &'a ExtendedDomain,
    /// Current interpretation.
    pub facts: &'a FactStore,
    /// `lmax + 1` — the top of the integer range.
    pub int_upper: i64,
}

/// Semi-naive delta restriction for one clause application: body-atom
/// occurrence `at` matches only tuples at positions `from..to` of its
/// relation (a chunk of the previous round's additions), and atom
/// occurrences *before* `at` are restricted to the pre-round prefix recorded
/// in `sizes_before` — so a clause mentioning the same grown predicate
/// twice derives each new–new combination exactly once across the
/// per-literal firings.
#[derive(Clone, Copy, Debug)]
pub struct Delta<'a> {
    /// Body literal index carrying the delta.
    pub at: usize,
    /// First delta tuple position (inclusive).
    pub from: usize,
    /// One past the last delta tuple position.
    pub to: usize,
    /// Per-predicate relation sizes before the round, indexed by `PredId`.
    pub sizes_before: &'a [usize],
}

/// A continuation receiving each satisfying (partial) substitution.
type Cont<'x> = &'x mut dyn FnMut(&mut Search, &MatchEnv<'_>);

/// Evaluate an index term with overflow-checked arithmetic. `end_val` is the
/// length of the enclosing indexed term's base.
pub fn eval_idx(t: &CIdx, b: &Bindings, end_val: i64) -> IdxVal {
    match t {
        CIdx::Int(i) => IdxVal::Val(*i),
        CIdx::Var(v) => match b.idx[*v as usize] {
            Some(n) => IdxVal::Val(n),
            None => IdxVal::Unbound,
        },
        CIdx::End => IdxVal::Val(end_val),
        CIdx::Add(x, y) => combine(eval_idx(x, b, end_val), eval_idx(y, b, end_val), true),
        CIdx::Sub(x, y) => combine(eval_idx(x, b, end_val), eval_idx(y, b, end_val), false),
    }
}

/// Checked combination of two index sub-results: overflow is `Undefined`
/// (the term denotes no integer), and `Undefined` dominates `Unbound` (no
/// binding can make the term defined).
#[inline]
fn combine(x: IdxVal, y: IdxVal, add: bool) -> IdxVal {
    match (x, y) {
        (IdxVal::Undefined, _) | (_, IdxVal::Undefined) => IdxVal::Undefined,
        (IdxVal::Unbound, _) | (_, IdxVal::Unbound) => IdxVal::Unbound,
        (IdxVal::Val(a), IdxVal::Val(b)) => {
            let r = if add {
                a.checked_add(b)
            } else {
                a.checked_sub(b)
            };
            match r {
                Some(v) => IdxVal::Val(v),
                None => IdxVal::Undefined,
            }
        }
    }
}

/// Evaluate a non-constructive sequence term under `b`, without interning.
///
/// A defined window that has no interned handle can only arise from a base
/// that is not window-closed, which the evaluator's pre-closing of program
/// constants rules out; it is mapped (conservatively) to `Undefined`.
pub fn eval_seq(t: &CSeq, b: &Bindings, store: &SeqStore) -> TermVal {
    match t {
        CSeq::Const(id) => TermVal::Val(*id),
        CSeq::Var(v) => match b.seq[*v as usize] {
            Some(id) => TermVal::Val(id),
            None => TermVal::Unbound,
        },
        CSeq::Indexed { base, lo, hi } => {
            let base_id = match base {
                CBase::Const(id) => *id,
                CBase::Var(v) => match b.seq[*v as usize] {
                    Some(id) => id,
                    None => return TermVal::Unbound,
                },
            };
            let end_val = store.len_of(base_id) as i64;
            let (n1, n2) = match (eval_idx(lo, b, end_val), eval_idx(hi, b, end_val)) {
                (IdxVal::Val(n1), IdxVal::Val(n2)) => (n1, n2),
                (IdxVal::Undefined, _) | (_, IdxVal::Undefined) => return TermVal::Undefined,
                _ => return TermVal::Unbound,
            };
            match store.subseq_lookup(base_id, n1, n2) {
                Some(Some(id)) => TermVal::Val(id),
                Some(None) => {
                    debug_assert!(false, "defined window of a non-window-closed base");
                    TermVal::Undefined
                }
                None => TermVal::Undefined,
            }
        }
        CSeq::Concat(..) | CSeq::Transducer { .. } => {
            unreachable!("constructive terms are head-only (validated)")
        }
    }
}

/// Solve `t = target` for the unbound index variables of `t`, invoking `k`
/// on each solution. Uses linear isolation when one side of `+`/`-` is
/// ground and falls back to enumerating a variable over `0..=int_upper`
/// otherwise (index variables range over the domain integers). All
/// isolation arithmetic is overflow-checked: an overflowing rearrangement
/// has no solution in the domain integers.
fn solve_idx(
    t: &CIdx,
    target: i64,
    end_val: i64,
    st: &mut Search,
    env: &MatchEnv<'_>,
    k: Cont<'_>,
) {
    match t {
        CIdx::Int(i) => {
            if *i == target {
                k(st, env);
            }
        }
        CIdx::End => {
            if end_val == target {
                k(st, env);
            }
        }
        CIdx::Var(v) => match st.b.idx[*v as usize] {
            Some(val) => {
                if val == target {
                    k(st, env);
                }
            }
            None => {
                if (0..=env.int_upper).contains(&target) {
                    let mark = st.mark();
                    st.bind_idx(*v, target);
                    k(st, env);
                    st.undo_to(mark);
                }
            }
        },
        CIdx::Add(x, y) => match (eval_idx(x, &st.b, end_val), eval_idx(y, &st.b, end_val)) {
            (IdxVal::Undefined, _) | (_, IdxVal::Undefined) => {}
            (IdxVal::Val(xv), _) => {
                if let Some(rest) = target.checked_sub(xv) {
                    solve_idx(y, rest, end_val, st, env, k);
                }
            }
            (IdxVal::Unbound, IdxVal::Val(yv)) => {
                if let Some(rest) = target.checked_sub(yv) {
                    solve_idx(x, rest, end_val, st, env, k);
                }
            }
            (IdxVal::Unbound, IdxVal::Unbound) => {
                enumerate_then_solve(t, target, end_val, st, env, k);
            }
        },
        CIdx::Sub(x, y) => match (eval_idx(x, &st.b, end_val), eval_idx(y, &st.b, end_val)) {
            (IdxVal::Undefined, _) | (_, IdxVal::Undefined) => {}
            (IdxVal::Val(xv), _) => {
                if let Some(rest) = xv.checked_sub(target) {
                    solve_idx(y, rest, end_val, st, env, k);
                }
            }
            (IdxVal::Unbound, IdxVal::Val(yv)) => {
                if let Some(rest) = target.checked_add(yv) {
                    solve_idx(x, rest, end_val, st, env, k);
                }
            }
            (IdxVal::Unbound, IdxVal::Unbound) => {
                enumerate_then_solve(t, target, end_val, st, env, k);
            }
        },
    }
}

/// Fallback for index terms with two unbound variables (e.g. `N+M`): bind
/// the first unbound variable to each domain integer and retry.
fn enumerate_then_solve(
    t: &CIdx,
    target: i64,
    end_val: i64,
    st: &mut Search,
    env: &MatchEnv<'_>,
    k: Cont<'_>,
) {
    let Some(v) = first_unbound_idx(t, &st.b) else {
        return;
    };
    for n in 0..=env.int_upper {
        let mark = st.mark();
        st.bind_idx(v, n);
        solve_idx(t, target, end_val, st, env, k);
        st.undo_to(mark);
    }
}

fn first_unbound_idx(t: &CIdx, b: &Bindings) -> Option<u16> {
    match t {
        CIdx::Int(_) | CIdx::End => None,
        CIdx::Var(v) => b.idx[*v as usize].is_none().then_some(*v),
        CIdx::Add(x, y) | CIdx::Sub(x, y) => {
            first_unbound_idx(x, b).or_else(|| first_unbound_idx(y, b))
        }
    }
}

/// Evaluate an index term *independently of the base's length*: `Unbound`
/// when the term contains `end` or an unbound variable. Used to pin a
/// solution length before the base is known.
fn eval_idx_pure(t: &CIdx, b: &Bindings) -> IdxVal {
    match t {
        CIdx::Int(i) => IdxVal::Val(*i),
        CIdx::Var(v) => match b.idx[*v as usize] {
            Some(n) => IdxVal::Val(n),
            None => IdxVal::Unbound,
        },
        CIdx::End => IdxVal::Unbound,
        CIdx::Add(x, y) => combine(eval_idx_pure(x, b), eval_idx_pure(y, b), true),
        CIdx::Sub(x, y) => combine(eval_idx_pure(x, b), eval_idx_pure(y, b), false),
    }
}

/// Unify a non-constructive term with a concrete value, invoking `k` on
/// every extension of the current substitution.
fn unify(t: &CSeq, v: SeqId, st: &mut Search, env: &MatchEnv<'_>, k: Cont<'_>) {
    match t {
        CSeq::Const(id) => {
            if *id == v {
                k(st, env);
            }
        }
        CSeq::Var(x) => match st.b.seq[*x as usize] {
            Some(id) => {
                if id == v {
                    k(st, env);
                }
            }
            None => {
                let mark = st.mark();
                st.bind_seq(*x, v);
                k(st, env);
                st.undo_to(mark);
            }
        },
        CSeq::Indexed { base, lo, hi } => match base {
            CBase::Const(id) => unify_indexed(*id, lo, hi, v, st, env, k),
            CBase::Var(x) => match st.b.seq[*x as usize] {
                Some(id) => unify_indexed(id, lo, hi, v, st, env, k),
                None => {
                    // The base ranges over the extended active domain
                    // (the honest Definition 4 semantics for unguarded
                    // variables). For the structural-recursion idiom
                    // `X[a:end] = v` with `a` known, every solution has
                    // `len(X) = a-1+len(v)` — restrict the enumeration to
                    // that length bucket; the unification itself still
                    // decides membership, so this is a pure prefilter.
                    let domain: &ExtendedDomain = env.domain;
                    match (eval_idx_pure(lo, &st.b), hi) {
                        (IdxVal::Undefined, _) => return, // no binding defines X[lo:hi]
                        (IdxVal::Val(a), CIdx::End) => {
                            if a < 1 {
                                return; // X[a:end] is undefined for every X
                            }
                            let Some(want) = usize::try_from(a - 1)
                                .ok()
                                .and_then(|p| p.checked_add(env.store.len_of(v)))
                            else {
                                return;
                            };
                            for &s in domain.members_of_len(want) {
                                let mark = st.mark();
                                st.bind_seq(*x, s);
                                unify_indexed(s, lo, hi, v, st, env, k);
                                st.undo_to(mark);
                            }
                            return;
                        }
                        _ => {}
                    }
                    for s in domain.iter() {
                        let mark = st.mark();
                        st.bind_seq(*x, s);
                        unify_indexed(s, lo, hi, v, st, env, k);
                        st.undo_to(mark);
                    }
                }
            },
        },
        CSeq::Concat(..) | CSeq::Transducer { .. } => {
            unreachable!("constructive terms are head-only (validated)")
        }
    }
}

/// `base[n1:n2] == v`, without interning the window: an equal window would
/// already be interned as `v`, so a plain slice comparison suffices (and a
/// failed comparison never pollutes the store).
#[inline]
fn window_equals(store: &SeqStore, base: SeqId, n1: i64, n2: i64, v: SeqId) -> bool {
    match index_window(store.len_of(base), n1, n2) {
        None => false,
        Some((s, e)) => store.get(base)[s..e] == *store.get(v),
    }
}

/// Unify `base[lo:hi] = v` for a bound base: enumerate occurrences of `v` in
/// `base` and solve the index equations. When either endpoint is already
/// evaluable it pins the occurrence position (the structural-recursion
/// idioms `X[1:N] = v` / `X[N+1:end] = v`), so only one window comparison is
/// needed instead of a full occurrence scan.
fn unify_indexed(
    base: SeqId,
    lo: &CIdx,
    hi: &CIdx,
    v: SeqId,
    st: &mut Search,
    env: &MatchEnv<'_>,
    k: Cont<'_>,
) {
    let end_val = env.store.len_of(base) as i64;
    let vlen = env.store.len_of(v) as i64;
    match (eval_idx(lo, &st.b, end_val), eval_idx(hi, &st.b, end_val)) {
        // An overflowing endpoint denotes no integer: the indexed term is
        // undefined under every extension.
        (IdxVal::Undefined, _) | (_, IdxVal::Undefined) => {}
        // Both endpoints ground: evaluate and compare (a length mismatch
        // fails the slice comparison).
        (IdxVal::Val(n1), IdxVal::Val(n2)) => {
            if window_equals(env.store, base, n1, n2, v) {
                k(st, env);
            }
        }
        // Lower endpoint ground: the only candidate occurrence starts at
        // `n1`, i.e. the window is [n1 .. n1-1+|v|].
        (IdxVal::Val(n1), IdxVal::Unbound) => {
            let Some(n2) = n1.checked_sub(1).and_then(|p| p.checked_add(vlen)) else {
                return;
            };
            if window_equals(env.store, base, n1, n2, v) {
                solve_idx(hi, n2, end_val, st, env, k);
            }
        }
        // Upper endpoint ground: the only candidate occurrence ends at
        // `n2`, i.e. the window is [n2-|v|+1 .. n2].
        (IdxVal::Unbound, IdxVal::Val(n2)) => {
            let Some(n1) = n2.checked_sub(vlen).and_then(|p| p.checked_add(1)) else {
                return;
            };
            if window_equals(env.store, base, n1, n2, v) {
                solve_idx(lo, n1, end_val, st, env, k);
            }
        }
        // Neither endpoint known: enumerate every occurrence of `v`.
        (IdxVal::Unbound, IdxVal::Unbound) => {
            let occurrences = env.store.occurrences(base, v);
            for start0 in occurrences {
                // 1-based window: [start0+1 .. start0+vlen].
                let n1 = start0 as i64 + 1;
                let n2 = start0 as i64 + vlen;
                solve_idx(lo, n1, end_val, st, env, &mut |st, env| {
                    solve_idx(hi, n2, end_val, st, env, k);
                });
            }
        }
    }
}

/// Match one atom's argument terms against a fact tuple, invoking `k` on
/// each consistent extension.
fn unify_tuple(args: &[CSeq], tuple: &[SeqId], st: &mut Search, env: &MatchEnv<'_>, k: Cont<'_>) {
    match args.split_first() {
        None => k(st, env),
        Some((arg, rest_args)) => {
            let (&val, rest_vals) = tuple.split_first().expect("arity matches");
            unify(arg, val, st, env, &mut |st, env| {
                unify_tuple(rest_args, rest_vals, st, env, k);
            });
        }
    }
}

/// Join candidates for one atom: either a borrowed column-index posting
/// list or a position range over the whole relation (delta-restricted).
enum Candidates<'f> {
    List(&'f [u32]),
    Range(usize, usize),
}

impl Candidates<'_> {
    fn len(&self) -> usize {
        match self {
            Candidates::List(l) => l.len(),
            Candidates::Range(a, b) => b - a,
        }
    }
}

/// Enumerate the substitutions satisfying `clause`'s body in `env`,
/// optionally under a [`Delta`] restriction (semi-naive evaluation). Calls
/// `on_match` for every satisfying (still possibly partial — free head
/// variables unbound) substitution; the `Bindings` handed to `on_match` is
/// the clause's scratch substitution and is only valid for the duration of
/// the call.
pub fn solve_body(
    clause: &CompiledClause,
    env: &MatchEnv<'_>,
    delta: Option<Delta<'_>>,
    on_match: &mut dyn FnMut(&mut Bindings, &MatchEnv<'_>),
) {
    debug_assert!(clause.body.len() <= 128, "rejected at compile time");
    let remaining: u128 = match clause.body.len() {
        128 => !0,
        n => (1u128 << n) - 1,
    };
    let mut st = Search::for_clause(clause);
    search(clause, env, delta, remaining, &mut st, on_match);
}

/// Position window of one atom occurrence under a delta restriction: the
/// delta literal sees its chunk, literals before it the pre-round prefix,
/// literals after it the full relation.
#[inline]
fn atom_window(delta: Option<Delta<'_>>, li: usize, pred: usize, rel_len: usize) -> (usize, usize) {
    match delta {
        Some(d) if li == d.at => (d.from.min(rel_len), d.to.min(rel_len)),
        Some(d) if li < d.at => (
            0,
            d.sizes_before.get(pred).copied().unwrap_or(0).min(rel_len),
        ),
        _ => (0, rel_len),
    }
}

fn search(
    clause: &CompiledClause,
    env: &MatchEnv<'_>,
    delta: Option<Delta<'_>>,
    remaining: u128,
    st: &mut Search,
    on_match: &mut dyn FnMut(&mut Bindings, &MatchEnv<'_>),
) {
    if remaining == 0 {
        on_match(&mut st.b, env);
        return;
    }
    let live = |li: usize| remaining & (1u128 << li) != 0;

    // 1. Ground (in)equalities: decide without branching.
    for (li, lit) in clause.body.iter().enumerate() {
        if !live(li) {
            continue;
        }
        let (l, r, is_eq) = match lit {
            CBody::Eq(l, r) => (l, r, true),
            CBody::Neq(l, r) => (l, r, false),
            CBody::Atom(_) => continue,
        };
        let (lv, rv) = (eval_seq(l, &st.b, env.store), eval_seq(r, &st.b, env.store));
        match (lv, rv) {
            (TermVal::Undefined, _) | (_, TermVal::Undefined) => return,
            (TermVal::Val(a), TermVal::Val(c)) => {
                if (a == c) != is_eq {
                    return;
                }
                search(clause, env, delta, remaining & !(1 << li), st, on_match);
                return;
            }
            _ => {}
        }
    }

    // 2. Equalities with one evaluable side whose other side unifies
    // *cheaply* (no domain enumeration): a bare variable, or an indexed
    // term with a bound base. Equalities over unbound bases are deferred
    // until the atoms have had a chance to bind them — matching an atom is
    // proportional to its extent, while domain enumeration is proportional
    // to the (much larger) extended active domain.
    let cheap = |t: &CSeq, b: &Bindings| match t {
        CSeq::Var(_) | CSeq::Const(_) => true,
        CSeq::Indexed { base, .. } => match base {
            CBase::Const(_) => true,
            CBase::Var(x) => b.seq[*x as usize].is_some(),
        },
        _ => false,
    };
    let mut deferred_eq = false;
    for (li, lit) in clause.body.iter().enumerate() {
        if !live(li) {
            continue;
        }
        if let CBody::Eq(l, r) = lit {
            let lv = eval_seq(l, &st.b, env.store);
            let rv = eval_seq(r, &st.b, env.store);
            let (val, other) = match (lv, rv) {
                (TermVal::Val(a), TermVal::Unbound) => (a, r),
                (TermVal::Unbound, TermVal::Val(c)) => (c, l),
                _ => continue,
            };
            if !cheap(other, &st.b) {
                deferred_eq = true;
                continue;
            }
            let rest = remaining & !(1 << li);
            unify(other, val, st, env, &mut |st, env| {
                search(clause, env, delta, rest, st, on_match);
            });
            return;
        }
    }

    // 3. Best atom: cheapest expected match work. The base measure is the
    // candidate tuple count (using the most selective ground column); an
    // atom whose arguments contain an indexed term over a still-unbound
    // base is penalized by the domain size, because unifying each of its
    // tuples enumerates domain members — joining a cheap guard atom first
    // binds the base and turns that enumeration into one window comparison.
    // The fact store is immutable during matching, so posting lists and
    // tuples are borrowed in place — no candidate vectors, no tuple clones.
    let facts: &FactStore = env.facts;
    let mut best: Option<(usize, Candidates<'_>, usize)> = None;
    for (li, lit) in clause.body.iter().enumerate() {
        if !live(li) {
            continue;
        }
        let CBody::Atom(atom) = lit else {
            continue;
        };
        let rel = facts.relation(atom.pred);
        let (from, to) = atom_window(delta, li, atom.pred.index(), rel.len());
        // Choose the most selective ground column, if any.
        let mut chosen: Option<&[u32]> = None;
        for (c, arg) in atom.args.iter().enumerate() {
            if let TermVal::Val(v) = eval_seq(arg, &st.b, env.store) {
                let list = rel.positions_with(c, v, from, to);
                if chosen.is_none_or(|cur| list.len() < cur.len()) {
                    chosen = Some(list);
                }
            }
        }
        let candidates = match chosen {
            Some(list) => Candidates::List(list),
            None => Candidates::Range(from.min(to), to),
        };
        // Penalty: an unbound indexed base that no earlier bare-variable
        // argument of this same atom will have bound by then.
        let mut bound_by_earlier: u128 = 0;
        let mut needs_enum = false;
        for arg in &atom.args {
            match arg {
                CSeq::Var(v) if (*v as usize) < 128 => {
                    bound_by_earlier |= 1 << v;
                }
                CSeq::Indexed {
                    base: CBase::Var(x),
                    ..
                } => {
                    let already = st.b.seq[*x as usize].is_some()
                        || ((*x as usize) < 128 && bound_by_earlier >> (*x as usize) & 1 == 1);
                    if !already {
                        needs_enum = true;
                        break;
                    }
                }
                _ => {}
            }
        }
        let weight = if needs_enum {
            candidates.len().saturating_mul(env.domain.len().max(1))
        } else {
            candidates.len()
        };
        if best.as_ref().is_none_or(|&(_, _, w)| weight < w) {
            best = Some((li, candidates, weight));
        }
    }

    if let Some((li, candidates, _)) = best {
        let CBody::Atom(atom) = &clause.body[li] else {
            unreachable!()
        };
        let rel = facts.relation(atom.pred);
        let rest = remaining & !(1 << li);
        let mut with_pos = |pos: usize, st: &mut Search, env: &MatchEnv<'_>| {
            let tuple = rel.tuple(pos);
            if tuple.len() != atom.args.len() {
                return; // arity mismatch never unifies
            }
            unify_tuple(&atom.args, tuple, st, env, &mut |st, env| {
                search(clause, env, delta, rest, st, on_match);
            });
        };
        match candidates {
            Candidates::List(list) => {
                for &pos in list {
                    with_pos(pos as usize, st, env);
                }
            }
            Candidates::Range(a, b) => {
                for pos in a..b {
                    with_pos(pos, st, env);
                }
            }
        }
        return;
    }

    // 3½. No atoms remain: process a deferred equality by unification with
    // domain enumeration of its unbound base (the honest Definition 4
    // semantics, now unavoidable).
    if deferred_eq {
        for (li, lit) in clause.body.iter().enumerate() {
            if !live(li) {
                continue;
            }
            if let CBody::Eq(l, r) = lit {
                let lv = eval_seq(l, &st.b, env.store);
                let rv = eval_seq(r, &st.b, env.store);
                let (val, other) = match (lv, rv) {
                    (TermVal::Val(a), TermVal::Unbound) => (a, r),
                    (TermVal::Unbound, TermVal::Val(c)) => (c, l),
                    _ => continue,
                };
                let rest = remaining & !(1 << li);
                unify(other, val, st, env, &mut |st, env| {
                    search(clause, env, delta, rest, st, on_match);
                });
                return;
            }
        }
    }

    // 4. Only non-evaluable (in)equalities remain: enumerate one of their
    // free variables over the domain (sequence) or integer range (index),
    // then retry. This is the honest Definition 4 semantics.
    let mut free_seq: Option<u16> = None;
    let mut free_idx: Option<u16> = None;
    for (li, lit) in clause.body.iter().enumerate() {
        if !live(li) {
            continue;
        }
        let (l, r) = match lit {
            CBody::Eq(l, r) | CBody::Neq(l, r) => (l, r),
            CBody::Atom(_) => unreachable!("atoms handled above"),
        };
        for t in [l, r] {
            let mut sv = Vec::new();
            let mut iv = Vec::new();
            t.seq_vars(&mut sv);
            t.idx_vars(&mut iv);
            free_seq = free_seq.or(sv.into_iter().find(|&v| st.b.seq[v as usize].is_none()));
            free_idx = free_idx.or(iv.into_iter().find(|&v| st.b.idx[v as usize].is_none()));
        }
    }
    if let Some(v) = free_seq {
        let domain: &ExtendedDomain = env.domain;
        for s in domain.iter() {
            let mark = st.mark();
            st.bind_seq(v, s);
            search(clause, env, delta, remaining, st, on_match);
            st.undo_to(mark);
        }
    } else if let Some(v) = free_idx {
        for n in 0..=env.int_upper {
            let mark = st.mark();
            st.bind_idx(v, n);
            search(clause, env, delta, remaining, st, on_match);
            st.undo_to(mark);
        }
    } else {
        // All variables bound yet some (in)equality was neither ground nor
        // one-sided — impossible: with all vars bound every term evaluates.
        unreachable!("bound bindings with non-evaluable literals");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse_program;
    use seqlog_sequence::{Alphabet, ExtendedDomain};

    struct Fixture {
        alphabet: Alphabet,
        store: SeqStore,
        domain: ExtendedDomain,
        facts: FactStore,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                alphabet: Alphabet::new(),
                store: SeqStore::new(),
                domain: ExtendedDomain::new(),
                facts: FactStore::new(),
            }
        }

        fn fact(&mut self, pred: &str, args: &[&str]) {
            let tuple: Vec<SeqId> = args
                .iter()
                .map(|s| {
                    let syms = self.alphabet.seq_of_str(s);
                    self.store.intern_vec(syms)
                })
                .collect();
            for &id in &tuple {
                self.domain.insert_closed(&mut self.store, id);
            }
            self.facts.insert_named(pred, tuple.into());
        }

        fn matches(&mut self, rule: &str) -> Vec<Bindings> {
            let prog = parse_program(rule, &mut self.alphabet, &mut self.store).unwrap();
            let cp = compile(&prog).unwrap();
            // Pre-close constants, as the evaluator does before matching.
            for id in cp.constants() {
                self.store.close_windows(id);
            }
            let clause = &cp.clauses[0];
            // Align the fixture store to the compiled program's ids.
            let facts = self.facts.realigned_to(&cp.preds);
            let mut out = Vec::new();
            let env = MatchEnv {
                store: &self.store,
                domain: &self.domain,
                facts: &facts,
                int_upper: self.domain.int_upper(),
            };
            solve_body(clause, &env, None, &mut |b, _| out.push(b.clone()));
            out
        }
    }

    #[test]
    fn plain_join_binds_variables() {
        let mut fx = Fixture::new();
        fx.fact("r", &["ab"]);
        fx.fact("r", &["cd"]);
        let ms = fx.matches("answer(X ++ Y) :- r(X), r(Y).");
        assert_eq!(ms.len(), 4); // 2 × 2 pairs
        assert!(ms.iter().all(|b| b.seq.iter().all(Option::is_some)));
    }

    #[test]
    fn indexed_term_unification_enumerates_occurrences() {
        let mut fx = Fixture::new();
        fx.fact("hay", &["abab"]);
        fx.fact("needle", &["ab"]);
        // For each occurrence of the needle: N1 bound to its start.
        let ms = fx.matches("p(X) :- hay(X), needle(X[N1:N2]).");
        assert_eq!(ms.len(), 2);
        let mut starts: Vec<i64> = ms.iter().map(|b| b.idx[0].unwrap()).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![1, 3]);
    }

    #[test]
    fn equality_with_one_ground_side_unifies() {
        let mut fx = Fixture::new();
        fx.fact("r", &["abc"]);
        let ms = fx.matches(r#"p(X) :- r(X), X[1] = "a"."#);
        assert_eq!(ms.len(), 1);
        let ms = fx.matches(r#"p(X) :- r(X), X[1] = "b"."#);
        assert!(ms.is_empty());
    }

    #[test]
    fn undefined_terms_fail_the_substitution() {
        let mut fx = Fixture::new();
        fx.fact("r", &["ab"]);
        // X[5] is undefined for a length-2 sequence: θ is not defined at the
        // clause, so no substitution matches.
        let ms = fx.matches(r#"p(X) :- r(X), X[5] = "a"."#);
        assert!(ms.is_empty());
    }

    #[test]
    fn inequality_filters() {
        let mut fx = Fixture::new();
        fx.fact("r", &["a"]);
        fx.fact("r", &["b"]);
        let ms = fx.matches("p(X, Y) :- r(X), r(Y), X != Y.");
        assert_eq!(ms.len(), 2); // (a,b) and (b,a)
    }

    #[test]
    fn unguarded_base_ranges_over_domain() {
        let mut fx = Fixture::new();
        fx.fact("q", &["bc"]);
        fx.fact("seed", &["abc"]);
        // X is unguarded: it ranges over the extended active domain; the
        // members with X[2:end] = "bc" are exactly "abc" (from seed's
        // closure... "abc"[2:3]="bc" ✓) and "bbc"? not in domain. Also "bc"
        // itself? "bc"[2:2]="c" ≠ "bc". So only "abc".
        let ms = fx.matches("p(X) :- q(X[2:end]).");
        let vals: Vec<SeqId> = ms.iter().map(|b| b.seq[0].unwrap()).collect();
        assert_eq!(vals.len(), 1);
        let expected = {
            let syms = fx.alphabet.seq_of_str("abc");
            fx.store.intern_vec(syms)
        };
        assert_eq!(vals[0], expected);
    }

    #[test]
    fn matching_never_grows_the_store() {
        let mut fx = Fixture::new();
        fx.fact("hay", &["abab"]);
        fx.fact("needle", &["ab"]);
        fx.fact("r", &["abc"]);
        fx.fact("q", &["bc"]);
        let rules = [
            "p(X) :- hay(X), needle(X[N1:N2]).",
            "p(X) :- q(X[2:end]).",
            r#"p(X) :- r(X), X[1] = "a"."#,
            "suffix(X[N:end]) :- r(X).",
        ];
        for rule in rules {
            // Parse + pre-close first (those intern), then measure.
            let prog = parse_program(rule, &mut fx.alphabet, &mut fx.store).unwrap();
            let cp = compile(&prog).unwrap();
            for id in cp.constants() {
                fx.store.close_windows(id);
            }
            let facts = fx.facts.realigned_to(&cp.preds);
            let before = fx.store.count();
            let env = MatchEnv {
                store: &fx.store,
                domain: &fx.domain,
                facts: &facts,
                int_upper: fx.domain.int_upper(),
            };
            let mut n = 0usize;
            solve_body(&cp.clauses[0], &env, None, &mut |_, _| n += 1);
            assert!(n > 0, "{rule} must actually exercise the match paths");
            assert_eq!(fx.store.count(), before, "{rule} interned during match");
        }
    }

    #[test]
    fn overflowing_index_arithmetic_is_undefined_not_a_panic() {
        // Adversarial constants: N + i64::MAX and 0 - i64::MAX - ... would
        // wrap (release) or panic (debug) under unchecked arithmetic. They
        // must instead behave as undefined — no matches, no crash.
        let mut fx = Fixture::new();
        fx.fact("r", &["abc"]);
        let ms = fx.matches(&format!("p(X) :- r(X), X[N + {} : end] = \"a\".", i64::MAX));
        assert!(ms.is_empty());
        let ms = fx.matches(&format!(
            "p(X) :- r(X), X[1 - 2 - {} : end] = \"a\".",
            i64::MAX
        ));
        assert!(ms.is_empty());
        // Ground overflowing endpoints on an atom argument, too.
        let ms = fx.matches(&format!("p(X) :- r(X[{} + {} : end]).", i64::MAX, i64::MAX));
        assert!(ms.is_empty());
        // Sanity: the same shapes with small constants still match.
        let ms = fx.matches("p(X) :- r(X), X[N + 1 : end] = \"c\".");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].idx[0], Some(2));
    }

    #[test]
    fn eval_idx_checked_arithmetic() {
        let b = Bindings {
            seq: vec![],
            idx: vec![Some(3)],
        };
        let add = CIdx::Add(Box::new(CIdx::Var(0)), Box::new(CIdx::Int(i64::MAX)));
        assert_eq!(eval_idx(&add, &b, 10), IdxVal::Undefined);
        let sub = CIdx::Sub(Box::new(CIdx::Int(i64::MIN)), Box::new(CIdx::Var(0)));
        assert_eq!(eval_idx(&sub, &b, 10), IdxVal::Undefined);
        let ok = CIdx::Add(Box::new(CIdx::Var(0)), Box::new(CIdx::End));
        assert_eq!(eval_idx(&ok, &b, 10), IdxVal::Val(13));
        let unbound = CIdx::Add(Box::new(CIdx::Var(0)), Box::new(CIdx::Var(1)));
        let b2 = Bindings {
            seq: vec![],
            idx: vec![Some(3), None],
        };
        assert_eq!(eval_idx(&unbound, &b2, 10), IdxVal::Unbound);
        // Undefined dominates Unbound: no binding can repair an overflow.
        let dominated = CIdx::Add(
            Box::new(CIdx::Var(1)),
            Box::new(CIdx::Add(
                Box::new(CIdx::Int(1)),
                Box::new(CIdx::Int(i64::MAX)),
            )),
        );
        assert_eq!(eval_idx(&dominated, &b2, 10), IdxVal::Undefined);
    }

    #[test]
    fn delta_restriction_limits_candidates() {
        let mut fx = Fixture::new();
        fx.fact("r", &["a"]);
        fx.fact("r", &["b"]);
        let prog = parse_program("p(X) :- r(X).", &mut fx.alphabet, &mut fx.store).unwrap();
        let cp = compile(&prog).unwrap();
        let facts = fx.facts.realigned_to(&cp.preds);
        let env = MatchEnv {
            store: &fx.store,
            domain: &fx.domain,
            facts: &facts,
            int_upper: fx.domain.int_upper(),
        };
        let sizes_before = vec![0; cp.preds.len()];
        // Only tuples from position 1 (the second fact).
        let mut out = Vec::new();
        solve_body(
            &cp.clauses[0],
            &env,
            Some(Delta {
                at: 0,
                from: 1,
                to: 2,
                sizes_before: &sizes_before,
            }),
            &mut |b, _| out.push(b.clone()),
        );
        assert_eq!(out.len(), 1);
        // A chunked window excluding both facts matches nothing.
        let mut out = Vec::new();
        solve_body(
            &cp.clauses[0],
            &env,
            Some(Delta {
                at: 0,
                from: 0,
                to: 0,
                sizes_before: &sizes_before,
            }),
            &mut |b, _| out.push(b.clone()),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn delta_restricts_prior_literals_to_the_preround_prefix() {
        // Clause body r(X), r(Y) with the delta on the second literal: the
        // first literal must range only over the pre-round prefix, so each
        // new–new pair is derived by exactly one per-literal firing.
        let mut fx = Fixture::new();
        fx.fact("r", &["a"]); // position 0: "old"
        fx.fact("r", &["b"]); // position 1: the round's delta
        let prog =
            parse_program("p(X, Y) :- r(X), r(Y).", &mut fx.alphabet, &mut fx.store).unwrap();
        let cp = compile(&prog).unwrap();
        let facts = fx.facts.realigned_to(&cp.preds);
        let env = MatchEnv {
            store: &fx.store,
            domain: &fx.domain,
            facts: &facts,
            int_upper: fx.domain.int_upper(),
        };
        let mut sizes_before = vec![0; cp.preds.len()];
        let r_id = cp.preds.lookup("r").unwrap();
        sizes_before[r_id.index()] = 1;
        let collect = |at: usize| {
            let mut out = Vec::new();
            solve_body(
                &cp.clauses[0],
                &env,
                Some(Delta {
                    at,
                    from: 1,
                    to: 2,
                    sizes_before: &sizes_before,
                }),
                &mut |b, _| out.push((b.seq[0].unwrap(), b.seq[1].unwrap())),
            );
            out
        };
        // Firing with delta at literal 0: X ∈ Δ, Y ∈ full — (b,a), (b,b).
        let at0 = collect(0);
        // Firing with delta at literal 1: X ∈ old prefix, Y ∈ Δ — (a,b).
        let at1 = collect(1);
        assert_eq!(at0.len(), 2);
        assert_eq!(at1.len(), 1);
        // Together: every pair touching the delta exactly once, no overlap.
        let mut all = at0;
        all.extend(at1);
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn trailing_free_equality_enumerates_domain() {
        let mut fx = Fixture::new();
        fx.fact("r", &["ab"]);
        // Y is free on both sides of the equality: enumerate the domain.
        // Members equal to their own full slice: all of them.
        let ms = fx.matches("p(Y) :- r(X), Y = Y.");
        // domain of "ab": ε, a, b, ab → 4 members.
        assert_eq!(ms.len(), 4);
    }

    #[test]
    fn scratch_bindings_are_restored_between_matches() {
        // The same scratch substitution is reused across candidate tuples
        // via the undo trail. Every delivered substitution must be fully
        // bound, and an unbalanced bind/undo would skew the solution count
        // of a repeated solve — both solves must agree exactly.
        let mut fx = Fixture::new();
        fx.fact("r", &["a"]);
        fx.fact("r", &["b"]);
        fx.fact("r", &["c"]);
        let prog =
            parse_program("p(X, Y) :- r(X), r(Y).", &mut fx.alphabet, &mut fx.store).unwrap();
        let cp = compile(&prog).unwrap();
        let facts = fx.facts.realigned_to(&cp.preds);
        let env = MatchEnv {
            store: &fx.store,
            domain: &fx.domain,
            facts: &facts,
            int_upper: fx.domain.int_upper(),
        };
        let mut solutions: Vec<Vec<Bindings>> = Vec::new();
        for _ in 0..2 {
            let mut out = Vec::new();
            solve_body(&cp.clauses[0], &env, None, &mut |b, _| {
                assert!(b.seq.iter().all(Option::is_some));
                out.push(b.clone());
            });
            assert_eq!(out.len(), 9);
            solutions.push(out);
        }
        assert_eq!(solutions[0], solutions[1]);
    }

    #[test]
    fn arity_mismatched_tuples_never_unify() {
        // The store does not enforce per-predicate arity; an atom must
        // match only tuples of its own arity (no prefix matching).
        let mut fx = Fixture::new();
        fx.fact("r", &["a"]);
        fx.fact("r", &["a", "b"]);
        let ms = fx.matches("p(X) :- r(X).");
        assert_eq!(ms.len(), 1, "only the arity-1 tuple matches");
        let ms = fx.matches("p(X, Y) :- r(X, Y).");
        assert_eq!(ms.len(), 1, "only the arity-2 tuple matches");
    }
}
