//! Interpretations as indexed fact stores.
//!
//! An interpretation is a set of ground atoms over interned sequences
//! (Section 3.3). [`FactStore`] keeps one [`Relation`] per interned
//! predicate ([`PredId`]), addressed by direct vector index — the
//! steady-state evaluation loop never hashes a predicate name. Each
//! relation keeps its tuple list in insertion order (so semi-naive
//! evaluation can address the delta added in a round by index range), an
//! open-addressing tuple index for **single-probe** duplicate detection
//! (one hash + one probe sequence per [`Relation::insert`], no tuple
//! clone), and per-column hash indexes for join candidate selection.

use crate::compile::{PredId, PredTable};
use seqlog_sequence::{FxHashMap, FxHashSet, FxHasher, SeqId};
use std::hash::Hasher;

#[inline]
pub(crate) fn hash_tuple(tuple: &[SeqId]) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(tuple.len());
    for &id in tuple {
        h.write_u32(id.0);
    }
    h.finish()
}

/// Number of hash-range shards in each relation's dedupe index.
///
/// A tuple's shard is the top nibble of its hash ([`shard_of`]), so shard
/// membership is a pure function of the tuple value — **never** of the
/// thread count — and the linear-probe walk inside a shard uses the low
/// bits, independent of the shard selector. The parallel commit phase gives
/// each worker exclusive ownership of a disjoint set of shards; everything
/// it does (probe order, slot choice, verdicts) is then a deterministic
/// function of the relation state and the candidate list alone.
pub(crate) const INDEX_SHARDS: usize = 16;

#[inline]
pub(crate) fn shard_of(hash: u64) -> usize {
    (hash >> 60) as usize
}

/// Slot marker for a removed entry. A tombstone keeps the probe chains that
/// ran through the slot intact (an empty slot would cut them short); lookups
/// walk past it, and shard rebuilds (compaction) clear them.
const TOMBSTONE: u32 = u32::MAX;

/// Tag bit of a *provisional* slot entry: during the sharded dedupe phase a
/// newly admitted candidate occupies its slot as `PROV_ENTRY | cand_index`
/// so later same-round duplicates collide with it. The merge phase patches
/// each admitted slot to a real position (or tombstones it when a budget
/// error aborts the round) before the relation is used again.
const PROV_ENTRY: u32 = 1 << 31;

/// Verdict of [`Relation::dedupe_candidates`] for a duplicate candidate.
pub(crate) const CAND_DUP: u32 = u32::MAX;

/// One shard's admissions from the dedupe phase: `(candidate ordinal,
/// occupied slot)` pairs in probe order.
type ShardAdmissions = Vec<(u32, u32)>;

/// One shard of the open-addressing index from tuple hash to tuple
/// position: `slots` holds `pos + 1` (0 = empty, [`TOMBSTONE`] = removed,
/// [`PROV_ENTRY`]`| cand` = provisionally admitted this round) in a
/// power-of-two table with linear probing. Duplicate detection costs exactly
/// one hash computation and one probe walk per insert — no separate
/// `contains` + `insert` pair, and no tuple clone into a side set.
#[derive(Clone, Debug, Default)]
struct TupleIndex {
    slots: Box<[u32]>,
    /// Stored entries (real or provisional) in this shard.
    entries: usize,
    /// Live tombstone count: buried slots still lengthen probe chains, so
    /// they count toward the load factor until a rebuild clears them.
    tombstones: usize,
}

impl TupleIndex {
    fn with_capacity(cap: usize) -> Self {
        Self {
            slots: vec![0u32; cap.next_power_of_two()].into_boxed_slice(),
            entries: 0,
            tombstones: 0,
        }
    }

    /// Walk the probe sequence for `hash`; `matches(raw)` decides equality
    /// against the raw slot entry (a real `pos + 1` or a [`PROV_ENTRY`]).
    /// Returns `Ok(raw)` when an equal tuple exists, `Err(slot)` with the
    /// insertion slot otherwise (reusing the first tombstone on the chain).
    #[inline]
    fn probe_raw(&self, hash: u64, matches: impl Fn(u32) -> bool) -> Result<u32, usize> {
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        let mut reusable: Option<usize> = None;
        loop {
            match self.slots[i] {
                0 => return Err(reusable.unwrap_or(i)),
                TOMBSTONE => reusable = reusable.or(Some(i)),
                stored => {
                    if matches(stored) {
                        return Ok(stored);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// [`TupleIndex::probe_raw`] specialized to real positions (no
    /// provisional entries present — the steady state outside the commit
    /// phase). `matches(pos)` decides equality, `Ok(pos)` on a hit.
    #[inline]
    fn probe(&self, hash: u64, matches: impl Fn(u32) -> bool) -> Result<u32, usize> {
        self.probe_raw(hash, |raw| {
            debug_assert_ne!(raw & PROV_ENTRY, PROV_ENTRY, "provisional entry leaked");
            matches(raw - 1)
        })
        .map(|raw| raw - 1)
    }

    /// The slot currently holding the position accepted by `matches`, if any.
    #[inline]
    fn find_slot(&self, hash: u64, matches: impl Fn(u32) -> bool) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                TOMBSTONE => {}
                stored => {
                    if matches(stored - 1) {
                        return Some(i);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn occupy_raw(&mut self, slot: usize, raw: u32) {
        if self.slots[slot] == TOMBSTONE {
            self.tombstones -= 1;
        }
        self.slots[slot] = raw;
        self.entries += 1;
    }

    #[inline]
    fn occupy(&mut self, slot: usize, pos: u32) {
        self.occupy_raw(slot, pos + 1);
    }

    /// Tombstone the slot holding position `pos` (found via `hash`).
    fn bury(&mut self, hash: u64, pos: u32) {
        if let Some(slot) = self.find_slot(hash, |p| p == pos) {
            self.slots[slot] = TOMBSTONE;
            self.entries -= 1;
            self.tombstones += 1;
        }
    }

    /// Whether admitting `incoming` more entries would push this shard past
    /// the 3/4 load factor (tombstones count: they lengthen probe chains).
    #[inline]
    fn needs_growth(&self, incoming: usize) -> bool {
        (self.entries + self.tombstones + incoming) * 4 >= self.slots.len() * 3
    }

    /// Rebuild from `(pos, hash)` pairs, dropping tombstones, with room for
    /// `extra` further entries before the next growth.
    fn rebuild(&mut self, pairs: &[(u32, u64)], extra: usize) {
        let need = (pairs.len() + extra) * 2;
        let cap = need.max(8).next_power_of_two();
        self.slots = vec![0u32; cap].into_boxed_slice();
        self.entries = pairs.len();
        self.tombstones = 0;
        let mask = cap - 1;
        for &(pos, hash) in pairs {
            let mut i = (hash as usize) & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = pos + 1;
        }
    }
}

/// The tuples of one predicate.
///
/// Removal ([`Relation::remove`]/[`Relation::remove_at`]) is two-phase:
/// removed tuples stay at their positions as *tombstones* (their index slots
/// are buried so probe chains survive, their column-index postings are
/// withdrawn) until [`Relation::compact`] rebuilds the dense representation.
/// Positions are therefore stable across a batch of removals — which is what
/// the retraction machinery relies on — and compaction preserves the
/// relative insertion order of the surviving tuples, so the engine's
/// thread-determinism guarantee (identical per-relation iteration order for
/// every thread count) is unaffected by deletions.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    tuples: Vec<Box<[SeqId]>>,
    /// Cached tuple hashes, parallel to `tuples` (reused on index growth).
    hashes: Vec<u64>,
    /// Dedupe index, sharded by hash range ([`INDEX_SHARDS`] shards, empty
    /// until the first insert). Workers of the parallel commit phase own
    /// disjoint shards; all other paths go through them transparently.
    shards: Box<[TupleIndex]>,
    /// `col_index[c][v]` = positions of tuples with value `v` in column `c`.
    col_index: Vec<FxHashMap<SeqId, Vec<u32>>>,
    /// Positions removed but not yet compacted away (normally empty).
    dead: FxHashSet<u32>,
}

impl Relation {
    fn ensure_shards(&mut self) {
        if self.shards.is_empty() {
            self.shards = (0..INDEX_SHARDS).map(|_| TupleIndex::default()).collect();
        }
    }

    /// Insert a tuple; returns `true` when it was new. Exactly one hash
    /// computation and one probe walk; the tuple is moved, never cloned.
    pub fn insert(&mut self, tuple: Box<[SeqId]>) -> bool {
        debug_assert!(
            self.dead.is_empty(),
            "insert into a relation with pending tombstones; compact first"
        );
        self.ensure_shards();
        let hash = hash_tuple(&tuple);
        let s = shard_of(hash);
        if self.shards[s].slots.is_empty() {
            self.shards[s] = TupleIndex::with_capacity(8);
        }
        let Err(slot) = self.shards[s].probe(hash, |pos| {
            let p = pos as usize;
            self.hashes[p] == hash && self.tuples[p][..] == tuple[..]
        }) else {
            return false;
        };
        let pos = self.tuples.len() as u32;
        if self.col_index.len() < tuple.len() {
            self.col_index.resize_with(tuple.len(), FxHashMap::default);
        }
        for (c, &v) in tuple.iter().enumerate() {
            self.col_index[c].entry(v).or_default().push(pos);
        }
        self.tuples.push(tuple);
        self.hashes.push(hash);
        // Grow at 3/4 load so probe chains stay short (tombstones left by
        // a tail-only compaction still occupy chain slots, so they count).
        if self.shards[s].needs_growth(1) {
            self.rebuild_shard(s, 0);
        } else {
            self.shards[s].occupy(slot, pos);
        }
        true
    }

    /// Rebuild shard `s` from the tuple hashes, dropping its tombstones,
    /// leaving room for `extra` further entries before the next growth.
    fn rebuild_shard(&mut self, s: usize, extra: usize) {
        debug_assert!(self.dead.is_empty(), "rebuild with pending tombstones");
        let pairs: Vec<(u32, u64)> = self
            .hashes
            .iter()
            .enumerate()
            .filter(|&(_, &h)| shard_of(h) == s)
            .map(|(pos, &h)| (pos as u32, h))
            .collect();
        self.shards[s].rebuild(&pairs, extra);
    }

    #[inline]
    fn probe_stored(&self, tuple: &[SeqId], hash: u64) -> Result<u32, usize> {
        self.shards[shard_of(hash)].probe(hash, |pos| {
            let p = pos as usize;
            self.hashes[p] == hash && self.tuples[p][..] == tuple[..]
        })
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[SeqId]) -> bool {
        if self.tuples.is_empty() {
            return false;
        }
        let hash = hash_tuple(tuple);
        if self.shards[shard_of(hash)].slots.is_empty() {
            return false;
        }
        self.probe_stored(tuple, hash).is_ok()
    }

    /// Position of `tuple`, if present (and not tombstoned).
    pub fn position_of(&self, tuple: &[SeqId]) -> Option<u32> {
        if self.tuples.is_empty() {
            return None;
        }
        let hash = hash_tuple(tuple);
        if self.shards[shard_of(hash)].slots.is_empty() {
            return None;
        }
        self.probe_stored(tuple, hash).ok()
    }

    /// Remove the tuple at position `pos`: bury its index slot, withdraw its
    /// column-index postings, and leave a tombstone at the position so that
    /// other positions stay stable until [`Relation::compact`] runs. Returns
    /// `false` when `pos` is already dead.
    pub fn remove_at(&mut self, pos: u32) -> bool {
        let p = pos as usize;
        assert!(p < self.tuples.len(), "remove_at out of bounds");
        if !self.dead.insert(pos) {
            return false;
        }
        let hash = self.hashes[p];
        self.shards[shard_of(hash)].bury(hash, pos);
        for c in 0..self.tuples[p].len() {
            let v = self.tuples[p][c];
            if let Some(list) = self.col_index[c].get_mut(&v) {
                // Postings are sorted by position; withdraw exactly one.
                if let Ok(i) = list.binary_search(&pos) {
                    list.remove(i);
                }
            }
        }
        true
    }

    /// Remove `tuple` by value; returns `true` when it was present.
    pub fn remove(&mut self, tuple: &[SeqId]) -> bool {
        match self.position_of(tuple) {
            Some(pos) => self.remove_at(pos),
            None => false,
        }
    }

    /// Drop tombstoned positions: surviving tuples shift down preserving
    /// their relative insertion order, and the tuple index and column
    /// indexes are rebuilt dense. No-op when nothing was removed.
    pub fn compact(&mut self) {
        if self.dead.is_empty() {
            return;
        }
        let dead = std::mem::take(&mut self.dead);
        // Tail-only removals (the assert-rollback shape — every dead
        // position is at the end): postings are already withdrawn and the
        // index slots buried, so truncation suffices. The tombstoned slots
        // stay in the index, counted toward its load factor, and are
        // recycled by later inserts or swept by the next rebuild — no
        // O(relation) column-index rebuild per budget refusal.
        let live_len = self.tuples.len() - dead.len();
        if dead.iter().all(|&p| (p as usize) >= live_len) {
            self.tuples.truncate(live_len);
            self.hashes.truncate(live_len);
            return;
        }
        let mut keep = 0usize;
        for pos in 0..self.tuples.len() {
            if dead.contains(&(pos as u32)) {
                continue;
            }
            if keep != pos {
                self.tuples.swap(keep, pos);
                self.hashes.swap(keep, pos);
            }
            keep += 1;
        }
        self.tuples.truncate(keep);
        self.hashes.truncate(keep);
        for m in &mut self.col_index {
            m.clear();
        }
        for (pos, tuple) in self.tuples.iter().enumerate() {
            for (c, &v) in tuple.iter().enumerate() {
                self.col_index[c].entry(v).or_default().push(pos as u32);
            }
        }
        for s in 0..INDEX_SHARDS {
            self.rebuild_shard(s, 0);
        }
    }

    /// Number of tuple *positions* (including tombstones, which exist only
    /// transiently between a removal batch and its [`Relation::compact`]).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Number of live tuples.
    pub fn live_len(&self) -> usize {
        self.tuples.len() - self.dead.len()
    }

    /// True when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// Tuple at position `i` (insertion order).
    pub fn tuple(&self, i: usize) -> &[SeqId] {
        &self.tuples[i]
    }

    /// All live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[SeqId]> {
        let all_live = self.dead.is_empty();
        self.tuples
            .iter()
            .enumerate()
            .filter(move |(i, _)| all_live || !self.dead.contains(&(*i as u32)))
            .map(|(_, t)| t.as_ref())
    }

    /// Positions of tuples whose column `col` holds `v`, restricted to the
    /// half-open position window `from..to` (semi-naive delta chunks).
    pub fn positions_with(&self, col: usize, v: SeqId, from: usize, to: usize) -> &[u32] {
        let list = self
            .col_index
            .get(col)
            .and_then(|m| m.get(&v))
            .map_or(&[][..], Vec::as_slice);
        // Positions are appended in increasing order; binary-search both
        // window edges.
        let start = list.partition_point(|&p| (p as usize) < from);
        let end = list.partition_point(|&p| (p as usize) < to);
        &list[start..end]
    }

    /// Sharded dedupe of one round's commit candidates.
    ///
    /// `cand_hashes[i]` is the tuple hash of candidate `i` and `tuple_of(i)`
    /// its (fully resolved) tuple; candidates are listed in **task-ordinal
    /// order**. Returns one verdict per candidate: the in-shard slot it
    /// provisionally occupies when it is new, or [`CAND_DUP`] when it
    /// duplicates a stored tuple or an earlier candidate.
    ///
    /// Each shard is pre-grown for its incoming candidates (no rebuild can
    /// happen mid-phase) and then processed independently — by up to
    /// `workers` threads when the round is large, or inline in shard order
    /// otherwise. Both routes run the exact same per-shard loop over the
    /// same per-shard candidate lists, so the verdicts **and** the slot
    /// choices are identical for every worker count: within a shard,
    /// candidates are probed in ordinal order against state that only that
    /// shard's own earlier candidates can have changed.
    ///
    /// The caller must settle every admitted slot before the relation is
    /// used again: [`Relation::commit_candidate`] for candidates that land,
    /// [`Relation::abandon_candidate`] for the rest (budget/error unwind).
    pub(crate) fn dedupe_candidates<'t, F>(
        &mut self,
        cand_hashes: &[u64],
        tuple_of: F,
        workers: usize,
    ) -> Vec<u32>
    where
        F: Fn(u32) -> &'t [SeqId] + Sync,
    {
        debug_assert!(
            self.dead.is_empty(),
            "dedupe into a relation with pending tombstones; compact first"
        );
        assert!(
            cand_hashes.len() < (PROV_ENTRY as usize) - 1,
            "candidate round too large for provisional slot entries"
        );
        self.ensure_shards();
        // Bucket candidates by shard; ordinal order is preserved per shard.
        let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); INDEX_SHARDS];
        for (i, &h) in cand_hashes.iter().enumerate() {
            by_shard[shard_of(h)].push(i as u32);
        }
        for (s, shard_cands) in by_shard.iter().enumerate() {
            let incoming = shard_cands.len();
            if incoming == 0 {
                continue;
            }
            if self.shards[s].slots.is_empty() || self.shards[s].needs_growth(incoming) {
                self.rebuild_shard(s, incoming);
            }
        }
        let tuples = &self.tuples;
        let hashes = &self.hashes;
        // One shard's candidates, probed in ordinal order. Raw entries are
        // either real positions or provisional entries from this very loop;
        // both compare by value, so intra-round duplicates are caught no
        // matter which candidate came first.
        let process = |shard: &mut TupleIndex, cands: &[u32]| -> ShardAdmissions {
            let mut admitted = Vec::new();
            for &ci in cands {
                let h = cand_hashes[ci as usize];
                let cand = tuple_of(ci);
                match shard.probe_raw(h, |raw| {
                    if raw & PROV_ENTRY != 0 {
                        let other = raw & !PROV_ENTRY;
                        cand_hashes[other as usize] == h && tuple_of(other) == cand
                    } else {
                        let p = (raw - 1) as usize;
                        hashes[p] == h && tuples[p][..] == cand[..]
                    }
                }) {
                    Ok(_) => {}
                    Err(slot) => {
                        shard.occupy_raw(slot, PROV_ENTRY | ci);
                        admitted.push((ci, slot as u32));
                    }
                }
            }
            admitted
        };
        let workers = workers.clamp(1, INDEX_SHARDS);
        let mut admitted_by_shard: Vec<ShardAdmissions>;
        if workers <= 1 {
            admitted_by_shard = Vec::with_capacity(INDEX_SHARDS);
            for (s, shard) in self.shards.iter_mut().enumerate() {
                admitted_by_shard.push(process(shard, &by_shard[s]));
            }
        } else {
            let per = INDEX_SHARDS.div_ceil(workers);
            let mut units: Vec<(usize, &mut TupleIndex)> =
                self.shards.iter_mut().enumerate().collect();
            let mut results: Vec<Vec<(usize, ShardAdmissions)>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                while !units.is_empty() {
                    let rest = units.split_off(per.min(units.len()));
                    let chunk = std::mem::replace(&mut units, rest);
                    let by_shard = &by_shard;
                    let process = &process;
                    handles.push(scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(s, shard)| (s, process(shard, &by_shard[s])))
                            .collect::<Vec<_>>()
                    }));
                }
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            admitted_by_shard = vec![Vec::new(); INDEX_SHARDS];
            for group in &mut results {
                for (s, admitted) in group.drain(..) {
                    admitted_by_shard[s] = admitted;
                }
            }
        }
        let mut verdicts = vec![CAND_DUP; cand_hashes.len()];
        for admitted in &admitted_by_shard {
            for &(ci, slot) in admitted {
                verdicts[ci as usize] = slot;
            }
        }
        verdicts
    }

    /// Land an admitted candidate: append its tuple at the end of the
    /// relation and patch its provisional slot to the real position.
    pub(crate) fn commit_candidate(&mut self, tuple: Box<[SeqId]>, hash: u64, slot: u32) {
        let s = shard_of(hash);
        debug_assert_ne!(
            self.shards[s].slots[slot as usize] & PROV_ENTRY,
            0,
            "commit of a slot that holds no provisional entry"
        );
        let pos = self.tuples.len() as u32;
        if self.col_index.len() < tuple.len() {
            self.col_index.resize_with(tuple.len(), FxHashMap::default);
        }
        for (c, &v) in tuple.iter().enumerate() {
            self.col_index[c].entry(v).or_default().push(pos);
        }
        self.tuples.push(tuple);
        self.hashes.push(hash);
        self.shards[s].slots[slot as usize] = pos + 1;
    }

    /// Roll back an admitted candidate that will not land (error unwind):
    /// its provisional slot becomes a tombstone. A tombstone — not an empty
    /// slot — because the slot may sit mid-chain for entries admitted after
    /// it into a reused tombstone; burying it preserves every probe chain
    /// unconditionally.
    pub(crate) fn abandon_candidate(&mut self, hash: u64, slot: u32) {
        let s = shard_of(hash);
        let shard = &mut self.shards[s];
        debug_assert_ne!(
            shard.slots[slot as usize] & PROV_ENTRY,
            0,
            "abandon of a slot that holds no provisional entry"
        );
        shard.slots[slot as usize] = TOMBSTONE;
        shard.entries -= 1;
        shard.tombstones += 1;
    }
}

/// A set of relations indexed by interned predicate id.
///
/// The store owns a [`PredTable`]; the evaluator seeds it from the compiled
/// program's table so compiled `PredId`s index `rels` directly, then extends
/// it with database-only predicates. `&str` lookups remain available at the
/// API boundary ([`FactStore::relation_named`], [`FactStore::contains`],
/// [`FactStore::tuples`]) — they are not used in the evaluation loop.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    preds: PredTable,
    rels: Vec<Relation>,
    total: usize,
}

impl FactStore {
    /// Create an empty store with an empty predicate table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a store whose relation vector is pre-aligned to `preds`
    /// (compiled `PredId`s then index it directly).
    pub fn with_preds(preds: PredTable) -> Self {
        let mut rels = Vec::new();
        rels.resize_with(preds.len(), Relation::default);
        Self {
            preds,
            rels,
            total: 0,
        }
    }

    /// The store's predicate table.
    pub fn preds(&self) -> &PredTable {
        &self.preds
    }

    /// Intern `name` in this store (growing the relation vector).
    pub fn pred_id(&mut self, name: &str) -> PredId {
        let id = self.preds.intern(name);
        if self.rels.len() < self.preds.len() {
            self.rels.resize_with(self.preds.len(), Relation::default);
        }
        id
    }

    /// Look up a predicate name without interning it.
    pub fn lookup_pred(&self, name: &str) -> Option<PredId> {
        self.preds.lookup(name)
    }

    /// Insert a fact under an interned predicate; returns `true` when new.
    pub fn insert(&mut self, pred: PredId, tuple: Box<[SeqId]>) -> bool {
        let added = self.rels[pred.index()].insert(tuple);
        self.total += usize::from(added);
        added
    }

    /// Mutable relation access for the commit phase (dedupe + merge).
    pub(crate) fn relation_mut(&mut self, pred: PredId) -> &mut Relation {
        &mut self.rels[pred.index()]
    }

    /// Land one admitted commit candidate (see
    /// [`Relation::commit_candidate`]), keeping the fact total in step.
    pub(crate) fn commit_candidate(
        &mut self,
        pred: PredId,
        tuple: Box<[SeqId]>,
        hash: u64,
        slot: u32,
    ) {
        self.rels[pred.index()].commit_candidate(tuple, hash, slot);
        self.total += 1;
    }

    /// Remove a fact by value; returns `true` when it was present. The
    /// relation keeps a tombstone at the position until
    /// [`FactStore::compact`] runs (see [`Relation`] for the protocol).
    pub fn remove(&mut self, pred: PredId, tuple: &[SeqId]) -> bool {
        let removed = self
            .rels
            .get_mut(pred.index())
            .is_some_and(|r| r.remove(tuple));
        self.total -= usize::from(removed);
        removed
    }

    /// Remove the fact at `pos` of `pred`'s relation (tombstoning it).
    pub fn remove_at(&mut self, pred: PredId, pos: u32) -> bool {
        let removed = self.rels[pred.index()].remove_at(pos);
        self.total -= usize::from(removed);
        removed
    }

    /// Position of `tuple` in `pred`'s relation, if present.
    pub fn position_of(&self, pred: PredId, tuple: &[SeqId]) -> Option<u32> {
        self.rels
            .get(pred.index())
            .and_then(|r| r.position_of(tuple))
    }

    /// Compact every relation after a removal batch (drop tombstones,
    /// preserving surviving insertion order).
    pub fn compact(&mut self) {
        for r in &mut self.rels {
            r.compact();
        }
    }

    /// Insert a fact by predicate name (boundary convenience).
    pub fn insert_named(&mut self, name: &str, tuple: Box<[SeqId]>) -> bool {
        let id = self.pred_id(name);
        self.insert(id, tuple)
    }

    /// The relation of an interned predicate.
    pub fn relation(&self, pred: PredId) -> &Relation {
        &self.rels[pred.index()]
    }

    /// The relation for `name`, if the predicate is known.
    pub fn relation_named(&self, name: &str) -> Option<&Relation> {
        self.preds.lookup(name).map(|id| &self.rels[id.index()])
    }

    /// Membership test by interned predicate.
    pub fn contains_id(&self, pred: PredId, tuple: &[SeqId]) -> bool {
        self.rels[pred.index()].contains(tuple)
    }

    /// Membership test by predicate name.
    pub fn contains(&self, pred: &str, tuple: &[SeqId]) -> bool {
        self.relation_named(pred).is_some_and(|r| r.contains(tuple))
    }

    /// Tuples of `pred` in insertion order (empty when absent).
    ///
    /// Compatibility wrapper that allocates a `Vec` of references; new code
    /// should iterate [`Relation::iter`] via [`FactStore::relation_named`].
    pub fn tuples(&self, pred: &str) -> Vec<&[SeqId]> {
        self.relation_named(pred)
            .map(|r| r.iter().collect())
            .unwrap_or_default()
    }

    /// Total number of facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.total
    }

    /// Predicate names present, in id order.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.preds.iter().map(|(_, n)| n)
    }

    /// Iterate `(PredId, relation)` pairs in id order.
    pub fn relations(&self) -> impl Iterator<Item = (PredId, &Relation)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(i, r)| (PredId(i as u32), r))
    }

    /// Per-relation sizes snapshot, indexed by `PredId` (semi-naive delta
    /// ranges). A plain `Vec<usize>` copy — no map rebuild, no key clones.
    pub fn sizes(&self) -> Vec<usize> {
        self.rels.iter().map(Relation::len).collect()
    }

    /// Number of tuples currently in one predicate's relation (`0` when
    /// the store has no relation for it). The stratified scheduler plans
    /// per-stratum deltas with this instead of allocating a full
    /// [`FactStore::sizes`] snapshot for strata that turn out settled.
    pub fn len_of(&self, pred: PredId) -> usize {
        self.rels.get(pred.index()).map_or(0, Relation::len)
    }

    /// Every sequence id occurring in any fact (with repetitions).
    pub fn all_seq_ids(&self) -> impl Iterator<Item = SeqId> + '_ {
        self.rels
            .iter()
            .flat_map(|r| r.iter().flat_map(|t| t.iter().copied()))
    }

    /// A copy of this store whose `PredId`s are aligned to `preds`
    /// (predicates unknown to `preds` are appended after it). Used by the
    /// cold model-checking path when a caller-supplied interpretation was
    /// not built from the program being checked.
    pub fn realigned_to(&self, preds: &PredTable) -> FactStore {
        let mut out = FactStore::with_preds(preds.clone());
        for (id, name) in self.preds.iter() {
            let new_id = out.pred_id(name);
            let rel = &self.rels[id.index()];
            out.rels[new_id.index()] = rel.clone();
            out.total += rel.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> SeqId {
        SeqId(n)
    }

    #[test]
    fn insert_dedupes() {
        let mut fs = FactStore::new();
        assert!(fs.insert_named("r", vec![sid(1), sid(2)].into()));
        assert!(!fs.insert_named("r", vec![sid(1), sid(2)].into()));
        assert!(fs.insert_named("r", vec![sid(2), sid(1)].into()));
        assert_eq!(fs.total_facts(), 2);
        assert_eq!(fs.relation_named("r").unwrap().len(), 2);
    }

    #[test]
    fn column_index_finds_positions() {
        let mut fs = FactStore::new();
        fs.insert_named("r", vec![sid(1), sid(9)].into());
        fs.insert_named("r", vec![sid(2), sid(9)].into());
        fs.insert_named("r", vec![sid(1), sid(7)].into());
        let r = fs.relation_named("r").unwrap();
        assert_eq!(r.positions_with(0, sid(1), 0, r.len()), &[0, 2]);
        assert_eq!(r.positions_with(1, sid(9), 0, r.len()), &[0, 1]);
        // Delta restriction (lower and upper edges).
        assert_eq!(r.positions_with(0, sid(1), 1, r.len()), &[2]);
        assert_eq!(r.positions_with(0, sid(1), 0, 2), &[0]);
        assert_eq!(r.positions_with(0, sid(1), 1, 2), &[] as &[u32]);
        assert_eq!(r.positions_with(0, sid(3), 0, r.len()), &[] as &[u32]);
    }

    #[test]
    fn missing_predicates_are_empty() {
        let fs = FactStore::new();
        assert!(!fs.contains("nope", &[sid(0)]));
        assert!(fs.tuples("nope").is_empty());
    }

    #[test]
    fn zero_arity_relations_work() {
        let mut fs = FactStore::new();
        assert!(fs.insert_named("halted", Box::new([])));
        assert!(!fs.insert_named("halted", Box::new([])));
        assert!(fs.contains("halted", &[]));
    }

    #[test]
    fn tuple_index_survives_growth() {
        let mut rel = Relation::default();
        for i in 0..1000u32 {
            assert!(rel.insert(vec![sid(i), sid(i / 3)].into()));
        }
        for i in 0..1000u32 {
            assert!(!rel.insert(vec![sid(i), sid(i / 3)].into()), "dup {i}");
            assert!(rel.contains(&[sid(i), sid(i / 3)]));
        }
        assert!(!rel.contains(&[sid(1000), sid(0)]));
        assert_eq!(rel.len(), 1000);
    }

    #[test]
    fn remove_tombstones_then_compact_preserves_order() {
        let mut rel = Relation::default();
        for i in 0..100u32 {
            assert!(rel.insert(vec![sid(i), sid(i % 7)].into()));
        }
        // Tombstone every third tuple: positions stay stable, probe chains
        // survive, col_index postings are withdrawn.
        for i in (0..100u32).step_by(3) {
            assert!(rel.remove(&[sid(i), sid(i % 7)]));
            assert!(!rel.remove(&[sid(i), sid(i % 7)]), "double remove {i}");
        }
        assert_eq!(rel.len(), 100, "positions stable before compaction");
        assert_eq!(rel.live_len(), 100 - 34);
        for i in 0..100u32 {
            let present = i % 3 != 0;
            assert_eq!(rel.contains(&[sid(i), sid(i % 7)]), present, "{i}");
            if present {
                assert_eq!(rel.position_of(&[sid(i), sid(i % 7)]), Some(i));
            } else {
                assert_eq!(rel.position_of(&[sid(i), sid(i % 7)]), None);
                assert!(
                    !rel.positions_with(0, sid(i), 0, rel.len()).contains(&i),
                    "posting for removed tuple {i} must be withdrawn"
                );
            }
        }
        // Iteration skips tombstones in insertion order.
        let live: Vec<u32> = rel.iter().map(|t| t[0].0).collect();
        let expected: Vec<u32> = (0..100).filter(|i| i % 3 != 0).collect();
        assert_eq!(live, expected);

        rel.compact();
        assert_eq!(rel.len(), 66);
        assert_eq!(rel.live_len(), 66);
        let dense: Vec<u32> = rel.iter().map(|t| t[0].0).collect();
        assert_eq!(dense, expected, "compaction preserves insertion order");
        for (pos, &i) in expected.iter().enumerate() {
            assert_eq!(rel.position_of(&[sid(i), sid(i % 7)]), Some(pos as u32));
            assert_eq!(
                rel.positions_with(0, sid(i), 0, rel.len()),
                &[pos as u32],
                "col index rebuilt densely for {i}"
            );
        }
        // Inserts after compaction work (including re-adding removed rows).
        assert!(rel.insert(vec![sid(0), sid(0)].into()));
        assert!(!rel.insert(vec![sid(1), sid(1)].into()), "survivor deduped");
        assert_eq!(rel.len(), 67);
    }

    /// Drive one dedupe round over `cands` against `rel`, committing every
    /// admitted candidate in ordinal order (the merge walk's behavior).
    fn dedupe_commit_all(rel: &mut Relation, cands: &[Vec<SeqId>], workers: usize) -> Vec<bool> {
        let hashes: Vec<u64> = cands.iter().map(|t| hash_tuple(t)).collect();
        let verdicts = rel.dedupe_candidates(&hashes, |i| cands[i as usize].as_slice(), workers);
        verdicts
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if v == CAND_DUP {
                    false
                } else {
                    rel.commit_candidate(cands[i].clone().into(), hashes[i], v);
                    true
                }
            })
            .collect()
    }

    #[test]
    fn dedupe_candidates_catches_stored_and_intra_round_duplicates() {
        let mut rel = Relation::default();
        assert!(rel.insert(vec![sid(1), sid(1)].into()));
        let cands = vec![
            vec![sid(1), sid(1)], // dup of stored
            vec![sid(2), sid(2)], // new
            vec![sid(2), sid(2)], // intra-round dup of the previous
            vec![sid(3), sid(3)], // new
        ];
        let landed = dedupe_commit_all(&mut rel, &cands, 1);
        assert_eq!(landed, vec![false, true, false, true]);
        assert_eq!(rel.len(), 3);
        // Insertion order: stored tuple first, then admitted in ordinal order.
        let order: Vec<u32> = rel.iter().map(|t| t[0].0).collect();
        assert_eq!(order, vec![1, 2, 3]);
        // The relation is fully consistent afterwards.
        for t in &cands {
            assert!(rel.contains(t));
        }
        assert!(
            !rel.insert(vec![sid(2), sid(2)].into()),
            "slot patched to real"
        );
        assert!(rel.insert(vec![sid(4), sid(4)].into()));
    }

    #[test]
    fn dedupe_candidates_parallel_matches_sequential_bit_for_bit() {
        // Large enough that every shard sees candidates and several shards
        // grow mid-reserve; verdicts and slots must agree for all worker
        // counts, and the resulting relations must be identical.
        let cands: Vec<Vec<SeqId>> = (0..2000u32)
            .map(|i| vec![sid(i % 1500), sid(i / 3)])
            .collect();
        let hashes: Vec<u64> = cands.iter().map(|t| hash_tuple(t)).collect();
        let mut reference: Option<(Vec<u32>, Vec<Vec<u32>>)> = None;
        for workers in [1usize, 2, 4, 8] {
            let mut rel = Relation::default();
            for i in 0..64u32 {
                rel.insert(vec![sid(i * 3), sid(i)].into());
            }
            let verdicts =
                rel.dedupe_candidates(&hashes, |i| cands[i as usize].as_slice(), workers);
            for (i, &v) in verdicts.iter().enumerate() {
                if v != CAND_DUP {
                    rel.commit_candidate(cands[i].clone().into(), hashes[i], v);
                }
            }
            let order: Vec<Vec<u32>> = rel
                .iter()
                .map(|t| t.iter().map(|s| s.0).collect())
                .collect();
            match &reference {
                None => reference = Some((verdicts, order)),
                Some((v0, o0)) => {
                    assert_eq!(&verdicts, v0, "verdicts diverge at {workers} workers");
                    assert_eq!(&order, o0, "insertion order diverges at {workers} workers");
                }
            }
        }
    }

    #[test]
    fn abandoned_candidates_leave_probe_chains_intact() {
        let mut rel = Relation::default();
        for i in 0..200u32 {
            rel.insert(vec![sid(i)].into());
        }
        let cands: Vec<Vec<SeqId>> = (200..400u32).map(|i| vec![sid(i)]).collect();
        let hashes: Vec<u64> = cands.iter().map(|t| hash_tuple(t)).collect();
        let verdicts = rel.dedupe_candidates(&hashes, |i| cands[i as usize].as_slice(), 4);
        // Land the first 50 admitted candidates, abandon the rest (the
        // budget-trip unwind shape).
        let mut landed = 0;
        for (i, &v) in verdicts.iter().enumerate() {
            if v == CAND_DUP {
                continue;
            }
            if landed < 50 {
                rel.commit_candidate(cands[i].clone().into(), hashes[i], v);
                landed += 1;
            } else {
                rel.abandon_candidate(hashes[i], v);
            }
        }
        assert_eq!(rel.len(), 250);
        // Every stored tuple — old and newly landed — must still be
        // reachable through its probe chain, and every abandoned candidate
        // must read as absent and be insertable afresh.
        for i in 0..250u32 {
            assert!(rel.contains(&[sid(i)]), "chain broken at {i}");
        }
        for i in 250..400u32 {
            assert!(!rel.contains(&[sid(i)]));
            assert!(
                rel.insert(vec![sid(i)].into()),
                "re-insert after abandon {i}"
            );
        }
        assert_eq!(rel.len(), 400);
    }

    #[test]
    fn factstore_remove_tracks_total() {
        let mut fs = FactStore::new();
        let r = fs.pred_id("r");
        fs.insert(r, vec![sid(1)].into());
        fs.insert(r, vec![sid(2)].into());
        assert_eq!(fs.total_facts(), 2);
        assert!(fs.remove(r, &[sid(1)]));
        assert!(!fs.remove(r, &[sid(1)]));
        assert_eq!(fs.total_facts(), 1);
        fs.compact();
        assert_eq!(fs.relation(r).len(), 1);
        assert!(fs.contains_id(r, &[sid(2)]));
        assert!(!fs.contains_id(r, &[sid(1)]));
        // Removal of unknown predicates is a no-op, never an index panic.
        assert!(!fs.remove(PredId(99), &[sid(1)]));
        assert_eq!(fs.position_of(PredId(99), &[sid(1)]), None);
    }

    #[test]
    fn with_preds_aligns_ids_and_realign_restores() {
        let mut table = PredTable::new();
        let r = table.intern("r");
        let s = table.intern("s");
        let mut fs = FactStore::with_preds(table.clone());
        fs.insert(s, vec![sid(5)].into());
        fs.insert(r, vec![sid(6)].into());
        assert!(fs.contains("s", &[sid(5)]));

        // A store built in a different interning order realigns correctly.
        let mut other = FactStore::new();
        other.insert_named("s", vec![sid(5)].into());
        other.insert_named("x", vec![sid(7)].into());
        let aligned = other.realigned_to(&table);
        assert_eq!(aligned.preds().lookup("r"), Some(r));
        assert!(aligned.contains_id(s, &[sid(5)]));
        assert!(aligned.contains("x", &[sid(7)]));
        assert_eq!(aligned.total_facts(), 2);
    }
}
