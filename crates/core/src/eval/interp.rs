//! Interpretations as indexed fact stores.
//!
//! An interpretation is a set of ground atoms over interned sequences
//! (Section 3.3). [`FactStore`] keeps, per predicate, the tuple list in
//! insertion order (so semi-naive evaluation can address the delta added in
//! a round by index range), a hash set for O(1) duplicate detection, and
//! per-column hash indexes for join candidate selection.

use seqlog_sequence::{FxHashMap, FxHashSet, SeqId};

/// The tuples of one predicate.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    tuples: Vec<Box<[SeqId]>>,
    set: FxHashSet<Box<[SeqId]>>,
    /// `col_index[c][v]` = positions of tuples with value `v` in column `c`.
    col_index: Vec<FxHashMap<SeqId, Vec<u32>>>,
}

impl Relation {
    /// Insert a tuple; returns `true` when it was new.
    pub fn insert(&mut self, tuple: Box<[SeqId]>) -> bool {
        if self.set.contains(&tuple) {
            return false;
        }
        if self.col_index.len() < tuple.len() {
            self.col_index.resize_with(tuple.len(), FxHashMap::default);
        }
        let pos = self.tuples.len() as u32;
        for (c, &v) in tuple.iter().enumerate() {
            self.col_index[c].entry(v).or_default().push(pos);
        }
        self.set.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[SeqId]) -> bool {
        self.set.contains(tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Tuple at position `i` (insertion order).
    pub fn tuple(&self, i: usize) -> &[SeqId] {
        &self.tuples[i]
    }

    /// All tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[SeqId]> {
        self.tuples.iter().map(|t| t.as_ref())
    }

    /// Positions of tuples whose column `col` holds `v`, restricted to
    /// positions `>= from`.
    pub fn positions_with(&self, col: usize, v: SeqId, from: usize) -> &[u32] {
        let list = self
            .col_index
            .get(col)
            .and_then(|m| m.get(&v))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        // Positions are appended in increasing order; binary-search the
        // first >= from.
        let start = list.partition_point(|&p| (p as usize) < from);
        &list[start..]
    }
}

/// A set of relations keyed by predicate name.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    rels: FxHashMap<String, Relation>,
    total: usize,
}

impl FactStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fact; returns `true` when new.
    pub fn insert(&mut self, pred: &str, tuple: Box<[SeqId]>) -> bool {
        let rel = match self.rels.get_mut(pred) {
            Some(r) => r,
            None => self.rels.entry(pred.to_string()).or_default(),
        };
        let added = rel.insert(tuple);
        self.total += usize::from(added);
        added
    }

    /// The relation for `pred`, if any fact with that predicate exists.
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.rels.get(pred)
    }

    /// Membership test.
    pub fn contains(&self, pred: &str, tuple: &[SeqId]) -> bool {
        self.rels.get(pred).is_some_and(|r| r.contains(tuple))
    }

    /// Tuples of `pred` in insertion order (empty when absent).
    pub fn tuples(&self, pred: &str) -> Vec<&[SeqId]> {
        self.rels
            .get(pred)
            .map(|r| r.iter().collect())
            .unwrap_or_default()
    }

    /// Total number of facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.total
    }

    /// Predicate names present, in arbitrary order.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.rels.keys().map(String::as_str)
    }

    /// Per-predicate sizes snapshot (for semi-naive delta ranges).
    pub fn sizes(&self) -> FxHashMap<String, usize> {
        self.rels
            .iter()
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }

    /// Every sequence id occurring in any fact (with repetitions).
    pub fn all_seq_ids(&self) -> impl Iterator<Item = SeqId> + '_ {
        self.rels
            .values()
            .flat_map(|r| r.iter().flat_map(|t| t.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> SeqId {
        SeqId(n)
    }

    #[test]
    fn insert_dedupes() {
        let mut fs = FactStore::new();
        assert!(fs.insert("r", vec![sid(1), sid(2)].into()));
        assert!(!fs.insert("r", vec![sid(1), sid(2)].into()));
        assert!(fs.insert("r", vec![sid(2), sid(1)].into()));
        assert_eq!(fs.total_facts(), 2);
        assert_eq!(fs.relation("r").unwrap().len(), 2);
    }

    #[test]
    fn column_index_finds_positions() {
        let mut fs = FactStore::new();
        fs.insert("r", vec![sid(1), sid(9)].into());
        fs.insert("r", vec![sid(2), sid(9)].into());
        fs.insert("r", vec![sid(1), sid(7)].into());
        let r = fs.relation("r").unwrap();
        assert_eq!(r.positions_with(0, sid(1), 0), &[0, 2]);
        assert_eq!(r.positions_with(1, sid(9), 0), &[0, 1]);
        // Delta restriction.
        assert_eq!(r.positions_with(0, sid(1), 1), &[2]);
        assert_eq!(r.positions_with(0, sid(3), 0), &[] as &[u32]);
    }

    #[test]
    fn missing_predicates_are_empty() {
        let fs = FactStore::new();
        assert!(!fs.contains("nope", &[sid(0)]));
        assert!(fs.tuples("nope").is_empty());
    }

    #[test]
    fn zero_arity_relations_work() {
        let mut fs = FactStore::new();
        assert!(fs.insert("halted", Box::new([])));
        assert!(!fs.insert("halted", Box::new([])));
        assert!(fs.contains("halted", &[]));
    }
}
