//! Interpretations as indexed fact stores.
//!
//! An interpretation is a set of ground atoms over interned sequences
//! (Section 3.3). [`FactStore`] keeps one [`Relation`] per interned
//! predicate ([`PredId`]), addressed by direct vector index — the
//! steady-state evaluation loop never hashes a predicate name. Each
//! relation keeps its tuple list in insertion order (so semi-naive
//! evaluation can address the delta added in a round by index range), an
//! open-addressing tuple index for **single-probe** duplicate detection
//! (one hash + one probe sequence per [`Relation::insert`], no tuple
//! clone), and per-column hash indexes for join candidate selection.

use crate::compile::{PredId, PredTable};
use seqlog_sequence::{FxHashMap, FxHashSet, FxHasher, SeqId};
use std::hash::Hasher;

#[inline]
fn hash_tuple(tuple: &[SeqId]) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(tuple.len());
    for &id in tuple {
        h.write_u32(id.0);
    }
    h.finish()
}

/// Slot marker for a removed entry. A tombstone keeps the probe chains that
/// ran through the slot intact (an empty slot would cut them short); lookups
/// walk past it, and [`TupleIndex::rebuild`] (compaction) clears them.
const TOMBSTONE: u32 = u32::MAX;

/// Open-addressing index from tuple hash to tuple position: `slots` holds
/// `pos + 1` (0 = empty, [`TOMBSTONE`] = removed) in a power-of-two table
/// with linear probing. Duplicate detection therefore costs exactly one hash
/// computation and one probe walk per insert — no separate `contains` +
/// `insert` pair, and no tuple clone into a side set.
#[derive(Clone, Debug, Default)]
struct TupleIndex {
    slots: Box<[u32]>,
    /// Live tombstone count: buried slots still lengthen probe chains, so
    /// they count toward the load factor until a rebuild clears them.
    tombstones: usize,
}

impl TupleIndex {
    fn with_capacity(cap: usize) -> Self {
        Self {
            slots: vec![0u32; cap.next_power_of_two()].into_boxed_slice(),
            tombstones: 0,
        }
    }

    /// Walk the probe sequence for `hash`; `matches(pos)` decides equality.
    /// Returns `Ok(pos)` when an equal tuple exists, `Err(slot)` with the
    /// insertion slot otherwise (reusing the first tombstone on the chain).
    #[inline]
    fn probe(&self, hash: u64, matches: impl Fn(u32) -> bool) -> Result<u32, usize> {
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        let mut reusable: Option<usize> = None;
        loop {
            match self.slots[i] {
                0 => return Err(reusable.unwrap_or(i)),
                TOMBSTONE => reusable = reusable.or(Some(i)),
                stored => {
                    let pos = stored - 1;
                    if matches(pos) {
                        return Ok(pos);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// The slot currently holding the position accepted by `matches`, if any.
    #[inline]
    fn find_slot(&self, hash: u64, matches: impl Fn(u32) -> bool) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                TOMBSTONE => {}
                stored => {
                    if matches(stored - 1) {
                        return Some(i);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn occupy(&mut self, slot: usize, pos: u32) {
        if self.slots[slot] == TOMBSTONE {
            self.tombstones -= 1;
        }
        self.slots[slot] = pos + 1;
    }

    /// Tombstone the slot holding position `pos` (found via `hash`).
    fn bury(&mut self, hash: u64, pos: u32) {
        if let Some(slot) = self.find_slot(hash, |p| p == pos) {
            self.slots[slot] = TOMBSTONE;
            self.tombstones += 1;
        }
    }

    fn rebuild(&mut self, hashes: &[u64]) {
        let cap = (hashes.len() * 2).max(8).next_power_of_two();
        self.slots = vec![0u32; cap].into_boxed_slice();
        self.tombstones = 0;
        let mask = cap - 1;
        for (pos, &hash) in hashes.iter().enumerate() {
            let mut i = (hash as usize) & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = pos as u32 + 1;
        }
    }
}

/// The tuples of one predicate.
///
/// Removal ([`Relation::remove`]/[`Relation::remove_at`]) is two-phase:
/// removed tuples stay at their positions as *tombstones* (their index slots
/// are buried so probe chains survive, their column-index postings are
/// withdrawn) until [`Relation::compact`] rebuilds the dense representation.
/// Positions are therefore stable across a batch of removals — which is what
/// the retraction machinery relies on — and compaction preserves the
/// relative insertion order of the surviving tuples, so the engine's
/// thread-determinism guarantee (identical per-relation iteration order for
/// every thread count) is unaffected by deletions.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    tuples: Vec<Box<[SeqId]>>,
    /// Cached tuple hashes, parallel to `tuples` (reused on index growth).
    hashes: Vec<u64>,
    index: TupleIndex,
    /// `col_index[c][v]` = positions of tuples with value `v` in column `c`.
    col_index: Vec<FxHashMap<SeqId, Vec<u32>>>,
    /// Positions removed but not yet compacted away (normally empty).
    dead: FxHashSet<u32>,
}

impl Relation {
    /// Insert a tuple; returns `true` when it was new. Exactly one hash
    /// computation and one probe walk; the tuple is moved, never cloned.
    pub fn insert(&mut self, tuple: Box<[SeqId]>) -> bool {
        debug_assert!(
            self.dead.is_empty(),
            "insert into a relation with pending tombstones; compact first"
        );
        if self.index.slots.is_empty() {
            self.index = TupleIndex::with_capacity(8);
        }
        let hash = hash_tuple(&tuple);
        let Err(slot) = self.index.probe(hash, |pos| {
            let p = pos as usize;
            self.hashes[p] == hash && self.tuples[p][..] == tuple[..]
        }) else {
            return false;
        };
        let pos = self.tuples.len() as u32;
        if self.col_index.len() < tuple.len() {
            self.col_index.resize_with(tuple.len(), FxHashMap::default);
        }
        for (c, &v) in tuple.iter().enumerate() {
            self.col_index[c].entry(v).or_default().push(pos);
        }
        self.tuples.push(tuple);
        self.hashes.push(hash);
        // Grow at 3/4 load so probe chains stay short (tombstones left by
        // a tail-only compaction still occupy chain slots, so they count).
        if (self.tuples.len() + self.index.tombstones) * 4 >= self.index.slots.len() * 3 {
            self.index.rebuild(&self.hashes);
        } else {
            self.index.occupy(slot, pos);
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[SeqId]) -> bool {
        if self.tuples.is_empty() {
            return false;
        }
        let hash = hash_tuple(tuple);
        self.index
            .probe(hash, |pos| {
                let p = pos as usize;
                self.hashes[p] == hash && self.tuples[p][..] == tuple[..]
            })
            .is_ok()
    }

    /// Position of `tuple`, if present (and not tombstoned).
    pub fn position_of(&self, tuple: &[SeqId]) -> Option<u32> {
        if self.tuples.is_empty() {
            return None;
        }
        let hash = hash_tuple(tuple);
        self.index
            .probe(hash, |pos| {
                let p = pos as usize;
                self.hashes[p] == hash && self.tuples[p][..] == tuple[..]
            })
            .ok()
    }

    /// Remove the tuple at position `pos`: bury its index slot, withdraw its
    /// column-index postings, and leave a tombstone at the position so that
    /// other positions stay stable until [`Relation::compact`] runs. Returns
    /// `false` when `pos` is already dead.
    pub fn remove_at(&mut self, pos: u32) -> bool {
        let p = pos as usize;
        assert!(p < self.tuples.len(), "remove_at out of bounds");
        if !self.dead.insert(pos) {
            return false;
        }
        self.index.bury(self.hashes[p], pos);
        for c in 0..self.tuples[p].len() {
            let v = self.tuples[p][c];
            if let Some(list) = self.col_index[c].get_mut(&v) {
                // Postings are sorted by position; withdraw exactly one.
                if let Ok(i) = list.binary_search(&pos) {
                    list.remove(i);
                }
            }
        }
        true
    }

    /// Remove `tuple` by value; returns `true` when it was present.
    pub fn remove(&mut self, tuple: &[SeqId]) -> bool {
        match self.position_of(tuple) {
            Some(pos) => self.remove_at(pos),
            None => false,
        }
    }

    /// Drop tombstoned positions: surviving tuples shift down preserving
    /// their relative insertion order, and the tuple index and column
    /// indexes are rebuilt dense. No-op when nothing was removed.
    pub fn compact(&mut self) {
        if self.dead.is_empty() {
            return;
        }
        let dead = std::mem::take(&mut self.dead);
        // Tail-only removals (the assert-rollback shape — every dead
        // position is at the end): postings are already withdrawn and the
        // index slots buried, so truncation suffices. The tombstoned slots
        // stay in the index, counted toward its load factor, and are
        // recycled by later inserts or swept by the next rebuild — no
        // O(relation) column-index rebuild per budget refusal.
        let live_len = self.tuples.len() - dead.len();
        if dead.iter().all(|&p| (p as usize) >= live_len) {
            self.tuples.truncate(live_len);
            self.hashes.truncate(live_len);
            return;
        }
        let mut keep = 0usize;
        for pos in 0..self.tuples.len() {
            if dead.contains(&(pos as u32)) {
                continue;
            }
            if keep != pos {
                self.tuples.swap(keep, pos);
                self.hashes.swap(keep, pos);
            }
            keep += 1;
        }
        self.tuples.truncate(keep);
        self.hashes.truncate(keep);
        for m in &mut self.col_index {
            m.clear();
        }
        for (pos, tuple) in self.tuples.iter().enumerate() {
            for (c, &v) in tuple.iter().enumerate() {
                self.col_index[c].entry(v).or_default().push(pos as u32);
            }
        }
        self.index.rebuild(&self.hashes);
    }

    /// Number of tuple *positions* (including tombstones, which exist only
    /// transiently between a removal batch and its [`Relation::compact`]).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Number of live tuples.
    pub fn live_len(&self) -> usize {
        self.tuples.len() - self.dead.len()
    }

    /// True when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// Tuple at position `i` (insertion order).
    pub fn tuple(&self, i: usize) -> &[SeqId] {
        &self.tuples[i]
    }

    /// All live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[SeqId]> {
        let all_live = self.dead.is_empty();
        self.tuples
            .iter()
            .enumerate()
            .filter(move |(i, _)| all_live || !self.dead.contains(&(*i as u32)))
            .map(|(_, t)| t.as_ref())
    }

    /// Positions of tuples whose column `col` holds `v`, restricted to the
    /// half-open position window `from..to` (semi-naive delta chunks).
    pub fn positions_with(&self, col: usize, v: SeqId, from: usize, to: usize) -> &[u32] {
        let list = self
            .col_index
            .get(col)
            .and_then(|m| m.get(&v))
            .map_or(&[][..], Vec::as_slice);
        // Positions are appended in increasing order; binary-search both
        // window edges.
        let start = list.partition_point(|&p| (p as usize) < from);
        let end = list.partition_point(|&p| (p as usize) < to);
        &list[start..end]
    }
}

/// A set of relations indexed by interned predicate id.
///
/// The store owns a [`PredTable`]; the evaluator seeds it from the compiled
/// program's table so compiled `PredId`s index `rels` directly, then extends
/// it with database-only predicates. `&str` lookups remain available at the
/// API boundary ([`FactStore::relation_named`], [`FactStore::contains`],
/// [`FactStore::tuples`]) — they are not used in the evaluation loop.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    preds: PredTable,
    rels: Vec<Relation>,
    total: usize,
}

impl FactStore {
    /// Create an empty store with an empty predicate table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a store whose relation vector is pre-aligned to `preds`
    /// (compiled `PredId`s then index it directly).
    pub fn with_preds(preds: PredTable) -> Self {
        let mut rels = Vec::new();
        rels.resize_with(preds.len(), Relation::default);
        Self {
            preds,
            rels,
            total: 0,
        }
    }

    /// The store's predicate table.
    pub fn preds(&self) -> &PredTable {
        &self.preds
    }

    /// Intern `name` in this store (growing the relation vector).
    pub fn pred_id(&mut self, name: &str) -> PredId {
        let id = self.preds.intern(name);
        if self.rels.len() < self.preds.len() {
            self.rels.resize_with(self.preds.len(), Relation::default);
        }
        id
    }

    /// Look up a predicate name without interning it.
    pub fn lookup_pred(&self, name: &str) -> Option<PredId> {
        self.preds.lookup(name)
    }

    /// Insert a fact under an interned predicate; returns `true` when new.
    pub fn insert(&mut self, pred: PredId, tuple: Box<[SeqId]>) -> bool {
        let added = self.rels[pred.index()].insert(tuple);
        self.total += usize::from(added);
        added
    }

    /// Remove a fact by value; returns `true` when it was present. The
    /// relation keeps a tombstone at the position until
    /// [`FactStore::compact`] runs (see [`Relation`] for the protocol).
    pub fn remove(&mut self, pred: PredId, tuple: &[SeqId]) -> bool {
        let removed = self
            .rels
            .get_mut(pred.index())
            .is_some_and(|r| r.remove(tuple));
        self.total -= usize::from(removed);
        removed
    }

    /// Remove the fact at `pos` of `pred`'s relation (tombstoning it).
    pub fn remove_at(&mut self, pred: PredId, pos: u32) -> bool {
        let removed = self.rels[pred.index()].remove_at(pos);
        self.total -= usize::from(removed);
        removed
    }

    /// Position of `tuple` in `pred`'s relation, if present.
    pub fn position_of(&self, pred: PredId, tuple: &[SeqId]) -> Option<u32> {
        self.rels
            .get(pred.index())
            .and_then(|r| r.position_of(tuple))
    }

    /// Compact every relation after a removal batch (drop tombstones,
    /// preserving surviving insertion order).
    pub fn compact(&mut self) {
        for r in &mut self.rels {
            r.compact();
        }
    }

    /// Insert a fact by predicate name (boundary convenience).
    pub fn insert_named(&mut self, name: &str, tuple: Box<[SeqId]>) -> bool {
        let id = self.pred_id(name);
        self.insert(id, tuple)
    }

    /// The relation of an interned predicate.
    pub fn relation(&self, pred: PredId) -> &Relation {
        &self.rels[pred.index()]
    }

    /// The relation for `name`, if the predicate is known.
    pub fn relation_named(&self, name: &str) -> Option<&Relation> {
        self.preds.lookup(name).map(|id| &self.rels[id.index()])
    }

    /// Membership test by interned predicate.
    pub fn contains_id(&self, pred: PredId, tuple: &[SeqId]) -> bool {
        self.rels[pred.index()].contains(tuple)
    }

    /// Membership test by predicate name.
    pub fn contains(&self, pred: &str, tuple: &[SeqId]) -> bool {
        self.relation_named(pred).is_some_and(|r| r.contains(tuple))
    }

    /// Tuples of `pred` in insertion order (empty when absent).
    ///
    /// Compatibility wrapper that allocates a `Vec` of references; new code
    /// should iterate [`Relation::iter`] via [`FactStore::relation_named`].
    pub fn tuples(&self, pred: &str) -> Vec<&[SeqId]> {
        self.relation_named(pred)
            .map(|r| r.iter().collect())
            .unwrap_or_default()
    }

    /// Total number of facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.total
    }

    /// Predicate names present, in id order.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.preds.iter().map(|(_, n)| n)
    }

    /// Iterate `(PredId, relation)` pairs in id order.
    pub fn relations(&self) -> impl Iterator<Item = (PredId, &Relation)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(i, r)| (PredId(i as u32), r))
    }

    /// Per-relation sizes snapshot, indexed by `PredId` (semi-naive delta
    /// ranges). A plain `Vec<usize>` copy — no map rebuild, no key clones.
    pub fn sizes(&self) -> Vec<usize> {
        self.rels.iter().map(Relation::len).collect()
    }

    /// Number of tuples currently in one predicate's relation (`0` when
    /// the store has no relation for it). The stratified scheduler plans
    /// per-stratum deltas with this instead of allocating a full
    /// [`FactStore::sizes`] snapshot for strata that turn out settled.
    pub fn len_of(&self, pred: PredId) -> usize {
        self.rels.get(pred.index()).map_or(0, Relation::len)
    }

    /// Every sequence id occurring in any fact (with repetitions).
    pub fn all_seq_ids(&self) -> impl Iterator<Item = SeqId> + '_ {
        self.rels
            .iter()
            .flat_map(|r| r.iter().flat_map(|t| t.iter().copied()))
    }

    /// A copy of this store whose `PredId`s are aligned to `preds`
    /// (predicates unknown to `preds` are appended after it). Used by the
    /// cold model-checking path when a caller-supplied interpretation was
    /// not built from the program being checked.
    pub fn realigned_to(&self, preds: &PredTable) -> FactStore {
        let mut out = FactStore::with_preds(preds.clone());
        for (id, name) in self.preds.iter() {
            let new_id = out.pred_id(name);
            let rel = &self.rels[id.index()];
            out.rels[new_id.index()] = rel.clone();
            out.total += rel.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> SeqId {
        SeqId(n)
    }

    #[test]
    fn insert_dedupes() {
        let mut fs = FactStore::new();
        assert!(fs.insert_named("r", vec![sid(1), sid(2)].into()));
        assert!(!fs.insert_named("r", vec![sid(1), sid(2)].into()));
        assert!(fs.insert_named("r", vec![sid(2), sid(1)].into()));
        assert_eq!(fs.total_facts(), 2);
        assert_eq!(fs.relation_named("r").unwrap().len(), 2);
    }

    #[test]
    fn column_index_finds_positions() {
        let mut fs = FactStore::new();
        fs.insert_named("r", vec![sid(1), sid(9)].into());
        fs.insert_named("r", vec![sid(2), sid(9)].into());
        fs.insert_named("r", vec![sid(1), sid(7)].into());
        let r = fs.relation_named("r").unwrap();
        assert_eq!(r.positions_with(0, sid(1), 0, r.len()), &[0, 2]);
        assert_eq!(r.positions_with(1, sid(9), 0, r.len()), &[0, 1]);
        // Delta restriction (lower and upper edges).
        assert_eq!(r.positions_with(0, sid(1), 1, r.len()), &[2]);
        assert_eq!(r.positions_with(0, sid(1), 0, 2), &[0]);
        assert_eq!(r.positions_with(0, sid(1), 1, 2), &[] as &[u32]);
        assert_eq!(r.positions_with(0, sid(3), 0, r.len()), &[] as &[u32]);
    }

    #[test]
    fn missing_predicates_are_empty() {
        let fs = FactStore::new();
        assert!(!fs.contains("nope", &[sid(0)]));
        assert!(fs.tuples("nope").is_empty());
    }

    #[test]
    fn zero_arity_relations_work() {
        let mut fs = FactStore::new();
        assert!(fs.insert_named("halted", Box::new([])));
        assert!(!fs.insert_named("halted", Box::new([])));
        assert!(fs.contains("halted", &[]));
    }

    #[test]
    fn tuple_index_survives_growth() {
        let mut rel = Relation::default();
        for i in 0..1000u32 {
            assert!(rel.insert(vec![sid(i), sid(i / 3)].into()));
        }
        for i in 0..1000u32 {
            assert!(!rel.insert(vec![sid(i), sid(i / 3)].into()), "dup {i}");
            assert!(rel.contains(&[sid(i), sid(i / 3)]));
        }
        assert!(!rel.contains(&[sid(1000), sid(0)]));
        assert_eq!(rel.len(), 1000);
    }

    #[test]
    fn remove_tombstones_then_compact_preserves_order() {
        let mut rel = Relation::default();
        for i in 0..100u32 {
            assert!(rel.insert(vec![sid(i), sid(i % 7)].into()));
        }
        // Tombstone every third tuple: positions stay stable, probe chains
        // survive, col_index postings are withdrawn.
        for i in (0..100u32).step_by(3) {
            assert!(rel.remove(&[sid(i), sid(i % 7)]));
            assert!(!rel.remove(&[sid(i), sid(i % 7)]), "double remove {i}");
        }
        assert_eq!(rel.len(), 100, "positions stable before compaction");
        assert_eq!(rel.live_len(), 100 - 34);
        for i in 0..100u32 {
            let present = i % 3 != 0;
            assert_eq!(rel.contains(&[sid(i), sid(i % 7)]), present, "{i}");
            if present {
                assert_eq!(rel.position_of(&[sid(i), sid(i % 7)]), Some(i));
            } else {
                assert_eq!(rel.position_of(&[sid(i), sid(i % 7)]), None);
                assert!(
                    !rel.positions_with(0, sid(i), 0, rel.len()).contains(&i),
                    "posting for removed tuple {i} must be withdrawn"
                );
            }
        }
        // Iteration skips tombstones in insertion order.
        let live: Vec<u32> = rel.iter().map(|t| t[0].0).collect();
        let expected: Vec<u32> = (0..100).filter(|i| i % 3 != 0).collect();
        assert_eq!(live, expected);

        rel.compact();
        assert_eq!(rel.len(), 66);
        assert_eq!(rel.live_len(), 66);
        let dense: Vec<u32> = rel.iter().map(|t| t[0].0).collect();
        assert_eq!(dense, expected, "compaction preserves insertion order");
        for (pos, &i) in expected.iter().enumerate() {
            assert_eq!(rel.position_of(&[sid(i), sid(i % 7)]), Some(pos as u32));
            assert_eq!(
                rel.positions_with(0, sid(i), 0, rel.len()),
                &[pos as u32],
                "col index rebuilt densely for {i}"
            );
        }
        // Inserts after compaction work (including re-adding removed rows).
        assert!(rel.insert(vec![sid(0), sid(0)].into()));
        assert!(!rel.insert(vec![sid(1), sid(1)].into()), "survivor deduped");
        assert_eq!(rel.len(), 67);
    }

    #[test]
    fn factstore_remove_tracks_total() {
        let mut fs = FactStore::new();
        let r = fs.pred_id("r");
        fs.insert(r, vec![sid(1)].into());
        fs.insert(r, vec![sid(2)].into());
        assert_eq!(fs.total_facts(), 2);
        assert!(fs.remove(r, &[sid(1)]));
        assert!(!fs.remove(r, &[sid(1)]));
        assert_eq!(fs.total_facts(), 1);
        fs.compact();
        assert_eq!(fs.relation(r).len(), 1);
        assert!(fs.contains_id(r, &[sid(2)]));
        assert!(!fs.contains_id(r, &[sid(1)]));
        // Removal of unknown predicates is a no-op, never an index panic.
        assert!(!fs.remove(PredId(99), &[sid(1)]));
        assert_eq!(fs.position_of(PredId(99), &[sid(1)]), None);
    }

    #[test]
    fn with_preds_aligns_ids_and_realign_restores() {
        let mut table = PredTable::new();
        let r = table.intern("r");
        let s = table.intern("s");
        let mut fs = FactStore::with_preds(table.clone());
        fs.insert(s, vec![sid(5)].into());
        fs.insert(r, vec![sid(6)].into());
        assert!(fs.contains("s", &[sid(5)]));

        // A store built in a different interning order realigns correctly.
        let mut other = FactStore::new();
        other.insert_named("s", vec![sid(5)].into());
        other.insert_named("x", vec![sid(7)].into());
        let aligned = other.realigned_to(&table);
        assert_eq!(aligned.preds().lookup("r"), Some(r));
        assert!(aligned.contains_id(s, &[sid(5)]));
        assert!(aligned.contains("x", &[sid(7)]));
        assert_eq!(aligned.total_facts(), 2);
    }
}
