//! Fixpoint evaluation of Sequence Datalog / Transducer Datalog programs
//! (Section 3.3, extended with transducer terms per Section 7.1).
//!
//! The evaluator computes `lfp(T_{P,db}) = T_{P,db} ↑ ω` bottom-up. Each
//! round applies the T-operator to the current interpretation: substitutions
//! range over the extended active domain *of that interpretation*
//! (Definition 4), new facts are collected and committed at the end of the
//! round, and every sequence occurring in a committed fact enters the domain
//! together with its contiguous subsequences.
//!
//! # Three-phase rounds: match, sharded commit, deterministic merge
//!
//! Every round runs in three phases:
//!
//! 1. **Match + frozen head evaluation** — parallel, read-only on shared
//!    state. The round's work is split into [`MatchTask`]s (one clause,
//!    optionally restricted to a fixed-size chunk of one body literal's
//!    semi-naive delta). Each task runs the matcher over shared
//!    `&SeqStore`/`&FactStore`/`&ExtendedDomain` borrows, emits *recipes*
//!    (fully bound substitutions, flat in a per-task [`RecipeBuf`]), and
//!    immediately evaluates the clause head under each recipe against the
//!    **epoch-frozen** sequence store: already-interned values resolve by
//!    read-only lookup, and genuinely new values (constructive heads —
//!    fresh concatenations, transducer outputs, uninterned windows) are
//!    collected in a task-local [`PendingInterns`] batch under provisional
//!    ids. Nothing shared is mutated, which is why tasks can run on
//!    [`EvalConfig::threads`] worker threads (`std::thread::scope`) with no
//!    synchronization beyond a task counter.
//! 2. **Sharded commit (dedupe)** — parallel over index shards. Every
//!    task's candidate tuples are bucketed per head relation, and each
//!    relation's open-addressing dedupe index is split into
//!    [`interp::INDEX_SHARDS`] hash-range shards (a tuple's shard is a
//!    function of its hash, never of the thread count). Workers own
//!    disjoint shards and decide new-vs-duplicate for their shards'
//!    candidates concurrently, admitting new tuples into provisional index
//!    slots. Within a shard, candidates are processed in task-ordinal
//!    order against state only that shard's earlier candidates can have
//!    touched — so every verdict and every slot choice is a deterministic
//!    function of the relation and the candidate list alone.
//! 3. **Deterministic merge** — sequential, in task order (independent of
//!    which worker ran what when): each task's pending interns are applied
//!    to the store (first-encounter order; cross-task duplicates collapse),
//!    admitted facts append to their relations in task-ordinal order
//!    (patching their provisional slots to real positions), the domain is
//!    closed over every inserted sequence, statistics accumulate, and
//!    budgets are enforced incrementally — a single wide round cannot
//!    overshoot `max_facts` by more than one fact, exactly as in the
//!    sequential-commit engine. On a budget or head-evaluation error the
//!    merge stops at the erring ordinal and the not-yet-applied provisional
//!    slots are rolled back (tombstoned), leaving the relations consistent.
//!
//! Because the task list depends only on the program and the interpretation
//! (never on the thread count), shard membership only on tuple hashes, and
//! the merge walks in task order, evaluation is **bit-for-bit
//! deterministic**: the model, each relation's insertion order, and
//! [`EvalStats`] are identical for every `threads` setting, including
//! `threads: 1`. (Only the *interner's* private id numbering is defined by
//! the deterministic merge schedule rather than by head-evaluation order;
//! it is unobservable through the query API, the WAL, and snapshots, which
//! are all symbol-level.)
//!
//! Read-only matching leans on the closure invariant of Definition 2: every
//! window of a domain member is already interned, so indexed terms resolve
//! by [`SeqStore::subseq_lookup`] instead of interning. Program constants
//! are pre-closed ([`SeqStore::close_windows`]) before the first round to
//! extend the invariant to constant bases.
//!
//! # Interned, index-addressed core
//!
//! The hot loop never touches a predicate-name `String`:
//!
//! * compilation interns every predicate to a dense
//!   [`PredId`](crate::compile::PredId) in the program's
//!   [`PredTable`](crate::compile::PredTable);
//! * the [`FactStore`] is a `Vec<Relation>` indexed by `PredId` (the store's
//!   table starts as a copy of the program's, so compiled ids index it
//!   directly; database-only predicates extend it at seeding);
//! * [`interp::Relation::insert`] performs a **single hash probe** per tuple
//!   (open addressing over cached tuple hashes — no `contains`+`insert`
//!   pair, no tuple clone);
//! * the per-round delta snapshot ([`FactStore::sizes`]) is a plain
//!   `Vec<usize>` copy, and recipes are flat `SeqId`/`i64` buffers — zero
//!   `String` allocations per derived fact;
//! * the matcher ([`matcher`]) runs on one scratch substitution per task
//!   with a bind/undo trail — no `Bindings` clone per candidate.
//!
//! `&str` lookups remain available at the API boundary
//! ([`Model::tuples`], [`FactStore::contains`]).
//!
//! # Budgets and strategies
//!
//! Because the finiteness problem is fully undecidable (Theorem 2), the
//! evaluator enforces explicit budgets ([`EvalConfig`]) and reports
//! [`BudgetKind`]-tagged errors instead of diverging on programs like
//! Example 1.5's `rep2` or Example 1.6's `echo`. Budgets are checked as the
//! commit phase inserts facts, not just between rounds.
//!
//! Two strategies are provided: [`Strategy::Naive`] (the literal T-operator
//! iteration — the executable specification) and [`Strategy::SemiNaive`]
//! (delta-driven; differentially tested against naive). Semi-naive fires
//! each clause once per body-literal occurrence of a grown predicate, with
//! that occurrence restricted to the delta, occurrences *before* it
//! restricted to the pre-round prefix, and occurrences after it unrestricted
//! — so a clause mentioning the same grown predicate twice derives each
//! new–new combination exactly once. *Domain-sensitive* clauses (those that
//! enumerate the extended active domain) are additionally re-evaluated in
//! full whenever the domain has grown.
//!
//! # Reading [`EvalStats`]
//!
//! `stats.derivations` counts **head instantiations attempted** (recipes
//! emitted), including duplicates that the fact store then rejects — it is
//! the work measure of the T-operator, not the output size (`stats.facts`
//! is). A large `derivations`-to-`facts` ratio under [`Strategy::Naive`]
//! and a near-1 ratio under [`Strategy::SemiNaive`] is the expected
//! signature of delta evaluation working; `transducer_calls`/
//! `transducer_steps` account for embedded machine runs separately.

pub mod interp;
pub mod matcher;

use crate::compile::{
    compile, CBase, CBody, CIdx, CSeq, CompileError, CompiledProgram, PredId, PredTable,
};
use crate::database::Database;
use crate::registry::TransducerRegistry;
use crate::Program;
use interp::{hash_tuple, FactStore, Relation, CAND_DUP};
use matcher::{solve_body, Bindings, Delta, MatchEnv};
use seqlog_sequence::{
    DomainMark, ExtendedDomain, FxHashMap, FxHashSet, PendingInterns, SeqId, SeqStore, Sym,
};
use seqlog_transducer::{ExecLimits, ExecStats};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Literal T-operator iteration — the executable specification.
    Naive,
    /// Delta-driven evaluation (default).
    #[default]
    SemiNaive,
}

/// How semi-naive rounds are scheduled over the program's clauses.
///
/// Both modes compute the same least fixpoint (differentially fuzzed) and
/// are each bit-for-bit deterministic across thread counts; they differ in
/// which clauses a round scans, so [`EvalStats::rounds`] and
/// [`EvalStats::derivations`] are comparable only within one mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Walk the compiled program's SCC condensation
    /// ([`crate::analysis::Schedule`]) in topological order, running
    /// semi-naive rounds only over the current stratum's clauses and
    /// skipping strata whose inputs have not changed (default).
    #[default]
    Stratified,
    /// Scan every clause in every round (the pre-stratification loop) —
    /// kept as the differential oracle for the stratified scheduler.
    Global,
}

/// Evaluation budgets and strategy selection.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Strategy to use.
    pub strategy: Strategy,
    /// Round scheduling for [`Strategy::SemiNaive`] (ignored under
    /// [`Strategy::Naive`], which is inherently global).
    pub scheduling: Scheduling,
    /// Maximum T-operator rounds.
    pub max_rounds: usize,
    /// Maximum total facts.
    pub max_facts: usize,
    /// Maximum extended-active-domain size (member sequences).
    pub max_domain: usize,
    /// Maximum length of any created sequence.
    pub max_seq_len: usize,
    /// Budgets for embedded transducer runs.
    pub exec_limits: ExecLimits,
    /// Worker threads for the match + head-evaluation and sharded-commit
    /// phases. `0` (the default) resolves to
    /// [`std::thread::available_parallelism`]. The result is identical for
    /// every setting — see the module docs on determinism.
    pub threads: usize,
    /// Test-only: take the parallel dispatch path even for rounds below
    /// [`PAR_THRESHOLD`]. The fuzz suites set this to drive their (small)
    /// generated cases through the multi-worker match and sharded-commit
    /// machinery; results must still be bit-for-bit identical.
    #[doc(hidden)]
    pub danger_force_parallel: bool,
    /// Test-only **mutant** for mutation-testing the determinism oracle:
    /// merge the round's task buffers in reverse task order when more than
    /// one worker is configured. This is the "shard merge order" bug shape;
    /// the differential fuzz suite must catch it as a cross-thread-count
    /// divergence.
    #[doc(hidden)]
    pub danger_reverse_merge_order: bool,
    /// Test-only **mutant**: misalign each task's provisional-intern
    /// resolution table (rotate it by one) when more than one worker is
    /// configured. This is the "skipped epoch freeze" bug shape — head
    /// tuples end up pointing at the wrong freshly interned sequences — and
    /// must be caught by the differential oracle.
    #[doc(hidden)]
    pub danger_skip_epoch_freeze: bool,
    /// Test-only: skip the compile-time transducer-fusion pass
    /// ([`crate::analysis::fuse`]) and evaluate chained transducer calls
    /// stage by stage. Fusion is a pure rewrite, so the extent must be
    /// bit-for-bit identical with this flag on or off — the differential
    /// fuzz suite drives both sides through this switch.
    #[doc(hidden)]
    pub danger_disable_fusion: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::SemiNaive,
            scheduling: Scheduling::Stratified,
            max_rounds: 10_000,
            max_facts: 1_000_000,
            max_domain: 1_000_000,
            max_seq_len: 65_536,
            exec_limits: ExecLimits::default(),
            threads: 0,
            danger_force_parallel: false,
            danger_reverse_merge_order: false,
            danger_skip_epoch_freeze: false,
            danger_disable_fusion: false,
        }
    }
}

impl EvalConfig {
    /// A small-budget configuration for probing programs suspected of
    /// having an infinite least fixpoint (Examples 1.5/1.6).
    pub fn probe() -> Self {
        Self {
            max_rounds: 50,
            max_facts: 20_000,
            max_domain: 20_000,
            max_seq_len: 4_096,
            ..Self::default()
        }
    }

    /// The default configuration with an explicit match-phase thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// Which budget was exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// `max_rounds`.
    Rounds,
    /// `max_facts`.
    Facts,
    /// `max_domain`.
    DomainSize,
    /// `max_seq_len`.
    SeqLen,
}

/// Counters describing an evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// T-operator rounds performed.
    pub rounds: usize,
    /// Facts in the final (or partial) interpretation.
    pub facts: usize,
    /// Extended-active-domain size.
    pub domain_size: usize,
    /// Longest sequence created during evaluation.
    pub max_seq_len: usize,
    /// Head instantiations attempted (including duplicates rejected by the
    /// fact store) — the T-operator work measure, not the output size.
    pub derivations: u64,
    /// Transducer-term evaluations.
    pub transducer_calls: u64,
    /// Total transducer transitions across all calls.
    pub transducer_steps: u64,
}

/// Evaluation errors.
#[derive(Clone, Debug)]
pub enum EvalError {
    /// Static validation failed.
    Compile(CompileError),
    /// A budget was exhausted — the program may have an infinite least
    /// fixpoint (Theorem 2 makes this undecidable in general).
    Budget {
        /// Exhausted budget.
        kind: BudgetKind,
        /// Statistics at the point of interruption.
        stats: EvalStats,
    },
    /// A transducer term refers to a machine that is not registered.
    UnknownTransducer(String),
    /// A transducer run failed (stuck machine or exec budget).
    Transducer {
        /// Machine name.
        name: String,
        /// Rendered execution error.
        error: String,
    },
    /// The session that was asked to do this work was poisoned by an
    /// earlier evaluation error and refuses further mutation (see
    /// [`crate::session::EngineSession`]; the read API stays available).
    Poisoned {
        /// The error that poisoned the session.
        original: Box<EvalError>,
    },
    /// A durable session's on-disk state could not be written or rebuilt
    /// (see [`crate::wal`] and [`crate::snapshot`]). On the write path the
    /// refused mutation was **not** applied; on the recovery path no
    /// session state was replaced.
    Recovery(crate::wal::RecoveryError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Compile(e) => write!(f, "{e}"),
            Self::Budget { kind, stats } => write!(
                f,
                "budget exhausted ({kind:?}) after {} rounds, {} facts, domain {}",
                stats.rounds, stats.facts, stats.domain_size
            ),
            Self::UnknownTransducer(n) => write!(f, "unknown transducer @{n}"),
            Self::Transducer { name, error } => write!(f, "transducer @{name}: {error}"),
            Self::Poisoned { original } => {
                write!(f, "session poisoned by earlier error: {original}")
            }
            Self::Recovery(e) => write!(f, "durability: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<CompileError> for EvalError {
    fn from(e: CompileError) -> Self {
        Self::Compile(e)
    }
}

impl From<crate::wal::RecoveryError> for EvalError {
    fn from(e: crate::wal::RecoveryError) -> Self {
        Self::Recovery(e)
    }
}

/// The result of a (terminating) evaluation: the least fixpoint
/// interpretation, its extended active domain, and statistics.
#[derive(Clone, Debug)]
pub struct Model {
    /// The least fixpoint `T_{P,db} ↑ ω`.
    pub facts: FactStore,
    /// Its extended active domain.
    pub domain: ExtendedDomain,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl Model {
    /// Tuples of `pred` (empty when absent). Allocates a `Vec` of
    /// references; iterate `self.facts.relation_named(pred)` via
    /// [`interp::Relation::iter`] to avoid it.
    pub fn tuples(&self, pred: &str) -> Vec<&[SeqId]> {
        self.facts.tuples(pred)
    }

    /// Membership test.
    pub fn contains(&self, pred: &str, tuple: &[SeqId]) -> bool {
        self.facts.contains(pred, tuple)
    }
}

/// One shard of a round's match work: one clause, optionally restricted to
/// a chunk `from..to` of body-literal `at`'s semi-naive delta.
#[derive(Clone, Copy, Debug)]
struct MatchTask {
    clause: usize,
    /// `(at, from, to)` — `None` for a full (unrestricted) application.
    delta: Option<(usize, usize, usize)>,
}

/// Delta tuples per task. Fixed (never derived from the thread count) so
/// the task list — and with it the recipe commit order — is identical for
/// every `EvalConfig::threads` setting.
const DELTA_CHUNK: usize = 256;

/// Recipes of one task: fully bound substitutions for the task's clause,
/// stored flat with stride `n_seq` / `n_idx`. The commit phase re-evaluates
/// the clause head under each of them.
#[derive(Default)]
struct RecipeBuf {
    seqs: Vec<SeqId>,
    idxs: Vec<i64>,
    count: usize,
}

impl RecipeBuf {
    /// Empty the buffer for reuse, keeping its allocations (the DRed
    /// over-delete loop runs one scratch buffer across all propagations;
    /// match workers reuse one scratch buffer across their tasks).
    fn clear(&mut self) {
        self.seqs.clear();
        self.idxs.clear();
        self.count = 0;
    }
}

/// Per-recipe head-evaluation verdict in a [`HeadBuf`]: every head argument
/// evaluated to a defined value — the tuple is a commit candidate.
const REC_TUPLE: u8 = 0;
/// Some head term was undefined (Section 3.2): no fact, no error.
const REC_UNDEF: u8 = 1;
/// Head evaluation failed; always the **last** status entry of its buffer
/// (the worker stops the task), with the cause in [`HeadBuf::error`].
const REC_ERR: u8 = 2;

/// An error captured during frozen head evaluation (phase 1). Workers
/// cannot touch shared statistics or raise [`EvalError`]s directly — the
/// merge phase surfaces the error at its deterministic task-ordinal
/// position, with exactly the statistics the sequential engine would have
/// accumulated by that point.
#[derive(Clone, Debug)]
enum HeadError {
    /// A head value exceeded `max_seq_len` (its actual length).
    SeqLen(usize),
    /// A transducer term named an unregistered machine.
    UnknownTransducer(String),
    /// A transducer run failed (stuck machine or exec budget).
    Transducer { name: String, error: String },
}

/// One task's head-evaluation output: the phase-1 workers turn a
/// [`RecipeBuf`] into this against the epoch-frozen store, and the merge
/// phase drains it in task order. Tuples may contain *provisional* ids
/// (tagged with [`seqlog_sequence::PROVISIONAL_BIT`]) referring to the
/// task-local [`PendingInterns`] batch; those tuples' entries in `hashes`
/// are placeholders until the merge applies the batch and patches them.
#[derive(Default)]
struct HeadBuf {
    /// Recipes the task emitted (its `RecipeBuf::count`) — the
    /// `derivations` measure. `status` is shorter than this iff an error
    /// stopped the task early.
    count: usize,
    /// Per evaluated recipe: [`REC_TUPLE`] / [`REC_UNDEF`] / [`REC_ERR`].
    status: Vec<u8>,
    /// Candidate head tuples (stride = head arity), [`REC_TUPLE`] recipes
    /// only, in recipe order.
    tuples: Vec<SeqId>,
    /// Tuple hash per [`REC_TUPLE`] recipe (placeholder `0` until patched
    /// for the ranks listed in `needs_patch`).
    hashes: Vec<u64>,
    /// Candidate ranks (indexes into `hashes`) whose tuples hold
    /// provisional ids.
    needs_patch: Vec<u32>,
    /// Task-local fresh sequence values (constructive clauses only).
    pending: PendingInterns,
    /// Per evaluated recipe: this recipe's (transducer calls, transducer
    /// steps). Empty when the clause head contains no transducer term.
    tstats: Vec<(u64, u64)>,
    /// The cause behind a trailing [`REC_ERR`] status.
    error: Option<HeadError>,
}

/// Evaluate `program` over `db` to the least fixpoint.
pub fn evaluate(
    program: &Program,
    db: &Database,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    config: &EvalConfig,
) -> Result<Model, EvalError> {
    let compiled = compile(program)?;
    evaluate_compiled(&compiled, db, store, registry, config)
}

/// Evaluate an already-compiled program.
pub fn evaluate_compiled(
    program: &CompiledProgram,
    db: &Database,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    config: &EvalConfig,
) -> Result<Model, EvalError> {
    // Compile-time transducer fusion: collapse chained 1-input transducer
    // calls in clause heads into single fused machines (a pure rewrite —
    // the extent is bit-for-bit identical either way).
    let fusion_store;
    let (program, registry) = if config.danger_disable_fusion {
        (program, registry)
    } else {
        let pass = crate::analysis::fuse::fuse_program(
            program,
            registry,
            &crate::analysis::FuseLimits::default(),
        );
        match pass.fused {
            Some((rewritten, machines)) => {
                let mut reg = registry.clone();
                for (name, machine) in machines {
                    reg.register(name, machine);
                }
                fusion_store = (rewritten, reg);
                (&fusion_store.0, &fusion_store.1)
            }
            None => (program, registry),
        }
    };
    // Window-close program constants so the match phase can resolve any
    // indexed term by read-only lookup (domain members are closed by
    // `insert_closed`; this extends the invariant to constant bases).
    for id in program.constants() {
        store.close_windows(id);
    }
    let mut fx = Fixpoint::new(program);
    // Seed: database atoms are clauses with empty bodies (Definition 4).
    for (pred, tuple) in db.iter() {
        fx.assert_named(store, pred, tuple.into());
    }
    fx.run(program, store, registry, config)?;
    Ok(fx.into_model())
}

/// What one [`Fixpoint::assert_fact_full`] actually changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AssertOutcome {
    /// The fact was new to the interpretation (it will be part of the next
    /// run's semi-naive delta).
    pub new_fact: bool,
    /// The fact was new to the *base* set (it may already have been present
    /// as a derived fact).
    pub new_base: bool,
}

/// Resumable semi-naive fixpoint state: an interpretation under
/// construction, together with the bookkeeping the round loop needs to
/// *re-enter* evaluation after new base facts arrive.
///
/// [`evaluate_compiled`] is a thin wrapper over this type: seed a fresh
/// `Fixpoint` from the database and [`run`](Fixpoint::run) it to
/// quiescence. A [`crate::session::EngineSession`] instead keeps one alive
/// across updates: [`assert_fact`](Fixpoint::assert_fact) inserts new base
/// facts after a fixpoint has been reached — closing the extended active
/// domain over their sequences at assert time, exactly as initial seeding
/// does — and the next `run` resumes the three-phase round loop with exactly
/// those facts as the semi-naive delta.
///
/// Resumption is sound because `T_{P,db}` is monotone (Definitions 2–3):
/// the settled interpretation `lfp(T_{P,db})` is contained in
/// `lfp(T_{P,db∪Δ})`, every clause is already closed over the settled
/// facts, and any *new* derivation must bind at least one body literal to a
/// delta fact (covered by the delta tasks) or consult a domain member that
/// did not exist before (covered by re-running domain-sensitive clauses
/// whenever [`domain_done`](#structfield.domain_done) is behind the current
/// domain). Iterating from the grown intermediate interpretation therefore
/// converges to `lfp(T_{P,db∪Δ})` itself — the same model a batch
/// re-evaluation from scratch computes.
///
/// `stats` accumulate across runs (`rounds` counts every round ever
/// executed); the `max_rounds` budget is enforced **per run**, so a
/// long-lived session is not eventually starved by its own uptime. The
/// remaining budgets (`max_facts`, `max_domain`, `max_seq_len`) bound the
/// cumulative state and behave exactly as in batch evaluation.
#[derive(Clone, Debug)]
pub struct Fixpoint {
    facts: FactStore,
    domain: ExtendedDomain,
    stats: EvalStats,
    /// Per-relation fact counts (indexed by `PredId`) that the round loop
    /// has fully processed; facts beyond them form the next delta.
    sizes_done: Vec<usize>,
    /// Domain size the domain-sensitive clauses have been evaluated
    /// against; when the domain outgrows it, those clauses re-run in full.
    domain_done: usize,
    /// True until the first round runs. The first round of a fixpoint's
    /// life is a *full* round: it fires empty-body program clauses and
    /// initializes the semi-naive deltas.
    virgin: bool,
    /// The *base* (asserted/seeded) facts, indexed by `PredId` — the `db`
    /// of `lfp(T_{P,db})`. Retraction is defined over this set: derived
    /// facts can only disappear by losing base support, and surviving base
    /// facts are the re-derivation frontier of Delete-and-Rederive
    /// ([`Fixpoint::retract_facts`]). A fact both derivable and asserted is
    /// recorded here even when its `FactStore` insert deduped.
    base: Vec<Relation>,
}

impl Fixpoint {
    /// Empty state for `program`: the fact store's predicate table starts
    /// as a copy of the program's, so compiled `PredId`s address relations
    /// directly. The caller is responsible for window-closing program
    /// constants ([`SeqStore::close_windows`]) before the first
    /// [`run`](Fixpoint::run), as [`evaluate_compiled`] and
    /// [`crate::session::EngineSession`] both do.
    pub fn new(program: &CompiledProgram) -> Self {
        Self {
            facts: FactStore::with_preds(program.preds.clone()),
            domain: ExtendedDomain::new(),
            stats: EvalStats::default(),
            sizes_done: Vec::new(),
            domain_done: 0,
            virgin: true,
            base: Vec::new(),
        }
    }

    /// Intern `name` in the state's predicate table (extending it past the
    /// program's predicates when needed).
    pub fn pred_id(&mut self, name: &str) -> PredId {
        self.facts.pred_id(name)
    }

    /// Insert a base fact, closing the extended active domain over its
    /// sequences (Definition 2) so a subsequent [`run`](Fixpoint::run) can
    /// match it read-only. Returns `true` when the fact is new; new facts
    /// become part of the next run's semi-naive delta.
    ///
    /// The fact is also recorded as *base* — even when the interpretation
    /// already contains it as a derived fact — so that
    /// [`retract_facts`](Fixpoint::retract_facts) knows what the database
    /// proper consists of.
    pub fn assert_fact(&mut self, store: &mut SeqStore, pred: PredId, tuple: Box<[SeqId]>) -> bool {
        self.assert_fact_full(store, pred, tuple).new_fact
    }

    /// [`assert_fact`](Fixpoint::assert_fact), reporting separately whether
    /// the fact was new to the interpretation and new to the base set (the
    /// distinction the session's atomic batch rollback needs).
    pub fn assert_fact_full(
        &mut self,
        store: &mut SeqStore,
        pred: PredId,
        tuple: Box<[SeqId]>,
    ) -> AssertOutcome {
        if self.base.len() <= pred.index() {
            self.base.resize_with(pred.index() + 1, Relation::default);
        }
        let new_base = self.base[pred.index()].insert(tuple.clone());
        if !self.facts.insert(pred, tuple) {
            return AssertOutcome {
                new_fact: false,
                new_base,
            };
        }
        // The just-inserted tuple is the relation's last; read it back for
        // domain closure instead of cloning it up front.
        let rel = self.facts.relation(pred);
        let inserted = rel.tuple(rel.len() - 1);
        for &id in inserted {
            self.domain.insert_closed(store, id);
        }
        AssertOutcome {
            new_fact: true,
            new_base,
        }
    }

    /// [`assert_fact`](Fixpoint::assert_fact) by predicate name.
    pub fn assert_named(&mut self, store: &mut SeqStore, pred: &str, tuple: Box<[SeqId]>) -> bool {
        let pid = self.facts.pred_id(pred);
        self.assert_fact(store, pid, tuple)
    }

    /// True when `tuple` is recorded as a base (asserted/seeded) fact.
    pub fn is_base_fact(&self, pred: PredId, tuple: &[SeqId]) -> bool {
        self.base
            .get(pred.index())
            .is_some_and(|r| r.contains(tuple))
    }

    /// A restore point for [`Fixpoint::domain_truncate`].
    pub fn domain_mark(&self) -> DomainMark {
        self.domain.mark()
    }

    /// Roll the domain back to `mark` (see [`ExtendedDomain::truncate`]).
    /// Only sound when nothing but asserts happened since the mark.
    pub fn domain_truncate(&mut self, store: &SeqStore, mark: DomainMark) {
        self.domain.truncate(store, mark);
    }

    /// Reverse a *pending* assert (one made since the last run): withdraw
    /// the fact from the interpretation and the base set without any
    /// Delete-and-Rederive maintenance. Sound only because an un-run fact
    /// has no derived consequences and sits beyond every watermark; the
    /// session uses this (plus [`Fixpoint::domain_truncate`]) to make batch
    /// asserts failure-atomic. Leaves tombstones — the caller finishes a
    /// rollback (however many facts it spans) with one
    /// [`Fixpoint::compact_pending`]. Returns whether the fact was present.
    pub fn unassert_pending(&mut self, pred: PredId, tuple: &[SeqId], drop_base: bool) -> bool {
        if drop_base {
            self.drop_base_record(pred, tuple);
        }
        self.facts.remove(pred, tuple)
    }

    /// Withdraw only the *base* record of a duplicate assert (the fact
    /// itself predates the assert and stays). The other half of the
    /// session's batch rollback; tombstones like
    /// [`Fixpoint::unassert_pending`].
    pub fn drop_base_record(&mut self, pred: PredId, tuple: &[SeqId]) -> bool {
        self.base
            .get_mut(pred.index())
            .is_some_and(|rel| rel.remove(tuple))
    }

    /// Compact every tombstone a rollback left behind (fact store and base
    /// set). One call per rollback, not per fact.
    pub fn compact_pending(&mut self) {
        self.facts.compact();
        for rel in &mut self.base {
            rel.compact();
        }
    }

    /// The current interpretation.
    pub fn facts(&self) -> &FactStore {
        &self.facts
    }

    /// The current extended active domain.
    pub fn domain(&self) -> &ExtendedDomain {
        &self.domain
    }

    /// Cumulative statistics, finalized against the current state (facts
    /// asserted since the last run are included in `facts`/`domain_size`).
    pub fn stats(&self) -> EvalStats {
        let mut stats = self.stats;
        finalize_stats(&mut stats, &self.facts, &self.domain);
        stats
    }

    /// The raw cumulative statistics, exactly as the round loop last left
    /// them — **not** finalized against the current state. This is what the
    /// durability layer must persist: [`Fixpoint::stats`] latches
    /// `max_seq_len` against the *current* domain into its returned copy,
    /// and a live session only writes that latch into its own state at the
    /// next run's budget check. Persisting the finalized copy would let a
    /// checkpoint taken between an assert and a retract record a high-water
    /// mark the uncrashed session never records — breaking bit-for-bit
    /// recovery by the act of checkpointing.
    pub fn stats_raw(&self) -> EvalStats {
        self.stats
    }

    /// A [`Model`] clone of the current state (the session read API).
    pub fn snapshot(&self) -> Model {
        Model {
            facts: self.facts.clone(),
            domain: self.domain.clone(),
            stats: self.stats(),
        }
    }

    /// Consume the state into a [`Model`].
    pub fn into_model(self) -> Model {
        let stats = self.stats();
        Model {
            facts: self.facts,
            domain: self.domain,
            stats,
        }
    }

    /// The base (asserted/seeded) relations, indexed by `PredId`. May be
    /// shorter than the fact store's relation list (predicates that were
    /// never asserted have no entry). Read-only: the durability layer
    /// serializes this to snapshots.
    pub fn base_relations(&self) -> &[Relation] {
        &self.base
    }

    /// The per-relation semi-naive watermarks (processed fact counts,
    /// indexed by `PredId`); facts beyond them form the next run's delta.
    pub fn sizes_done(&self) -> &[usize] {
        &self.sizes_done
    }

    /// True until the first round has run (the first round of a fixpoint's
    /// life is a full round).
    pub fn is_virgin(&self) -> bool {
        self.virgin
    }

    /// True when the domain-sensitive clauses have been evaluated against
    /// the current extended active domain (no pending domain growth).
    pub fn domain_settled(&self) -> bool {
        self.domain_done == self.domain.len()
    }

    /// Rebuild a `Fixpoint` from persisted parts. The extended active
    /// domain is **recomputed** by closing over every sequence of every
    /// loaded fact (Definition 4 makes it a function of the
    /// interpretation) — it is deliberately not a parameter, so no on-disk
    /// format can install a domain the facts do not justify. Constructive
    /// growth is therefore exactly reproduced: a corrupt or stale domain
    /// cannot survive recovery. The recomputation visits members in
    /// relation-iteration order; callers that recorded the live session's
    /// chronological member order can re-impose it afterwards with
    /// [`Fixpoint::adopt_domain_order`], which accepts only a permutation
    /// of the recomputed set.
    ///
    /// `domain_settled` restores the domain watermark as a bit: either the
    /// domain-sensitive clauses are caught up (`domain_done = |domain|`) or
    /// they re-run in full on the next `run` (`domain_done = 0`). The two
    /// unsettled cases are behaviorally identical — any pending growth
    /// already forces a full re-run of every domain-sensitive clause — so
    /// the bit loses nothing, and bit-for-bit stats equality with an
    /// uncrashed session is preserved.
    pub fn restore(
        store: &mut SeqStore,
        facts: FactStore,
        base: Vec<Relation>,
        stats: EvalStats,
        sizes_done: Vec<usize>,
        virgin: bool,
        domain_settled: bool,
    ) -> Self {
        let mut domain = ExtendedDomain::new();
        for (_, rel) in facts.relations() {
            for tuple in rel.iter() {
                for &id in tuple {
                    domain.insert_closed(store, id);
                }
            }
        }
        let domain_done = if domain_settled { domain.len() } else { 0 };
        Self {
            facts,
            domain,
            stats,
            sizes_done,
            domain_done,
            virgin,
            base,
        }
    }

    /// Adopt a recorded extended-domain member order (see
    /// [`ExtendedDomain::reorder`]): the set stays the recomputed closure,
    /// only the insertion order — which free-variable enumeration makes
    /// observable — is taken from the record, and only after verifying it
    /// is exactly a permutation of that closure. Returns `false` (domain
    /// untouched) when it is not.
    pub fn adopt_domain_order(&mut self, store: &SeqStore, order: &[SeqId]) -> bool {
        self.domain.reorder(store, order)
    }

    /// A scratch `Fixpoint` for demand-driven (magic-set) evaluation,
    /// seeded from this state's facts and extended active domain
    /// ([`crate::analysis::magic`]). The current interpretation — settled
    /// derivations *and* pending asserts alike — becomes the scratch seed:
    /// relations are realigned to the transformed program's predicate
    /// table (a prefix-compatible extension, so original ids stay valid),
    /// the domain is cloned as-is (it is already closed over every seeded
    /// fact, so recomputing it à la [`Fixpoint::restore`] would be pure
    /// waste on the point-query path), and the round watermarks reset so
    /// the scratch's first run is a full virgin round. Nothing of this
    /// state is borrowed or mutated; the scratch is independent.
    ///
    /// The scratch records no base relations: demand evaluation never
    /// retracts, and the seeded facts' domain closure is already done.
    pub fn demand_scratch(&self, preds: &PredTable) -> Fixpoint {
        Fixpoint {
            facts: self.facts.realigned_to(preds),
            domain: self.domain.clone(),
            stats: EvalStats::default(),
            sizes_done: Vec::new(),
            domain_done: 0,
            virgin: true,
            base: Vec::new(),
        }
    }

    /// Insert a demand seed fact (the magic predicate's query binding)
    /// **without** closing the extended active domain over its arguments —
    /// deliberately unlike [`Fixpoint::assert_fact`]. The magic seed is an
    /// auxiliary fact, not part of the database: closing the domain over a
    /// query value would let domain-sensitive clauses (in the magic
    /// transformation's full-fallback mode) enumerate a sequence the real
    /// interpretation never contained, deriving facts the batch fixpoint
    /// does not — wrong answers by over-approximation. The caller
    /// window-closes the seed's sequences in the *store* instead
    /// ([`SeqStore::close_windows`]), exactly like program body constants,
    /// so indexed terms over guard-bound variables still resolve.
    pub fn seed_demand(&mut self, pred: PredId, tuple: Box<[SeqId]>) {
        self.facts.insert(pred, tuple);
    }

    /// Test-only mutant for the recovery harness: pretend every loaded
    /// fact has already been processed (stale watermarks). A correct
    /// restore leaves pending facts beyond the watermarks; this erases
    /// them from the next run's delta, which the recovery fuzz oracle must
    /// detect as missing derivations.
    #[doc(hidden)]
    pub fn force_settled_watermarks(&mut self) {
        self.sizes_done = self.facts.sizes();
        self.domain_done = self.domain.len();
        self.virgin = false;
    }

    /// Drive the three-phase round loop to quiescence, resuming from the
    /// facts asserted since the last run (they — plus any domain growth —
    /// are the first resumed round's delta). On a fresh state this is
    /// exactly batch evaluation. Each call executes at least one round
    /// (a settled state pays one quiescence-check round); `max_rounds`
    /// bounds the rounds of *this* call, while the size budgets bound the
    /// cumulative state.
    ///
    /// On error the state is a sound under-approximation of the least
    /// fixpoint, and the round watermarks have *not* advanced past the
    /// interrupted round — a later `run` (say, with larger budgets)
    /// re-derives it and still converges to `lfp(T_{P,db})`.
    /// [`crate::session::EngineSession`] nevertheless poisons on error;
    /// retrying is a `Fixpoint`-level affordance.
    ///
    /// Under the default [`Scheduling::Stratified`] the round loop walks
    /// the program's SCC condensation in topological order (see
    /// [`Fixpoint::run_stratified`]); [`Scheduling::Global`] — and
    /// [`Strategy::Naive`], which is inherently global — scan every clause
    /// in every round. Both converge to the same `lfp(T_{P,db})`.
    pub fn run(
        &mut self,
        program: &CompiledProgram,
        store: &mut SeqStore,
        registry: &TransducerRegistry,
        config: &EvalConfig,
    ) -> Result<(), EvalError> {
        if config.strategy == Strategy::SemiNaive && config.scheduling == Scheduling::Stratified {
            self.run_stratified(program, store, registry, config)
        } else {
            self.run_global(program, store, registry, config)
        }
    }

    /// The unstratified round loop: every round scans every clause.
    fn run_global(
        &mut self,
        program: &CompiledProgram,
        store: &mut SeqStore,
        registry: &TransducerRegistry,
        config: &EvalConfig,
    ) -> Result<(), EvalError> {
        let threads = match config.threads {
            0 => default_threads(),
            n => n,
        };
        check_budgets(&self.facts, &self.domain, config, &mut self.stats)?;

        let rounds_at_entry = self.stats.rounds;
        let any_constructive = program.clauses.iter().any(|c| c.constructive);
        let mut members: Vec<SeqId> = Vec::new();
        let mut tasks: Vec<MatchTask> = Vec::new();

        loop {
            if self.stats.rounds - rounds_at_entry >= config.max_rounds {
                finalize_stats(&mut self.stats, &self.facts, &self.domain);
                return Err(EvalError::Budget {
                    kind: BudgetKind::Rounds,
                    stats: self.stats,
                });
            }
            self.stats.rounds += 1;

            let sizes_now = self.facts.sizes();
            let domain_now = self.domain.len();
            let full_round = self.virgin || config.strategy == Strategy::Naive;

            // Plan the round's match tasks.
            tasks.clear();
            for (ci, clause) in program.clauses.iter().enumerate() {
                if full_round {
                    tasks.push(MatchTask {
                        clause: ci,
                        delta: None,
                    });
                    continue;
                }
                // Domain-sensitive clauses re-run in full whenever the
                // domain grew — *including* body-empty ones like
                // `p(X, X) :- true.`, whose free head variables range over
                // the domain (checked before the ground-clause skip below:
                // skipping first loses their new-member instantiations,
                // both on session resume and in late batch rounds).
                let domain_grew = domain_now > self.domain_done;
                if clause.domain_sensitive && domain_grew {
                    tasks.push(MatchTask {
                        clause: ci,
                        delta: None,
                    });
                    continue;
                }
                // Semi-naive: ground facts fire only in the full first
                // round (and above, when they are domain-sensitive).
                if clause.body.is_empty() {
                    continue;
                }
                for (li, lit) in clause.body.iter().enumerate() {
                    let CBody::Atom(atom) = lit else {
                        continue;
                    };
                    let before = self.sizes_done.get(atom.pred.index()).copied().unwrap_or(0);
                    let now = sizes_now.get(atom.pred.index()).copied().unwrap_or(0);
                    let mut from = before;
                    while from < now {
                        let to = (from + DELTA_CHUNK).min(now);
                        tasks.push(MatchTask {
                            clause: ci,
                            delta: Some((li, from, to)),
                        });
                        from = to;
                    }
                }
            }

            // Snapshot for free-variable enumeration: substitutions in this
            // round range over the domain of the interpretation entering it.
            // Only domain-sensitive clauses enumerate members (every other
            // clause binds all slots from matched facts), so the snapshot is
            // taken only when the plan contains one.
            members.clear();
            if tasks
                .iter()
                .any(|t| program.clauses[t.clause].domain_sensitive)
            {
                members.extend(self.domain.iter());
            }

            // Phase 1: read-only matching + frozen head evaluation,
            // sharded across workers.
            let mut bufs = match_eval_round(
                program,
                &tasks,
                store,
                &self.facts,
                &self.domain,
                &members,
                &self.sizes_done,
                registry,
                config,
                threads,
            );

            // Phases 2 + 3: sharded commit, then the deterministic merge
            // in task order.
            let added = commit_round(
                program,
                &tasks,
                &mut bufs,
                store,
                &mut self.facts,
                &mut self.domain,
                config,
                &mut self.stats,
                threads,
                any_constructive,
            )?;

            // Watermarks (and the virgin flag) advance only once the round
            // has fully committed: a mid-commit error (`?` above) leaves
            // them untouched, so the interrupted round's delta re-fires on
            // a later run instead of being silently lost — re-matching is
            // idempotent (the fact store dedupes), which is what makes an
            // errored `Fixpoint` safe to retry with larger budgets.
            self.sizes_done = sizes_now;
            self.domain_done = domain_now;
            self.virgin = false;

            if added == 0 {
                break;
            }
        }

        finalize_stats(&mut self.stats, &self.facts, &self.domain);
        Ok(())
    }

    /// The SCC-stratified round loop — the [`Scheduling::Stratified`]
    /// default for [`Strategy::SemiNaive`].
    ///
    /// Strata ([`crate::analysis::Schedule`]) are visited in topological
    /// order; within a stratum, semi-naive rounds run over only that
    /// stratum's clauses until it quiesces. A predicate is only ever
    /// inserted into by its own (head) stratum's clauses, so when a
    /// stratum runs, every input from an earlier stratum is already
    /// settled — except that commits in later strata can still grow the
    /// **extended active domain**, which re-arms earlier strata's
    /// domain-sensitive clauses. An outer pass loop therefore repeats the
    /// topological sweep until a full pass derives nothing.
    ///
    /// A stratum whose input deltas are empty and whose domain watermark
    /// is current plans zero tasks and is skipped without paying a round.
    /// This is the *downstream cone* property: a session assert into
    /// predicate `p` re-runs only `p`'s stratum and the strata downstream
    /// of it, at a per-skipped-stratum cost of one planning scan.
    ///
    /// Determinism is inherited from the three-phase rounds: stratum order,
    /// each round's task list, and the task-order merge depend only on
    /// the program and the interpretation — never the thread count — so
    /// results are bit-for-bit identical for every `threads` setting.
    ///
    /// The global watermarks (`sizes_done` / `domain_done` / `virgin`)
    /// advance only when the run *succeeds*: per-stratum watermarks
    /// diverge from them only for the duration of the call, and at
    /// quiescence every stratum has processed every input, so they
    /// collapse to the final sizes. A mid-run error leaves the entry
    /// watermarks in place and a later run re-derives the interrupted
    /// rounds (idempotent — the fact store dedupes), exactly like the
    /// global loop; durable-session snapshot formats are unaffected.
    fn run_stratified(
        &mut self,
        program: &CompiledProgram,
        store: &mut SeqStore,
        registry: &TransducerRegistry,
        config: &EvalConfig,
    ) -> Result<(), EvalError> {
        let threads = match config.threads {
            0 => default_threads(),
            n => n,
        };
        check_budgets(&self.facts, &self.domain, config, &mut self.stats)?;

        let rounds_at_entry = self.stats.rounds;
        if config.max_rounds == 0 {
            finalize_stats(&mut self.stats, &self.facts, &self.domain);
            return Err(EvalError::Budget {
                kind: BudgetKind::Rounds,
                stats: self.stats,
            });
        }

        let schedule = &program.schedule;
        let ns = schedule.strata.len();
        // Per-stratum watermarks; `None` means "this stratum has not run
        // in this call yet — measure its delta from the global watermarks".
        let mut done: Vec<Option<Vec<usize>>> = vec![None; ns];
        let mut sdomain: Vec<usize> = vec![self.domain_done; ns];
        let mut svirgin: Vec<bool> = vec![self.virgin; ns];
        let mut members: Vec<SeqId> = Vec::new();
        let mut tasks: Vec<MatchTask> = Vec::new();

        loop {
            let mut pass_added = false;
            for (si, stratum) in schedule.strata.iter().enumerate() {
                if stratum.clauses.is_empty() {
                    continue; // source stratum: database-only predicates
                }
                loop {
                    let domain_now = self.domain.len();
                    let domain_grew = domain_now > sdomain[si];
                    let full = svirgin[si];

                    // Plan this stratum round; planning mirrors the global
                    // loop, restricted to the stratum's clauses.
                    tasks.clear();
                    for &ci in &stratum.clauses {
                        let ci = ci as usize;
                        let clause = &program.clauses[ci];
                        if full || (clause.domain_sensitive && domain_grew) {
                            tasks.push(MatchTask {
                                clause: ci,
                                delta: None,
                            });
                            continue;
                        }
                        if clause.body.is_empty() {
                            continue;
                        }
                        for (li, lit) in clause.body.iter().enumerate() {
                            let CBody::Atom(atom) = lit else {
                                continue;
                            };
                            let pi = atom.pred.index();
                            let before = match &done[si] {
                                Some(v) => v.get(pi).copied().unwrap_or(0),
                                None => self.sizes_done.get(pi).copied().unwrap_or(0),
                            };
                            let now = self.facts.len_of(atom.pred);
                            let mut from = before;
                            while from < now {
                                let to = (from + DELTA_CHUNK).min(now);
                                tasks.push(MatchTask {
                                    clause: ci,
                                    delta: Some((li, from, to)),
                                });
                                from = to;
                            }
                        }
                    }
                    if tasks.is_empty() {
                        // Inputs settled: skip the stratum without a round.
                        break;
                    }
                    if self.stats.rounds - rounds_at_entry >= config.max_rounds {
                        finalize_stats(&mut self.stats, &self.facts, &self.domain);
                        return Err(EvalError::Budget {
                            kind: BudgetKind::Rounds,
                            stats: self.stats,
                        });
                    }
                    self.stats.rounds += 1;

                    let sizes_now = self.facts.sizes();
                    members.clear();
                    if tasks
                        .iter()
                        .any(|t| program.clauses[t.clause].domain_sensitive)
                    {
                        members.extend(self.domain.iter());
                    }
                    let sizes_before: &[usize] = match &done[si] {
                        Some(v) => v,
                        None => &self.sizes_done,
                    };
                    let mut bufs = match_eval_round(
                        program,
                        &tasks,
                        store,
                        &self.facts,
                        &self.domain,
                        &members,
                        sizes_before,
                        registry,
                        config,
                        threads,
                    );
                    let added = commit_round(
                        program,
                        &tasks,
                        &mut bufs,
                        store,
                        &mut self.facts,
                        &mut self.domain,
                        config,
                        &mut self.stats,
                        threads,
                        stratum.constructive,
                    )?;
                    done[si] = Some(sizes_now);
                    sdomain[si] = domain_now;
                    svirgin[si] = false;
                    if added > 0 {
                        pass_added = true;
                    } else {
                        break;
                    }
                }
            }
            if !pass_added {
                break;
            }
        }

        // Contract: every `run` call executes at least one round — a fully
        // settled state pays the same single quiescence round the global
        // loop does.
        if self.stats.rounds == rounds_at_entry {
            self.stats.rounds += 1;
        }
        // Quiescence: every stratum has processed every input delta and
        // the final domain, so the per-stratum watermarks collapse into
        // the global ones.
        self.sizes_done = self.facts.sizes();
        self.domain_done = self.domain.len();
        self.virgin = false;

        finalize_stats(&mut self.stats, &self.facts, &self.domain);
        Ok(())
    }

    /// Retract base facts and restore the least fixpoint of the surviving
    /// database by **Delete-and-Rederive** (DRed). Returns how many of the
    /// given facts were actually base facts (non-base facts — including
    /// derived-only facts and unknown tuples — are ignored; derived facts
    /// can only disappear by losing base support). When *nothing* qualifies
    /// the call is a pure no-op: no maintenance runs and the state —
    /// pending asserts included — is untouched.
    ///
    /// The maintenance runs to quiescence before returning, in four passes:
    ///
    /// 1. **Over-delete.** Starting from the retracted facts, deletion is
    ///    propagated forward through the compiled clauses: any head
    ///    instance with *some* derivation touching a deleted fact is marked
    ///    deleted too (matching reuses the read-only match machinery
    ///    with the deleted tuple pinned as a one-element delta and every
    ///    other literal ranging over the full pre-retraction store). This
    ///    over-approximates — facts with surviving alternative derivations
    ///    are marked as well — which is what makes it sound.
    /// 2. **Domain shrinkage.** Facts derived by *domain-sensitive* clauses
    ///    consult the extended active domain rather than body facts, so
    ///    clause-body propagation cannot see their dependencies — and they
    ///    can even keep an orphaned sequence in the domain circularly (a
    ///    surviving `pair(ab, ab)` is the only remaining carrier of `ab`,
    ///    and `ab`'s membership is the only justification of
    ///    `pair(ab, ab)` — the `pair(X, X) :- true.` class of bug).
    ///    Whenever anything is deleted, every fact under a domain-sensitive
    ///    clause's head is therefore over-deleted too, the propagation
    ///    re-runs, and the extended active domain is rebuilt from the
    ///    surviving facts. Definition 4 makes the domain a function of the
    ///    interpretation: when the facts that introduced a sequence go, its
    ///    windows and the integers they pinned go too, and the re-derive
    ///    pass restores exactly what the shrunken domain still supports.
    /// 3. **Physical deletion.** Marked positions are tombstoned, relations
    ///    compact (preserving surviving insertion order), the rebuilt
    ///    domain is installed, surviving base facts that were over-deleted
    ///    are re-seeded, and the semi-naive watermarks **regress soundly**:
    ///    each predicate's watermark drops by the number of processed
    ///    positions it lost, so pending (not yet run) asserts stay beyond
    ///    it; the domain watermark resets.
    /// 4. **Re-derive.** One targeted full round over the clauses that
    ///    could re-derive a deleted fact (head predicate lost tuples, or
    ///    domain-sensitive) restores alternative derivations, then the
    ///    ordinary [`run`](Fixpoint::run) loop resumes semi-naive from the
    ///    regressed watermarks to quiescence. The DRed invariant — after
    ///    over-deletion the surviving interpretation is contained in the
    ///    new least fixpoint — makes the result exactly
    ///    `lfp(T_{P,db'})` for the surviving database `db'`, which is
    ///    differentially fuzzed against fresh batch evaluation.
    ///
    /// On error the state poisons at the session layer: unlike a failed
    /// grow-only `run`, a failed retraction may leave facts whose support
    /// is already gone (an over-approximation), so no retry affordance is
    /// offered.
    pub fn retract_facts(
        &mut self,
        program: &CompiledProgram,
        store: &mut SeqStore,
        registry: &TransducerRegistry,
        config: &EvalConfig,
        facts: &[(PredId, Box<[SeqId]>)],
    ) -> Result<usize, EvalError> {
        let mut seeds: Vec<(PredId, u32)> = Vec::new();
        let mut retracted = 0usize;
        for (pred, tuple) in facts {
            let Some(brel) = self.base.get_mut(pred.index()) else {
                continue;
            };
            if !brel.remove(tuple) {
                continue;
            }
            retracted += 1;
            if let Some(pos) = self.facts.position_of(*pred, tuple) {
                seeds.push((*pred, pos));
            }
        }
        for rel in &mut self.base {
            rel.compact();
        }
        if seeds.is_empty() {
            return Ok(retracted);
        }
        self.delete_and_rederive(program, store, registry, config, seeds)?;
        Ok(retracted)
    }

    /// The DRed passes (see [`Fixpoint::retract_facts`] for the protocol).
    fn delete_and_rederive(
        &mut self,
        program: &CompiledProgram,
        store: &mut SeqStore,
        registry: &TransducerRegistry,
        config: &EvalConfig,
        seeds: Vec<(PredId, u32)>,
    ) -> Result<(), EvalError> {
        let nrels = self.facts.sizes().len();
        let mut marked: Vec<FxHashSet<u32>> = Vec::new();
        marked.resize_with(nrels, FxHashSet::default);
        let mut work: Vec<(PredId, u32)> = Vec::new();
        for (pred, pos) in seeds {
            if marked[pred.index()].insert(pos) {
                work.push((pred, pos));
            }
        }

        // Head predicates of domain-sensitive clauses, in clause order.
        let mut ds_heads: Vec<PredId> = Vec::new();
        for c in &program.clauses {
            if c.domain_sensitive && !ds_heads.contains(&c.head.pred) {
                ds_heads.push(c.head.pred);
            }
        }

        // --- Passes 1 + 2: over-delete closure + domain-sensitive wipe ---
        // Everything here only *marks*: the store keeps the pre-retraction
        // interpretation, so matching over it is exactly matching over the
        // old `I` that classic DRed's over-deletion rule prescribes. The
        // loop is sequential and worklist-ordered, hence deterministic for
        // every thread count.
        let sizes_full = self.facts.sizes();
        let members: Vec<SeqId> = self.domain.iter().collect();
        let mut buf = RecipeBuf::default();
        let mut cursor = 0usize;
        let mut wiped = ds_heads.is_empty();
        loop {
            while cursor < work.len() {
                let (pred, pos) = work[cursor];
                cursor += 1;
                for (ci, clause) in program.clauses.iter().enumerate() {
                    for (li, lit) in clause.body.iter().enumerate() {
                        let CBody::Atom(atom) = lit else { continue };
                        if atom.pred != pred {
                            continue;
                        }
                        // One-element delta at literal `li`; `sizes_full`
                        // as the "pre-round prefix" leaves every other
                        // literal unrestricted over the old store.
                        let task = MatchTask {
                            clause: ci,
                            delta: Some((li, pos as usize, pos as usize + 1)),
                        };
                        buf.clear();
                        run_match_task(
                            program,
                            &task,
                            store,
                            &self.facts,
                            &self.domain,
                            &members,
                            &sizes_full,
                            &mut buf,
                        );
                        self.stats.derivations += buf.count as u64;
                        // Frozen head evaluation + immediate settle: the
                        // loop is sequential, so "apply this task's pending
                        // interns now" is the one-task intern-merge.
                        let mut hb = eval_task_heads(clause, &buf, &*store, registry, config);
                        let arity = clause.head.args.len();
                        settle_headbuf(&mut hb, arity, store);
                        let hp = clause.head.pred;
                        let mut rank = 0usize;
                        for (r, &st) in hb.status.iter().enumerate() {
                            if let Some(&(calls, steps)) = hb.tstats.get(r) {
                                self.stats.transducer_calls += calls;
                                self.stats.transducer_steps += steps;
                            }
                            match st {
                                REC_UNDEF => {}
                                REC_TUPLE => {
                                    let t = &hb.tuples[rank * arity..(rank + 1) * arity];
                                    if let Some(hpos) = self.facts.position_of(hp, t) {
                                        if marked[hp.index()].insert(hpos) {
                                            work.push((hp, hpos));
                                        }
                                    }
                                    rank += 1;
                                }
                                _ => {
                                    debug_assert_eq!(st, REC_ERR);
                                    let err = hb.error.clone().expect("REC_ERR carries its cause");
                                    return Err(surface_head_error(
                                        err,
                                        &self.facts,
                                        &self.domain,
                                        &mut self.stats,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            if wiped {
                break;
            }
            // Any deletion can shrink the extended active domain, and a
            // domain-sensitive derivation can even carry its own
            // justification (the `pair(ab, ab)` circularity above), so a
            // shrink test against the surviving facts would be fooled.
            // Over-delete everything a domain-sensitive clause could have
            // derived — the re-derive pass restores what the new domain
            // still supports — and propagate those deletions too.
            wiped = true;
            for &pred in &ds_heads {
                let rel = self.facts.relation(pred);
                for pos in 0..rel.len() as u32 {
                    if marked[pred.index()].insert(pos) {
                        work.push((pred, pos));
                    }
                }
            }
        }
        // The extended active domain induced by the surviving facts
        // (Definition 4: the domain is a function of the interpretation, so
        // it shrinks with it).
        let new_domain = rebuild_surviving_domain(store, &self.facts, &marked);

        // --- Pass 3: physical deletion + sound watermark regression ---
        // Per predicate, the new watermark is the number of *surviving*
        // processed positions: compaction preserves relative order, so the
        // first `new_done[p]` surviving tuples are exactly the survivors of
        // the processed prefix, and pending asserts stay beyond it.
        let mut new_done: Vec<usize> = (0..nrels)
            .map(|i| self.sizes_done.get(i).copied().unwrap_or(0))
            .collect();
        for (pi, set) in marked.iter().enumerate() {
            if set.is_empty() {
                continue;
            }
            let removed_below = set.iter().filter(|&&p| (p as usize) < new_done[pi]).count();
            new_done[pi] -= removed_below;
            for &pos in set {
                self.facts.remove_at(PredId(pi as u32), pos);
            }
        }
        self.facts.compact();
        self.domain = new_domain;

        // Re-seed base facts the over-deletion removed (surviving base
        // facts are the support re-derivation grows from). They land beyond
        // the regressed watermarks, so the resumed loop treats them as
        // delta facts.
        for (pi, brel) in self.base.iter().enumerate() {
            if marked.get(pi).is_none_or(FxHashSet::is_empty) {
                continue;
            }
            let pred = PredId(pi as u32);
            for t in brel.iter() {
                if self.facts.insert(pred, t.into()) {
                    let rel = self.facts.relation(pred);
                    let inserted = rel.tuple(rel.len() - 1);
                    for &id in inserted {
                        self.domain.insert_closed(store, id);
                    }
                }
            }
        }

        // Watermarks regress *before* the re-derive round commits: if that
        // round errors mid-commit, the regressed watermarks still cover the
        // interrupted work (re-matching is idempotent), never skip it.
        self.sizes_done = new_done;
        self.domain_done = 0;

        // --- Pass 4: targeted re-derive round, then resume to quiescence.
        // Only clauses that can re-derive a deleted fact need a full
        // application: those whose head predicate lost tuples, plus every
        // domain-sensitive clause (their instantiation set changed with the
        // domain). All other clauses' conclusions are intact — the
        // surviving store is a subset of the old one and their head
        // relations lost nothing — so they are sound to skip.
        if !self.virgin {
            let deleted_preds: FxHashSet<u32> = marked
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_empty())
                .map(|(i, _)| i as u32)
                .collect();
            let domain_now = self.domain.len();
            let rederive_members: Vec<SeqId> = self.domain.iter().collect();
            let tasks: Vec<MatchTask> = program
                .clauses
                .iter()
                .enumerate()
                .filter(|(_, c)| c.domain_sensitive || deleted_preds.contains(&c.head.pred.0))
                .map(|(ci, _)| MatchTask {
                    clause: ci,
                    delta: None,
                })
                .collect();
            if !tasks.is_empty() {
                let threads = match config.threads {
                    0 => default_threads(),
                    n => n,
                };
                self.stats.rounds += 1;
                let mut bufs = match_eval_round(
                    program,
                    &tasks,
                    store,
                    &self.facts,
                    &self.domain,
                    &rederive_members,
                    &self.sizes_done,
                    registry,
                    config,
                    threads,
                );
                commit_round(
                    program,
                    &tasks,
                    &mut bufs,
                    store,
                    &mut self.facts,
                    &mut self.domain,
                    config,
                    &mut self.stats,
                    threads,
                    tasks.iter().any(|t| program.clauses[t.clause].constructive),
                )?;
                // `sizes_done` stays regressed: pending asserts, re-seeded
                // base facts, and this round's additions all sit beyond it
                // and form the resumed loop's delta. Domain-sensitive
                // clauses are caught up with the domain as of round start.
                self.domain_done = domain_now;
            }
        }
        self.run(program, store, registry, config)
    }
}

/// The extended active domain induced by the unmarked facts: closure of
/// every sequence occurring in a surviving tuple (Definition 2; program
/// constants are window-closed in the store but, as in batch evaluation,
/// only enter the domain through facts).
fn rebuild_surviving_domain(
    store: &mut SeqStore,
    facts: &FactStore,
    marked: &[FxHashSet<u32>],
) -> ExtendedDomain {
    let mut domain = ExtendedDomain::new();
    for (pred, rel) in facts.relations() {
        let dead = &marked[pred.index()];
        for pos in 0..rel.len() {
            if dead.contains(&(pos as u32)) {
                continue;
            }
            for &id in rel.tuple(pos) {
                domain.insert_closed(store, id);
            }
        }
    }
    domain
}

/// `available_parallelism()`, resolved once per process: on Linux it reads
/// cgroup quota files, which costs tens of microseconds — too much to pay
/// per evaluation of a small program.
fn default_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

/// Minimum estimated candidate-tuple count in a round before the match
/// phase pays for spawning workers. Purely a dispatch decision: above or
/// below the threshold, the task list and recipe order are the same, so
/// results never depend on it.
const PAR_THRESHOLD: usize = 4096;

/// Rough work estimate for one task, in candidate tuples.
fn task_cost(
    program: &CompiledProgram,
    task: &MatchTask,
    facts: &FactStore,
    members: usize,
) -> usize {
    let clause = &program.clauses[task.clause];
    let atoms_len = |skip: Option<usize>| -> usize {
        clause
            .body
            .iter()
            .enumerate()
            .filter(|&(li, _)| Some(li) != skip)
            .map(|(_, lit)| match lit {
                CBody::Atom(a) => facts.relation(a.pred).len(),
                _ => 0,
            })
            .sum()
    };
    match task.delta {
        Some((at, from, to)) => (to - from).saturating_mul(1 + atoms_len(Some(at))),
        None => {
            let base = atoms_len(None);
            if clause.domain_sensitive {
                base.max(members)
            } else {
                base
            }
        }
    }
}

/// Phase 1: run every match task and evaluate its clause head under each
/// emitted recipe against the epoch-frozen store, on `threads` workers when
/// worthwhile. Buffers are returned in task order regardless of which
/// worker ran which task. Read-only on all shared state: fresh sequence
/// values land in each [`HeadBuf`]'s task-local [`PendingInterns`] batch.
#[allow(clippy::too_many_arguments)]
fn match_eval_round(
    program: &CompiledProgram,
    tasks: &[MatchTask],
    store: &SeqStore,
    facts: &FactStore,
    domain: &ExtendedDomain,
    members: &[SeqId],
    sizes_before: &[usize],
    registry: &TransducerRegistry,
    config: &EvalConfig,
    threads: usize,
) -> Vec<HeadBuf> {
    let workers = threads.min(tasks.len());
    let estimated: usize = tasks
        .iter()
        .map(|t| task_cost(program, t, facts, members.len()))
        .fold(0usize, usize::saturating_add);
    let run_one = |task: &MatchTask, scratch: &mut RecipeBuf| -> HeadBuf {
        scratch.clear();
        run_match_task(
            program,
            task,
            store,
            facts,
            domain,
            members,
            sizes_before,
            scratch,
        );
        eval_task_heads(
            &program.clauses[task.clause],
            scratch,
            store,
            registry,
            config,
        )
    };
    if workers <= 1 || (estimated < PAR_THRESHOLD && !config.danger_force_parallel) {
        let mut scratch = RecipeBuf::default();
        return tasks.iter().map(|t| run_one(t, &mut scratch)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<HeadBuf>> = Vec::new();
    slots.resize_with(tasks.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, HeadBuf)> = Vec::new();
                    let mut scratch = RecipeBuf::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        local.push((i, run_one(task, &mut scratch)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, buf) in h.join().expect("match worker panicked") {
                slots[i] = Some(buf);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task claimed exactly once"))
        .collect()
}

/// Run one task's matching and head-variable enumeration, appending a
/// recipe per attempted head instantiation. Pure: borrows everything
/// immutably and cannot fail.
#[allow(clippy::too_many_arguments)]
fn run_match_task(
    program: &CompiledProgram,
    task: &MatchTask,
    store: &SeqStore,
    facts: &FactStore,
    domain: &ExtendedDomain,
    members: &[SeqId],
    sizes_before: &[usize],
    out: &mut RecipeBuf,
) {
    let clause = &program.clauses[task.clause];
    let env = MatchEnv {
        store,
        domain,
        facts,
        int_upper: domain.int_upper(),
    };
    let delta = task.delta.map(|(at, from, to)| Delta {
        at,
        from,
        to,
        sizes_before,
    });
    let int_upper = env.int_upper;
    solve_body(clause, &env, delta, &mut |b, _env| {
        emit_recipes(b, members, int_upper, out);
    });
}

/// Enumerate free (head-only) variables over the domain and record one
/// recipe per completion. Works in place on the matcher's scratch
/// substitution (free slots are bound and restored) — no `Bindings` clone
/// per derivation.
fn emit_recipes(b: &mut Bindings, members: &[SeqId], int_upper: i64, out: &mut RecipeBuf) {
    fn rec(
        b: &mut Bindings,
        seq_at: usize,
        idx_at: usize,
        members: &[SeqId],
        int_upper: i64,
        out: &mut RecipeBuf,
    ) {
        if let Some(v) = (seq_at..b.seq.len()).find(|&v| b.seq[v].is_none()) {
            for &m in members {
                b.seq[v] = Some(m);
                rec(b, v + 1, idx_at, members, int_upper, out);
            }
            b.seq[v] = None;
            return;
        }
        if let Some(v) = (idx_at..b.idx.len()).find(|&v| b.idx[v].is_none()) {
            for n in 0..=int_upper {
                b.idx[v] = Some(n);
                rec(b, b.seq.len(), v + 1, members, int_upper, out);
            }
            b.idx[v] = None;
            return;
        }
        // Fully bound: snapshot the substitution as a recipe.
        out.count += 1;
        out.seqs
            .extend(b.seq.iter().map(|s| s.expect("fully bound")));
        out.idxs
            .extend(b.idx.iter().map(|n| n.expect("fully bound")));
    }
    rec(b, 0, 0, members, int_upper, out);
}

/// One head relation's commit candidates for a round, in task-ordinal
/// order across every task whose clause heads the relation.
struct RelCands {
    pred: PredId,
    /// `(task index, flat offset into that task's `HeadBuf::tuples`)` per
    /// candidate.
    cands: Vec<(u32, u32)>,
    /// Candidate tuple hashes, parallel to `cands`.
    hashes: Vec<u64>,
    /// Per candidate after dedupe: a provisional index slot, or
    /// [`CAND_DUP`].
    verdicts: Vec<u32>,
}

/// Phases 2 + 3: the sharded commit and the deterministic merge.
///
/// * **Intern-merge** (sequential, task order): apply each task's pending
///   interns to the store and patch its tuples' provisional ids to the
///   resolved handles (re-hashing the patched tuples). Cross-task
///   duplicates collapse because [`PendingInterns::resolve`] checks the
///   frozen store first and [`PendingInterns::apply`] re-checks at apply
///   time.
/// * **Sharded dedupe** (parallel over index shards): group candidates per
///   head relation in task-ordinal order and let
///   [`Relation::dedupe_candidates`] decide new-vs-duplicate, admitting
///   new tuples into provisional index slots.
/// * **Apply walk** (sequential, task order): accumulate statistics,
///   surface head-evaluation errors at their deterministic ordinal
///   position, append admitted facts (patching their provisional slots to
///   real positions), close the domain, and enforce budgets incrementally
///   — a wide round cannot overshoot `max_facts` by more than one fact,
///   exactly as the sequential-commit engine couldn't. On error the
///   not-yet-applied provisional slots are tombstoned
///   ([`Relation::abandon_candidate`]), leaving every probe chain intact.
#[allow(clippy::too_many_arguments)]
fn commit_round(
    program: &CompiledProgram,
    tasks: &[MatchTask],
    bufs: &mut [HeadBuf],
    store: &mut SeqStore,
    facts: &mut FactStore,
    domain: &mut ExtendedDomain,
    config: &EvalConfig,
    stats: &mut EvalStats,
    threads: usize,
    constructive: bool,
) -> Result<usize, EvalError> {
    // The merge order is the task order — never the completion order. The
    // reverse-order mutant models getting this wrong in a way only a
    // multi-worker configuration exhibits.
    let reverse = config.danger_reverse_merge_order && threads > 1;
    let order: Vec<u32> = if reverse {
        (0..tasks.len() as u32).rev().collect()
    } else {
        (0..tasks.len() as u32).collect()
    };

    // Intern-merge: apply pending batches in merge order. Every batch is
    // applied even when a later error cuts the round short — interner
    // content is unobservable (queries, WAL, and snapshots are all
    // symbol-level), only thread-count-independence matters.
    //
    // The scheduler's per-stratum constructive flag
    // ([`crate::analysis::Stratum::constructive`], lifted from the
    // per-clause compile flags) lets non-constructive rounds skip the scan:
    // their head values all resolve against the frozen store (matched
    // bindings are domain members, hence window-closed; constants are
    // pre-closed), so no task can carry a pending batch.
    debug_assert!(
        constructive || bufs.iter().all(|b| b.pending.is_empty()),
        "non-constructive round produced pending interns"
    );
    if constructive {
        for &ti in &order {
            let HeadBuf {
                pending,
                needs_patch,
                tuples,
                hashes,
                ..
            } = &mut bufs[ti as usize];
            if pending.is_empty() {
                continue;
            }
            let mut resolved = pending.apply(store);
            if config.danger_skip_epoch_freeze && threads > 1 && resolved.len() >= 2 {
                resolved.rotate_left(1); // mutant: misaligned resolution table
            }
            let arity = program.clauses[tasks[ti as usize].clause].head.args.len();
            for &rank in needs_patch.iter() {
                let at = rank as usize * arity;
                let tuple = &mut tuples[at..at + arity];
                for id in tuple.iter_mut() {
                    if id.is_provisional() {
                        *id = resolved[id.provisional_index()];
                    }
                }
                hashes[rank as usize] = hash_tuple(tuple);
            }
        }
    }

    // Candidate collection: per head relation, in merge order. Relations
    // appear in first-candidate order; within one, candidates are in merge
    // (task-ordinal) order, which is what makes the shard verdicts and the
    // apply walk see the same sequence.
    let mut rel_of: FxHashMap<u32, usize> = FxHashMap::default();
    let mut groups: Vec<RelCands> = Vec::new();
    for &ti in &order {
        let buf = &bufs[ti as usize];
        if buf.hashes.is_empty() {
            continue;
        }
        let pred = program.clauses[tasks[ti as usize].clause].head.pred;
        let arity = program.clauses[tasks[ti as usize].clause].head.args.len();
        let gi = *rel_of.entry(pred.0).or_insert_with(|| {
            groups.push(RelCands {
                pred,
                cands: Vec::new(),
                hashes: Vec::new(),
                verdicts: Vec::new(),
            });
            groups.len() - 1
        });
        let g = &mut groups[gi];
        for (rank, &h) in buf.hashes.iter().enumerate() {
            g.cands.push((ti, (rank * arity) as u32));
            g.hashes.push(h);
        }
    }

    // Sharded dedupe, one relation at a time. The dispatch threshold is
    // per relation: the same dedupe decisions come out of the sequential
    // and the sharded path (pinned by the interp unit tests), so this is
    // purely a cost decision.
    for g in &mut groups {
        let cands = &g.cands;
        let tuple_of = |c: u32| -> &[SeqId] {
            let (ti, at) = cands[c as usize];
            let arity = program.clauses[tasks[ti as usize].clause].head.args.len();
            &bufs[ti as usize].tuples[at as usize..at as usize + arity]
        };
        let workers =
            if threads > 1 && (g.cands.len() >= PAR_THRESHOLD || config.danger_force_parallel) {
                threads
            } else {
                1
            };
        g.verdicts = facts
            .relation_mut(g.pred)
            .dedupe_candidates(&g.hashes, tuple_of, workers);
    }

    // Apply walk: in merge order, replay each task's per-recipe outcomes
    // with exactly the sequential engine's statistics, error, and budget
    // semantics. `cursors[gi]` tracks how far into each relation's
    // candidate list the walk has come — candidate order and walk order
    // agree by construction.
    let mut cursors: Vec<usize> = vec![0; groups.len()];
    let mut added = 0usize;
    let mut outcome: Result<(), EvalError> = Ok(());

    'walk: for &ti in &order {
        let buf = &bufs[ti as usize];
        let clause = &program.clauses[tasks[ti as usize].clause];
        stats.derivations += buf.count as u64;
        let gi = rel_of.get(&clause.head.pred.0).copied();
        let arity = clause.head.args.len();
        let mut rank = 0usize;
        for (r, &st) in buf.status.iter().enumerate() {
            if let Some(&(calls, steps)) = buf.tstats.get(r) {
                stats.transducer_calls += calls;
                stats.transducer_steps += steps;
            }
            match st {
                REC_UNDEF => {} // θ undefined at the clause: no fact.
                REC_TUPLE => {
                    let gi = gi.expect("defined recipe implies a candidate group");
                    let g = &groups[gi];
                    let c = cursors[gi];
                    cursors[gi] += 1;
                    let slot = g.verdicts[c];
                    if slot != CAND_DUP {
                        let tuple: Box<[SeqId]> =
                            buf.tuples[rank * arity..(rank + 1) * arity].into();
                        facts.commit_candidate(clause.head.pred, tuple, g.hashes[c], slot);
                        added += 1;
                        // The just-committed tuple is the relation's last;
                        // read it back for domain closure instead of
                        // cloning it again.
                        let rel = facts.relation(clause.head.pred);
                        let inserted = rel.tuple(rel.len() - 1);
                        for &id in inserted {
                            domain.insert_closed(store, id);
                        }
                        if let Err(e) = check_budgets(facts, domain, config, stats) {
                            outcome = Err(e);
                            break 'walk;
                        }
                    }
                    rank += 1;
                }
                _ => {
                    debug_assert_eq!(st, REC_ERR);
                    let err = buf.error.clone().expect("REC_ERR carries its cause");
                    outcome = Err(surface_head_error(err, facts, domain, stats));
                    break 'walk;
                }
            }
        }
    }

    if outcome.is_err() {
        // Roll back every admitted-but-unapplied provisional slot so the
        // relations' indexes only describe committed tuples. Tombstoning
        // (not emptying) keeps the probe chains of later entries intact.
        for (gi, g) in groups.iter().enumerate() {
            let rel = facts.relation_mut(g.pred);
            for c in cursors[gi]..g.cands.len() {
                if g.verdicts[c] != CAND_DUP {
                    rel.abandon_candidate(g.hashes[c], g.verdicts[c]);
                }
            }
        }
    }
    outcome.map(|()| added)
}

/// Head instances derived by one T-operator application, as `(PredId,
/// tuple)` over the program's [`crate::compile::PredTable`].
pub type DerivedFacts = Vec<(PredId, Box<[SeqId]>)>;

/// One application of the T-operator to an arbitrary interpretation:
/// returns every derivable head instance as `(PredId, tuple)` over the
/// program's [`crate::compile::PredTable`] (used by the Appendix A model
/// checker; `T(I) ⊆ I` iff `I` is a model, Lemma 4).
pub fn tp_step(
    program: &CompiledProgram,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    facts: &FactStore,
    domain: &ExtendedDomain,
    config: &EvalConfig,
) -> Result<DerivedFacts, EvalError> {
    // Cold path: if the interpretation was not built from this program's
    // table, realign it so compiled `PredId`s address the right relations.
    let realigned;
    let facts = if program.preds.is_prefix_of(facts.preds()) {
        facts
    } else {
        realigned = facts.realigned_to(&program.preds);
        &realigned
    };
    for id in program.constants() {
        store.close_windows(id);
    }
    let mut stats = EvalStats::default();
    let members: Vec<SeqId> = domain.iter().collect();
    let mut out = Vec::new();
    let mut buf = RecipeBuf::default();
    for ci in 0..program.clauses.len() {
        let task = MatchTask {
            clause: ci,
            delta: None,
        };
        buf.clear();
        run_match_task(
            program,
            &task,
            store,
            facts,
            domain,
            &members,
            &[],
            &mut buf,
        );
        let clause = &program.clauses[ci];
        let mut hb = eval_task_heads(clause, &buf, store, registry, config);
        let arity = clause.head.args.len();
        settle_headbuf(&mut hb, arity, store);
        let mut rank = 0usize;
        for (r, &st) in hb.status.iter().enumerate() {
            if let Some(&(calls, steps)) = hb.tstats.get(r) {
                stats.transducer_calls += calls;
                stats.transducer_steps += steps;
            }
            match st {
                REC_UNDEF => {}
                REC_TUPLE => {
                    let tuple = &hb.tuples[rank * arity..(rank + 1) * arity];
                    out.push((clause.head.pred, tuple.into()));
                    rank += 1;
                }
                _ => {
                    debug_assert_eq!(st, REC_ERR);
                    let err = hb.error.clone().expect("REC_ERR carries its cause");
                    return Err(surface_head_error(err, facts, domain, &mut stats));
                }
            }
        }
    }
    Ok(out)
}

/// Does a compiled head term contain a transducer call? Decides whether a
/// task's [`HeadBuf`] tracks per-recipe transducer statistics.
fn cseq_has_transducer(t: &CSeq) -> bool {
    match t {
        CSeq::Const(_) | CSeq::Var(_) | CSeq::Indexed { .. } => false,
        CSeq::Concat(x, y) => cseq_has_transducer(x) || cseq_has_transducer(y),
        CSeq::Transducer { .. } => true,
    }
}

/// Evaluate every recipe of one task's clause head against the epoch-frozen
/// store. Read-only on the store: fresh values go into the returned
/// buffer's [`PendingInterns`] batch under provisional ids. Reproduces the
/// sequential engine's evaluation order exactly — head arguments left to
/// right, per-argument `max_seq_len` check, stop-at-first-error — so the
/// merge phase can replay its statistics and errors bit-for-bit.
fn eval_task_heads(
    clause: &crate::compile::CompiledClause,
    buf: &RecipeBuf,
    store: &SeqStore,
    registry: &TransducerRegistry,
    config: &EvalConfig,
) -> HeadBuf {
    let mut out = HeadBuf {
        count: buf.count,
        ..HeadBuf::default()
    };
    let track_tstats = clause.head.args.iter().any(cseq_has_transducer);
    let arity = clause.head.args.len();
    let mut tuple: Vec<SeqId> = Vec::with_capacity(arity);
    for r in 0..buf.count {
        let seqs = &buf.seqs[r * clause.n_seq..(r + 1) * clause.n_seq];
        let idxs = &buf.idxs[r * clause.n_idx..(r + 1) * clause.n_idx];
        tuple.clear();
        let mut calls = 0u64;
        let mut steps = 0u64;
        let mut verdict = REC_TUPLE;
        for arg in &clause.head.args {
            match eval_head_frozen(
                arg,
                seqs,
                idxs,
                store,
                &mut out.pending,
                registry,
                config,
                &mut calls,
                &mut steps,
            ) {
                Ok(Some(id)) => {
                    let len = out.pending.len_of(store, id);
                    if len > config.max_seq_len {
                        verdict = REC_ERR;
                        out.error = Some(HeadError::SeqLen(len));
                        break;
                    }
                    tuple.push(id);
                }
                Ok(None) => {
                    verdict = REC_UNDEF;
                    break;
                }
                Err(e) => {
                    verdict = REC_ERR;
                    out.error = Some(e);
                    break;
                }
            }
        }
        if track_tstats {
            out.tstats.push((calls, steps));
        }
        out.status.push(verdict);
        match verdict {
            REC_ERR => return out, // stop the task at its first error
            REC_TUPLE => {
                if tuple.iter().any(|id| id.is_provisional()) {
                    out.needs_patch.push(out.hashes.len() as u32);
                    out.hashes.push(0); // patched during intern-merge
                } else {
                    out.hashes.push(hash_tuple(&tuple));
                }
                out.tuples.extend_from_slice(&tuple);
            }
            _ => {}
        }
    }
    out
}

/// Apply one task's pending interns and patch its tuples in place — the
/// single-task form of the intern-merge stage, used by the DRed marking
/// loop and [`tp_step`] (whose matching is sequential to begin with).
fn settle_headbuf(buf: &mut HeadBuf, arity: usize, store: &mut SeqStore) {
    if buf.pending.is_empty() {
        return;
    }
    let resolved = buf.pending.apply(store);
    for &rank in &buf.needs_patch {
        let at = rank as usize * arity;
        let tuple = &mut buf.tuples[at..at + arity];
        for id in tuple.iter_mut() {
            if id.is_provisional() {
                *id = resolved[id.provisional_index()];
            }
        }
        buf.hashes[rank as usize] = hash_tuple(tuple);
    }
}

/// Convert a captured [`HeadError`] into the [`EvalError`] the sequential
/// engine would have raised at the same point, with the same statistics
/// treatment (SeqLen budget errors finalize stats against the current
/// interpretation and latch the offending length; transducer errors leave
/// stats as they are).
fn surface_head_error(
    err: HeadError,
    facts: &FactStore,
    domain: &ExtendedDomain,
    stats: &mut EvalStats,
) -> EvalError {
    match err {
        HeadError::SeqLen(len) => {
            finalize_stats(stats, facts, domain);
            stats.max_seq_len = stats.max_seq_len.max(len);
            EvalError::Budget {
                kind: BudgetKind::SeqLen,
                stats: *stats,
            }
        }
        HeadError::UnknownTransducer(name) => EvalError::UnknownTransducer(name),
        HeadError::Transducer { name, error } => EvalError::Transducer { name, error },
    }
}

fn finalize_stats(stats: &mut EvalStats, facts: &FactStore, domain: &ExtendedDomain) {
    stats.facts = facts.total_facts();
    stats.domain_size = domain.len();
    stats.max_seq_len = stats.max_seq_len.max(domain.max_len());
}

fn check_budgets(
    facts: &FactStore,
    domain: &ExtendedDomain,
    config: &EvalConfig,
    stats: &mut EvalStats,
) -> Result<(), EvalError> {
    finalize_stats(stats, facts, domain);
    if facts.total_facts() > config.max_facts {
        return Err(EvalError::Budget {
            kind: BudgetKind::Facts,
            stats: *stats,
        });
    }
    if domain.len() > config.max_domain {
        return Err(EvalError::Budget {
            kind: BudgetKind::DomainSize,
            stats: *stats,
        });
    }
    if domain.max_len() > config.max_seq_len {
        return Err(EvalError::Budget {
            kind: BudgetKind::SeqLen,
            stats: *stats,
        });
    }
    Ok(())
}

/// Evaluate an index term of a committed recipe (all variables bound).
/// `None` on `i64` overflow — the enclosing indexed term is then undefined.
fn commit_idx(t: &CIdx, idxs: &[i64], end_val: i64) -> Option<i64> {
    match t {
        CIdx::Int(i) => Some(*i),
        CIdx::Var(v) => Some(idxs[*v as usize]),
        CIdx::End => Some(end_val),
        CIdx::Add(x, y) => commit_idx(x, idxs, end_val)?.checked_add(commit_idx(y, idxs, end_val)?),
        CIdx::Sub(x, y) => commit_idx(x, idxs, end_val)?.checked_sub(commit_idx(y, idxs, end_val)?),
    }
}

/// Evaluate a (possibly constructive) head term under a recipe's total
/// substitution against the **epoch-frozen** store. This is the read-only
/// counterpart of the old in-place committing evaluator: already-interned
/// values (constants, matched bindings, window-closed subsequences, known
/// concatenations) resolve by lookup, and genuinely fresh values go into
/// `pending` under provisional ids — value-for-value identical to what the
/// mutating evaluator would have interned, just deferred to the merge.
/// `Ok(None)` means the term is undefined (no fact derived, Section 3.2).
/// Transducer call/step deltas accumulate into `calls`/`steps` with the
/// sequential engine's exact order: the registry is consulted before
/// arguments are evaluated, a call is counted before the machine runs, and
/// steps only count on success.
#[allow(clippy::too_many_arguments)]
fn eval_head_frozen(
    t: &CSeq,
    seqs: &[SeqId],
    idxs: &[i64],
    store: &SeqStore,
    pending: &mut PendingInterns,
    registry: &TransducerRegistry,
    config: &EvalConfig,
    calls: &mut u64,
    steps: &mut u64,
) -> Result<Option<SeqId>, HeadError> {
    match t {
        CSeq::Const(id) => Ok(Some(*id)),
        CSeq::Var(v) => Ok(Some(seqs[*v as usize])),
        CSeq::Indexed { base, lo, hi } => {
            // Bases are syntactically constants or variables, so `base_id`
            // is always a real (frozen-store) id: provisional values only
            // arise from concatenation and transducer output.
            let base_id = match base {
                CBase::Const(id) => *id,
                CBase::Var(v) => seqs[*v as usize],
            };
            debug_assert!(!base_id.is_provisional());
            let end_val = store.len_of(base_id) as i64;
            let (Some(n1), Some(n2)) =
                (commit_idx(lo, idxs, end_val), commit_idx(hi, idxs, end_val))
            else {
                return Ok(None);
            };
            let Some((start, end)) = seqlog_sequence::index_window(store.len_of(base_id), n1, n2)
            else {
                return Ok(None);
            };
            Ok(Some(match store.lookup_range(base_id, start, end) {
                Some(id) => id,
                None => {
                    let window: Vec<Sym> = store.get(base_id)[start..end].to_vec();
                    pending.resolve_vec(store, window)
                }
            }))
        }
        CSeq::Concat(x, y) => {
            let Some(xv) = eval_head_frozen(
                x, seqs, idxs, store, pending, registry, config, calls, steps,
            )?
            else {
                return Ok(None);
            };
            let Some(yv) = eval_head_frozen(
                y, seqs, idxs, store, pending, registry, config, calls, steps,
            )?
            else {
                return Ok(None);
            };
            // ε is the concatenation identity — same fast path (and same
            // resulting id) as `SeqStore::concat`.
            if pending.len_of(store, xv) == 0 {
                return Ok(Some(yv));
            }
            if pending.len_of(store, yv) == 0 {
                return Ok(Some(xv));
            }
            let mut cat: Vec<Sym> =
                Vec::with_capacity(pending.len_of(store, xv) + pending.len_of(store, yv));
            cat.extend_from_slice(pending.syms_of(store, xv));
            cat.extend_from_slice(pending.syms_of(store, yv));
            Ok(Some(pending.resolve_vec(store, cat)))
        }
        CSeq::Transducer { name, args } => {
            let machine = registry
                .get(name)
                .ok_or_else(|| HeadError::UnknownTransducer(name.clone()))?;
            let mut inputs: Vec<SeqId> = Vec::with_capacity(args.len());
            for a in args {
                match eval_head_frozen(
                    a, seqs, idxs, store, pending, registry, config, calls, steps,
                )? {
                    Some(v) => inputs.push(v),
                    None => return Ok(None),
                }
            }
            let tapes: Vec<Vec<Sym>> = inputs
                .iter()
                .map(|&id| pending.syms_of(store, id).to_vec())
                .collect();
            let tape_refs: Vec<&[Sym]> = tapes.iter().map(Vec::as_slice).collect();
            let mut exec_stats = ExecStats::default();
            *calls += 1;
            let output =
                seqlog_transducer::run(machine, &tape_refs, &config.exec_limits, &mut exec_stats)
                    .map_err(|e| HeadError::Transducer {
                    name: name.clone(),
                    error: e.to_string(),
                })?;
            *steps += exec_stats.steps;
            Ok(Some(pending.resolve_vec(store, output)))
        }
    }
}
