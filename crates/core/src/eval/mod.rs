//! Fixpoint evaluation of Sequence Datalog / Transducer Datalog programs
//! (Section 3.3, extended with transducer terms per Section 7.1).
//!
//! The evaluator computes `lfp(T_{P,db}) = T_{P,db} ↑ ω` bottom-up. Each
//! round applies the T-operator to the current interpretation: substitutions
//! range over the extended active domain *of that interpretation*
//! (Definition 4), new facts are collected and committed at the end of the
//! round, and every sequence occurring in a committed fact enters the domain
//! together with its contiguous subsequences.
//!
//! # Interned, index-addressed core
//!
//! The hot loop never touches a predicate-name `String`:
//!
//! * compilation interns every predicate to a dense
//!   [`PredId`](crate::compile::PredId) in the program's
//!   [`PredTable`](crate::compile::PredTable);
//! * the [`FactStore`] is a `Vec<Relation>` indexed by `PredId` (the store's
//!   table starts as a copy of the program's, so compiled ids index it
//!   directly; database-only predicates extend it at seeding);
//! * [`interp::Relation::insert`] performs a **single hash probe** per tuple
//!   (open addressing over cached tuple hashes — no `contains`+`insert`
//!   pair, no tuple clone);
//! * the per-round delta snapshot ([`FactStore::sizes`]) is a plain
//!   `Vec<usize>` copy, and `new_facts` carries `(PredId, Box<[SeqId]>)` —
//!   zero `String` allocations per derived fact;
//! * the matcher ([`matcher`]) runs on one scratch substitution per clause
//!   with a bind/undo trail — no `Bindings` clone per candidate.
//!
//! `&str` lookups remain available at the API boundary
//! ([`Model::tuples`], [`FactStore::contains`]).
//!
//! # Budgets and strategies
//!
//! Because the finiteness problem is fully undecidable (Theorem 2), the
//! evaluator enforces explicit budgets ([`EvalConfig`]) and reports
//! [`BudgetKind`]-tagged errors instead of diverging on programs like
//! Example 1.5's `rep2` or Example 1.6's `echo`.
//!
//! Two strategies are provided: [`Strategy::Naive`] (the literal T-operator
//! iteration — the executable specification) and [`Strategy::SemiNaive`]
//! (delta-driven; differentially tested against naive). Semi-naive restricts
//! each rule application to derivations that use at least one fact from the
//! previous round's delta; *domain-sensitive* clauses (those that enumerate
//! the extended active domain) are additionally re-evaluated in full
//! whenever the domain has grown.
//!
//! # Reading [`EvalStats`]
//!
//! `stats.derivations` counts **head instantiations attempted**, including
//! duplicates that the fact store then rejects — it is the work measure of
//! the T-operator, not the output size (`stats.facts` is). A large
//! `derivations`-to-`facts` ratio under [`Strategy::Naive`] and a near-1
//! ratio under [`Strategy::SemiNaive`] is the expected signature of delta
//! evaluation working; `transducer_calls`/`transducer_steps` account for
//! embedded machine runs separately.

pub mod interp;
pub mod matcher;

use crate::compile::{compile, CSeq, CompileError, CompiledClause, CompiledProgram, PredId};
use crate::database::Database;
use crate::registry::TransducerRegistry;
use crate::Program;
use interp::FactStore;
use matcher::{solve_body, Bindings, MatchEnv, TermVal};
use seqlog_sequence::{ExtendedDomain, SeqId, SeqStore};
use seqlog_transducer::{ExecLimits, ExecStats};
use std::fmt;

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Literal T-operator iteration — the executable specification.
    Naive,
    /// Delta-driven evaluation (default).
    #[default]
    SemiNaive,
}

/// Evaluation budgets and strategy selection.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Strategy to use.
    pub strategy: Strategy,
    /// Maximum T-operator rounds.
    pub max_rounds: usize,
    /// Maximum total facts.
    pub max_facts: usize,
    /// Maximum extended-active-domain size (member sequences).
    pub max_domain: usize,
    /// Maximum length of any created sequence.
    pub max_seq_len: usize,
    /// Budgets for embedded transducer runs.
    pub exec_limits: ExecLimits,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::SemiNaive,
            max_rounds: 10_000,
            max_facts: 1_000_000,
            max_domain: 1_000_000,
            max_seq_len: 65_536,
            exec_limits: ExecLimits::default(),
        }
    }
}

impl EvalConfig {
    /// A small-budget configuration for probing programs suspected of
    /// having an infinite least fixpoint (Examples 1.5/1.6).
    pub fn probe() -> Self {
        Self {
            max_rounds: 50,
            max_facts: 20_000,
            max_domain: 20_000,
            max_seq_len: 4_096,
            ..Self::default()
        }
    }
}

/// Which budget was exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// `max_rounds`.
    Rounds,
    /// `max_facts`.
    Facts,
    /// `max_domain`.
    DomainSize,
    /// `max_seq_len`.
    SeqLen,
}

/// Counters describing an evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalStats {
    /// T-operator rounds performed.
    pub rounds: usize,
    /// Facts in the final (or partial) interpretation.
    pub facts: usize,
    /// Extended-active-domain size.
    pub domain_size: usize,
    /// Longest sequence created during evaluation.
    pub max_seq_len: usize,
    /// Head instantiations attempted (including duplicates rejected by the
    /// fact store) — the T-operator work measure, not the output size.
    pub derivations: u64,
    /// Transducer-term evaluations.
    pub transducer_calls: u64,
    /// Total transducer transitions across all calls.
    pub transducer_steps: u64,
}

/// Evaluation errors.
#[derive(Clone, Debug)]
pub enum EvalError {
    /// Static validation failed.
    Compile(CompileError),
    /// A budget was exhausted — the program may have an infinite least
    /// fixpoint (Theorem 2 makes this undecidable in general).
    Budget {
        /// Exhausted budget.
        kind: BudgetKind,
        /// Statistics at the point of interruption.
        stats: EvalStats,
    },
    /// A transducer term refers to a machine that is not registered.
    UnknownTransducer(String),
    /// A transducer run failed (stuck machine or exec budget).
    Transducer {
        /// Machine name.
        name: String,
        /// Rendered execution error.
        error: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Compile(e) => write!(f, "{e}"),
            Self::Budget { kind, stats } => write!(
                f,
                "budget exhausted ({kind:?}) after {} rounds, {} facts, domain {}",
                stats.rounds, stats.facts, stats.domain_size
            ),
            Self::UnknownTransducer(n) => write!(f, "unknown transducer @{n}"),
            Self::Transducer { name, error } => write!(f, "transducer @{name}: {error}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<CompileError> for EvalError {
    fn from(e: CompileError) -> Self {
        Self::Compile(e)
    }
}

/// The result of a (terminating) evaluation: the least fixpoint
/// interpretation, its extended active domain, and statistics.
#[derive(Clone, Debug)]
pub struct Model {
    /// The least fixpoint `T_{P,db} ↑ ω`.
    pub facts: FactStore,
    /// Its extended active domain.
    pub domain: ExtendedDomain,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl Model {
    /// Tuples of `pred` (empty when absent). Allocates a `Vec` of
    /// references; iterate `self.facts.relation_named(pred)` via
    /// [`interp::Relation::iter`] to avoid it.
    pub fn tuples(&self, pred: &str) -> Vec<&[SeqId]> {
        self.facts.tuples(pred)
    }

    /// Membership test.
    pub fn contains(&self, pred: &str, tuple: &[SeqId]) -> bool {
        self.facts.contains(pred, tuple)
    }
}

/// Evaluate `program` over `db` to the least fixpoint.
pub fn evaluate(
    program: &Program,
    db: &Database,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    config: &EvalConfig,
) -> Result<Model, EvalError> {
    let compiled = compile(program)?;
    evaluate_compiled(&compiled, db, store, registry, config)
}

/// Evaluate an already-compiled program.
pub fn evaluate_compiled(
    program: &CompiledProgram,
    db: &Database,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    config: &EvalConfig,
) -> Result<Model, EvalError> {
    // The store's predicate table extends the program's, so compiled
    // `PredId`s address relations directly.
    let mut facts = FactStore::with_preds(program.preds.clone());
    let mut domain = ExtendedDomain::new();
    let mut stats = EvalStats::default();

    // Seed: database atoms are clauses with empty bodies (Definition 4).
    for (pred, tuple) in db.iter() {
        let pid = facts.pred_id(pred);
        if facts.insert(pid, tuple.into()) {
            for &id in tuple {
                domain.insert_closed(store, id);
            }
        }
    }
    check_budgets(&facts, &domain, store, config, &mut stats)?;

    // Per-relation sizes *before* the most recent round, indexed by PredId
    // (semi-naive deltas).
    let mut sizes_before: Vec<usize> = Vec::new();
    let mut domain_before: usize = 0;
    let mut new_facts: Vec<(PredId, Box<[SeqId]>)> = Vec::new();
    let mut members: Vec<SeqId> = Vec::new();

    loop {
        if stats.rounds >= config.max_rounds {
            finalize_stats(&mut stats, &facts, &domain);
            return Err(EvalError::Budget {
                kind: BudgetKind::Rounds,
                stats,
            });
        }
        stats.rounds += 1;

        let sizes_now = facts.sizes();
        let domain_now = domain.len();
        let full_round = stats.rounds == 1 || config.strategy == Strategy::Naive;

        // Snapshot for free-variable enumeration: substitutions in this
        // round range over the domain of the interpretation entering it.
        members.clear();
        members.extend(domain.iter());

        new_facts.clear();
        for clause in &program.clauses {
            if full_round {
                derive_clause(
                    clause,
                    None,
                    store,
                    registry,
                    &facts,
                    &domain,
                    config,
                    &mut stats,
                    &members,
                    &mut new_facts,
                )?;
                continue;
            }
            // Semi-naive: facts fire only in round 1.
            if clause.body.is_empty() {
                continue;
            }
            let domain_grew = domain_now > domain_before;
            if clause.domain_sensitive && domain_grew {
                derive_clause(
                    clause,
                    None,
                    store,
                    registry,
                    &facts,
                    &domain,
                    config,
                    &mut stats,
                    &members,
                    &mut new_facts,
                )?;
                continue;
            }
            for (li, lit) in clause.body.iter().enumerate() {
                let crate::compile::CBody::Atom(atom) = lit else {
                    continue;
                };
                let before = sizes_before.get(atom.pred.index()).copied().unwrap_or(0);
                let now = sizes_now.get(atom.pred.index()).copied().unwrap_or(0);
                if now > before {
                    derive_clause(
                        clause,
                        Some((li, before)),
                        store,
                        registry,
                        &facts,
                        &domain,
                        config,
                        &mut stats,
                        &members,
                        &mut new_facts,
                    )?;
                }
            }
        }

        sizes_before = sizes_now;
        domain_before = domain_now;

        let mut added = 0usize;
        for (pid, tuple) in new_facts.drain(..) {
            if facts.insert(pid, tuple) {
                added += 1;
                // The just-inserted tuple is the relation's last; read it
                // back for domain closure instead of cloning it up front.
                let rel = facts.relation(pid);
                let tuple = rel.tuple(rel.len() - 1);
                for &id in tuple {
                    domain.insert_closed(store, id);
                }
            }
        }
        check_budgets(&facts, &domain, store, config, &mut stats)?;
        if added == 0 {
            break;
        }
    }

    finalize_stats(&mut stats, &facts, &domain);
    Ok(Model {
        facts,
        domain,
        stats,
    })
}

/// One application of the T-operator to an arbitrary interpretation:
/// returns every derivable head instance as `(PredId, tuple)` over the
/// program's [`crate::compile::PredTable`] (used by the Appendix A model
/// checker; `T(I) ⊆ I` iff `I` is a model, Lemma 4).
pub fn tp_step(
    program: &CompiledProgram,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    facts: &FactStore,
    domain: &ExtendedDomain,
    config: &EvalConfig,
) -> Result<Vec<(PredId, Box<[SeqId]>)>, EvalError> {
    // Cold path: if the interpretation was not built from this program's
    // table, realign it so compiled `PredId`s address the right relations.
    let realigned;
    let facts = if program.preds.is_prefix_of(facts.preds()) {
        facts
    } else {
        realigned = facts.realigned_to(&program.preds);
        &realigned
    };
    let mut stats = EvalStats::default();
    let mut out = Vec::new();
    let members: Vec<SeqId> = domain.iter().collect();
    for clause in &program.clauses {
        derive_clause(
            clause, None, store, registry, facts, domain, config, &mut stats, &members, &mut out,
        )?;
    }
    Ok(out)
}

fn finalize_stats(stats: &mut EvalStats, facts: &FactStore, domain: &ExtendedDomain) {
    stats.facts = facts.total_facts();
    stats.domain_size = domain.len();
    stats.max_seq_len = stats.max_seq_len.max(domain.max_len());
}

fn check_budgets(
    facts: &FactStore,
    domain: &ExtendedDomain,
    store: &SeqStore,
    config: &EvalConfig,
    stats: &mut EvalStats,
) -> Result<(), EvalError> {
    let _ = store;
    finalize_stats(stats, facts, domain);
    if facts.total_facts() > config.max_facts {
        return Err(EvalError::Budget {
            kind: BudgetKind::Facts,
            stats: *stats,
        });
    }
    if domain.len() > config.max_domain {
        return Err(EvalError::Budget {
            kind: BudgetKind::DomainSize,
            stats: *stats,
        });
    }
    if domain.max_len() > config.max_seq_len {
        return Err(EvalError::Budget {
            kind: BudgetKind::SeqLen,
            stats: *stats,
        });
    }
    Ok(())
}

/// Derive all head instances of one clause under the given delta
/// restriction, appending them to `out`. `members` is the round's snapshot
/// of the domain's member sequences (for free-variable enumeration).
#[allow(clippy::too_many_arguments)]
fn derive_clause(
    clause: &CompiledClause,
    delta: Option<(usize, usize)>,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    facts: &FactStore,
    domain: &ExtendedDomain,
    config: &EvalConfig,
    stats: &mut EvalStats,
    members: &[SeqId],
    out: &mut Vec<(PredId, Box<[SeqId]>)>,
) -> Result<(), EvalError> {
    let int_upper = domain.int_upper();

    let mut error: Option<EvalError> = None;
    {
        let mut env = MatchEnv {
            store,
            domain,
            facts,
            int_upper,
        };
        let mut on_match = |b: &mut Bindings, env: &mut MatchEnv<'_>| {
            if error.is_some() {
                return;
            }
            if let Err(e) = instantiate_head(clause, b, env, registry, config, stats, members, out)
            {
                error = Some(e);
            }
        };
        solve_body(clause, &mut env, delta, &mut on_match);
    }
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Enumerate free (head-only) variables over the domain and evaluate the
/// head atom for each completion. Works in place on the matcher's scratch
/// substitution (free slots are bound and restored) — no `Bindings` clone
/// per derivation.
#[allow(clippy::too_many_arguments)]
fn instantiate_head(
    clause: &CompiledClause,
    b: &mut Bindings,
    env: &mut MatchEnv<'_>,
    registry: &TransducerRegistry,
    config: &EvalConfig,
    stats: &mut EvalStats,
    members: &[SeqId],
    out: &mut Vec<(PredId, Box<[SeqId]>)>,
) -> Result<(), EvalError> {
    let free_seq: Vec<usize> = (0..clause.n_seq).filter(|&v| b.seq[v].is_none()).collect();
    let free_idx: Vec<usize> = (0..clause.n_idx).filter(|&v| b.idx[v].is_none()).collect();

    // Depth-first product over free variables.
    fn rec(
        clause: &CompiledClause,
        b: &mut Bindings,
        free_seq: &[usize],
        free_idx: &[usize],
        members: &[SeqId],
        int_upper: i64,
        env: &mut MatchEnv<'_>,
        registry: &TransducerRegistry,
        config: &EvalConfig,
        stats: &mut EvalStats,
        out: &mut Vec<(PredId, Box<[SeqId]>)>,
    ) -> Result<(), EvalError> {
        if let Some((&v, rest)) = free_seq.split_first() {
            for &m in members {
                b.seq[v] = Some(m);
                let r = rec(
                    clause, b, rest, free_idx, members, int_upper, env, registry, config, stats,
                    out,
                );
                if r.is_err() {
                    b.seq[v] = None;
                    return r;
                }
            }
            b.seq[v] = None;
            return Ok(());
        }
        if let Some((&v, rest)) = free_idx.split_first() {
            for n in 0..=int_upper {
                b.idx[v] = Some(n);
                let r = rec(
                    clause, b, free_seq, rest, members, int_upper, env, registry, config, stats,
                    out,
                );
                if r.is_err() {
                    b.idx[v] = None;
                    return r;
                }
            }
            b.idx[v] = None;
            return Ok(());
        }
        // Fully bound: evaluate the head.
        stats.derivations += 1;
        let mut tuple = Vec::with_capacity(clause.head.args.len());
        for arg in &clause.head.args {
            match eval_full(arg, b, env.store, registry, config, stats)? {
                TermVal::Val(id) => {
                    if env.store.len_of(id) > config.max_seq_len {
                        return Err(EvalError::Budget {
                            kind: BudgetKind::SeqLen,
                            stats: *stats,
                        });
                    }
                    tuple.push(id);
                }
                TermVal::Undefined => return Ok(()), // θ undefined at clause
                TermVal::Unbound => unreachable!("all variables enumerated"),
            }
        }
        out.push((clause.head.pred, tuple.into()));
        Ok(())
    }

    let int_upper = env.int_upper;
    rec(
        clause, b, &free_seq, &free_idx, members, int_upper, env, registry, config, stats, out,
    )
}

/// Evaluate a (possibly constructive) head term under a total substitution.
fn eval_full(
    t: &CSeq,
    b: &Bindings,
    store: &mut SeqStore,
    registry: &TransducerRegistry,
    config: &EvalConfig,
    stats: &mut EvalStats,
) -> Result<TermVal, EvalError> {
    match t {
        CSeq::Const(_) | CSeq::Var(_) | CSeq::Indexed { .. } => Ok(matcher::eval_seq(t, b, store)),
        CSeq::Concat(x, y) => {
            let xv = match eval_full(x, b, store, registry, config, stats)? {
                TermVal::Val(v) => v,
                other => return Ok(other),
            };
            let yv = match eval_full(y, b, store, registry, config, stats)? {
                TermVal::Val(v) => v,
                other => return Ok(other),
            };
            Ok(TermVal::Val(store.concat(xv, yv)))
        }
        CSeq::Transducer { name, args } => {
            let machine = registry
                .get(name)
                .ok_or_else(|| EvalError::UnknownTransducer(name.clone()))?;
            let mut inputs: Vec<SeqId> = Vec::with_capacity(args.len());
            for a in args {
                match eval_full(a, b, store, registry, config, stats)? {
                    TermVal::Val(v) => inputs.push(v),
                    other => return Ok(other),
                }
            }
            let tapes: Vec<Vec<seqlog_sequence::Sym>> =
                inputs.iter().map(|&id| store.get(id).to_vec()).collect();
            let tape_refs: Vec<&[seqlog_sequence::Sym]> = tapes.iter().map(Vec::as_slice).collect();
            let mut exec_stats = ExecStats::default();
            stats.transducer_calls += 1;
            let output =
                seqlog_transducer::run(machine, &tape_refs, &config.exec_limits, &mut exec_stats)
                    .map_err(|e| EvalError::Transducer {
                    name: name.clone(),
                    error: e.to_string(),
                })?;
            stats.transducer_steps += exec_stats.steps;
            Ok(TermVal::Val(store.intern_vec(output)))
        }
    }
}
