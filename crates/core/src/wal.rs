//! Write-ahead log for durable [`crate::session::EngineSession`]s.
//!
//! The log is an append-only file of *logical* records: every committed
//! mutation of a durable session — an assert batch, a retract batch, a
//! [`run`](crate::session::EngineSession::run) — is appended **before** the
//! in-memory commit, so the on-disk history is always a superset of any
//! acknowledged state. Records are logical rather than physical: a fact is
//! its predicate *name* plus, per argument, the argument's *symbol names*
//! (not `SeqId`s/`Sym`s), so replay re-interns through the ordinary session
//! paths and the append-only interners reproduce identical ids. That is
//! what keeps recovery honest about constructive-clause domain growth: the
//! extended active domain is a function of the interpretation (Definition
//! 4) and is rebuilt by replay, never read from disk.
//!
//! # File format
//!
//! ```text
//! header:  magic "SQLWAL01" (8 bytes) · base_index u64 LE
//! record:  len u32 LE · crc32(payload) u32 LE · payload (len bytes)
//! payload: kind u8 · kind-specific body (length-prefixed strings)
//! ```
//!
//! `base_index` is the absolute index of the first record in the file; a
//! [compaction](crate::session::EngineSession::compact) rewrites the log
//! with a fresh `base_index` equal to the covering snapshot's record count.
//!
//! # Torn tails vs. corruption
//!
//! A crash can tear only the *tail* of an append-only log. On open, an
//! incomplete final frame — or a final frame whose checksum fails — is
//! truncated away and the log is the committed prefix. A checksum or
//! decode failure anywhere *before* the end is not a torn write and
//! surfaces as [`RecoveryError::Corrupt`]: silently dropping interior
//! records would replay a history that never happened.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the write-ahead log inside a durability directory.
pub const WAL_FILE: &str = "wal.bin";

const WAL_MAGIC: &[u8; 8] = b"SQLWAL01";
/// Header length: magic + `base_index`.
pub const WAL_HEADER_LEN: u64 = 16;
/// Frame overhead per record: length + checksum.
const FRAME_LEN: usize = 8;
/// Upper bound on a single record's payload, so a corrupted length field
/// can never drive an allocation from garbage bytes.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// Why a durable session could not be rebuilt (or written) from disk.
///
/// Corruption is always reported through this type — never a panic or an
/// out-of-bounds index, which the bit-flip fuzzing in
/// `tests/fuzz_recovery.rs` enforces over both the log and the snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// An OS-level file operation failed.
    Io {
        /// The operation that failed (e.g. `"append wal.bin"`).
        op: String,
        /// The rendered `std::io::Error`.
        detail: String,
    },
    /// A file decoded to something no writer ever produced: bad magic,
    /// failed checksum away from the tail, truncated structure, or ids
    /// that do not validate against the state being rebuilt.
    Corrupt {
        /// The offending file name.
        file: String,
        /// What failed to validate.
        detail: String,
    },
    /// The on-disk state is internally consistent but does not belong to
    /// the session being opened: wrong program, wrong constants, or a
    /// snapshot that claims records the log never had.
    Mismatch {
        /// The incompatibility.
        detail: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { op, detail } => write!(f, "i/o failure during {op}: {detail}"),
            Self::Corrupt { file, detail } => write!(f, "corrupt {file}: {detail}"),
            Self::Mismatch { detail } => write!(f, "state mismatch: {detail}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl RecoveryError {
    pub(crate) fn io(op: &str, e: &std::io::Error) -> Self {
        Self::Io {
            op: op.to_string(),
            detail: e.to_string(),
        }
    }

    pub(crate) fn corrupt(file: &Path, detail: impl Into<String>) -> Self {
        Self::Corrupt {
            file: file.file_name().map_or_else(
                || file.display().to_string(),
                |n| n.to_string_lossy().into_owned(),
            ),
            detail: detail.into(),
        }
    }
}

// --- CRC-32 (IEEE 802.3, the zlib polynomial), std-only ---

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 checksum of `bytes` (IEEE polynomial, as in zlib/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- byte-level encode/decode helpers (shared with the snapshot format) ---

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over a decoded payload: every take reports a
/// structural error instead of slicing out of range, which is what turns
/// arbitrary bit flips into clean [`RecoveryError`]s.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                format!(
                    "need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                )
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length-prefixed UTF-8 string. The length is validated against the
    /// remaining buffer *before* any allocation.
    pub(crate) fn take_str(&mut self) -> Result<String, String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8 in string".to_string())
    }

    /// A count field that will drive a loop: validated against what the
    /// remaining bytes could possibly hold (each element needs at least
    /// `min_elem_bytes`), so a flipped count cannot drive a huge loop or
    /// allocation.
    pub(crate) fn take_count(&mut self, min_elem_bytes: usize) -> Result<usize, String> {
        let n = self.take_u32()? as usize;
        let left = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > left {
            return Err(format!("count {n} exceeds remaining {left} bytes"));
        }
        Ok(n)
    }

    pub(crate) fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

// --- the logical record model ---

/// One fact as logged: the predicate name plus, per argument, the
/// argument's symbol names. Interner-independent by construction (compound
/// symbol names — transducer states, tape markers — survive the round
/// trip, which a rendered-string encoding would garble).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoggedFact {
    /// Predicate name.
    pub pred: String,
    /// Per-argument symbol-name lists.
    pub args: Vec<Vec<String>>,
}

/// One mutation of a durable session, in commit order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A (failure-atomic) assert batch.
    AssertBatch(Vec<LoggedFact>),
    /// A retract batch (eagerly settled by Delete-and-Rederive).
    RetractBatch(Vec<LoggedFact>),
    /// A [`run`](crate::session::EngineSession::run) boundary. Logged even
    /// for quiescent runs: a run always executes at least one round, so
    /// replaying the boundary is what makes recovered `EvalStats`
    /// bit-for-bit equal to the uncrashed session's.
    Run,
    /// Compensation: the immediately preceding record was refused by a
    /// budget *after* it was logged and rolled back without effect; replay
    /// must skip it (reproducing only its interner growth, which is
    /// unobservable through the query API).
    Abort,
}

const KIND_ASSERT: u8 = 1;
const KIND_RETRACT: u8 = 2;
const KIND_RUN: u8 = 3;
const KIND_ABORT: u8 = 4;

fn put_facts(buf: &mut Vec<u8>, facts: &[LoggedFact]) {
    put_u32(buf, facts.len() as u32);
    for f in facts {
        put_str(buf, &f.pred);
        put_u32(buf, f.args.len() as u32);
        for arg in &f.args {
            put_u32(buf, arg.len() as u32);
            for sym in arg {
                put_str(buf, sym);
            }
        }
    }
}

fn take_facts(r: &mut ByteReader<'_>) -> Result<Vec<LoggedFact>, String> {
    let nfacts = r.take_count(5)?;
    let mut facts = Vec::with_capacity(nfacts);
    for _ in 0..nfacts {
        let pred = r.take_str()?;
        let arity = r.take_count(4)?;
        let mut args = Vec::with_capacity(arity);
        for _ in 0..arity {
            let nsyms = r.take_count(4)?;
            let mut syms = Vec::with_capacity(nsyms);
            for _ in 0..nsyms {
                syms.push(r.take_str()?);
            }
            args.push(syms);
        }
        facts.push(LoggedFact { pred, args });
    }
    Ok(facts)
}

/// Encode a record's payload (the bytes the frame checksum covers).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    match rec {
        WalRecord::AssertBatch(facts) => {
            buf.push(KIND_ASSERT);
            put_facts(&mut buf, facts);
        }
        WalRecord::RetractBatch(facts) => {
            buf.push(KIND_RETRACT);
            put_facts(&mut buf, facts);
        }
        WalRecord::Run => buf.push(KIND_RUN),
        WalRecord::Abort => buf.push(KIND_ABORT),
    }
    buf
}

/// Decode a record payload. Structural errors come back as strings; the
/// caller attaches the file context.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = ByteReader::new(payload);
    let rec = match r.take_u8()? {
        KIND_ASSERT => WalRecord::AssertBatch(take_facts(&mut r)?),
        KIND_RETRACT => WalRecord::RetractBatch(take_facts(&mut r)?),
        KIND_RUN => WalRecord::Run,
        KIND_ABORT => WalRecord::Abort,
        k => return Err(format!("unknown record kind {k}")),
    };
    r.finish()?;
    Ok(rec)
}

// --- reading ---

/// How to read a log. The `danger_*` fields weaken the reader and exist
/// **only** so the recovery fuzz harness can prove its oracle catches a
/// weakened implementation (mutation testing); production code never sets
/// them.
#[derive(Clone, Copy, Debug)]
pub struct WalReadOptions {
    /// Verify each record's checksum (mutant: `false` skips verification).
    pub danger_verify_crc: bool,
    /// Truncate a torn tail instead of failing (mutant: `false` turns any
    /// torn tail into a hard error).
    pub danger_truncate_torn_tail: bool,
}

impl Default for WalReadOptions {
    fn default() -> Self {
        Self {
            danger_verify_crc: true,
            danger_truncate_torn_tail: true,
        }
    }
}

/// One decoded record plus where it sits in the file.
#[derive(Clone, Debug)]
pub struct ReadRecord {
    /// Absolute record index (`base_index` + position in this file).
    pub index: u64,
    /// Byte offset where the record's frame starts.
    pub start_offset: u64,
    /// Byte offset one past the record's frame.
    pub end_offset: u64,
    /// The decoded record.
    pub record: WalRecord,
}

/// Everything a log file contained.
#[derive(Clone, Debug)]
pub struct WalContents {
    /// Absolute index of the first record in this file.
    pub base_index: u64,
    /// The committed records, in order.
    pub records: Vec<ReadRecord>,
    /// When a torn tail was found: the offset the file must be truncated
    /// to before appending again.
    pub truncated_at: Option<u64>,
}

/// Read and validate a log file. A torn tail (incomplete final frame, or a
/// final frame failing its checksum) is reported via
/// [`WalContents::truncated_at`]; any earlier inconsistency is a
/// [`RecoveryError::Corrupt`].
pub fn read_wal(path: &Path, opts: &WalReadOptions) -> Result<WalContents, RecoveryError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| RecoveryError::io(&format!("read {}", path.display()), &e))?;
    if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
        return Err(RecoveryError::corrupt(path, "missing or damaged header"));
    }
    let base_index = u64::from_le_bytes(bytes[8..16].try_into().expect("8 header bytes"));

    let mut records = Vec::new();
    let mut off = WAL_HEADER_LEN as usize;
    let mut truncated_at = None;
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        let torn = |detail: &str| -> Result<Option<u64>, RecoveryError> {
            if opts.danger_truncate_torn_tail {
                Ok(Some(off as u64))
            } else {
                Err(RecoveryError::corrupt(
                    path,
                    format!("torn tail at offset {off}: {detail}"),
                ))
            }
        };
        if remaining < FRAME_LEN {
            truncated_at = torn("incomplete frame header")?;
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN || (len as usize) > remaining - FRAME_LEN {
            // Either a partially written frame or a flipped length field;
            // both leave the record extending past EOF, which only a torn
            // write can produce legitimately.
            truncated_at = torn("record extends past end of file")?;
            break;
        }
        let start = off;
        let payload = &bytes[off + FRAME_LEN..off + FRAME_LEN + len as usize];
        let end = off + FRAME_LEN + len as usize;
        if opts.danger_verify_crc && crc32(payload) != crc {
            if end == bytes.len() {
                // A final frame whose bytes are all present but whose
                // checksum fails is still a torn write (the frame header
                // landed, part of the payload did not).
                truncated_at = torn("checksum failure on final record")?;
                break;
            }
            return Err(RecoveryError::corrupt(
                path,
                format!("checksum failure at offset {start} (not at tail)"),
            ));
        }
        let record = decode_record(payload).map_err(|detail| {
            RecoveryError::corrupt(path, format!("record at offset {start}: {detail}"))
        })?;
        records.push(ReadRecord {
            index: base_index + records.len() as u64,
            start_offset: start as u64,
            end_offset: end as u64,
            record,
        });
        off = end;
    }
    Ok(WalContents {
        base_index,
        records,
        truncated_at,
    })
}

// --- writing ---

/// Append handle over a log file. Every append writes a complete frame and
/// flushes it to the OS before returning (optionally `fsync`ing, per
/// [`sync_data`](WalWriter)); the in-memory commit the record describes
/// only happens after the append succeeds.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
    next_index: u64,
    base_index: u64,
    sync_data: bool,
}

impl WalWriter {
    /// Create a fresh log at `path` (truncating any existing file) whose
    /// first record will have absolute index `base_index`.
    pub fn create(path: &Path, base_index: u64, sync_data: bool) -> Result<Self, RecoveryError> {
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        put_u64(&mut header, base_index);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| RecoveryError::io(&format!("create {}", path.display()), &e))?;
        file.write_all(&header)
            .and_then(|()| file.sync_data())
            .map_err(|e| RecoveryError::io(&format!("write header {}", path.display()), &e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            len: WAL_HEADER_LEN,
            next_index: base_index,
            base_index,
            sync_data,
        })
    }

    /// Open an existing log for appending, truncating a torn tail first if
    /// `contents` found one.
    pub fn reopen(
        path: &Path,
        contents: &WalContents,
        sync_data: bool,
    ) -> Result<Self, RecoveryError> {
        let end = contents
            .records
            .last()
            .map_or(WAL_HEADER_LEN, |r| r.end_offset);
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| RecoveryError::io(&format!("open {}", path.display()), &e))?;
        if contents.truncated_at.is_some() {
            file.set_len(end)
                .map_err(|e| RecoveryError::io(&format!("truncate {}", path.display()), &e))?;
        }
        file.seek(SeekFrom::Start(end))
            .map_err(|e| RecoveryError::io(&format!("seek {}", path.display()), &e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            len: end,
            next_index: contents.base_index + contents.records.len() as u64,
            base_index: contents.base_index,
            sync_data,
        })
    }

    /// Append one record; returns the frame's end offset. On error nothing
    /// is considered committed (the caller refuses the mutation); a partial
    /// frame is rolled back best-effort, and would otherwise be exactly the
    /// torn tail the reader truncates.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, RecoveryError> {
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        let write = self.file.write_all(&frame).and_then(|()| {
            if self.sync_data {
                self.file.sync_data()
            } else {
                Ok(())
            }
        });
        if let Err(e) = write {
            let _ = self.file.set_len(self.len);
            let _ = self.file.seek(SeekFrom::Start(self.len));
            return Err(RecoveryError::io(
                &format!("append {}", self.path.display()),
                &e,
            ));
        }
        self.len += frame.len() as u64;
        self.next_index += 1;
        Ok(self.len)
    }

    /// Truncate the log back to `end_offset` holding `next_index` records
    /// total (recovery uses this to drop a deterministically failing
    /// suffix after replaying the healthy prefix).
    pub fn truncate_to(&mut self, end_offset: u64, next_index: u64) -> Result<(), RecoveryError> {
        self.file
            .set_len(end_offset)
            .and_then(|()| self.file.seek(SeekFrom::Start(end_offset)))
            .and_then(|_| self.file.sync_data())
            .map_err(|e| RecoveryError::io(&format!("truncate {}", self.path.display()), &e))?;
        self.len = end_offset;
        self.next_index = next_index;
        Ok(())
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.next_index == self.base_index
    }

    /// Absolute index the next appended record will get; equivalently, the
    /// number of records ever logged (across compactions).
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Absolute index of this file's first record.
    pub fn base_index(&self) -> u64 {
        self.base_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("seqlog-wal-test-{}-{tag}.bin", std::process::id()));
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::AssertBatch(vec![LoggedFact {
                pred: "edge".into(),
                args: vec![vec!["a".into(), "b".into()], vec![]],
            }]),
            WalRecord::Run,
            WalRecord::RetractBatch(vec![LoggedFact {
                pred: "edge".into(),
                args: vec![vec!["q0".into()], vec!["▷".into(), "a".into()]],
            }]),
            WalRecord::Abort,
        ]
    }

    #[test]
    fn record_payloads_round_trip() {
        for rec in sample_records() {
            let payload = encode_record(&rec);
            assert_eq!(decode_record(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn append_then_read_round_trips_with_offsets() {
        let path = temp_path("roundtrip");
        let mut w = WalWriter::create(&path, 7, false).unwrap();
        let recs = sample_records();
        let mut ends = Vec::new();
        for r in &recs {
            ends.push(w.append(r).unwrap());
        }
        assert_eq!(w.next_index(), 7 + recs.len() as u64);
        let contents = read_wal(&path, &WalReadOptions::default()).unwrap();
        assert_eq!(contents.base_index, 7);
        assert_eq!(contents.truncated_at, None);
        let got: Vec<_> = contents.records.iter().map(|r| r.record.clone()).collect();
        assert_eq!(got, recs);
        for (i, r) in contents.records.iter().enumerate() {
            assert_eq!(r.index, 7 + i as u64);
            assert_eq!(r.end_offset, ends[i]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_truncates_and_reopen_appends_cleanly() {
        let path = temp_path("torn");
        let mut w = WalWriter::create(&path, 0, false).unwrap();
        let recs = sample_records();
        let mut boundary = 0;
        for r in &recs {
            boundary = w.append(r).unwrap();
        }
        let keep = boundary - 3; // cut into the final record's payload
        drop(w);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);
        let contents = read_wal(&path, &WalReadOptions::default()).unwrap();
        assert_eq!(contents.records.len(), recs.len() - 1);
        assert!(contents.truncated_at.is_some());
        // Strict mode (the skip-truncation mutant's complement) refuses.
        let strict = WalReadOptions {
            danger_truncate_torn_tail: false,
            ..WalReadOptions::default()
        };
        assert!(matches!(
            read_wal(&path, &strict),
            Err(RecoveryError::Corrupt { .. })
        ));
        // Reopening truncates and appends a clean record after the cut.
        let mut w = WalWriter::reopen(&path, &contents, false).unwrap();
        assert_eq!(w.next_index(), recs.len() as u64 - 1);
        w.append(&WalRecord::Run).unwrap();
        let contents = read_wal(&path, &WalReadOptions::default()).unwrap();
        assert_eq!(contents.truncated_at, None);
        assert_eq!(contents.records.len(), recs.len());
        assert_eq!(contents.records.last().unwrap().record, WalRecord::Run);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_corruption_is_an_error_not_a_truncation() {
        let path = temp_path("interior");
        let mut w = WalWriter::create(&path, 0, false).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first record's payload (well before EOF).
        let idx = WAL_HEADER_LEN as usize + FRAME_LEN + 2;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal(&path, &WalReadOptions::default()),
            Err(RecoveryError::Corrupt { .. })
        ));
        // The skip-checksum mutant sails past the flip (decoding garbage or
        // a silently different record) — exactly what the harness's
        // mutation tests must catch at the model level.
        let weak = WalReadOptions {
            danger_verify_crc: false,
            ..WalReadOptions::default()
        };
        match read_wal(&path, &weak) {
            Ok(c) => assert_eq!(c.records.len(), sample_records().len()),
            Err(RecoveryError::Corrupt { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_damage_is_corruption() {
        let path = temp_path("header");
        let w = WalWriter::create(&path, 3, false).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal(&path, &WalReadOptions::default()),
            Err(RecoveryError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
