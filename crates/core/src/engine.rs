//! The user-facing engine: owns the alphabet, the sequence interner, and the
//! transducer registry; parses, analyzes, and evaluates programs.
//!
//! ```
//! use seqlog_core::engine::Engine;
//! use seqlog_core::database::Database;
//!
//! let mut engine = Engine::new();
//! // Example 1.1 — all suffixes of sequences in r.
//! let program = engine.parse_program("suffix(X[N:end]) :- r(X).").unwrap();
//! let mut db = Database::new();
//! engine.add_fact(&mut db, "r", &["abc"]);
//! let model = engine.evaluate(&program, &db).unwrap();
//! let mut suffixes = engine.rendered_tuples(&model, "suffix");
//! suffixes.sort();
//! assert_eq!(suffixes, vec![
//!     vec!["".to_string()],
//!     vec!["abc".to_string()],
//!     vec!["bc".to_string()],
//!     vec!["c".to_string()],
//! ]);
//! ```

use crate::analysis::magic::{magic_transform, MagicOptions};
use crate::analysis::{Bind, ProgramReport};
use crate::ast::Program;
use crate::database::Database;
use crate::eval::interp::Relation;
use crate::eval::{evaluate, EvalConfig, EvalError, Fixpoint, Model};
use crate::parser::{parse_program, ParseError};
use crate::registry::TransducerRegistry;
use crate::safety::{analyze, SafetyReport};
use crate::session::EngineSession;
use seqlog_sequence::{Alphabet, SeqId, SeqStore, Sym};
use seqlog_transducer::Transducer;

/// Render one interned sequence through an alphabet + store pair — the
/// single rendering primitive every query-result path goes through.
pub(crate) fn render_seq(alphabet: &Alphabet, store: &SeqStore, id: SeqId) -> String {
    alphabet.render(store.get(id))
}

/// Render a relation's tuples in insertion order. The shared helper
/// behind [`Engine::rendered_tuples`] and
/// [`crate::session::EngineSession::query`] — one formatting path, so
/// batch and session (and demand) renderings are byte-identical.
pub(crate) fn render_tuples_with(
    rel: Option<&Relation>,
    alphabet: &Alphabet,
    store: &SeqStore,
) -> Vec<Vec<String>> {
    match rel {
        None => Vec::new(),
        Some(rel) => rel
            .iter()
            .map(|t| {
                t.iter()
                    .map(|&id| render_seq(alphabet, store, id))
                    .collect()
            })
            .collect(),
    }
}

/// Rendered, sorted, deduplicated single-column answers. The shared
/// helper behind [`Engine::answers`] and
/// [`crate::session::EngineSession::answers`].
pub(crate) fn render_answers_with(
    rel: Option<&Relation>,
    alphabet: &Alphabet,
    store: &SeqStore,
) -> Vec<String> {
    let mut out: Vec<String> = match rel {
        None => Vec::new(),
        Some(rel) => rel
            .iter()
            .filter(|t| t.len() == 1)
            .map(|t| render_seq(alphabet, store, t[0]))
            .collect(),
    };
    out.sort();
    out.dedup();
    out
}

/// Filter a relation by a bound-argument pattern and render the matches,
/// sorted and deduplicated — the answer shape of the `query_bound` API
/// on both the engine and session routes. `bound` lists `(position,
/// required id)` pairs; tuples of a different arity than `arity` never
/// match.
pub(crate) fn filter_bound_answers(
    rel: Option<&Relation>,
    arity: usize,
    bound: &[(usize, SeqId)],
    alphabet: &Alphabet,
    store: &SeqStore,
) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = match rel {
        None => Vec::new(),
        Some(rel) => rel
            .iter()
            .filter(|t| t.len() == arity && bound.iter().all(|&(i, id)| t[i] == id))
            .map(|t| {
                t.iter()
                    .map(|&id| render_seq(alphabet, store, id))
                    .collect()
            })
            .collect(),
    };
    out.sort();
    out.dedup();
    out
}

/// Intern a `query_bound` pattern's bound values and window-close them in
/// the store, returning `(position, id)` pairs. Interning (rather than a
/// failable lookup) matters for completeness: a constructive program can
/// *derive* the queried value even when nothing interned it yet, and the
/// derivation must land on the same id. The interners are append-only, so
/// this is unobservable through the query API; window closure mirrors the
/// treatment of program body constants (a guard-bound variable may serve
/// as an indexed base).
pub(crate) fn intern_pattern(
    pattern: &[Bind<'_>],
    alphabet: &mut Alphabet,
    store: &mut SeqStore,
) -> Vec<(usize, SeqId)> {
    let mut out = Vec::new();
    for (i, b) in pattern.iter().enumerate() {
        if let Bind::Bound(s) = b {
            let syms = alphabet.seq_of_str(s);
            let id = store.intern_vec(syms);
            store.close_windows(id);
            out.push((i, id));
        }
    }
    out
}

/// An evaluation context: interners plus registered transducers.
#[derive(Default)]
pub struct Engine {
    /// Symbol interner.
    pub alphabet: Alphabet,
    /// Sequence interner.
    pub store: SeqStore,
    /// Registered transducers for `@name(…)` terms.
    pub registry: TransducerRegistry,
}

impl Engine {
    /// Create an engine with empty interners and registry.
    pub fn new() -> Self {
        Self {
            alphabet: Alphabet::new(),
            store: SeqStore::new(),
            registry: TransducerRegistry::new(),
        }
    }

    /// Intern a string as a sequence (one symbol per character).
    pub fn seq(&mut self, text: &str) -> SeqId {
        let syms = self.alphabet.seq_of_str(text);
        self.store.intern_vec(syms)
    }

    /// Render an interned sequence back to a string.
    pub fn render(&self, id: SeqId) -> String {
        self.alphabet.render(self.store.get(id))
    }

    /// Parse a program, interning its constants.
    pub fn parse_program(&mut self, src: &str) -> Result<Program, ParseError> {
        parse_program(src, &mut self.alphabet, &mut self.store)
    }

    /// Add a fact with string arguments to a database.
    pub fn add_fact(&mut self, db: &mut Database, pred: &str, args: &[&str]) {
        let tuple: Vec<SeqId> = args.iter().map(|s| self.seq(s)).collect();
        db.add(pred, tuple);
    }

    /// Register a transducer for use in `@name(…)` terms.
    pub fn register_transducer(&mut self, name: &str, machine: Transducer) {
        self.registry.register(name, machine);
    }

    /// Register a finite-state transducer *relation* (possibly
    /// nondeterministic). It is analyzed by the machine-level lints
    /// (`SL007` fires when a head term calls a non-functional relation)
    /// and is callable from `@name(…)` terms only when it lowers to a
    /// deterministic runtime machine.
    pub fn register_relation(&mut self, name: &str, fst: seqlog_transducer::Fst, end_marker: Sym) {
        self.registry.register_fst(name, fst, end_marker);
    }

    /// Register an acyclic transducer network under its own name. Unary
    /// chains are fused by the transducer algebra at registration time and
    /// become callable as a single machine (see
    /// [`crate::registry::TransducerRegistry::register_network`]).
    pub fn register_network(&mut self, network: seqlog_transducer::Network) {
        self.registry.register_network(network);
    }

    /// Evaluate with the default configuration.
    pub fn evaluate(&mut self, program: &Program, db: &Database) -> Result<Model, EvalError> {
        self.evaluate_with(program, db, &EvalConfig::default())
    }

    /// Evaluate with an explicit configuration.
    ///
    /// [`EvalConfig::threads`] controls the match-phase worker count
    /// (`0` ⇒ all available cores); results are bit-for-bit identical for
    /// every setting — see the `eval` module docs on determinism.
    pub fn evaluate_with(
        &mut self,
        program: &Program,
        db: &Database,
        config: &EvalConfig,
    ) -> Result<Model, EvalError> {
        evaluate(program, db, &mut self.store, &self.registry, config)
    }

    /// Open a persistent [`EngineSession`] over `program`, consuming the
    /// engine (the session takes ownership of the interners and the
    /// transducer registry). Sessions resume the semi-naive fixpoint from
    /// newly asserted facts instead of re-evaluating from scratch — see
    /// [`crate::session`] for the protocol and guarantees.
    ///
    /// ```
    /// use seqlog_core::engine::Engine;
    /// use seqlog_core::eval::EvalConfig;
    ///
    /// let mut engine = Engine::new();
    /// let program = engine.parse_program("suffix(X[N:end]) :- r(X).").unwrap();
    /// let mut session = engine.into_session(&program, EvalConfig::default()).unwrap();
    /// session.assert_fact("r", &["ab"]).unwrap();
    /// session.run().unwrap();
    /// assert_eq!(session.answers("suffix"), ["", "ab", "b"]);
    /// // Later facts extend the settled model incrementally.
    /// session.assert_fact("r", &["cd"]).unwrap();
    /// session.run().unwrap();
    /// assert_eq!(session.answers("suffix"), ["", "ab", "b", "cd", "d"]);
    /// ```
    pub fn into_session(
        self,
        program: &Program,
        config: EvalConfig,
    ) -> Result<EngineSession, EvalError> {
        EngineSession::open(self, program, config)
    }

    /// Static safety analysis (Section 8): dependency graph, constructive
    /// cycles, strong safety, guardedness, program order.
    pub fn analyze(&self, program: &Program) -> SafetyReport {
        analyze(program, &self.registry)
    }

    /// Static safety analysis with a database: database-only predicates
    /// join the dependency graph and the strata as source nodes.
    pub fn analyze_with_db(&self, program: &Program, db: &Database) -> SafetyReport {
        crate::safety::analyze_with_db(program, &self.registry, db)
    }

    /// Compile-time program analysis (see [`crate::analysis`]): SCC
    /// condensation, the stratified evaluation schedule, per-clause facts,
    /// and `SL001`..`SL006` lint diagnostics. Database predicates are
    /// inferred as the predicates heading no clause; pass an explicit set
    /// through [`ProgramReport::analyze_with_edb`] (or use
    /// [`crate::session::EngineSession::report`], which knows what has
    /// actually been asserted) for the closed-world reading.
    ///
    /// ```
    /// use seqlog_core::engine::Engine;
    /// use seqlog_core::analysis::LintCode;
    ///
    /// let mut engine = Engine::new();
    /// let program = engine
    ///     .parse_program("p(X) :- q(X).\np(X) :- q(X).")
    ///     .unwrap();
    /// let report = engine.report(&program).unwrap();
    /// let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    /// assert_eq!(codes, [LintCode::DuplicateClause]);
    /// ```
    pub fn report(&self, program: &Program) -> Result<ProgramReport, EvalError> {
        let compiled = crate::compile::compile(program).map_err(EvalError::Compile)?;
        let mut report = ProgramReport::analyze(&compiled);
        report.attach_fusion(&crate::analysis::fuse::fuse_program(
            &compiled,
            &self.registry,
            &crate::analysis::FuseLimits::default(),
        ));
        Ok(report)
    }

    /// The tuples of `pred` in `model`, rendered to strings.
    pub fn rendered_tuples(&self, model: &Model, pred: &str) -> Vec<Vec<String>> {
        render_tuples_with(
            model.facts.relation_named(pred),
            &self.alphabet,
            &self.store,
        )
    }

    /// Rendered, sorted, deduplicated single-column answers for `pred`
    /// (convenience for the common `output(Y)` query shape, Definition 5).
    pub fn answers(&self, model: &Model, pred: &str) -> Vec<String> {
        render_answers_with(
            model.facts.relation_named(pred),
            &self.alphabet,
            &self.store,
        )
    }

    /// Demand-driven (goal-directed) point query with the default
    /// configuration — see [`Engine::query_bound_with`].
    pub fn query_bound(
        &mut self,
        program: &Program,
        db: &Database,
        pred: &str,
        pattern: &[Bind<'_>],
    ) -> Result<Vec<Vec<String>>, EvalError> {
        self.query_bound_with(program, db, pred, pattern, &EvalConfig::default())
    }

    /// Demand-driven (goal-directed) point query: evaluate only what the
    /// goal `pred(pattern)` needs via the magic-set transformation
    /// ([`crate::analysis::magic`]) and return the matching tuples of
    /// `pred` — rendered, sorted, and deduplicated (byte-identical to
    /// filtering and sorting [`Engine::rendered_tuples`] of a full
    /// [`Engine::evaluate_with`] run).
    ///
    /// One-shot: the transformation is rerun per call. Sessions cache the
    /// transformed program per adornment —
    /// [`crate::session::EngineSession::query_bound`] is the repeated
    /// point-query API.
    pub fn query_bound_with(
        &mut self,
        program: &Program,
        db: &Database,
        pred: &str,
        pattern: &[Bind<'_>],
        config: &EvalConfig,
    ) -> Result<Vec<Vec<String>>, EvalError> {
        let compiled = crate::compile::compile(program).map_err(EvalError::Compile)?;
        let bound = intern_pattern(pattern, &mut self.alphabet, &mut self.store);
        let goal = compiled.preds.lookup(pred);
        let derivable = goal.is_some_and(|g| compiled.clauses.iter().any(|c| c.head.pred == g));
        if !derivable {
            // Asserted-only (or unknown) predicate: its extent is exactly
            // the database's facts — no evaluation needed.
            let mut out: Vec<Vec<String>> = db
                .iter()
                .filter(|(p, t)| {
                    *p == pred
                        && t.len() == pattern.len()
                        && bound.iter().all(|&(i, id)| t[i] == id)
                })
                .map(|(_, t)| {
                    t.iter()
                        .map(|&id| render_seq(&self.alphabet, &self.store, id))
                        .collect()
                })
                .collect();
            out.sort();
            out.dedup();
            return Ok(out);
        }
        let goal = goal.expect("derivable implies interned");
        let magic = magic_transform(
            &compiled,
            goal,
            &Bind::adornment(pattern),
            &MagicOptions::default(),
        );
        for id in magic.program.constants() {
            self.store.close_windows(id);
        }
        let mut fx = Fixpoint::new(&magic.program);
        for (p, tuple) in db.iter() {
            let pid = fx.pred_id(p);
            fx.assert_fact(&mut self.store, pid, tuple.into());
        }
        let seed: Box<[SeqId]> = bound.iter().map(|&(_, id)| id).collect();
        fx.seed_demand(magic.seed, seed);
        fx.run(&magic.program, &mut self.store, &self.registry, config)?;
        Ok(filter_bound_answers(
            Some(fx.facts().relation(goal)),
            pattern.len(),
            &bound,
            &self.alphabet,
            &self.store,
        ))
    }
}
